PYTHONPATH_PREFIX = PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test lint lint-graph typecheck bench-smoke bench-scaling bench-cache bench-backends serve serve-smoke vary-smoke ci

test:
	$(PYTHONPATH_PREFIX) python -m pytest -x -q

lint:
	$(PYTHONPATH_PREFIX) python -m repro.analysis src/repro

lint-graph:
	$(PYTHONPATH_PREFIX) python -m repro.analysis src/repro --lock-graph lockgraph.json
	@echo "wrote lockgraph.json (repro.lockgraph/v1)"

typecheck:
	sh scripts/typecheck.sh

serve:
	$(PYTHONPATH_PREFIX) python -m repro serve --port 8080

serve-smoke:
	sh scripts/serve_smoke.sh

bench-smoke:
	$(PYTHONPATH_PREFIX) python benchmarks/bench_extraction_scaling.py --smoke --out /tmp/bench_extraction_smoke.json

bench-scaling:
	$(PYTHONPATH_PREFIX) python benchmarks/bench_extraction_scaling.py

bench-cache:
	$(PYTHONPATH_PREFIX) python benchmarks/bench_cache_reuse.py --smoke --out /tmp/bench_cache_smoke.json

bench-backends:
	$(PYTHONPATH_PREFIX) python benchmarks/bench_backends.py --chunk-sweep

vary-smoke:
	$(PYTHONPATH_PREFIX) python -m repro.variation --families all --budget 150 \
		--seed 20260808 --eps 0.35 --out /tmp/vary-repros --quiet

ci:
	sh scripts/ci.sh
