PYTHONPATH_PREFIX = PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench-smoke bench-scaling ci

test:
	$(PYTHONPATH_PREFIX) python -m pytest -x -q

bench-smoke:
	$(PYTHONPATH_PREFIX) python benchmarks/bench_extraction_scaling.py --smoke --out /tmp/bench_extraction_smoke.json

bench-scaling:
	$(PYTHONPATH_PREFIX) python benchmarks/bench_extraction_scaling.py

ci:
	sh scripts/ci.sh
