"""Tests for charger redeployment (§8.1)."""

import itertools
import math

import numpy as np
import pytest

from repro.extensions import (
    cost_matrix,
    minimize_max_overhead,
    minimize_total_overhead,
    redeploy,
    switching_cost,
)
from repro.model import ChargerType, Strategy

CT = ChargerType("ct", math.pi / 2, 1.0, 6.0)
CT2 = ChargerType("ct2", math.pi / 3, 1.0, 8.0)


def strat(x, y, theta=0.0, ct=CT):
    return Strategy((x, y), theta, ct)


def test_switching_cost_components():
    a = strat(0.0, 0.0, 0.0)
    b = strat(3.0, 4.0, math.pi / 2)
    assert math.isclose(switching_cost(a, b), 5.0 + math.pi / 2)
    assert math.isclose(switching_cost(a, b, move_weight=2.0, rotate_weight=0.0), 10.0)


def test_switching_cost_rotation_wraps():
    a = strat(0.0, 0.0, 0.1)
    b = strat(0.0, 0.0, 2.0 * math.pi - 0.1)
    assert math.isclose(switching_cost(a, b), 0.2, abs_tol=1e-9)


def test_cost_matrix_requires_equal_counts():
    with pytest.raises(ValueError):
        cost_matrix([strat(0, 0)], [strat(1, 1), strat(2, 2)])


def test_minimize_total_matches_brute_force():
    rng = np.random.default_rng(0)
    for _ in range(10):
        old = [strat(*rng.uniform(0, 10, 2), rng.uniform(0, 6.28)) for _ in range(4)]
        new = [strat(*rng.uniform(0, 10, 2), rng.uniform(0, 6.28)) for _ in range(4)]
        c = cost_matrix(old, new)
        plan = minimize_total_overhead({"ct": c})
        brute = min(
            sum(c[i, p[i]] for i in range(4)) for p in itertools.permutations(range(4))
        )
        assert math.isclose(plan.total_overhead, brute, rel_tol=1e-9)


def test_minimize_max_matches_brute_force_bottleneck():
    rng = np.random.default_rng(1)
    for _ in range(10):
        old = [strat(*rng.uniform(0, 10, 2), rng.uniform(0, 6.28)) for _ in range(4)]
        new = [strat(*rng.uniform(0, 10, 2), rng.uniform(0, 6.28)) for _ in range(4)]
        c = cost_matrix(old, new)
        plan = minimize_max_overhead({"ct": c})
        brute_bottleneck = min(
            max(c[i, p[i]] for i in range(4)) for p in itertools.permutations(range(4))
        )
        assert math.isclose(plan.max_overhead, brute_bottleneck, rel_tol=1e-9)


def test_minimize_max_then_total():
    """Among bottleneck-optimal matchings, the plan minimizes the total."""
    rng = np.random.default_rng(2)
    for _ in range(8):
        c = rng.uniform(0, 10, (4, 4))
        plan = minimize_max_overhead({"ct": c})
        best_total = math.inf
        for p in itertools.permutations(range(4)):
            mx = max(c[i, p[i]] for i in range(4))
            if mx <= plan.max_overhead + 1e-9:
                best_total = min(best_total, sum(c[i, p[i]] for i in range(4)))
        assert math.isclose(plan.total_overhead, best_total, rel_tol=1e-9)


def test_max_plan_total_never_below_total_plan():
    rng = np.random.default_rng(3)
    c = rng.uniform(0, 10, (5, 5))
    total_plan = minimize_total_overhead({"ct": c})
    max_plan = minimize_max_overhead({"ct": c})
    assert max_plan.total_overhead >= total_plan.total_overhead - 1e-9
    assert max_plan.max_overhead <= total_plan.max_overhead + 1e-9


def test_redeploy_multiple_types():
    old = {
        "ct": [strat(0, 0), strat(1, 0)],
        "ct2": [strat(5, 5, ct=CT2)],
    }
    new = {
        "ct": [strat(0, 1), strat(1, 1)],
        "ct2": [strat(6, 5, ct=CT2)],
    }
    plan = redeploy(old, new, objective="total")
    assert set(plan.assignments) == {"ct", "ct2"}
    assert math.isclose(plan.total_overhead, 3.0, rel_tol=1e-9)
    plan_max = redeploy(old, new, objective="max")
    assert math.isclose(plan_max.max_overhead, 1.0, rel_tol=1e-9)


def test_redeploy_validation():
    with pytest.raises(ValueError):
        redeploy({"ct": []}, {"ct2": []})
    with pytest.raises(ValueError):
        redeploy({"ct": []}, {"ct": []}, objective="nope")


def test_redeploy_custom_cost_fn():
    old = {"ct": [strat(0, 0)]}
    new = {"ct": [strat(3, 4)]}
    plan = redeploy(old, new, cost_fn=lambda a, b: 42.0)
    assert plan.total_overhead == 42.0


def test_empty_plan():
    plan = minimize_max_overhead({})
    assert plan.total_overhead == 0.0 and plan.max_overhead == 0.0


# ----------------------------------------------- generated scenarios --


def _two_placements(seed):
    """Two placements of one generated scenario: base and device-perturbed."""
    from repro.core import solve_hipo
    from repro.variation import get_family
    from repro.variation.strategies import perturb_device

    base = get_family("sparse").build({"devices": 4}, seed=seed)
    moved = perturb_device(base, np.random.default_rng(seed))
    sol_a = solve_hipo(base.scenario, eps=0.4)
    sol_b = solve_hipo(moved.scenario, eps=0.4)
    old, new = {}, {}
    for sol, out in ((sol_a, old), (sol_b, new)):
        for s in sol.strategies:
            out.setdefault(s.ctype.name, []).append(s)
    # Pair only the per-type counts both placements share.
    shared = {}
    for name in set(old) & set(new):
        k = min(len(old[name]), len(new[name]))
        if k:
            shared[name] = (old[name][:k], new[name][:k])
    return {n: p[0] for n, p in shared.items()}, {n: p[1] for n, p in shared.items()}


@pytest.mark.parametrize("seed", [7, 19])
def test_redeploy_between_generated_placements(seed):
    old, new = _two_placements(seed)
    assert old  # solver placed at least one shared type
    total_plan = redeploy(old, new, objective="total")
    max_plan = redeploy(old, new, objective="max")
    # The bottleneck objective can't beat the total objective on sum, and
    # vice versa on bottleneck.
    assert total_plan.total_overhead <= max_plan.total_overhead + 1e-9
    assert max_plan.max_overhead <= total_plan.max_overhead + 1e-9
    for name, assignment in total_plan.assignments.items():
        assert sorted(assignment) == list(range(len(old[name])))


def test_redeploy_generated_is_deterministic():
    a = _two_placements(7)
    b = _two_placements(7)
    assert redeploy(*a).total_overhead == redeploy(*b).total_overhead
