"""Tests for charging-utility balancing (§8.3)."""

import numpy as np
import pytest

from repro.core import build_candidate_set
from repro.extensions import (
    maxmin_placement,
    min_utility,
    proportional_fair_placement,
    utilities_of,
)

from conftest import simple_scenario


def scenario():
    return simple_scenario(
        [(4.0, 4.0), (10.0, 10.0), (16.0, 16.0)], budget=3, threshold=0.05
    )


def test_utilities_of_shapes():
    sc = scenario()
    cs = build_candidate_set(sc)
    u = utilities_of(sc, cs, [])
    assert u.shape == (3,)
    assert np.all(u == 0.0)
    u2 = utilities_of(sc, cs, [0])
    assert np.all((0.0 <= u2) & (u2 <= 1.0))


def test_min_utility_empty():
    sc = scenario()
    cs = build_candidate_set(sc)
    assert min_utility(sc, cs, []) == 0.0


@pytest.mark.parametrize("method", ["sa", "pso", "aco"])
def test_maxmin_methods_return_feasible(method, rng):
    sc = scenario()
    cs = build_candidate_set(sc)
    sol = maxmin_placement(sc, cs, rng, method=method, iterations=200)
    assert len(sol.strategies) <= sum(cs.capacities)
    assert 0.0 <= sol.min_utility <= sol.mean_utility <= 1.0
    counts = {}
    for s in sol.strategies:
        counts[s.ctype.name] = counts.get(s.ctype.name, 0) + 1
    for name, c in counts.items():
        assert c <= sc.budgets[name]


def test_maxmin_unknown_method(rng):
    sc = scenario()
    cs = build_candidate_set(sc)
    with pytest.raises(ValueError):
        maxmin_placement(sc, cs, rng, method="nope")


def test_maxmin_beats_or_ties_random_start(rng):
    """SA's final min-utility is at least a fresh random solution's
    (on average — we check against the best of 5 random draws minus slack)."""
    from repro.opt import random_feasible_solution

    sc = scenario()
    cs = build_candidate_set(sc)
    sol = maxmin_placement(sc, cs, rng, method="sa", iterations=600)
    rand_best = max(
        min_utility(sc, cs, random_feasible_solution(rng, cs.part_of, cs.capacities))
        for _ in range(5)
    )
    assert sol.min_utility >= rand_best - 0.15


def test_proportional_fairness_spreads_utility():
    sc = scenario()
    cs = build_candidate_set(sc)
    sol = proportional_fair_placement(sc, cs)
    assert len(sol.strategies) <= sum(cs.capacities)
    assert sol.mean_utility > 0.0
    # The log objective rewards covering more devices over saturating one.
    assert np.count_nonzero(sol.utilities) >= 1


def test_proportional_vs_utilitarian_minimum():
    """Proportional fairness should never leave the minimum device worse
    than an all-in-one-device extreme would suggest: sanity bound only."""
    sc = scenario()
    cs = build_candidate_set(sc)
    sol = proportional_fair_placement(sc, cs)
    assert sol.min_utility >= 0.0


# ----------------------------------------------- frontier over families --


def test_fairness_frontier_structure_and_determinism():
    from repro.extensions import fairness_frontier

    rows = fairness_frontier(count=2, seed=1, eps=0.4)
    again = fairness_frontier(count=2, seed=1, eps=0.4)
    assert rows == again
    assert len(rows) == 2
    for row in rows:
        assert row["provenance"]["family"] == "fairness"
        for name in ("greedy", "proportional"):
            m = row["methods"][name]
            assert 0.0 <= m["min"] <= m["mean"] <= 1.0


def test_fairness_frontier_with_maxmin(rng):
    from repro.extensions import fairness_frontier

    rows = fairness_frontier(count=1, seed=2, eps=0.4, rng=rng, maxmin_iterations=60)
    assert set(rows[0]["methods"]) == {"greedy", "proportional", "maxmin"}


def test_fairness_frontier_custom_family():
    from repro.extensions import fairness_frontier

    rows = fairness_frontier(family="sparse", count=1, seed=3, eps=0.4)
    assert rows[0]["provenance"]["family"] == "sparse"
