"""Tests for deployment-cost-constrained placement (§8.2)."""

import math

import numpy as np
import pytest

from repro.core import build_candidate_set
from repro.extensions import (
    DeploymentCostModel,
    budgeted_placement,
    placement_cost,
)
from repro.model import ChargerType, Strategy

from conftest import simple_scenario

CT = ChargerType("ct", math.pi / 2, 1.0, 6.0)


def scenario():
    return simple_scenario(
        [(4.0, 4.0), (10.0, 10.0), (16.0, 16.0)], budget=3, threshold=0.05
    )


def test_strategy_cost_components():
    model = DeploymentCostModel(base=(0.0, 0.0), power_of_type={"ct": 2.0})
    s = Strategy((3.0, 4.0), 1.0, CT)
    assert math.isclose(model.strategy_cost(s), 5.0 + 1.0 + 2.0)
    assert math.isclose(model.strategy_cost(s, travel=1.0), 1.0 + 1.0 + 2.0)


def test_strategy_cost_monotone_functions():
    model = DeploymentCostModel(
        f_distance=lambda d: d * d, f_rotation=lambda t: 0.0, f_power=lambda p: 0.0
    )
    s = Strategy((3.0, 4.0), 0.0, CT)
    assert math.isclose(model.strategy_cost(s), 25.0)


def test_placement_cost_empty():
    assert placement_cost([], DeploymentCostModel()) == 0.0


def test_placement_cost_tour_vs_straight():
    model = DeploymentCostModel()
    strats = [Strategy((5.0, 0.0), 0.0, CT), Strategy((5.0, 1.0), 0.0, CT)]
    tour = placement_cost(strats, model, use_tour=True)
    straight = placement_cost(strats, model, use_tour=False)
    assert tour > 0.0 and straight > 0.0


def test_budgeted_respects_budget():
    sc = scenario()
    cs = build_candidate_set(sc)
    model = DeploymentCostModel()
    budget = 30.0
    sol = budgeted_placement(sc, cs, budget, cost_model=model)
    # The additive surrogate cost respects the budget by construction.
    surrogate = sum(model.strategy_cost(s) for s in sol.strategies)
    assert surrogate <= budget + 1e-9
    assert 0.0 <= sol.utility <= 1.0


def test_budgeted_zero_budget_selects_nothing():
    sc = scenario()
    cs = build_candidate_set(sc)
    sol = budgeted_placement(sc, cs, 0.0)
    assert sol.strategies == []
    assert sol.utility == 0.0


def test_budgeted_negative_budget_rejected():
    sc = scenario()
    cs = build_candidate_set(sc)
    with pytest.raises(ValueError):
        budgeted_placement(sc, cs, -1.0)


def test_budgeted_utility_monotone_in_budget():
    sc = scenario()
    cs = build_candidate_set(sc)
    utils = [budgeted_placement(sc, cs, b).utility for b in (5.0, 20.0, 60.0, 1e6)]
    for a, b in zip(utils, utils[1:]):
        assert b >= a - 1e-9


def test_budgeted_large_budget_matches_unconstrained_greedy_scale():
    sc = scenario()
    cs = build_candidate_set(sc)
    sol = budgeted_placement(sc, cs, 1e9)
    # With effectively no budget the type budgets still cap selection.
    assert len(sol.strategies) <= sum(cs.capacities)
    assert sol.utility > 0.0


def test_budgeted_respects_type_capacities():
    sc = scenario()
    cs = build_candidate_set(sc)
    sol = budgeted_placement(sc, cs, 1e9)
    count = sum(1 for s in sol.strategies if s.ctype.name == "ct")
    assert count <= sc.budgets["ct"]


def test_best_singleton_fallback():
    """When the ratio-greedy picks a cheap low-value item that blocks the
    budget, the best affordable singleton must still be considered."""
    sc = scenario()
    cs = build_candidate_set(sc)
    model = DeploymentCostModel()
    costs = np.array([model.strategy_cost(s) for s in cs.strategies])
    budget = float(np.median(costs))
    sol = budgeted_placement(sc, cs, budget, cost_model=model)
    # Any affordable single candidate cannot beat the returned solution.
    ev = sc.evaluator()
    best_single = 0.0
    for k, s in enumerate(cs.strategies):
        if costs[k] <= budget:
            u = float(np.minimum(1.0, cs.exact_power[k] / ev.thresholds).mean())
            best_single = max(best_single, u)
    assert sol.utility >= best_single - 0.35 * best_single - 1e-9


def test_placement_cost_obstacle_aware_tour():
    from repro.geometry import rectangle

    model = DeploymentCostModel(f_rotation=lambda t: 0.0, f_power=lambda p: 0.0)
    strats = [Strategy((9.0, 0.0), 0.0, CT)]
    wall = rectangle(4.0, -5.0, 5.0, 5.0)
    free = placement_cost(strats, model, obstacles=None)
    detoured = placement_cost(strats, model, obstacles=[wall])
    assert detoured > free


def test_multi_base_travel_groups_and_length():
    from repro.extensions import multi_base_travel

    strats = [
        Strategy((2.0, 0.0), 0.0, CT),
        Strategy((3.0, 0.0), 0.0, CT),
        Strategy((18.0, 0.0), 0.0, CT),
    ]
    bases = [(0.0, 0.0), (20.0, 0.0)]
    groups, total = multi_base_travel(strats, bases)
    assert groups[0] == [0, 1] or groups[0] == [1, 0]
    assert groups[1] == [2]
    # Base 0 tour: 0->2->3->0 = 6; base 1 tour: 20->18->20 = 4.
    assert math.isclose(total, 10.0, rel_tol=1e-9)


def test_multi_base_travel_beats_single_far_base():
    from repro.extensions import multi_base_travel

    strats = [Strategy((2.0, 0.0), 0.0, CT), Strategy((18.0, 0.0), 0.0, CT)]
    _g1, two_bases = multi_base_travel(strats, [(0.0, 0.0), (20.0, 0.0)])
    _g2, one_base = multi_base_travel(strats, [(0.0, 0.0)])
    assert two_bases < one_base


def test_multi_base_travel_edge_cases():
    from repro.extensions import multi_base_travel

    groups, total = multi_base_travel([], [(0.0, 0.0)])
    assert groups == [[]] and total == 0.0
    import pytest as _pytest

    with _pytest.raises(ValueError):
        multi_base_travel([], [])


# ----------------------------------------------- generated scenarios --


def _generated(seed):
    from repro.variation import get_family

    return get_family("corridor").build({"walls": 2, "devices": 4}, seed=seed).scenario


@pytest.mark.parametrize("seed", [101, 202])
def test_budgeted_on_generated_scenarios_respects_money_budget(seed):
    sc = _generated(seed)
    cs = build_candidate_set(sc, eps=0.4)
    model = DeploymentCostModel(base=(0.0, 0.0))
    sol = budgeted_placement(sc, cs, 12.0, cost_model=model)
    # Per-type counts never exceed the scenario's matroid capacities.
    by_type = {}
    for s in sol.strategies:
        by_type[s.ctype.name] = by_type.get(s.ctype.name, 0) + 1
    for name, n in by_type.items():
        assert n <= sc.budgets[name]
    assert 0.0 <= sol.utility <= len(sc.devices)


def test_budgeted_utility_monotone_in_budget_on_generated_scenario():
    sc = _generated(303)
    cs = build_candidate_set(sc, eps=0.4)
    utils = [budgeted_placement(sc, cs, b).utility for b in (0.0, 15.0, 60.0, 1e9)]
    assert utils == sorted(utils)
    assert budgeted_placement(sc, cs, 0.0).strategies == []


def test_budgeted_deterministic_for_pinned_seed():
    sc1, sc2 = _generated(404), _generated(404)
    cs1 = build_candidate_set(sc1, eps=0.4)
    cs2 = build_candidate_set(sc2, eps=0.4)
    a = budgeted_placement(sc1, cs1, 25.0)
    b = budgeted_placement(sc2, cs2, 25.0)
    assert a.strategies == b.strategies
    assert a.utility == b.utility and a.cost == b.cost
