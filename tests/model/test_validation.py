"""Tests for scenario validation diagnostics."""

import math

from repro.geometry import rectangle
from repro.model import Device, DeviceType, unreachable_devices, validate_scenario

from conftest import simple_scenario


def test_clean_scenario_ok():
    sc = simple_scenario([(10.0, 10.0)], device_angle=2 * math.pi)
    report = validate_scenario(sc)
    assert report.ok
    assert report.errors() == []
    assert "OK" in report.format() or report.issues


def test_device_inside_obstacle_is_error():
    sc = simple_scenario([(10.0, 10.0)], obstacles=[rectangle(9.0, 9.0, 11.0, 11.0)])
    report = validate_scenario(sc, check_reachability=False)
    assert not report.ok
    assert any(i.code == "device-in-obstacle" for i in report.errors())


def test_device_outside_region_is_error():
    sc = simple_scenario([(10.0, 10.0)])
    bad_dev = Device((50.0, 50.0), 0.0, sc.devices[0].dtype, 0.1)
    sc2 = sc.with_devices([bad_dev])
    report = validate_scenario(sc2, check_reachability=False)
    assert any(i.code == "device-outside-region" for i in report.errors())


def test_zero_budgets():
    sc = simple_scenario([(10.0, 10.0)], budget=0)
    report = validate_scenario(sc, check_reachability=False)
    assert any(i.code == "no-chargers" for i in report.errors())
    assert any(i.code == "zero-budget-type" for i in report.warnings())


def test_obstacles_dominate_region_warning():
    sc = simple_scenario([(1.0, 1.0)], obstacles=[rectangle(2.0, 2.0, 19.0, 19.0)])
    report = validate_scenario(sc, check_reachability=False)
    assert any(i.code == "obstacles-dominate-region" for i in report.warnings())


def test_reachable_device_not_flagged():
    sc = simple_scenario([(10.0, 10.0)], device_angle=2 * math.pi)
    assert unreachable_devices(sc) == []


def test_boxed_in_device_flagged():
    # Walls on all sides at a distance inside dmin=1... instead: surround the
    # device so every ring position is shadowed or inside a wall.
    walls = [
        rectangle(7.0, 7.0, 13.0, 9.5),
        rectangle(7.0, 10.5, 13.0, 13.0),
        rectangle(7.0, 9.5, 9.0, 10.5),
        rectangle(11.0, 9.5, 13.0, 10.5),
    ]
    sc = simple_scenario([(10.0, 10.0)], device_angle=2 * math.pi, dmin=4.0, dmax=6.0, obstacles=walls)
    flagged = unreachable_devices(sc)
    assert flagged == [0]
    report = validate_scenario(sc)
    assert any(i.code == "unreachable-device" for i in report.warnings())


def test_cone_into_wall_flagged():
    # Narrow receiver pointing straight into an adjacent wall.
    wall = rectangle(10.5, 5.0, 12.0, 15.0)
    dt = DeviceType("narrow", math.pi / 6)
    sc = simple_scenario([(10.0, 10.0)], obstacles=[wall], dmin=2.0, dmax=6.0)
    dev = Device((10.0, 10.0), 0.0, sc.devices[0].dtype, 0.1)
    sc = sc.with_devices([Device((10.0, 10.0), 0.0, DeviceType("dt", math.pi / 6), 0.1)])
    flagged = unreachable_devices(sc)
    assert flagged == [0]


def test_validation_report_format():
    sc = simple_scenario([(10.0, 10.0)], budget=0)
    report = validate_scenario(sc, check_reachability=False)
    text = report.format()
    assert "no-chargers" in text
