"""Tests for the Scenario container."""

import math

import numpy as np
import pytest

from repro.geometry import rectangle
from repro.model import Strategy

from conftest import simple_scenario


def test_scenario_validation():
    with pytest.raises(ValueError):
        simple_scenario([(1.0, 1.0)], bounds=(0, 0, 0, 5))


def test_budget_for_unknown_type_rejected():
    sc = simple_scenario([(1.0, 1.0)])
    with pytest.raises(ValueError):
        sc.with_budgets({"nope": 1})


def test_counts():
    sc = simple_scenario([(1.0, 1.0), (2.0, 2.0)], budget=3)
    assert sc.num_devices == 2
    assert sc.num_chargers == 3


def test_charger_type_lookup():
    sc = simple_scenario([(1.0, 1.0)])
    assert sc.charger_type("ct").name == "ct"
    with pytest.raises(KeyError):
        sc.charger_type("missing")


def test_is_free_respects_obstacles_and_bounds():
    sc = simple_scenario([(1.0, 1.0)], obstacles=[rectangle(4, 4, 6, 6)])
    assert sc.is_free((2.0, 2.0))
    assert not sc.is_free((5.0, 5.0))
    assert not sc.is_free((-1.0, 2.0))


def test_random_free_point_avoids_obstacles(rng):
    sc = simple_scenario([(1.0, 1.0)], obstacles=[rectangle(4, 4, 16, 16)])
    for _ in range(50):
        p = sc.random_free_point(rng)
        assert sc.is_free(p)


def test_utility_of_placement():
    sc = simple_scenario([(3.0, 1.0)], threshold=100.0 / 64.0)  # exactly P(d=3)
    ct = sc.charger_types[0]
    s = Strategy((0.0, 1.0), 0.0, ct)
    assert math.isclose(sc.utility_of([s]), 1.0, rel_tol=1e-9)
    assert sc.utility_of([]) == 0.0


def test_with_budgets_resets_cache():
    sc = simple_scenario([(3.0, 1.0)])
    ev1 = sc.evaluator()
    sc2 = sc.with_budgets({"ct": 5})
    assert sc2.num_chargers == 5
    assert sc2.evaluator() is not ev1
    assert sc.evaluator() is ev1  # original untouched


def test_scale_device_angles():
    sc = simple_scenario([(3.0, 1.0)], device_angle=math.pi / 2.0)
    sc2 = sc.scale_device_angles(2.0)
    assert math.isclose(sc2.devices[0].dtype.receiving_angle, math.pi)
    # All devices of a type share the scaled instance.
    sc3 = simple_scenario([(1.0, 1.0), (2.0, 2.0)], device_angle=math.pi / 2.0).scale_device_angles(1.5)
    assert sc3.devices[0].dtype is sc3.devices[1].dtype


def test_scale_charger_types():
    sc = simple_scenario([(3.0, 1.0)], dmin=1.0, dmax=6.0)
    sc2 = sc.scale_charger_types(dmax=2.0, dmin=0.5)
    ct = sc2.charger_types[0]
    assert math.isclose(ct.dmax, 12.0)
    assert math.isclose(ct.dmin, 0.5)


def test_with_thresholds_by_type():
    sc = simple_scenario([(3.0, 1.0)], threshold=0.05)
    sc2 = sc.with_thresholds({"dt": 0.09})
    assert sc2.devices[0].threshold == 0.09
    sc3 = sc.with_thresholds({"other": 0.09})
    assert sc3.devices[0].threshold == 0.05  # unknown type names leave devices alone


def test_evaluator_cached():
    sc = simple_scenario([(3.0, 1.0)])
    assert sc.evaluator() is sc.evaluator()
