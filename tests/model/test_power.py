"""Tests for the practical charging model (Eq. 1/2)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import point_segment_distance, rectangle
from repro.model import (
    ChargerType,
    Device,
    DeviceType,
    PowerEvaluator,
    Strategy,
    pair_power,
)

from conftest import make_table


CT = ChargerType("ct", math.pi / 2.0, 1.0, 6.0)
DT_OMNI = DeviceType("dt", 2.0 * math.pi)
DT_NARROW = DeviceType("dtn", math.pi / 2.0)
TABLE = make_table([CT], [DT_OMNI, DT_NARROW], a=100.0, b=5.0)


def dev(pos, orient=0.0, dtype=DT_OMNI, th=0.5):
    return Device(pos, orient, dtype, th)


def strat(pos, orient=0.0):
    return Strategy(pos, orient, CT)


def test_power_magnitude_follows_law():
    # Device 3m east, charger facing east, omnidirectional receiver.
    p = pair_power(strat((0, 0), 0.0), dev((3.0, 0.0)), [], TABLE)
    assert math.isclose(p, 100.0 / (3.0 + 5.0) ** 2, rel_tol=1e-12)


def test_power_zero_outside_ring():
    assert pair_power(strat((0, 0)), dev((0.5, 0.0)), [], TABLE) == 0.0  # too close
    assert pair_power(strat((0, 0)), dev((7.0, 0.0)), [], TABLE) == 0.0  # too far
    assert pair_power(strat((0, 0)), dev((1.0, 0.0)), [], TABLE) > 0.0  # dmin boundary
    assert pair_power(strat((0, 0)), dev((6.0, 0.0)), [], TABLE) > 0.0  # dmax boundary


def test_power_zero_outside_charger_cone():
    # Charger faces east with aperture pi/2: a device due north is outside.
    assert pair_power(strat((0, 0), 0.0), dev((0.0, 3.0)), [], TABLE) == 0.0
    # Device at 45 degrees sits exactly on the cone boundary: covered.
    d = dev((2.0, 2.0))
    assert pair_power(strat((0, 0), 0.0), d, [], TABLE) > 0.0


def test_power_zero_outside_device_cone():
    # Narrow receiver facing east; charger to its west is outside its cone.
    d = dev((3.0, 0.0), orient=0.0, dtype=DT_NARROW)
    assert pair_power(strat((0, 0), 0.0), d, [], TABLE) == 0.0
    # Receiver facing the charger (west): covered.
    d2 = dev((3.0, 0.0), orient=math.pi, dtype=DT_NARROW)
    assert pair_power(strat((0, 0), 0.0), d2, [], TABLE) > 0.0


def test_power_blocked_by_obstacle():
    obs = [rectangle(1.0, -0.5, 2.0, 0.5)]
    assert pair_power(strat((0, 0), 0.0), dev((3.0, 0.0)), obs, TABLE) == 0.0
    # Same geometry, obstacle shifted away: power restored.
    obs2 = [rectangle(1.0, 2.0, 2.0, 3.0)]
    assert pair_power(strat((0, 0), 0.0), dev((3.0, 0.0)), obs2, TABLE) > 0.0


def test_colocated_charger_device_gets_zero():
    assert pair_power(strat((0, 0)), dev((0.0, 0.0)), [], TABLE) == 0.0


@settings(max_examples=100)
@given(
    st.floats(min_value=-8, max_value=8),
    st.floats(min_value=-8, max_value=8),
    st.floats(min_value=0, max_value=2 * math.pi),
    st.floats(min_value=-8, max_value=8),
    st.floats(min_value=-8, max_value=8),
    st.floats(min_value=0, max_value=2 * math.pi),
)
def test_evaluator_matches_scalar_reference(sx, sy, so, dx, dy, do):
    devices = [dev((dx, dy), do, DT_NARROW), dev((dx * 0.5, dy * 0.5), do, DT_OMNI)]
    obstacles = [rectangle(2.0, 2.0, 3.0, 3.0)]
    # Skip degenerate boundary-grazing layouts (vectorized LOS uses parity):
    # endpoints on/near the obstacle, and sight segments passing through (or
    # within tolerance of) an obstacle vertex — e.g. the exact diagonal of a
    # square — where scalar subdivision and vectorized parity may disagree on
    # a measure-zero set.
    for h in obstacles:
        if any(h.distance_to_point(p) < 1e-6 for p in [(sx, sy), (dx, dy), (dx * 0.5, dy * 0.5)]):
            return
        for end in [(dx, dy), (dx * 0.5, dy * 0.5)]:
            if any(point_segment_distance(v, (sx, sy), end) < 1e-6 for v in h.vertices):
                return
    ev = PowerEvaluator(devices, obstacles, TABLE, [CT])
    s = strat((sx, sy), so)
    vec = ev.power_vector(s)
    for j, d in enumerate(devices):
        ref = pair_power(s, d, obstacles, TABLE)
        assert math.isclose(vec[j], ref, rel_tol=1e-9, abs_tol=1e-12)


def test_power_additivity():
    devices = [dev((3.0, 0.0)), dev((-3.0, 0.0))]
    ev = PowerEvaluator(devices, [], TABLE, [CT])
    s1 = strat((0.0, 0.0), 0.0)
    s2 = strat((0.0, 0.0), math.pi)
    total = ev.total_power([s1, s2])
    assert np.allclose(total, ev.power_vector(s1) + ev.power_vector(s2))
    assert total[0] > 0 and total[1] > 0


def test_power_matrix_shape_and_rows():
    devices = [dev((3.0, 0.0)), dev((0.0, 3.0))]
    ev = PowerEvaluator(devices, [], TABLE, [CT])
    strategies = [strat((0, 0), 0.0), strat((0, 0), math.pi / 2)]
    P = ev.power_matrix(strategies)
    assert P.shape == (2, 2)
    assert np.allclose(P[0], ev.power_vector(strategies[0]))


def test_coverable_separates_orientation_independent_conditions():
    devices = [
        dev((3.0, 0.0)),               # in ring
        dev((10.0, 0.0)),              # too far
        dev((3.0, 0.1), orient=0.0, dtype=DT_NARROW),  # cone facing away
    ]
    ev = PowerEvaluator(devices, [], TABLE, [CT])
    mask, dists, bearings = ev.coverable(CT, (0.0, 0.0))
    assert mask.tolist() == [True, False, False]
    assert math.isclose(dists[0], 3.0)
    assert abs(bearings[0]) < 1e-9


def test_los_cache_consistency():
    obs = [rectangle(1.0, -0.5, 2.0, 0.5)]
    devices = [dev((3.0, 0.0)), dev((0.0, 3.0))]
    ev = PowerEvaluator(devices, obs, TABLE, [CT])
    m1 = ev.los_mask((0.0, 0.0))
    m2 = ev.los_mask((0.0, 0.0))  # cached path
    assert np.array_equal(m1, m2)
    assert m1.tolist() == [False, True]
    ev.clear_cache()
    assert np.array_equal(ev.los_mask((0.0, 0.0)), m1)


def test_coefficients_for_unregistered_type():
    ev = PowerEvaluator([dev((3.0, 0.0))], [], TABLE, [])
    a, b = ev.coefficients(CT)
    assert a[0] == 100.0 and b[0] == 5.0


def test_coverable_many_matches_serial():
    obs = [rectangle(1.0, -0.5, 2.0, 0.5)]
    devices = [
        dev((3.0, 0.0)),
        dev((0.0, 3.0), orient=math.pi / 4.0, dtype=DT_NARROW),
        dev((-4.0, -1.0), orient=math.pi),
    ]
    ev = PowerEvaluator(devices, obs, TABLE, [CT])
    rng = np.random.default_rng(3)
    positions = rng.uniform(-6.0, 6.0, size=(29, 2))
    mask_b, dists_b, bearings_b = ev.coverable_many(CT, positions)
    assert mask_b.shape == dists_b.shape == bearings_b.shape == (29, 3)
    ev.clear_cache()
    for i, p in enumerate(positions):
        mask, dists, bearings = ev.coverable(CT, p)
        assert np.array_equal(mask_b[i], mask)
        assert np.allclose(dists_b[i], dists)
        assert np.allclose(bearings_b[i], bearings)


def test_los_mask_many_populates_cache():
    obs = [rectangle(1.0, -0.5, 2.0, 0.5)]
    ev = PowerEvaluator([dev((3.0, 0.0)), dev((0.0, 3.0))], obs, TABLE, [CT])
    positions = np.array([[0.0, 0.0], [0.0, -1.0]])
    batch = ev.los_mask_many(positions)
    # Cached per-position rows agree with the batched result.
    for i, p in enumerate(positions):
        assert np.array_equal(batch[i], ev.los_mask(p))
    assert batch[0].tolist() == [False, True]
