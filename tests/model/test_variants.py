"""Tests for the charging-model variants (§2 taxonomy)."""

import math

import numpy as np

from repro.geometry import rectangle
from repro.model import (
    Strategy,
    classical_sector_variant,
    obstacle_free_variant,
    omnidirectional_variant,
)

from conftest import simple_scenario


def base():
    return simple_scenario(
        [(10.0, 10.0), (4.0, 4.0)],
        device_orientations=[0.0, math.pi],
        device_angle=math.pi / 2,
        charger_angle=math.pi / 2,
        dmin=1.0,
        dmax=6.0,
        obstacles=[rectangle(6.0, 6.0, 8.0, 8.0)],
    )


def test_classical_sector_removes_keepout():
    sc = classical_sector_variant(base())
    ct = sc.charger_types[0]
    assert ct.dmin == 0.0
    assert ct.dmax == 6.0
    assert ct.charging_angle == math.pi / 2  # aperture untouched
    # A charger right next to the device now delivers power.
    s = Strategy((10.5, 10.0), math.pi, ct)
    dev_power = sc.evaluator().power_vector(s)
    assert dev_power[0] > 0.0


def test_classical_sector_keepout_device_dark_in_practical_model():
    practical = base()
    ct = practical.charger_types[0]
    s = Strategy((10.5, 10.0), math.pi, ct)
    assert practical.evaluator().power_vector(s)[0] == 0.0  # inside dmin


def test_omnidirectional_all_angles_full():
    sc = omnidirectional_variant(base())
    assert all(math.isclose(ct.charging_angle, 2 * math.pi) for ct in sc.charger_types)
    assert all(math.isclose(d.dtype.receiving_angle, 2 * math.pi) for d in sc.devices)
    # Radial extents and obstacles kept.
    assert sc.charger_types[0].dmin == 1.0
    assert len(sc.obstacles) == 1


def test_omnidirectional_coverage_is_superset():
    practical = base()
    omni = omnidirectional_variant(practical)
    ev_p = practical.evaluator()
    ev_o = omni.evaluator()
    rng = np.random.default_rng(0)
    for _ in range(40):
        pos = tuple(rng.uniform(0, 20, 2))
        theta = rng.uniform(0, 2 * math.pi)
        s_p = Strategy(pos, theta, practical.charger_types[0])
        s_o = Strategy(pos, theta, omni.charger_types[0])
        covered_p = ev_p.power_vector(s_p) > 0
        covered_o = ev_o.power_vector(s_o) > 0
        assert np.all(covered_o | ~covered_p)  # practical-covered => omni-covered


def test_obstacle_free_variant():
    sc = obstacle_free_variant(base())
    assert sc.obstacles == ()
    ct = sc.charger_types[0]
    # A previously shadowed configuration now works: device 1 at (4,4)
    # faces west; place a charger west of it, shadow removed.
    s = Strategy((1.0, 4.0), 0.0, ct)
    assert sc.evaluator().power_vector(s)[1] > 0.0


def test_variants_leave_original_untouched():
    sc = base()
    _ = omnidirectional_variant(sc)
    _ = classical_sector_variant(sc)
    _ = obstacle_free_variant(sc)
    assert sc.charger_types[0].dmin == 1.0
    assert len(sc.obstacles) == 1
    assert math.isclose(sc.devices[0].dtype.receiving_angle, math.pi / 2)
