"""Tests for Device / Strategy entities."""

import math

import numpy as np
import pytest

from repro.model import ChargerType, Device, DeviceType, Strategy


CT = ChargerType("ct", math.pi / 2.0, 1.0, 6.0)
DT = DeviceType("dt", math.pi)


def test_device_normalizes_orientation():
    d = Device((1.0, 2.0), -math.pi / 2.0, DT, 0.1)
    assert math.isclose(d.orientation, 3.0 * math.pi / 2.0)
    assert d.position == (1.0, 2.0)


def test_device_requires_positive_threshold():
    with pytest.raises(ValueError):
        Device((0, 0), 0.0, DT, 0.0)


def test_device_receiving_ring_uses_charger_radii():
    d = Device((0.0, 0.0), 0.0, DT, 0.1)
    ring = d.receiving_ring(CT)
    assert ring.rmin == CT.dmin and ring.rmax == CT.dmax
    assert math.isclose(ring.half_angle, DT.half_angle)
    # Geometric symmetry: a charger inside the receiving ring sees the device
    # within its own ring distance.
    assert ring.contains((3.0, 0.0))
    assert not ring.contains((0.5, 0.0))


def test_strategy_charging_ring():
    s = Strategy((1.0, 1.0), math.pi / 2.0, CT)
    ring = s.charging_ring()
    assert ring.contains((1.0, 4.0))  # straight ahead (north)
    assert not ring.contains((1.0, -4.0))  # behind


def test_strategy_direction():
    s = Strategy((0.0, 0.0), math.pi, CT)
    assert np.allclose(s.direction(), [-1.0, 0.0], atol=1e-12)


def test_entities_hashable_and_frozen():
    s1 = Strategy((1.0, 1.0), 0.0, CT)
    s2 = Strategy((1.0, 1.0), 0.0, CT)
    assert s1 == s2 and hash(s1) == hash(s2)
    with pytest.raises(Exception):
        s1.orientation = 1.0  # type: ignore[misc]
