"""Tests for charger/device type descriptions."""

import math

import pytest

from repro.model import ChargerType, CoefficientTable, DeviceType, PairCoefficients


def test_charger_type_validation():
    with pytest.raises(ValueError):
        ChargerType("x", 0.0, 1.0, 2.0)
    with pytest.raises(ValueError):
        ChargerType("x", math.pi, 3.0, 2.0)
    with pytest.raises(ValueError):
        ChargerType("x", math.pi, -1.0, 2.0)
    ct = ChargerType("x", math.pi / 2, 1.0, 5.0)
    assert math.isclose(ct.half_angle, math.pi / 4)


def test_charger_type_scaled():
    ct = ChargerType("x", math.pi / 2, 2.0, 8.0)
    s = ct.scaled(angle=2.0, dmin=0.5, dmax=1.5)
    assert math.isclose(s.charging_angle, math.pi)
    assert math.isclose(s.dmin, 1.0)
    assert math.isclose(s.dmax, 12.0)
    assert s.name == ct.name


def test_charger_type_scaled_clamps():
    ct = ChargerType("x", math.pi, 2.0, 8.0)
    s = ct.scaled(angle=4.0)
    assert s.charging_angle <= 2.0 * math.pi + 1e-12
    # dmin never crosses dmax
    s2 = ct.scaled(dmin=10.0)
    assert s2.dmin < s2.dmax


def test_device_type_validation_and_scaled():
    with pytest.raises(ValueError):
        DeviceType("d", 0.0)
    dt = DeviceType("d", math.pi / 2)
    assert math.isclose(dt.scaled(angle=2.0).receiving_angle, math.pi)
    assert dt.scaled(angle=100.0).receiving_angle <= 2.0 * math.pi + 1e-12


def test_pair_coefficients():
    with pytest.raises(ValueError):
        PairCoefficients(0.0, 1.0)
    with pytest.raises(ValueError):
        PairCoefficients(1.0, -1.0)
    c = PairCoefficients(100.0, 5.0)
    assert math.isclose(c.power_at(5.0), 1.0)


def test_coefficient_table_lookup():
    ct = ChargerType("c1", math.pi / 2, 1.0, 5.0)
    dt = DeviceType("d1", math.pi)
    table = CoefficientTable({("c1", "d1"): PairCoefficients(10.0, 1.0)})
    assert table.get(ct, dt).a == 10.0
    assert table.get("c1", "d1").a == 10.0
    with pytest.raises(KeyError):
        table.get("c1", "missing")


def test_coefficient_table_with_entry_is_functional():
    table = CoefficientTable({})
    t2 = table.with_entry("c1", "d1", PairCoefficients(3.0, 1.0))
    assert t2.get("c1", "d1").a == 3.0
    with pytest.raises(KeyError):
        table.get("c1", "d1")  # original unchanged
