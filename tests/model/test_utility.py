"""Tests for the charging utility model (Eq. 3/4)."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.model import total_utility, utilities, utility


def test_utility_linear_below_threshold():
    assert math.isclose(utility(0.025, 0.05), 0.5)
    assert utility(0.0, 0.05) == 0.0


def test_utility_saturates():
    assert utility(0.05, 0.05) == 1.0
    assert utility(10.0, 0.05) == 1.0


def test_utility_rejects_bad_threshold():
    with pytest.raises(ValueError):
        utility(1.0, 0.0)


def test_utility_negative_power_clamped():
    assert utility(-1.0, 0.05) == 0.0


@given(st.floats(min_value=0, max_value=10), st.floats(min_value=1e-3, max_value=10))
def test_utility_range_and_monotone(p, th):
    u = utility(p, th)
    assert 0.0 <= u <= 1.0
    assert utility(p + 0.1, th) >= u  # non-decreasing


@given(
    st.floats(min_value=0, max_value=1),
    st.floats(min_value=0, max_value=1),
    st.floats(min_value=0, max_value=1),
    st.floats(min_value=0.01, max_value=1),
)
def test_utility_concavity(x1, x2, dx, th):
    # [U(x1+dx) - U(x1)] >= [U(x2+dx) - U(x2)] for x1 <= x2 (Eq. 12).
    lo, hi = min(x1, x2), max(x1, x2)
    g1 = utility(lo + dx, th) - utility(lo, th)
    g2 = utility(hi + dx, th) - utility(hi, th)
    assert g1 >= g2 - 1e-12


def test_utilities_vectorized_matches_scalar():
    p = np.array([0.0, 0.025, 0.05, 1.0])
    th = np.array([0.05, 0.05, 0.05, 0.05])
    u = utilities(p, th)
    assert np.allclose(u, [0.0, 0.5, 1.0, 1.0])


def test_total_utility_is_mean():
    p = np.array([0.05, 0.0])
    th = np.array([0.05, 0.05])
    assert math.isclose(total_utility(p, th), 0.5)


def test_total_utility_empty():
    assert total_utility(np.zeros(0), np.zeros(0)) == 0.0


def test_heterogeneous_thresholds():
    p = np.array([0.03, 0.03])
    th = np.array([0.03, 0.06])
    assert np.allclose(utilities(p, th), [1.0, 0.5])
