"""Cross-module round trips on non-trivial instances."""

import numpy as np

from repro.experiments import cluttered_scenario, field_scenario, render_svg
from repro.io import scenario_from_dict, scenario_to_dict


def test_io_round_trip_cluttered_nonconvex(rng):
    """JSON round trip preserves star-shaped (non-convex) obstacles and the
    utility of an arbitrary placement."""
    sc = cluttered_scenario(rng, num_obstacles=3, clusters=2, per_cluster=3)
    sc2, _ = scenario_from_dict(scenario_to_dict(sc))
    assert len(sc2.obstacles) == 3
    for a, b in zip(sc.obstacles, sc2.obstacles):
        assert np.allclose(a.vertices, b.vertices)
        assert np.isclose(a.area, b.area)
    from repro.model import Strategy

    ct = sc.charger_types[0]
    strategies = [Strategy((20.0, 20.0), 1.0, ct)]
    assert np.isclose(sc.utility_of(strategies), sc2.utility_of(strategies))


def test_io_round_trip_field_scenario():
    sc = field_scenario()
    sc2, _ = scenario_from_dict(scenario_to_dict(sc))
    assert sc2.num_devices == 10
    assert sc2.budgets == {"tb-1w": 1, "tb-2w": 2, "tx91501-3w": 3}
    # Heterogeneous coefficient table intact.
    assert sc2.table.get("tx91501-3w", "sensor-b").a == sc.table.get("tx91501-3w", "sensor-b").a


def test_svg_renders_field_scenario_with_receiving_areas():
    svg = render_svg(field_scenario(), show_receiving_areas=True)
    assert svg.count("<circle") == 10
    assert svg.count("<polygon") == 3


def test_generators_compose_with_validation(rng):
    from repro.model import validate_scenario

    sc = cluttered_scenario(rng, num_obstacles=2, clusters=2, per_cluster=3)
    report = validate_scenario(sc, check_reachability=False)
    assert report.ok


def test_candidate_positions_permutation_invariant(rng):
    """Device ordering must not change the candidate position set (the
    pairwise construction is symmetric and the union covers all tasks)."""
    from conftest import simple_scenario
    from repro.core import CandidateGenerator

    pts = [(4.0, 4.0), (10.0, 12.0), (15.0, 6.0)]
    sc1 = simple_scenario(pts)
    sc2 = simple_scenario(list(reversed(pts)))
    ct = sc1.charger_types[0]
    a = {tuple(np.round(p, 6)) for p in CandidateGenerator(sc1).positions(ct)}
    b = {tuple(np.round(p, 6)) for p in CandidateGenerator(sc2).positions(sc2.charger_types[0])}
    assert a == b
