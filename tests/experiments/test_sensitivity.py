"""Tests for the placement robustness analysis."""

import math

import numpy as np
import pytest

from repro.experiments import perturb_strategies, placement_robustness
from repro.geometry import rectangle
from repro.model import Strategy

from conftest import simple_scenario


def scenario():
    return simple_scenario(
        [(6.0, 10.0), (14.0, 10.0)], obstacles=[rectangle(9.0, 4.0, 11.0, 8.0)], budget=2
    )


def placement(sc):
    ct = sc.charger_types[0]
    return [Strategy((3.0, 10.0), 0.0, ct), Strategy((17.0, 10.0), math.pi, ct)]


def test_perturb_preserves_structure(rng):
    sc = scenario()
    strategies = placement(sc)
    perturbed = perturb_strategies(sc, strategies, rng, position_sigma=0.5)
    assert len(perturbed) == len(strategies)
    for orig, new in zip(strategies, perturbed):
        assert new.ctype is orig.ctype
        assert sc.is_free(new.position)
        # Position moved but not wildly (0.5 sigma, 2 dims).
        assert math.dist(orig.position, new.position) < 5.0


def test_perturb_zero_sigma_identity(rng):
    sc = scenario()
    strategies = placement(sc)
    perturbed = perturb_strategies(sc, strategies, rng, position_sigma=0.0, angle_sigma=0.0)
    for orig, new in zip(strategies, perturbed):
        assert np.allclose(orig.position, new.position)
        assert math.isclose(orig.orientation, new.orientation)


def test_robustness_curve_shapes(rng):
    sc = scenario()
    strategies = placement(sc)
    curve = placement_robustness(sc, strategies, rng, sigmas=(0.1, 1.0), trials=8)
    assert len(curve.mean_utility) == 2
    assert all(0.0 <= u <= 1.0 for u in curve.mean_utility)
    assert all(w <= m + 1e-12 for w, m in zip(curve.worst_utility, curve.mean_utility))
    assert curve.nominal_utility == sc.utility_of(strategies)
    assert "retention" in dir(curve)
    assert "sigma" in curve.format()


def test_small_noise_small_damage(rng):
    """Tiny perturbations barely move the utility; huge ones hurt more."""
    sc = scenario()
    strategies = placement(sc)
    curve = placement_robustness(
        sc, strategies, rng, sigmas=(0.05, 4.0), trials=15
    )
    assert curve.mean_utility[0] >= curve.mean_utility[1] - 0.05
    assert curve.retention()[0] > 0.7


def test_robustness_validation(rng):
    sc = scenario()
    with pytest.raises(ValueError):
        placement_robustness(sc, placement(sc), rng, trials=0)


def test_empty_placement(rng):
    sc = scenario()
    curve = placement_robustness(sc, [], rng, sigmas=(0.5,), trials=3)
    assert curve.nominal_utility == 0.0
    assert curve.retention() == [0.0]


def test_threshold_sensitivity_single_extraction():
    from repro.experiments import threshold_sensitivity

    sc = simple_scenario([(4.0, 4.0), (9.0, 7.0), (14.0, 12.0)], budget=2)
    result = threshold_sensitivity(sc, scales=(0.5, 1.0, 1.5))
    assert result.scales == [0.5, 1.0, 1.5]
    assert len(result.utility) == len(result.approx_utility) == len(result.selected) == 3
    # Thresholds never enter extraction: the whole sweep pays it once.
    assert result.extractions == 1
    assert "extractions paid: 1 / 3 solves" in result.format()


def test_threshold_sensitivity_matches_cold_solves():
    import json
    from dataclasses import replace as dc_replace

    from repro.core import solve_hipo
    from repro.experiments import threshold_sensitivity
    from repro.io import strategies_to_list

    sc = simple_scenario([(4.0, 4.0), (9.0, 7.0), (14.0, 12.0)], budget=2)
    scales = (0.5, 1.5)
    result = threshold_sensitivity(sc, scales=scales)
    for i, scale in enumerate(scales):
        devices = tuple(dc_replace(d, threshold=d.threshold * scale) for d in sc.devices)
        cold = solve_hipo(sc.with_devices(devices))
        assert result.utility[i] == cold.utility
        assert result.approx_utility[i] == cold.approx_utility
        assert result.selected[i] == len(cold.strategies)
