"""Tests for the one-shot report generator."""

import pytest

from repro.experiments import generate_report


def test_generate_report_fig10_only(tmp_path):
    path = generate_report(
        str(tmp_path / "out"),
        include=("fig10",),
        algorithms=("RPAD", "RPAR"),
        device_multiple=1,
        seed=3,
    )
    assert path.exists()
    text = path.read_text()
    assert "# HIPO reproduction report" in text
    assert "Fig. 10" in text
    assert (tmp_path / "out" / "fig10_best_placement.svg").exists()


def test_generate_report_fig11a_csv(tmp_path):
    path = generate_report(
        str(tmp_path / "out"),
        include=("fig11a",),
        algorithms=("RPAD", "RPAR"),
        multiples=(1,),
        repeats=1,
    )
    text = path.read_text()
    assert "Fig. 11(a)" in text
    assert (tmp_path / "out" / "fig11a.csv").exists()
    # No HIPO series -> no improvement block.
    assert "mean improvement" not in text


def test_generate_report_fig15_table(tmp_path):
    path = generate_report(
        str(tmp_path / "out"),
        include=("fig15",),
        algorithms=("RPAR",),
        device_multiple=1,
        seed=2,
    )
    text = path.read_text()
    assert "| algorithm |" in text
    assert "RPAR" in text


def test_generate_report_rejects_unknown_section(tmp_path):
    with pytest.raises(ValueError):
        generate_report(str(tmp_path), include=("nope",))
