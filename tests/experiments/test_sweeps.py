"""Tests for the sweep engine."""

import numpy as np
import pytest

from repro.experiments import run_sweep
from repro.experiments.sweeps import bench_repeats as _bench_repeats

from conftest import simple_scenario


def tiny_factory(x, rng):
    # x scales the budget; topology comes from the rng.
    pts = rng.uniform(2.0, 18.0, size=(3, 2))
    return simple_scenario([tuple(p) for p in pts], budget=int(x))


def test_run_sweep_shapes():
    table = run_sweep([1, 2], tiny_factory, algorithms=["RPAR", "RPAD"], repeats=2, seed=1)
    assert table.x == [1, 2]
    assert set(table.series) == {"RPAR", "RPAD"}
    assert all(len(v) == 2 for v in table.series.values())
    assert all(0.0 <= u <= 1.0 for v in table.series.values() for u in v)


def test_run_sweep_reproducible():
    t1 = run_sweep([1], tiny_factory, algorithms=["RPAR"], repeats=2, seed=7)
    t2 = run_sweep([1], tiny_factory, algorithms=["RPAR"], repeats=2, seed=7)
    assert t1.series == t2.series


def test_run_sweep_seed_changes_results():
    t1 = run_sweep([1], tiny_factory, algorithms=["RPAR"], repeats=1, seed=7)
    t2 = run_sweep([1], tiny_factory, algorithms=["RPAR"], repeats=1, seed=8)
    assert t1.series != t2.series


def test_run_sweep_unknown_algorithm():
    with pytest.raises(KeyError):
        run_sweep([1], tiny_factory, algorithms=["NOPE"], repeats=1)


def test_run_sweep_includes_hipo():
    table = run_sweep([2], tiny_factory, algorithms=["HIPO", "RPAR"], repeats=1, seed=3)
    # HIPO (optimizing) should not lose to pure random placement here.
    assert table.series["HIPO"][0] >= table.series["RPAR"][0] - 1e-9


def test_bench_repeats_env(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_REPEATS", raising=False)
    assert _bench_repeats(4) == 4
    monkeypatch.setenv("REPRO_BENCH_REPEATS", "7")
    assert _bench_repeats(4) == 7
    monkeypatch.setenv("REPRO_BENCH_REPEATS", "junk")
    assert _bench_repeats(4) == 4
    monkeypatch.setenv("REPRO_BENCH_REPEATS", "0")
    assert _bench_repeats(4) == 1


def test_run_sweep_parallel_matches_serial():
    """workers > 1 gives bit-identical results (per-cell SeedSequences)."""
    from repro.experiments.figures import _charger_multiple_factory

    serial = run_sweep(
        [1], _charger_multiple_factory, algorithms=["RPAR", "RPAD"], repeats=2, seed=5
    )
    parallel = run_sweep(
        [1],
        _charger_multiple_factory,
        algorithms=["RPAR", "RPAD"],
        repeats=2,
        seed=5,
        workers=2,
    )
    assert serial.series == parallel.series
