"""Tests for the sweep engine."""

import numpy as np
import pytest

from repro.experiments import run_sweep
from repro.experiments.sweeps import bench_repeats as _bench_repeats

from conftest import simple_scenario


def tiny_factory(x, rng):
    # x scales the budget; topology comes from the rng.
    pts = rng.uniform(2.0, 18.0, size=(3, 2))
    return simple_scenario([tuple(p) for p in pts], budget=int(x))


def test_run_sweep_shapes():
    table = run_sweep([1, 2], tiny_factory, algorithms=["RPAR", "RPAD"], repeats=2, seed=1)
    assert table.x == [1, 2]
    assert set(table.series) == {"RPAR", "RPAD"}
    assert all(len(v) == 2 for v in table.series.values())
    assert all(0.0 <= u <= 1.0 for v in table.series.values() for u in v)


def test_run_sweep_reproducible():
    t1 = run_sweep([1], tiny_factory, algorithms=["RPAR"], repeats=2, seed=7)
    t2 = run_sweep([1], tiny_factory, algorithms=["RPAR"], repeats=2, seed=7)
    assert t1.series == t2.series


def test_run_sweep_seed_changes_results():
    t1 = run_sweep([1], tiny_factory, algorithms=["RPAR"], repeats=1, seed=7)
    t2 = run_sweep([1], tiny_factory, algorithms=["RPAR"], repeats=1, seed=8)
    assert t1.series != t2.series


def test_run_sweep_unknown_algorithm():
    with pytest.raises(KeyError):
        run_sweep([1], tiny_factory, algorithms=["NOPE"], repeats=1)


def test_run_sweep_includes_hipo():
    table = run_sweep([2], tiny_factory, algorithms=["HIPO", "RPAR"], repeats=1, seed=3)
    # HIPO (optimizing) should not lose to pure random placement here.
    assert table.series["HIPO"][0] >= table.series["RPAR"][0] - 1e-9


def test_bench_repeats_env(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_REPEATS", raising=False)
    assert _bench_repeats(4) == 4
    monkeypatch.setenv("REPRO_BENCH_REPEATS", "7")
    assert _bench_repeats(4) == 7
    monkeypatch.setenv("REPRO_BENCH_REPEATS", "junk")
    assert _bench_repeats(4) == 4
    monkeypatch.setenv("REPRO_BENCH_REPEATS", "0")
    assert _bench_repeats(4) == 1


def test_run_sweep_parallel_matches_serial():
    """workers > 1 gives bit-identical results (per-cell SeedSequences)."""
    from repro.experiments.figures import _charger_multiple_factory

    serial = run_sweep(
        [1], _charger_multiple_factory, algorithms=["RPAR", "RPAD"], repeats=2, seed=5
    )
    parallel = run_sweep(
        [1],
        _charger_multiple_factory,
        algorithms=["RPAR", "RPAD"],
        repeats=2,
        seed=5,
        workers=2,
    )
    assert serial.series == parallel.series


def test_run_sweep_reuse_candidates_identical():
    """Warm-started sweeps return the exact same table as cold ones."""
    kwargs = dict(algorithms=["HIPO", "RPAR"], repeats=2, seed=9)
    cold = run_sweep([1, 2], tiny_factory, **kwargs)
    warm = run_sweep([1, 2], tiny_factory, reuse_candidates=True, **kwargs)
    assert cold.series == warm.series


_seen_topologies = []


def _recording_factory(x, rng):
    """tiny_factory that records each cell's device layout (serial runs only)."""
    pts = rng.uniform(2.0, 18.0, size=(3, 2))
    _seen_topologies.append(pts)
    return simple_scenario([tuple(p) for p in pts], budget=int(x))


def test_run_sweep_common_topologies():
    """Per-repeat topology seeding is deterministic, differs from the
    per-cell default, and composes with candidate reuse unchanged."""
    kwargs = dict(algorithms=["HIPO"], repeats=1, seed=11)
    _seen_topologies.clear()
    run_sweep([1, 2], _recording_factory, **kwargs)
    a, b = _seen_topologies
    assert not np.array_equal(a, b)  # default: fresh topology per (x, repeat)

    _seen_topologies.clear()
    common = run_sweep([1, 2], _recording_factory, common_topologies=True, **kwargs)
    a, b = _seen_topologies
    assert np.array_equal(a, b)  # per-repeat seeding: every x, same layout
    again = run_sweep([1, 2], _recording_factory, common_topologies=True, **kwargs)
    assert common.series == again.series
    reused = run_sweep(
        [1, 2], _recording_factory, common_topologies=True, reuse_candidates=True, **kwargs
    )
    assert reused.series == common.series


def test_run_sweep_reuse_candidates_pooled_matches_serial():
    from repro.experiments.figures import _charger_multiple_factory

    kwargs = dict(
        algorithms=["HIPO"],
        repeats=1,
        seed=5,
        common_topologies=True,
        reuse_candidates=True,
    )
    serial = run_sweep([1], _charger_multiple_factory, **kwargs)
    pooled = run_sweep([1], _charger_multiple_factory, workers=2, **kwargs)
    assert serial.series == pooled.series


def test_budget_sweep_matches_cold_solves():
    import json

    from repro.core import CandidateSetCache, solve_hipo
    from repro.experiments import budget_sweep
    from repro.io import strategies_to_list

    sc = simple_scenario([(4.0, 4.0), (9.0, 7.0), (14.0, 12.0)], budget=1)
    points = [{"ct": 1}, {"ct": 2}, {"ct": 3}]
    cache = CandidateSetCache()
    warm = budget_sweep(sc, points, candidate_cache=cache)
    assert len(warm) == 3
    stats = cache.stats()
    assert stats["misses"] == 1 and stats["hits"] == len(points) - 1

    for sol, budgets in zip(warm, points):
        cold = solve_hipo(sc.with_budgets(budgets))
        assert json.dumps(
            {"u": sol.utility, "s": strategies_to_list(sol.strategies)}, sort_keys=True
        ) == json.dumps(
            {"u": cold.utility, "s": strategies_to_list(cold.strategies)}, sort_keys=True
        )
    # Utility is monotone in budget on one topology (more chargers never hurt).
    assert warm[0].utility <= warm[1].utility + 1e-12 <= warm[2].utility + 2e-12


# ----------------------------------------------- family-driven sweeps --


def test_run_family_sweep_basic():
    from repro.experiments.sweeps import run_family_sweep

    table = run_family_sweep(
        "sparse", "devices", xs=[4, 6], algorithms=("HIPO", "RPAD"), repeats=1, seed=5
    )
    assert table.x_label == "sparse.devices"
    assert table.x == [4, 6]
    assert set(table.series) == {"HIPO", "RPAD"}
    for values in table.series.values():
        assert all(0.0 <= v <= 1.0 for v in values)


def test_run_family_sweep_deterministic():
    from repro.experiments.sweeps import run_family_sweep

    a = run_family_sweep("sparse", "devices", xs=[4], algorithms=("HIPO",), repeats=2, seed=9)
    b = run_family_sweep("sparse", "devices", xs=[4], algorithms=("HIPO",), repeats=2, seed=9)
    assert a.series == b.series


def test_run_family_sweep_defaults_to_axis_choices():
    from repro.experiments.sweeps import run_family_sweep
    from repro.variation import get_family

    table = run_family_sweep("kcoverage", "k", algorithms=("RPAD",), repeats=1, seed=1)
    assert table.x == sorted(get_family("kcoverage").spec("k").choices)


def test_family_axis_factory_is_picklable():
    import pickle

    from repro.experiments.sweeps import FamilyAxisFactory

    factory = FamilyAxisFactory("sparse", "devices", {"with_obstacle": 0})
    clone = pickle.loads(pickle.dumps(factory))
    rng_a = np.random.default_rng(3)
    rng_b = np.random.default_rng(3)
    sa = factory(4, rng_a)
    sb = clone(4, rng_b)
    assert len(sa.devices) == len(sb.devices) == 4
    assert [d.position for d in sa.devices] == [d.position for d in sb.devices]


def test_run_family_sweep_unknown_axis():
    from repro.experiments.sweeps import run_family_sweep

    with pytest.raises(KeyError, match="no parameter"):
        run_family_sweep("sparse", "bogus", algorithms=("RPAD",), repeats=1)
