"""Tests for the §7 field testbed scenario."""

import math

import numpy as np
import pytest

from repro.experiments import field_scenario
from repro.experiments.field import (
    FIELD_BOUNDS,
    FIELD_SENSOR_STRATEGIES,
    field_charger_types,
    field_coefficients,
    field_device_types,
    field_obstacles,
)


def test_field_scenario_structure():
    sc = field_scenario()
    assert sc.bounds == FIELD_BOUNDS
    assert sc.num_devices == 10
    assert sc.num_chargers == 6  # 1 + 2 + 3
    assert len(sc.obstacles) == 3
    assert {ct.name for ct in sc.charger_types} == {"tb-1w", "tb-2w", "tx91501-3w"}


def test_sensor_layout_matches_paper():
    sc = field_scenario()
    for dev, (pos, deg) in zip(sc.devices, FIELD_SENSOR_STRATEGIES):
        assert dev.position == pos
        assert math.isclose(dev.orientation, math.radians(deg) % (2 * math.pi), abs_tol=1e-12)
    # Five nodes of each type.
    names = [d.dtype.name for d in sc.devices]
    assert names[:5] == ["sensor-a"] * 5 and names[5:] == ["sensor-b"] * 5


def test_tx91501_keepout_is_17cm():
    tx = next(ct for ct in field_charger_types() if ct.name == "tx91501-3w")
    assert tx.dmin == 17.0  # the paper's field measurement


def test_power_scales_with_wattage():
    table = field_coefficients()
    a1 = table.get("tb-1w", "sensor-a").a
    a2 = table.get("tb-2w", "sensor-a").a
    a3 = table.get("tx91501-3w", "sensor-a").a
    assert math.isclose(a2 / a1, 2.0)
    assert math.isclose(a3 / a1, 3.0)


def test_obstacles_inside_arena():
    for h in field_obstacles():
        xmin, ymin, xmax, ymax = h.bbox
        assert 0.0 <= xmin and xmax <= 120.0 and 0.0 <= ymin and ymax <= 120.0


def test_sensors_not_inside_obstacles():
    sc = field_scenario()
    for d in sc.devices:
        assert not any(h.contains(d.position) for h in sc.obstacles)


def test_received_powers_in_fig26_range():
    """A charger one-third across the arena delivers milliwatt-scale power
    (the Fig. 26 axis runs 0–40 mW)."""
    sc = field_scenario()
    ev = sc.evaluator()
    from repro.model import Strategy

    tx = sc.charger_type("tx91501-3w")
    s = Strategy((90.0, 20.0), math.pi, tx)  # pointing west toward sensors
    p = ev.power_vector(s)
    assert p.max() <= 60.0
    # Some sensor should be reachable from a reasonable position.
    found = False
    for x in range(10, 120, 20):
        for y in range(10, 120, 20):
            for theta in np.linspace(0, 2 * math.pi, 8, endpoint=False):
                if sc.is_free((float(x), float(y))):
                    v = ev.power_vector(Strategy((float(x), float(y)), float(theta), tx))
                    if v.max() > 0:
                        found = True
    assert found


def test_threshold_override():
    sc = field_scenario(threshold_mw=30.0)
    assert all(d.threshold == 30.0 for d in sc.devices)
