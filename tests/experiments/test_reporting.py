"""Tests for the reporting helpers."""

import numpy as np
import pytest

from repro.experiments import SeriesTable, cdf_points, format_percent


def test_series_table_add_and_format():
    t = SeriesTable("x", [1, 2, 3])
    t.add("a", [0.1, 0.2, 0.3])
    t.add("b", [0.3, 0.2, 0.1])
    out = t.format()
    lines = out.strip().splitlines()
    assert lines[0].startswith("x")
    assert "a" in lines[0] and "b" in lines[0]
    assert len(lines) == 4
    assert "0.1000" in lines[1]


def test_series_table_length_mismatch():
    t = SeriesTable("x", [1, 2])
    with pytest.raises(ValueError):
        t.add("a", [1.0])


def test_series_table_csv(tmp_path):
    t = SeriesTable("x", [1, 2])
    t.add("a", [0.5, 0.6])
    path = tmp_path / "out.csv"
    t.to_csv(str(path))
    content = path.read_text().strip().splitlines()
    assert content[0] == "x,a"
    assert content[1] == "1,0.5"


def test_improvement_over():
    t = SeriesTable("x", [1, 2])
    t.add("HIPO", [0.8, 0.6])
    t.add("base", [0.4, 0.3])
    imp = t.improvement_over("HIPO")
    assert np.isclose(imp["base"], 100.0)
    assert "HIPO" not in imp


def test_improvement_over_skips_zero_points():
    t = SeriesTable("x", [1, 2])
    t.add("HIPO", [0.8, 0.6])
    t.add("zero", [0.0, 0.3])
    imp = t.improvement_over("HIPO")
    assert np.isclose(imp["zero"], 100.0)  # only the second point counts
    t2 = SeriesTable("x", [1])
    t2.add("HIPO", [0.8])
    t2.add("allzero", [0.0])
    assert t2.improvement_over("HIPO")["allzero"] == float("inf")


def test_cdf_points():
    v, f = cdf_points([0.3, 0.1, 0.2])
    assert np.allclose(v, [0.1, 0.2, 0.3])
    assert np.allclose(f, [1 / 3, 2 / 3, 1.0])
    v0, f0 = cdf_points([])
    assert v0.size == 0 and f0.size == 0


def test_format_percent():
    assert format_percent(33.491) == "33.49%"
    assert format_percent(float("inf")) == "inf%"


def test_headline_improvements_aggregation():
    from repro.experiments import headline_improvements

    t1 = SeriesTable("x", [1]); t1.add("HIPO", [0.8]); t1.add("base", [0.4]); t1.add("other", [0.2])
    t2 = SeriesTable("x", [1]); t2.add("HIPO", [0.9]); t2.add("base", [0.3]); t2.add("extra", [0.1])
    out = headline_improvements([t1, t2])
    # 'other'/'extra' not common to both tables -> dropped.
    assert set(out) == {"base"}
    # mean of 100% and 200%.
    assert np.isclose(out["base"], 150.0)


def test_headline_improvements_edge_cases():
    from repro.experiments import headline_improvements

    assert headline_improvements([]) == {}
    t = SeriesTable("x", [1]); t.add("A", [0.5]); t.add("B", [0.4])
    with pytest.raises(KeyError):
        headline_improvements([t])  # no HIPO series
    t2 = SeriesTable("x", [1]); t2.add("HIPO", [0.5]); t2.add("dead", [0.0])
    out = headline_improvements([t2])
    assert out["dead"] == float("inf")
