"""Tests for the placement-analysis metrics."""

import math

import numpy as np
import pytest

from repro.experiments import compare_placements, jain_index, placement_metrics
from repro.model import Strategy

from conftest import simple_scenario


def scenario():
    return simple_scenario(
        [(4.0, 10.0), (10.0, 10.0), (16.0, 10.0)], threshold=0.05, budget=2
    )


def test_jain_index_extremes():
    assert math.isclose(jain_index([1.0, 1.0, 1.0, 1.0]), 1.0)
    assert math.isclose(jain_index([1.0, 0.0, 0.0, 0.0]), 0.25)
    assert jain_index([]) == 0.0
    assert jain_index([0.0, 0.0]) == 0.0


def test_jain_index_scale_invariant():
    v = [0.2, 0.5, 0.9]
    assert math.isclose(jain_index(v), jain_index([10 * x for x in v]), rel_tol=1e-12)


def test_empty_placement_metrics():
    sc = scenario()
    m = placement_metrics(sc, [])
    assert m.utility == 0.0
    assert m.uncharged == 3
    assert m.total_power == 0.0
    assert m.redundancy == 0.0
    assert m.chargers_by_type == {}


def test_placement_metrics_consistency():
    sc = scenario()
    ct = sc.charger_types[0]
    strategies = [Strategy((7.0, 10.0), 0.0, ct), Strategy((13.0, 10.0), math.pi, ct)]
    m = placement_metrics(sc, strategies)
    assert math.isclose(m.utility, sc.utility_of(strategies), rel_tol=1e-12)
    assert m.chargers_by_type == {"ct": 2}
    assert 0 <= m.uncharged <= 3
    assert m.saturated >= 0
    assert m.min_utility <= m.utility
    assert 0.0 <= m.jain <= 1.0
    assert "utility" in m.format()


def test_redundancy_counts_multi_coverage():
    sc = simple_scenario([(10.0, 10.0)], threshold=5.0, budget=2)
    ct = sc.charger_types[0]
    # Two chargers both covering the single device from opposite sides.
    strategies = [Strategy((7.0, 10.0), 0.0, ct), Strategy((13.0, 10.0), math.pi, ct)]
    m = placement_metrics(sc, strategies)
    assert m.redundancy == 2.0


def test_compare_placements():
    sc = scenario()
    ct = sc.charger_types[0]
    a = [Strategy((7.0, 10.0), 0.0, ct)]
    b = []
    out = compare_placements(sc, {"a": a, "b": b})
    assert set(out) == {"a", "b"}
    assert out["a"].utility >= out["b"].utility
