"""Tests for the ASCII and SVG scene renderers."""

import math

import numpy as np
import pytest

from repro.experiments import render_scene, render_svg, save_svg
from repro.geometry import rectangle
from repro.model import Strategy

from conftest import simple_scenario


def scenario():
    return simple_scenario(
        [(4.0, 4.0), (15.0, 15.0)], obstacles=[rectangle(8.0, 8.0, 12.0, 12.0)]
    )


def test_render_scene_dimensions():
    sc = scenario()
    out = render_scene(sc, width=40, height=20)
    lines = out.splitlines()
    assert len(lines) == 22  # 20 rows + 2 borders
    assert all(len(line) == 42 for line in lines)


def test_render_scene_markers():
    sc = scenario()
    ct = sc.charger_types[0]
    out = render_scene(sc, [Strategy((2.0, 2.0), 0.0, ct)])
    assert out.count("o") >= 2  # both devices
    assert "#" in out  # obstacle
    assert ">" in out  # east-facing charger arrow


def test_render_scene_charger_on_device_cell():
    sc = simple_scenario([(10.0, 10.0)])
    ct = sc.charger_types[0]
    out = render_scene(sc, [Strategy((10.0, 10.0), 0.0, ct)], width=20, height=10)
    assert "*" in out


def test_render_scene_y_axis_up():
    sc = simple_scenario([(10.0, 19.0)])  # near the top of the region
    out = render_scene(sc, width=20, height=10)
    lines = out.splitlines()[1:-1]  # strip borders
    # Device should appear in the first (top) few rows.
    top_rows = "".join(lines[:3])
    assert "o" in top_rows


def test_render_svg_structure():
    sc = scenario()
    ct = sc.charger_types[0]
    svg = render_svg(sc, [Strategy((2.0, 2.0), math.pi / 4, ct)])
    assert svg.startswith("<svg")
    assert svg.endswith("</svg>")
    assert svg.count("<circle") == 2  # one dot per device
    assert "<polygon" in svg  # obstacle
    assert "<path" in svg  # charging sector ring


def test_render_svg_receiving_areas_flag():
    sc = scenario()
    plain = render_svg(sc)
    with_rx = render_svg(sc, show_receiving_areas=True)
    assert with_rx.count("<path") > plain.count("<path")


def test_save_svg(tmp_path):
    sc = scenario()
    path = tmp_path / "scene.svg"
    save_svg(str(path), sc)
    content = path.read_text()
    assert content.startswith("<svg") and content.endswith("</svg>")
