"""Tests for the §6 default setup (Tables 2–4) and random topologies."""

import math

import numpy as np
import pytest

from repro.experiments import (
    default_budgets,
    default_charger_types,
    default_coefficients,
    default_device_types,
    default_obstacles,
    random_devices,
    random_scenario,
    small_scenario,
)
from repro.experiments.scenarios import INITIAL_CHARGER_COUNTS, INITIAL_DEVICE_COUNTS


def test_table2_charger_types():
    cts = default_charger_types()
    assert [ct.charging_angle for ct in cts] == [math.pi / 6, math.pi / 3, math.pi / 2]
    assert [ct.dmin for ct in cts] == [5.0, 3.0, 2.0]
    assert [ct.dmax for ct in cts] == [10.0, 8.0, 6.0]


def test_table3_device_types():
    dts = default_device_types()
    assert [dt.receiving_angle for dt in dts] == [
        math.pi / 2,
        2 * math.pi / 3,
        3 * math.pi / 4,
        math.pi,
    ]


def test_table4_coefficients():
    table = default_coefficients()
    # Spot-check the four corners of Table 4.
    assert table.get("charger-1", "device-1").a == 100.0
    assert table.get("charger-1", "device-1").b == 40.0
    assert table.get("charger-3", "device-1").a == 120.0
    assert table.get("charger-1", "device-4").a == 190.0
    assert table.get("charger-3", "device-4").a == 210.0
    assert table.get("charger-3", "device-4").b == 84.0
    # b = 0.4 a everywhere
    for ci in range(1, 4):
        for di in range(1, 5):
            c = table.get(f"charger-{ci}", f"device-{di}")
            assert math.isclose(c.b, 0.4 * c.a)


def test_default_budgets_multiples():
    assert default_budgets(1) == INITIAL_CHARGER_COUNTS
    b3 = default_budgets(3)
    assert b3 == {"charger-1": 3, "charger-2": 6, "charger-3": 9}
    with pytest.raises(ValueError):
        default_budgets(-1)


def test_default_obstacles_inside_area():
    for h in default_obstacles():
        xmin, ymin, xmax, ymax = h.bbox
        assert 0.0 <= xmin and xmax <= 40.0 and 0.0 <= ymin and ymax <= 40.0


def test_random_devices_counts_and_feasibility(rng):
    devices = random_devices(rng, device_multiple=2)
    assert len(devices) == 2 * sum(INITIAL_DEVICE_COUNTS)
    counts = {}
    for d in devices:
        counts[d.dtype.name] = counts.get(d.dtype.name, 0) + 1
    assert counts == {"device-1": 8, "device-2": 6, "device-3": 4, "device-4": 2}
    for d in devices:
        assert not any(h.contains(d.position) for h in default_obstacles())


def test_random_devices_custom_counts(rng):
    devices = random_devices(rng, counts=(1, 1, 1, 1))
    assert len(devices) == 4
    with pytest.raises(ValueError):
        random_devices(rng, counts=(1, 1))


def test_random_scenario_defaults(rng):
    sc = random_scenario(rng)
    assert sc.num_devices == 40  # 4x (4+3+2+1)
    assert sc.num_chargers == 18  # 3x (1+2+3)
    assert sc.bounds == (0.0, 0.0, 40.0, 40.0)
    assert len(sc.obstacles) == 2
    assert all(d.threshold == 0.05 for d in sc.devices)


def test_random_scenario_threshold_override(rng):
    sc = random_scenario(rng, threshold=0.08)
    assert all(d.threshold == 0.08 for d in sc.devices)


def test_random_scenario_reproducible():
    sc1 = random_scenario(np.random.default_rng(5))
    sc2 = random_scenario(np.random.default_rng(5))
    assert [d.position for d in sc1.devices] == [d.position for d in sc2.devices]


def test_small_scenario(rng):
    sc = small_scenario(rng, num_devices=5)
    assert sc.num_devices == 5
    assert sc.num_chargers == 3
    sc2 = small_scenario(rng, with_obstacle=False)
    assert len(sc2.obstacles) == 0
