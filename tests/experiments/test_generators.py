"""Tests for the workload generators."""

import numpy as np
import pytest

from repro.experiments import (
    clustered_devices,
    cluttered_scenario,
    random_convex_obstacle,
    random_star_obstacle,
)
from repro.geometry import cross2


def is_convex(poly):
    verts = poly.vertices
    n = len(verts)
    for i in range(n):
        a, b, c = verts[i], verts[(i + 1) % n], verts[(i + 2) % n]
        if cross2((b[0] - a[0], b[1] - a[1]), (c[0] - b[0], c[1] - b[1])) < -1e-9:
            return False
    return True


def test_random_convex_obstacle_is_convex(rng):
    for _ in range(10):
        poly = random_convex_obstacle(rng, (10.0, 10.0), 3.0)
        assert is_convex(poly)
        assert poly.area > 0.0
        # Stays within the sampling disk.
        for v in poly.vertices:
            assert np.hypot(v[0] - 10.0, v[1] - 10.0) <= 3.0 + 1e-9


def test_random_convex_obstacle_validation(rng):
    with pytest.raises(ValueError):
        random_convex_obstacle(rng, (0, 0), 0.0)


def test_random_star_obstacle_simple_and_bounded(rng):
    for _ in range(10):
        poly = random_star_obstacle(rng, (5.0, 5.0), 1.0, 3.0, vertices=9)
        assert poly.area > 0.0
        # Star-shaped about its center: every vertex within [rmin, rmax].
        for v in poly.vertices:
            r = np.hypot(v[0] - 5.0, v[1] - 5.0)
            assert 1.0 - 1e-9 <= r <= 3.0 + 1e-9
        # The center is inside (star-shaped about it).
        assert poly.contains((5.0, 5.0))


def test_random_star_obstacle_validation(rng):
    with pytest.raises(ValueError):
        random_star_obstacle(rng, (0, 0), 3.0, 1.0)


def test_clustered_devices_counts_and_feasibility(rng):
    from repro.geometry import rectangle

    obstacles = (rectangle(15.0, 15.0, 25.0, 25.0),)
    devices = clustered_devices(rng, clusters=3, per_cluster=5, obstacles=obstacles)
    assert len(devices) == 15
    for d in devices:
        assert 0.0 <= d.position[0] <= 40.0 and 0.0 <= d.position[1] <= 40.0
        assert not any(h.contains(d.position) for h in obstacles)


def test_clustered_devices_actually_cluster(rng):
    devices = clustered_devices(rng, clusters=2, per_cluster=10, spread=1.5)
    pts = np.array([d.position for d in devices])
    # Mean nearest-neighbour distance should be far below the uniform
    # expectation (~half the region scale here).
    d = np.hypot(pts[:, None, 0] - pts[None, :, 0], pts[:, None, 1] - pts[None, :, 1])
    np.fill_diagonal(d, np.inf)
    assert d.min(axis=1).mean() < 3.0


def test_cluttered_scenario_structure(rng):
    sc = cluttered_scenario(rng, num_obstacles=3, clusters=2, per_cluster=4)
    assert len(sc.obstacles) == 3
    assert sc.num_devices == 8
    assert sc.num_chargers == 18
    for d in sc.devices:
        assert not any(h.contains(d.position) for h in sc.obstacles)


def test_cluttered_scenario_solvable(rng):
    from repro import solve_hipo

    sc = cluttered_scenario(rng, num_obstacles=2, clusters=2, per_cluster=3, charger_multiple=1)
    sol = solve_hipo(sc)
    assert 0.0 <= sol.utility <= 1.0


# ----------------------------------------------- seeds and the registry --


def test_as_generator_coercions():
    from repro.experiments.generators import as_generator

    g = as_generator(7)
    assert isinstance(g, np.random.Generator)
    # Integer seeds are deterministic shorthand for default_rng(seed).
    assert as_generator(7).random() == np.random.default_rng(7).random()
    passthrough = np.random.default_rng(1)
    assert as_generator(passthrough) is passthrough
    with pytest.raises(TypeError):
        as_generator(1.5)
    with pytest.raises(TypeError):
        as_generator(True)  # bools are not seeds


def test_generators_accept_plain_int_seeds():
    s1 = cluttered_scenario(99, num_obstacles=2, clusters=2, per_cluster=2)
    s2 = cluttered_scenario(99, num_obstacles=2, clusters=2, per_cluster=2)
    assert [d.position for d in s1.devices] == [d.position for d in s2.devices]


def test_scenario_generator_registry():
    from repro.experiments.generators import (
        register_scenario_generator,
        scenario_generators,
    )

    registry = scenario_generators()
    assert {"cluttered", "uniform", "small"} <= set(registry)
    assert registry["cluttered"] is cluttered_scenario
    # The accessor returns a copy: mutating it does not touch the registry.
    registry["cluttered"] = None
    assert scenario_generators()["cluttered"] is cluttered_scenario
    with pytest.raises(ValueError):
        register_scenario_generator("", cluttered_scenario)
