"""Smoke tests for every figure-reproduction function (reduced parameters).

The full-scale runs live in benchmarks/; here we verify each harness
produces well-formed series with sane values.
"""

import numpy as np
import pytest

from repro.experiments import (
    field_comparison,
    fig10_instance,
    fig11a_num_chargers,
    fig11b_num_devices,
    fig11c_charging_angle,
    fig11d_receiving_angle,
    fig11e_power_threshold,
    fig11f_dmin,
    fig12_distributed_time,
    fig13_threshold_deltas,
    fig14_dmin_dmax_surface,
    fig15_utility_cdf,
)

FAST_ALGOS = ("RPAD", "RPAR")


def check_table(table, x_expected, names):
    assert table.x == list(x_expected)
    assert set(table.series) == set(names)
    for vals in table.series.values():
        assert all(np.isfinite(v) for v in vals)


def test_fig10_small():
    res = fig10_instance(seed=1, charger_multiple=1, device_multiple=1, algorithms=FAST_ALGOS)
    assert set(res.utilities) == set(FAST_ALGOS)
    assert all(0.0 <= u <= 1.0 for u in res.utilities.values())
    assert "charging utility" in res.format()


@pytest.mark.parametrize(
    "fn,kw,xs",
    [
        (fig11a_num_chargers, {"multiples": (1, 2)}, (1, 2)),
        (fig11b_num_devices, {"multiples": (1,)}, (1,)),
        (fig11c_charging_angle, {"factors": (1.0,)}, (1.0,)),
        (fig11d_receiving_angle, {"factors": (1.0,)}, (1.0,)),
        (fig11e_power_threshold, {"thresholds": (0.05,)}, (0.05,)),
        (fig11f_dmin, {"factors": (0.0, 1.0)}, (0.0, 1.0)),
    ],
)
def test_fig11_family_smoke(fn, kw, xs):
    table = fn(repeats=1, algorithms=FAST_ALGOS, **kw)
    check_table(table, xs, FAST_ALGOS)
    for vals in table.series.values():
        assert all(0.0 <= v <= 1.0 for v in vals)


def test_fig11a_more_chargers_non_decreasing():
    table = fig11a_num_chargers(multiples=(1, 4), repeats=2, algorithms=("RPAD",))
    assert table.series["RPAD"][1] >= table.series["RPAD"][0] - 0.05


def test_fig12_distributed_smoke():
    table = fig12_distributed_time(multiples=(1,), machines=(2, 4), repeats=1)
    assert "Non-Dis" in table.series and "Dis-2" in table.series and "Dis-4" in table.series
    # Normalized: Non-Dis at 1x equals 1 by construction.
    assert np.isclose(table.series["Non-Dis"][0], 1.0)
    assert table.series["Dis-2"][0] <= 1.0 + 1e-9
    assert table.series["Dis-4"][0] <= table.series["Dis-2"][0] + 1e-9


def test_fig13_smoke():
    table = fig13_threshold_deltas(deltas=(0.0,), multiples=(1,), repeats=1)
    assert set(table.series) == {"0"}
    assert 0.0 <= table.series["0"][0] <= 1.0


def test_fig13_sign_labels():
    table = fig13_threshold_deltas(deltas=(-0.005, 0.005), multiples=(1,), repeats=1)
    assert set(table.series) == {"-0.005", "+0.005"}


def test_fig14_smoke():
    table = fig14_dmin_dmax_surface(
        dmax_factors=(1.0,), ratios=(0.0, 0.5), repeats=1, device_multiple=1
    )
    assert set(table.series) == {"dmin/dmax=0", "dmin/dmax=0.5"}
    vals = [table.series[k][0] for k in table.series]
    assert all(0.0 <= v <= 1.0 for v in vals)


def test_fig15_smoke():
    out = fig15_utility_cdf(seed=2, device_multiple=1, algorithms=FAST_ALGOS)
    assert set(out) == set(FAST_ALGOS)
    for u in out.values():
        assert u.shape == (10,)  # 1x devices = 10
        assert np.all(np.diff(u) >= 0)  # sorted
        assert np.all((0 <= u) & (u <= 1))


@pytest.mark.slow
def test_field_comparison_shape():
    res = field_comparison(algorithms=("GPAD Triangle", "GPPDCS Triangle"))
    assert set(res.utilities) == {"GPAD Triangle", "GPPDCS Triangle"}
    for u in res.utilities.values():
        assert u.shape == (10,)
    assert "#1" in res.format()
