"""Tests for the solver worker pool: execution, timeouts, cancellation."""

import time

import pytest

from repro.core import SolveCancelled, check_cancel
from repro.obs import MetricsRegistry
from repro.serve import JobQueue, JobState, SolverPool


def wait_final(queue, job, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if job.state in ("done", "failed", "timeout", "cancelled"):
            return job
        time.sleep(0.01)
    raise AssertionError(f"job stuck in state {job.state!r}")


def test_pool_runs_jobs_and_captures_trace():
    q = JobQueue(8)
    m = MetricsRegistry()

    def runner(job, tracer):
        with tracer.span("work"):
            return {"doubled": job.request["x"] * 2}

    pool = SolverPool(q, runner, size=2, metrics=m).start()
    try:
        jobs = [q.submit({"x": i}) for i in range(5)]
        for i, job in enumerate(jobs):
            wait_final(q, job)
            assert job.state == JobState.DONE
            assert job.result == {"doubled": 2 * i}
            names = [sp["name"] for sp in job.trace]
            assert names == ["job", "work"]
            assert all(sp["schema"] == "repro.trace/v1" for sp in job.trace)
    finally:
        pool.shutdown()
    assert m.counter("serve.jobs.done") == 5
    assert m.histogram("serve.job_seconds").count == 5


def test_job_exception_becomes_failed():
    q = JobQueue(4)
    m = MetricsRegistry()

    def runner(job, tracer):
        raise RuntimeError("kaput")

    pool = SolverPool(q, runner, size=1, metrics=m).start()
    try:
        job = wait_final(q, q.submit({}))
        assert job.state == JobState.FAILED
        assert "kaput" in job.error
    finally:
        pool.shutdown()
    assert m.counter("serve.jobs.failed") == 1


def test_running_job_timeout_via_cancel_token():
    q = JobQueue(4)
    m = MetricsRegistry()

    def runner(job, tracer):
        # Cooperative solver: polls the cancel token like solve_hipo does.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            check_cancel(job.cancel)
            time.sleep(0.005)
        return {}

    pool = SolverPool(q, runner, size=1, metrics=m).start()
    try:
        job = wait_final(q, q.submit({}, timeout_s=0.1))
        assert job.state == JobState.TIMEOUT
        assert "timed out" in job.error
    finally:
        pool.shutdown()
    assert m.counter("serve.jobs.timeout") == 1


def test_queued_job_past_deadline_times_out_without_running():
    q = JobQueue(4)
    ran = []

    def runner(job, tracer):
        ran.append(job.id)
        return {}

    job = q.submit({}, timeout_s=0.01)
    time.sleep(0.05)  # deadline passes while queued
    pool = SolverPool(q, runner, size=1).start()
    try:
        wait_final(q, job)
        assert job.state == JobState.TIMEOUT
        assert job.id not in ran
    finally:
        pool.shutdown()


def test_client_cancel_of_running_job():
    q = JobQueue(4)

    def runner(job, tracer):
        while True:
            check_cancel(job.cancel)
            time.sleep(0.005)

    pool = SolverPool(q, runner, size=1).start()
    try:
        job = q.submit({})
        deadline = time.monotonic() + 2.0
        while job.state != JobState.RUNNING and time.monotonic() < deadline:
            time.sleep(0.005)
        q.cancel(job.id)
        wait_final(q, job)
        assert job.state == JobState.CANCELLED
    finally:
        pool.shutdown()


def test_graceful_shutdown_finishes_in_flight_jobs():
    q = JobQueue(8)

    def runner(job, tracer):
        time.sleep(0.1)
        return {"ok": True}

    pool = SolverPool(q, runner, size=2).start()
    jobs = [q.submit({}) for _ in range(2)]
    time.sleep(0.02)  # let workers pick them up
    pool.shutdown(wait=True, timeout=5.0)
    for job in jobs:
        assert job.state == JobState.DONE


def test_solve_cancelled_surfaces_from_real_solver(rng):
    """A pre-set cancel token stops solve_hipo before doing real work."""
    import threading

    from repro.core import solve_hipo
    from repro.experiments import small_scenario

    cancel = threading.Event()
    cancel.set()
    with pytest.raises(SolveCancelled):
        solve_hipo(small_scenario(rng, num_devices=3), cancel=cancel)


def test_invalid_pool_size_rejected():
    q = JobQueue(2)
    with pytest.raises(ValueError):
        SolverPool(q, lambda j, t: {}, size=0)
