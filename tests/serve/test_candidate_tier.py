"""The candidate cache tier of the solve service: same extraction slice,
different selection knobs → synchronous selection-only solve."""

import json
import time

import pytest

from repro.experiments import small_scenario
from repro.io import scenario_to_dict
from repro.serve import SolveService


@pytest.fixture
def scenario_data(rng):
    return scenario_to_dict(small_scenario(rng, num_devices=3))


def wait_done(job, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if job.state in ("done", "failed", "timeout", "cancelled"):
            assert job.state == "done", job.to_dict()
            return job
        time.sleep(0.02)
    raise AssertionError("job did not finish in time")


def swept(scenario_data, bump=1):
    out = json.loads(json.dumps(scenario_data))
    out["budgets"] = {k: v + bump for k, v in out["budgets"].items()}
    return out


def test_different_budgets_hit_candidate_tier(scenario_data):
    service = SolveService(pool_size=1).start()
    try:
        cold, was_cached = service.submit({"scenario": scenario_data})
        assert was_cached is False and cold.cache_tier is None
        wait_done(cold)

        job, was_cached = service.submit({"scenario": swept(scenario_data)})
        # Full cache can't match (budgets differ), but extraction is shared:
        # the job comes back already done, synchronously.
        assert was_cached is True
        assert job.state == "done"
        assert job.cached is False  # a real solve ran, unlike a full-tier replay
        assert job.cache_tier == "candidates"
        assert job.to_dict()["cache_tier"] == "candidates"
        assert job.result["utility"] > 0.0
    finally:
        service.shutdown()


def test_candidate_tier_result_is_byte_identical_to_cold(scenario_data):
    warm_service = SolveService(pool_size=1).start()
    cold_service = SolveService(pool_size=1).start()
    try:
        wait_done(warm_service.submit({"scenario": scenario_data})[0])
        tier2, was_cached = warm_service.submit({"scenario": swept(scenario_data)})
        assert was_cached is True and tier2.cache_tier == "candidates"

        cold, was_cached = cold_service.submit({"scenario": swept(scenario_data)})
        assert was_cached is False
        wait_done(cold)
        assert cold.cache_tier is None  # nothing to reuse in a fresh service
        assert json.dumps(tier2.result, sort_keys=True) == json.dumps(
            cold.result, sort_keys=True
        )
    finally:
        warm_service.shutdown()
        cold_service.shutdown()


def test_full_tier_still_wins_for_identical_requests(scenario_data):
    service = SolveService(pool_size=1).start()
    try:
        wait_done(service.submit({"scenario": scenario_data})[0])
        replay, was_cached = service.submit({"scenario": scenario_data})
        assert was_cached is True
        assert replay.cached is True and replay.cache_tier == "full"
    finally:
        service.shutdown()


def test_use_cache_false_bypasses_both_tiers(scenario_data):
    service = SolveService(pool_size=1).start()
    try:
        wait_done(service.submit({"scenario": scenario_data})[0])
        job, was_cached = service.submit(
            {"scenario": swept(scenario_data), "use_cache": False}
        )
        assert was_cached is False  # queued like any cold request
        wait_done(job)
        assert job.cache_tier is None
    finally:
        service.shutdown()


def test_eps_param_separates_candidate_keys(scenario_data):
    service = SolveService(pool_size=1).start()
    try:
        wait_done(service.submit({"scenario": scenario_data})[0])
        job, was_cached = service.submit(
            {"scenario": swept(scenario_data), "params": {"eps": 0.3}}
        )
        # A different approximation grid means a different extraction: no
        # candidate-tier shortcut, the job queues and pays extraction.
        assert was_cached is False
        wait_done(job)
        assert job.cache_tier is None
    finally:
        service.shutdown()


def test_queued_warm_start_tags_cache_tier(scenario_data):
    """A job that reaches the pool workers but warm-starts its extraction
    from the candidate cache is tagged too.  (In production this happens
    when the cache fills between submit's membership check and the worker
    picking the job up; here the job is enqueued directly, past the
    synchronous shortcut.)"""
    service = SolveService(pool_size=1).start()
    try:
        wait_done(service.submit({"scenario": scenario_data})[0])
        job = service.queue.submit(
            {"scenario": swept(scenario_data), "params": {}, "use_cache": True},
            priority=0,
            timeout_s=None,
            cache_key="queued-warm-start-test",
        )
        wait_done(job)
        assert job.cache_tier == "candidates"
        assert job.cached is False
    finally:
        service.shutdown()


def test_metrics_payload_reports_candidate_cache(scenario_data):
    service = SolveService(pool_size=1).start()
    try:
        wait_done(service.submit({"scenario": scenario_data})[0])
        service.submit({"scenario": swept(scenario_data)})
        doc = service.metrics_payload()
        cc = doc["candidate_cache"]
        assert cc["entries"] >= 1 and cc["hits"] >= 1
        counters = doc["metrics"]["counters"]
        assert counters.get("cache.candidates.hits", 0) >= 1
        assert counters.get("cache.candidates.stores", 0) >= 1
        assert counters.get("serve.jobs.candidate_tier", 0) == 1
        # The solve cache block is untouched by the new tier.
        assert doc["cache"]["misses"] >= 1
    finally:
        service.shutdown()
