"""End-to-end HTTP tests: submit → poll → result, caching, backpressure."""

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core import solve_hipo
from repro.experiments import small_scenario
from repro.io import scenario_from_dict, scenario_to_dict
from repro.serve import SolveService, create_server

FINAL = ("done", "failed", "timeout", "cancelled")


@pytest.fixture
def scenario_data(rng):
    return scenario_to_dict(small_scenario(rng, num_devices=3))


class Client:
    """Minimal urllib client against one server instance."""

    def __init__(self, port):
        self.base = f"http://127.0.0.1:{port}"

    def request(self, method, path, body=None):
        data = json.dumps(body).encode() if body is not None else None
        req = urllib.request.Request(
            self.base + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(req, timeout=10) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def post_solve(self, body):
        return self.request("POST", "/v1/solve", body)

    def poll(self, job_id, timeout=30.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status, payload = self.request("GET", f"/v1/jobs/{job_id}")
            assert status == 200
            if payload["state"] in FINAL:
                return payload
            time.sleep(0.05)
        raise AssertionError("job did not finish in time")


def start_server(service):
    server = create_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, Client(server.server_address[1])


def stop(server, service):
    server.shutdown()
    server.server_close()
    service.shutdown()


def test_http_round_trip_matches_direct_solve(scenario_data):
    service = SolveService(pool_size=2, queue_size=8).start()
    server, client = start_server(service)
    try:
        status, resp = client.post_solve({"scenario": scenario_data})
        assert status == 202 and resp["state"] == "queued"
        payload = client.poll(resp["id"])
        assert payload["state"] == "done" and payload["cached"] is False
        result = payload["result"]

        scenario, _ = scenario_from_dict(scenario_data)
        direct = solve_hipo(scenario)
        assert result["utility"] == pytest.approx(direct.utility, abs=1e-12)
        assert len(result["strategies"]) == len(direct.strategies)
        for got, want in zip(result["strategies"], direct.strategies):
            assert got["type"] == want.ctype.name
            assert got["position"] == pytest.approx(list(want.position))
            assert got["orientation"] == pytest.approx(want.orientation)
        # The job trace is a valid repro.trace/v1 document with a solve span.
        from repro.obs import validate_trace_lines

        lines = [json.dumps(sp) for sp in payload["trace"]]
        spans = validate_trace_lines(lines)
        assert {"job", "solve"} <= {sp["name"] for sp in spans}
    finally:
        stop(server, service)


def test_cache_hit_identical_payload_no_solve_span(scenario_data):
    service = SolveService(pool_size=1, queue_size=8).start()
    server, client = start_server(service)
    try:
        status, first = client.post_solve({"scenario": scenario_data})
        assert status == 202
        done = client.poll(first["id"])
        hits_before = service.metrics.counter("cache.hits")

        status2, second = client.post_solve({"scenario": scenario_data})
        assert status2 == 200  # served synchronously from cache
        assert second["cached"] is True and second["state"] == "done"
        # Byte-identical result payload.
        assert json.dumps(second["result"], sort_keys=True) == json.dumps(
            done["result"], sort_keys=True
        )
        assert service.metrics.counter("cache.hits") == hits_before + 1
        # Its trace records the cache lookup but no solver work.
        names = [sp["name"] for sp in second["trace"]]
        assert "solve" not in names and "cache.lookup" in names

        # The cached job is still retrievable like any other.
        status3, again = client.request("GET", f"/v1/jobs/{second['id']}")
        assert status3 == 200 and again["cached"] is True
    finally:
        stop(server, service)


def test_queue_full_returns_429_and_inflight_complete(rng):
    # Pool not started yet: submissions stack deterministically.
    service = SolveService(pool_size=1, queue_size=2)
    server, client = start_server(service)
    try:
        responses = []
        for k in range(4):
            data = scenario_to_dict(small_scenario(rng, num_devices=2 + k))
            responses.append(client.post_solve({"scenario": data, "use_cache": False}))
        codes = [status for status, _ in responses]
        assert codes.count(202) == 2 and codes.count(429) == 2
        rejected = [body for status, body in responses if status == 429]
        assert all(body["error"]["code"] == "queue-full" for body in rejected)

        status, metrics = client.request("GET", "/v1/metrics")
        assert metrics["queue"]["depth"] == 2  # full, reflected live

        # Workers come up; the accepted jobs drain to completion.
        service.start()
        for status, body in responses:
            if status == 202:
                assert client.poll(body["id"])["state"] == "done"
        status, metrics = client.request("GET", "/v1/metrics")
        assert metrics["queue"]["depth"] == 0
        assert metrics["metrics"]["counters"]["serve.responses.429"] == 2
    finally:
        stop(server, service)


def test_timeout_job_ends_in_timeout_state(scenario_data):
    service = SolveService(pool_size=1, queue_size=4)  # not started
    server, client = start_server(service)
    try:
        status, resp = client.post_solve(
            {"scenario": scenario_data, "timeout_s": 0.01, "use_cache": False}
        )
        assert status == 202
        time.sleep(0.05)  # deadline passes while queued
        service.start()
        payload = client.poll(resp["id"])
        assert payload["state"] == "timeout"
        assert "timed out" in payload["error"]
    finally:
        stop(server, service)


def test_cancel_queued_job_via_delete(scenario_data):
    service = SolveService(pool_size=1, queue_size=4)  # not started
    server, client = start_server(service)
    try:
        status, resp = client.post_solve({"scenario": scenario_data, "use_cache": False})
        assert status == 202
        status, cancel = client.request("DELETE", f"/v1/jobs/{resp['id']}")
        assert status == 200 and cancel["state"] == "cancelled"
        status, final = client.request("GET", f"/v1/jobs/{resp['id']}")
        assert final["state"] == "cancelled"
    finally:
        stop(server, service)


def test_validation_errors_are_400_with_field_names(scenario_data):
    service = SolveService(pool_size=1, queue_size=4).start()
    server, client = start_server(service)
    try:
        status, resp = client.post_solve({"no_scenario": True})
        assert status == 400 and resp["error"]["code"] == "missing-scenario"

        broken = dict(scenario_data)
        broken["devices"] = [dict(scenario_data["devices"][0])]
        del broken["devices"][0]["threshold"]
        status, resp = client.post_solve({"scenario": broken})
        assert status == 400
        assert "devices[0]" in resp["error"]["message"]
        assert "threshold" in resp["error"]["message"]

        status, resp = client.post_solve(
            {"scenario": scenario_data, "params": {"eps": -1}}
        )
        assert status == 400 and resp["error"]["code"] == "invalid-params"

        status, resp = client.post_solve(
            {"scenario": scenario_data, "params": {"bogus": 1}}
        )
        assert status == 400 and "bogus" in resp["error"]["message"]
    finally:
        stop(server, service)


def test_healthz_metrics_and_404(scenario_data):
    service = SolveService(pool_size=2, queue_size=4).start()
    server, client = start_server(service)
    try:
        status, health = client.request("GET", "/v1/healthz")
        assert status == 200 and health["status"] == "ok"
        assert health["workers_alive"] == 2 and health["queue_capacity"] == 4

        status, resp = client.request("GET", "/v1/jobs/doesnotexist")
        assert status == 404 and resp["error"]["code"] == "unknown-job"
        status, resp = client.request("GET", "/v1/bogus")
        assert status == 404 and resp["error"]["code"] == "not-found"

        client.post_solve({"scenario": scenario_data})
        status, metrics = client.request("GET", "/v1/metrics")
        assert status == 200
        counters = metrics["metrics"]["counters"]
        assert counters["serve.requests"] >= 3
        assert "cache" in metrics and "queue" in metrics
        assert metrics["cache"]["misses"] >= 1
    finally:
        stop(server, service)


def test_service_reports_backend_in_metrics_and_trace(scenario_data):
    """The serve --backend choice is observable: /v1/metrics names the active
    backend, and every job's solve span carries it."""
    service = SolveService(pool_size=1, queue_size=4, backend="numpy").start()
    server, client = start_server(service)
    try:
        status, metrics = client.request("GET", "/v1/metrics")
        assert status == 200
        assert metrics["backend"]["active"] == "numpy"
        assert metrics["backend"]["available"]["numpy"] is True
        assert set(metrics["backend"]["available"]) >= {"numpy", "numba", "cupy"}

        status, resp = client.post_solve({"scenario": scenario_data})
        assert status == 202
        payload = client.poll(resp["id"])
        assert payload["state"] == "done"
        solve_spans = [sp for sp in payload["trace"] if sp["name"] == "solve"]
        assert solve_spans and solve_spans[-1]["attrs"]["backend"] == "numpy"
    finally:
        stop(server, service)


def test_service_default_backend_resolves_eagerly(scenario_data):
    """No explicit backend: the service pins auto's concrete choice at
    construction; an impossible backend fails at startup, not first job."""
    service = SolveService(pool_size=1, queue_size=4)
    assert service.backend_name in {"numpy", "numba"}
    service.shutdown()

    from repro.backend import BackendUnavailable

    with pytest.raises(BackendUnavailable):
        SolveService(pool_size=1, queue_size=4, backend="cupy")
