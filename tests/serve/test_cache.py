"""Tests for the content-addressed LRU solve cache and its hash keys."""

import json

import pytest

from repro.io import canonical_json, canonical_scenario_hash, scenario_to_dict
from repro.obs import MetricsRegistry
from repro.serve import SolveCache


# -- canonical hashing ----------------------------------------------------
def test_hash_key_order_independent():
    a = {"version": 1, "bounds": [0, 0, 1, 1], "budgets": {"x": 1, "y": 2}}
    b = {"budgets": {"y": 2, "x": 1}, "bounds": [0, 0, 1, 1], "version": 1}
    assert canonical_scenario_hash(a) == canonical_scenario_hash(b)


def test_hash_float_normalization():
    a = {"bounds": [0.0, 0, 1, 1.0], "eps": 0.15}
    b = {"bounds": [0, 0.0, 1.0, 1], "eps": 0.15}
    assert canonical_scenario_hash(a) == canonical_scenario_hash(b)
    assert canonical_json(-0.0) == canonical_json(0)


def test_hash_sensitive_to_content_and_params():
    base = {"bounds": [0, 0, 1, 1]}
    assert canonical_scenario_hash(base) != canonical_scenario_hash({"bounds": [0, 0, 1, 2]})
    assert canonical_scenario_hash(base, {"eps": 0.1}) != canonical_scenario_hash(
        base, {"eps": 0.2}
    )


def test_hash_ignores_stored_strategies():
    with_strats = {"bounds": [0, 0, 1, 1], "strategies": [{"position": [0, 0]}]}
    without = {"bounds": [0, 0, 1, 1]}
    assert canonical_scenario_hash(with_strats) == canonical_scenario_hash(without)


def test_hash_accepts_scenario_object(rng):
    from repro.experiments import small_scenario

    sc = small_scenario(rng, num_devices=3)
    key1 = canonical_scenario_hash(sc, {"eps": 0.15})
    key2 = canonical_scenario_hash(scenario_to_dict(sc), {"eps": 0.15})
    assert key1 == key2 and len(key1) == 64


def test_canonical_json_rejects_non_finite():
    with pytest.raises(ValueError, match="non-finite"):
        canonical_json({"x": float("inf")})


# -- cache behaviour ------------------------------------------------------
def test_put_get_round_trip_and_counters():
    m = MetricsRegistry()
    cache = SolveCache(4, 1 << 20, metrics=m)
    assert cache.get("k") is None
    assert m.counter("cache.misses") == 1
    payload = {"utility": 1.25, "strategies": [{"position": [1.0, 2.0]}]}
    assert cache.put("k", payload)
    got = cache.get("k")
    assert got == payload
    assert m.counter("cache.hits") == 1
    # Stored bytes are deterministic -> identical re-serialization.
    assert json.dumps(got, sort_keys=True) == json.dumps(payload, sort_keys=True)


def test_lru_eviction_by_entries():
    m = MetricsRegistry()
    cache = SolveCache(2, 1 << 20, metrics=m)
    cache.put("a", {"v": 1})
    cache.put("b", {"v": 2})
    cache.get("a")  # refresh a -> b becomes LRU
    cache.put("c", {"v": 3})
    assert "a" in cache and "c" in cache and "b" not in cache
    assert m.counter("cache.evictions") == 1


def test_eviction_by_bytes():
    blob = {"v": "x" * 100}
    size = len(json.dumps(blob, sort_keys=True, separators=(",", ":")).encode())
    cache = SolveCache(100, int(size * 2.5))
    cache.put("a", blob)
    cache.put("b", blob)
    cache.put("c", blob)  # only 2 fit
    assert len(cache) == 2
    assert cache.size_bytes <= int(size * 2.5)
    assert "a" not in cache


def test_oversize_value_refused():
    m = MetricsRegistry()
    cache = SolveCache(4, 64, metrics=m)
    assert not cache.put("big", {"v": "x" * 1000})
    assert "big" not in cache and len(cache) == 0
    assert m.counter("cache.oversize") == 1


def test_overwrite_updates_bytes():
    cache = SolveCache(4, 1 << 20)
    cache.put("k", {"v": "x" * 100})
    before = cache.size_bytes
    cache.put("k", {"v": "y"})
    assert len(cache) == 1 and cache.size_bytes < before


def test_stats_shape():
    cache = SolveCache(4, 1 << 20)
    cache.put("k", {"v": 1})
    cache.get("k")
    cache.get("missing")
    stats = cache.stats()
    assert stats["entries"] == 1 and stats["hits"] == 1 and stats["misses"] == 1
    assert stats["bytes"] == cache.size_bytes


def test_invalid_limits_rejected():
    with pytest.raises(ValueError):
        SolveCache(0)
    with pytest.raises(ValueError):
        SolveCache(4, 0)
