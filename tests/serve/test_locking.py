"""Regression tests for the serve-layer lock discipline (CNC201/CNC202).

The service shares one non-thread-safe :class:`MetricsRegistry` between
the HTTP layer, the cache and the pool; correctness rests on all three
guarding it with the *same* lock, and on nothing lock-acquiring running
inside a locked region (``submit`` reads ``queue.depth`` — which takes
the queue's own lock — before taking the metrics lock).
"""

import threading
import time

from repro.obs import MetricsRegistry
from repro.serve import JobQueue, SolverPool
from repro.serve.api import SolveService
from repro.serve.cache import SolveCache


def test_service_shares_one_metrics_lock():
    service = SolveService(pool_size=1, queue_size=4)
    assert service.cache._lock is service._metrics_lock
    assert service.pool._lock is service._metrics_lock


def test_submit_records_peak_depth_gauge(rng):
    from repro.experiments import small_scenario
    from repro.io import scenario_to_dict

    service = SolveService(pool_size=1, queue_size=4)  # not started: job stays queued
    scenario_data = scenario_to_dict(small_scenario(rng, num_devices=3))
    job, cached = service.submit({"scenario": scenario_data, "use_cache": False})
    assert not cached
    assert service.metrics.gauge_value("serve.queue.peak_depth") >= 1.0
    assert service.metrics.counter("serve.jobs.submitted") == 1


def test_pool_accepts_external_lock_and_counts_under_it():
    q = JobQueue(4)
    m = MetricsRegistry()
    lock = threading.Lock()
    pool = SolverPool(q, lambda job, tracer: {"ok": True}, size=1, metrics=m, lock=lock)
    assert pool._lock is lock
    pool.start()
    try:
        assert pool.alive == 1
        job = q.submit({})
        deadline = time.monotonic() + 5.0
        while job.state not in ("done", "failed") and time.monotonic() < deadline:
            time.sleep(0.01)
        assert job.state == "done"
    finally:
        pool.shutdown()
    assert pool.alive == 0
    assert pool.running_jobs == 0
    assert m.counter("serve.jobs.done") == 1


def test_pool_shutdown_joins_then_clears_threads():
    q = JobQueue(4)
    pool = SolverPool(q, lambda job, tracer: {}, size=2).start()
    assert pool.alive == 2
    pool.shutdown(wait=True, timeout=5.0)
    assert pool.alive == 0
    # Restartable after a full shutdown (thread list cleared).
    pool2 = pool.start()
    assert pool2 is pool and pool.alive == 2
    pool.shutdown()


def test_cache_accepts_external_lock():
    m = MetricsRegistry()
    lock = threading.Lock()
    cache = SolveCache(4, 1 << 20, metrics=m, lock=lock)
    assert cache._lock is lock
    cache.put("k", {"v": 1})
    assert cache.get("k") == {"v": 1}
    assert m.counter("cache.hits") == 1
