"""Tests for the bounded priority job queue."""

import threading

import pytest

from repro.serve import JobQueue, JobState, QueueFull, UnknownJob


def test_submit_and_run_lifecycle():
    q = JobQueue(4)
    job = q.submit({"x": 1})
    assert job.state == JobState.QUEUED
    assert q.depth == 1
    picked = q.next_job(timeout=0.1)
    assert picked is job
    assert job.state == JobState.RUNNING
    assert job.started_s is not None
    q.finish(job, JobState.DONE, result={"ok": True})
    assert job.state == JobState.DONE
    assert q.get(job.id).result == {"ok": True}
    assert q.depth == 0


def test_priority_order_fifo_within_class():
    q = JobQueue(8)
    low1 = q.submit({}, priority=0)
    high = q.submit({}, priority=5)
    low2 = q.submit({}, priority=0)
    assert q.next_job(timeout=0.1) is high
    assert q.next_job(timeout=0.1) is low1
    assert q.next_job(timeout=0.1) is low2


def test_bounded_capacity_raises_queue_full():
    q = JobQueue(2)
    q.submit({})
    q.submit({})
    with pytest.raises(QueueFull):
        q.submit({})
    # Running jobs free queue slots.
    q.next_job(timeout=0.1)
    q.submit({})


def test_cancel_queued_job_is_final_and_skipped():
    q = JobQueue(4)
    a = q.submit({})
    b = q.submit({})
    cancelled = q.cancel(a.id)
    assert cancelled.state == JobState.CANCELLED
    assert a.cancel.is_set()
    assert q.depth == 1
    assert q.next_job(timeout=0.1) is b


def test_cancel_running_job_sets_event_only():
    q = JobQueue(4)
    a = q.submit({})
    q.next_job(timeout=0.1)
    q.cancel(a.id)
    assert a.state == JobState.RUNNING  # final state is the worker's call
    assert a.cancel.is_set()


def test_unknown_job_raises():
    q = JobQueue(2)
    with pytest.raises(UnknownJob):
        q.get("nope")
    with pytest.raises(UnknownJob):
        q.cancel("nope")


def test_next_job_times_out_empty():
    q = JobQueue(2)
    assert q.next_job(timeout=0.05) is None


def test_next_job_blocks_until_submit():
    q = JobQueue(2)
    got = []

    def consumer():
        got.append(q.next_job(timeout=2.0))

    t = threading.Thread(target=consumer)
    t.start()
    job = q.submit({})
    t.join(timeout=2.0)
    assert got == [job]


def test_history_eviction_bounds_registry():
    q = JobQueue(4, max_history=3)
    ids = []
    for _ in range(5):
        job = q.submit({})
        ids.append(job.id)
        q.next_job(timeout=0.1)
        q.finish(job, JobState.DONE, result={})
    # Only the 3 most recent finished jobs are retained.
    with pytest.raises(UnknownJob):
        q.get(ids[0])
    with pytest.raises(UnknownJob):
        q.get(ids[1])
    for jid in ids[2:]:
        assert q.get(jid).state == JobState.DONE


def test_deadline_from_submission():
    q = JobQueue(2)
    job = q.submit({}, timeout_s=0.01)
    assert job.deadline_s is not None
    no_deadline = q.submit({})
    assert no_deadline.deadline_s is None and not no_deadline.deadline_passed


def test_job_to_dict_shapes():
    q = JobQueue(2)
    job = q.submit({}, priority=3, timeout_s=9.0)
    d = job.to_dict()
    assert d["state"] == "queued" and d["priority"] == 3 and d["timeout_s"] == 9.0
    assert "result" not in d
    q.next_job(timeout=0.1)
    q.finish(job, JobState.FAILED, error="boom")
    d = job.to_dict(include_trace=False)
    assert d["error"] == "boom" and "trace" not in d and "run_seconds" in d


def test_invalid_maxsize_rejected():
    with pytest.raises(ValueError):
        JobQueue(0)
