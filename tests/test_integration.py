"""End-to-end integration tests across the full pipeline.

These check the paper's headline claims on seeded, downsized instances:
HIPO beats every baseline (on average), the extracted candidate set
dominates arbitrary strategies (Theorem 4.1), and the full solve composes
with the §8 extensions.
"""

import math

import numpy as np
import pytest

from repro import solve_hipo
from repro.baselines import ALGORITHMS, BASELINES
from repro.core import CandidateGenerator, build_candidate_set
from repro.extensions import redeploy
from repro.geometry import TWO_PI
from repro.model import Strategy
from repro.experiments import small_scenario

from conftest import simple_scenario


def test_hipo_beats_every_baseline_on_average():
    """§6 headline: HIPO outperforms all eight comparison algorithms."""
    totals = {name: 0.0 for name in ALGORITHMS}
    seeds = (0, 1, 2)
    for seed in seeds:
        sc = small_scenario(np.random.default_rng(seed), num_devices=8)
        for name, algo in ALGORITHMS.items():
            totals[name] += sc.utility_of(algo(sc, np.random.default_rng(seed + 100)))
    hipo = totals.pop("HIPO")
    for name, total in totals.items():
        assert hipo >= total - 1e-9, f"HIPO lost to {name}: {hipo} vs {total}"


def test_hipo_beats_rpar_by_wide_margin():
    sc = small_scenario(np.random.default_rng(3), num_devices=8)
    hipo = sc.utility_of(ALGORITHMS["HIPO"](sc, np.random.default_rng(0)))
    rpar = np.mean(
        [sc.utility_of(ALGORITHMS["RPAR"](sc, np.random.default_rng(s))) for s in range(5)]
    )
    assert hipo > rpar


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_theorem_4_1_dominance_over_random_strategies(seed):
    """For ANY strategy, some candidate strategy approximately-dominates it:
    the greedy's candidate pool achieves at least the random strategy's
    covered set utility at comparable approximated power.

    We verify the covered-set dominance form: for a random feasible strategy
    s, there exists an extracted candidate covering a superset of s's
    covered devices (obstacle-free scene, single type)."""
    rng = np.random.default_rng(seed)
    pts = rng.uniform(3.0, 17.0, size=(5, 2))
    sc = simple_scenario(
        [tuple(p) for p in pts],
        device_orientations=rng.uniform(0, TWO_PI, 5).tolist(),
        device_angle=2.0 * math.pi,
        charger_angle=math.pi / 2,
        budget=1,
    )
    cs = build_candidate_set(sc)
    ev = sc.evaluator()
    candidate_sets = [
        frozenset(int(j) for j in np.nonzero(row)[0]) for row in cs.exact_power
    ]
    ct = sc.charger_types[0]
    for _ in range(60):
        pos = rng.uniform(0.0, 20.0, 2)
        theta = rng.uniform(0.0, TWO_PI)
        s = Strategy((pos[0], pos[1]), theta, ct)
        covered = frozenset(int(j) for j in np.nonzero(ev.power_vector(s))[0])
        if not covered:
            continue
        assert any(covered <= c for c in candidate_sets), (
            f"no candidate dominates {covered} at {pos}, {theta}"
        )


def test_full_pipeline_with_obstacles_and_heterogeneity():
    sc = small_scenario(np.random.default_rng(7), num_devices=10)
    sol = solve_hipo(sc, keep_candidates=True)
    assert 0.0 < sol.utility <= 1.0
    # Budgets respected per type.
    counts = {}
    for s in sol.strategies:
        counts[s.ctype.name] = counts.get(s.ctype.name, 0) + 1
    for name, c in counts.items():
        assert c <= sc.budgets[name]
    # No charger placed inside an obstacle.
    for s in sol.strategies:
        assert sc.is_free(s.position)
    # Approximated utility within (1 + eps1) of exact for the same set
    # (Lemma 4.3: exact >= approx and exact/approx <= 1+eps1 per device).
    assert sol.utility >= sol.approx_utility - 1e-12


def test_greedy_utility_dominates_each_single_candidate():
    sc = small_scenario(np.random.default_rng(8), num_devices=6)
    sol = solve_hipo(sc, keep_candidates=True)
    cs = sol.candidate_set
    ev = sc.evaluator()
    for k in range(0, cs.num_candidates, max(1, cs.num_candidates // 50)):
        single = float(np.minimum(1.0, cs.approx_power[k] / ev.thresholds).mean())
        assert sol.approx_utility >= single - 1e-9


def test_redeployment_between_two_topologies():
    """§8.1 end-to-end: solve two topologies, plan the transfer."""
    sc1 = small_scenario(np.random.default_rng(10), num_devices=6)
    sol1 = solve_hipo(sc1)
    sc2 = sc1.with_devices(
        small_scenario(np.random.default_rng(11), num_devices=6).devices
    )
    sol2 = solve_hipo(sc2)

    def by_type(strats):
        out = {}
        for s in strats:
            out.setdefault(s.ctype.name, []).append(s)
        return out

    old, new = by_type(sol1.strategies), by_type(sol2.strategies)
    # Equalize the type sets (greedy may skip a type in one topology).
    common = set(old) & set(new)
    old = {k: old[k] for k in common if len(old[k]) == len(new[k])}
    new = {k: new[k] for k in old}
    if not old:
        pytest.skip("no common type with equal counts in this seed")
    total_plan = redeploy(old, new, objective="total")
    max_plan = redeploy(old, new, objective="max")
    assert max_plan.max_overhead <= total_plan.max_overhead + 1e-9
    assert total_plan.total_overhead <= max_plan.total_overhead + 1e-9


def test_candidate_generator_shared_across_solves():
    """Reusing one generator for repeated solves keeps results identical."""
    sc = small_scenario(np.random.default_rng(12), num_devices=5)
    gen = CandidateGenerator(sc)
    s1 = solve_hipo(sc, generator=gen)
    s2 = solve_hipo(sc, generator=gen)
    assert s1.utility == s2.utility


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_theorem_4_1_dominance_with_obstacles(seed):
    """Theorem 4.1 with obstacles: the hole rays and obstacle edges in the
    boundary set keep the extracted candidates dominating — for any feasible
    strategy on an obstacle scene, some candidate covers a superset."""
    from repro.geometry import rectangle

    rng = np.random.default_rng(seed)
    pts = rng.uniform(3.0, 17.0, size=(4, 2))
    sc = simple_scenario(
        [tuple(p) for p in pts],
        device_orientations=rng.uniform(0, TWO_PI, 4).tolist(),
        device_angle=2.0 * math.pi,
        charger_angle=math.pi / 2,
        budget=1,
        obstacles=[rectangle(8.0, 8.0, 12.0, 11.0)],
    )
    cs = build_candidate_set(sc)
    ev = sc.evaluator()
    candidate_sets = [
        frozenset(int(j) for j in np.nonzero(row)[0]) for row in cs.exact_power
    ]
    ct = sc.charger_types[0]
    checked = 0
    for _ in range(80):
        pos = rng.uniform(0.0, 20.0, 2)
        if not sc.is_free(pos):
            continue
        s = Strategy((float(pos[0]), float(pos[1])), float(rng.uniform(0, TWO_PI)), ct)
        covered = frozenset(int(j) for j in np.nonzero(ev.power_vector(s))[0])
        if not covered:
            continue
        checked += 1
        assert any(covered <= c for c in candidate_sets), (pos, covered)
    assert checked > 5  # the probe actually exercised coverage


@pytest.mark.parametrize("seed", [0, 1, 4, 6])
def test_theorem_4_1_dominance_with_narrow_receivers(seed):
    """Dominance with narrow heterogeneous receiving cones: the cone-edge
    rays in the boundary set matter here (a strategy covering a device must
    sit inside that device's receiving sector)."""
    rng = np.random.default_rng(seed)
    pts = rng.uniform(3.0, 17.0, size=(4, 2))
    sc = simple_scenario(
        [tuple(p) for p in pts],
        device_orientations=rng.uniform(0, TWO_PI, 4).tolist(),
        device_angle=2.0 * math.pi / 3.0,
        charger_angle=math.pi / 3,
        budget=1,
    )
    cs = build_candidate_set(sc)
    ev = sc.evaluator()
    candidate_sets = [
        frozenset(int(j) for j in np.nonzero(row)[0]) for row in cs.exact_power
    ]
    ct = sc.charger_types[0]
    for _ in range(120):
        pos = rng.uniform(0.0, 20.0, 2)
        s = Strategy((float(pos[0]), float(pos[1])), float(rng.uniform(0, TWO_PI)), ct)
        covered = frozenset(int(j) for j in np.nonzero(ev.power_vector(s))[0])
        if not covered:
            continue
        assert any(covered <= c for c in candidate_sets), (pos, covered)
