"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_rejects_unknown_figure():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["figure", "fig99"])


def test_solve_small(capsys, tmp_path):
    svg = tmp_path / "map.svg"
    rc = main(
        [
            "solve",
            "--seed",
            "3",
            "--devices",
            "1",
            "--chargers",
            "1",
            "--map",
            "--svg",
            str(svg),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "charging utility" in out
    assert "charger-" in out
    assert svg.exists() and svg.read_text().startswith("<svg")


def test_solve_trace_metrics_and_json_timings(capsys, tmp_path):
    import json

    from repro.obs import validate_trace_file

    trace = tmp_path / "trace.jsonl"
    rc = main(
        [
            "solve",
            "--seed",
            "3",
            "--devices",
            "1",
            "--chargers",
            "1",
            "--trace",
            str(trace),
            "--metrics",
            "--timings",
            "--json",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    # --timings --json emits a machine-readable breakdown.
    start = out.index("{")
    payload = json.loads(out[start : out.index("}", start) + 1])
    assert "extraction_seconds" in payload and "workers" in payload
    # --metrics renders the per-phase tree with counts.
    assert "extraction" in out and "selection" in out and "counters:" in out
    # --trace wrote a schema-valid JSONL trace whose root covers the phases.
    spans = validate_trace_file(trace)
    names = [s["name"] for s in spans]
    assert "solve" in names and "extraction" in names and "selection" in names
    root = next(s for s in spans if s["parent_id"] is None)
    phases = [s for s in spans if s["parent_id"] == root["span_id"]]
    assert root["wall_s"] >= sum(s["wall_s"] for s in phases) - 1e-4


def test_compare_small(capsys):
    rc = main(["compare", "--seed", "3", "--devices", "1", "--chargers", "1"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "HIPO" in out and "RPAR" in out


def test_figure_fig12_csv(capsys, tmp_path):
    # fig12 only extracts candidates (no solves) so it is the fastest figure;
    # monkeypatching the grid keeps this a smoke test.
    csv = tmp_path / "series.csv"
    import repro.experiments.figures as figures

    orig = figures.fig12_distributed_time

    def tiny(repeats=1, **kw):
        return orig(multiples=(1,), machines=(2,), repeats=1)

    figures.fig12_distributed_time = tiny
    try:
        rc = main(["figure", "fig12", "--csv", str(csv)])
    finally:
        figures.fig12_distributed_time = orig
    assert rc == 0
    assert "Non-Dis" in capsys.readouterr().out
    assert csv.exists()


def test_solve_save_load_validate(capsys, tmp_path):
    saved = tmp_path / "scenario.json"
    rc = main(["solve", "--seed", "5", "--devices", "1", "--chargers", "1", "--save", str(saved)])
    assert rc == 0 and saved.exists()
    capsys.readouterr()
    # Re-solve the saved scenario.
    rc = main(["solve", "--load", str(saved)])
    assert rc == 0
    assert "charging utility" in capsys.readouterr().out
    # Validate it.
    rc = main(["validate", str(saved), "--no-reachability"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "OK" in out or "warning" in out


def test_validate_flags_broken_scenario(capsys, tmp_path):
    import json

    from repro.experiments import small_scenario
    from repro.io import scenario_to_dict
    import numpy as np

    sc = small_scenario(np.random.default_rng(0), num_devices=3)
    data = scenario_to_dict(sc)
    data["devices"][0]["position"] = [9.5, 9.5]  # inside the 8-11 obstacle
    path = tmp_path / "bad.json"
    path.write_text(json.dumps(data))
    rc = main(["validate", str(path), "--no-reachability"])
    assert rc == 1
    assert "device-in-obstacle" in capsys.readouterr().out


def test_version_flag(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0
    out = capsys.readouterr().out
    assert "repro" in out and any(ch.isdigit() for ch in out)


def test_workers_must_be_positive(capsys):
    with pytest.raises(SystemExit):
        main(["solve", "--workers", "0"])
    assert "positive integer" in capsys.readouterr().err
    with pytest.raises(SystemExit):
        main(["solve", "--workers", "-3"])


def test_serve_pool_and_queue_sizes_must_be_positive(capsys):
    with pytest.raises(SystemExit):
        main(["serve", "--pool-size", "0"])
    assert "positive integer" in capsys.readouterr().err
    with pytest.raises(SystemExit):
        main(["serve", "--queue-size", "-1"])
    with pytest.raises(SystemExit):
        main(["serve", "--cache-size", "0"])


def test_serve_parser_defaults():
    args = build_parser().parse_args(["serve"])
    assert args.port == 8080 and args.pool_size == 2
    assert args.queue_size == 64 and args.cache_size == 256


def test_solve_budget_sweep(capsys):
    rc = main(
        [
            "solve",
            "--seed",
            "3",
            "--devices",
            "1",
            "--chargers",
            "1",
            "--budget-sweep",
            "1,2",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "budget sweep over multipliers [1, 2]" in out
    assert "extractions paid: 1, warm starts: 1" in out


def test_solve_budget_sweep_rejects_bad_input(capsys):
    base = ["solve", "--seed", "3", "--devices", "1", "--chargers", "1"]
    assert main(base + ["--budget-sweep", "nope"]) == 2
    assert "comma-separated integers" in capsys.readouterr().out
    assert main(base + ["--budget-sweep", "0,-1"]) == 2
    assert "positive multipliers" in capsys.readouterr().out


def test_solve_candidate_cache_dir_persists(capsys, tmp_path):
    cache_dir = tmp_path / "cands"
    base = [
        "solve",
        "--seed",
        "3",
        "--devices",
        "1",
        "--chargers",
        "1",
        "--candidate-cache",
        str(cache_dir),
    ]
    assert main(base) == 0
    first = capsys.readouterr().out
    blobs = list(cache_dir.glob("*.candidates"))
    assert len(blobs) == 1  # extraction persisted for future runs

    # A second process-equivalent run warm-starts from disk, same answer.
    assert main(base) == 0
    second = capsys.readouterr().out
    assert first.splitlines()[:1] == second.splitlines()[:1]
    assert list(cache_dir.glob("*.candidates")) == blobs


def test_solve_backend_round_trip(capsys):
    """--backend numpy is honored end to end and echoed in the summary line."""
    base = ["solve", "--seed", "3", "--devices", "1", "--chargers", "1"]
    assert main(base + ["--backend", "numpy"]) == 0
    explicit = capsys.readouterr().out
    assert "backend=numpy" in explicit

    # Default (auto) resolves to a concrete backend name, never "auto".
    assert main(base) == 0
    auto = capsys.readouterr().out
    assert "backend=auto" not in auto and "backend=" in auto

    # Identical placements either way: the backend is a perf knob, not a knob
    # on the answer (only the backend= token may differ).
    assert explicit.split("backend=")[0] == auto.split("backend=")[0]


def test_solve_backend_rejects_unknown_choice(capsys):
    with pytest.raises(SystemExit):
        main(["solve", "--backend", "tpu"])
    assert "invalid choice" in capsys.readouterr().err


def test_serve_parser_accepts_backend():
    args = build_parser().parse_args(["serve", "--backend", "numpy"])
    assert args.backend == "numpy"
    assert build_parser().parse_args(["serve"]).backend is None
