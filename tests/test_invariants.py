"""Cross-cutting physical invariants of the whole pipeline.

The charging model and all derived quantities are defined by relative
geometry only, so rigid transforms (translation, rotation about a point) of
the entire scene — devices, obstacles, chargers — must leave power, utility
and PDCS structure unchanged.  These tests exercise the full stack
(geometry + model + sweep) under exactly that symmetry.
"""

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import extract_pdcs_at_point
from repro.geometry import Polygon, rotate
from repro.model import ChargerType, Device, DeviceType, PowerEvaluator, Strategy, pair_power

from conftest import make_table

CT = ChargerType("ct", math.pi / 2.0, 1.0, 6.0)
DT = DeviceType("dt", 2.0 * math.pi / 3.0)
TABLE = make_table([CT], [DT], a=100.0, b=5.0)
OBSTACLE = Polygon([(2.0, 1.0), (3.5, 1.5), (3.0, 3.0), (2.0, 2.5)])


def transformed_scene(dx, dy, theta, charger, devices, obstacle):
    """Apply translation + rotation about the origin to the whole scene."""

    def tp(p):
        r = rotate(p, theta)
        return (float(r[0]) + dx, float(r[1]) + dy)

    new_charger = Strategy(tp(charger.position), charger.orientation + theta, CT)
    new_devices = [
        Device(tp(d.position), d.orientation + theta, DT, d.threshold) for d in devices
    ]
    new_obstacle = Polygon([tp(v) for v in obstacle.vertices])
    return new_charger, new_devices, new_obstacle


coords = st.floats(min_value=-8.0, max_value=8.0)
shifts = st.floats(min_value=-50.0, max_value=50.0)
angles = st.floats(min_value=0.0, max_value=2.0 * math.pi)


@settings(max_examples=60, deadline=None)
@given(coords, coords, angles, coords, coords, angles, shifts, shifts, angles)
def test_pair_power_rigid_invariance(sx, sy, so, ox, oy, oo, dx, dy, theta):
    charger = Strategy((sx, sy), so, CT)
    device = Device((ox, oy), oo, DT, 0.1)
    # Skip degenerate boundary configurations: rigid transforms of exact
    # boundary cases can flip tolerance decisions.
    d = math.hypot(ox - sx, oy - sy)
    for boundary in (CT.dmin, CT.dmax):
        if abs(d - boundary) < 1e-6:
            return
    if OBSTACLE.distance_to_point((sx, sy)) < 1e-6 or OBSTACLE.distance_to_point((ox, oy)) < 1e-6:
        return
    p0 = pair_power(charger, device, [OBSTACLE], TABLE)
    new_charger, new_devices, new_obstacle = transformed_scene(
        dx, dy, theta, charger, [device], OBSTACLE
    )
    p1 = pair_power(new_charger, new_devices[0], [new_obstacle], TABLE)
    if p0 == 0.0 and p1 == 0.0:
        return
    # Angular boundary decisions can flip within tolerance; powers that are
    # both nonzero must agree to float precision.
    if p0 > 0.0 and p1 > 0.0:
        assert math.isclose(p0, p1, rel_tol=1e-6)
    else:
        # One side zero: the configuration must be on a decision boundary.
        bearing = math.atan2(oy - sy, ox - sx)
        cone_slack = abs(abs(_angdiff(bearing, so)) - CT.half_angle)
        rev = math.atan2(sy - oy, sx - ox)
        rx_slack = abs(abs(_angdiff(rev, oo)) - DT.half_angle)
        assert min(cone_slack, rx_slack) < 1e-5 or OBSTACLE.blocks_segment(
            charger.position, device.position
        ) != new_obstacle.blocks_segment(new_charger.position, new_devices[0].position)


def _angdiff(a, b):
    d = math.fmod(a - b, 2.0 * math.pi)
    if d > math.pi:
        d -= 2.0 * math.pi
    elif d < -math.pi:
        d += 2.0 * math.pi
    return d


@settings(max_examples=25, deadline=None)
@given(shifts, shifts, angles, st.integers(min_value=0, max_value=5000))
def test_pdcs_structure_rigid_invariance(dx, dy, theta, seed):
    """The extracted PDCS covered-set family is invariant under rigid
    transforms of the scene (orientations shift by theta)."""
    rng = np.random.default_rng(seed)
    positions = rng.uniform(-5, 5, size=(5, 2))
    orientations = rng.uniform(0, 2 * math.pi, size=5)
    devices = [Device(tuple(p), float(o), DT, 0.1) for p, o in zip(positions, orientations)]
    # Keep clear of decision boundaries.
    dists = np.hypot(positions[:, 0], positions[:, 1])
    if np.any(np.abs(dists - CT.dmin) < 1e-3) or np.any(np.abs(dists - CT.dmax) < 1e-3):
        return
    ev0 = PowerEvaluator(devices, [], TABLE, [CT])
    sets0 = {ps.covered for ps in extract_pdcs_at_point(ev0, CT, (0.0, 0.0))}

    def tp(p):
        r = rotate(p, theta)
        return (float(r[0]) + dx, float(r[1]) + dy)

    moved = [Device(tp(d.position), d.orientation + theta, DT, 0.1) for d in devices]
    ev1 = PowerEvaluator(moved, [], TABLE, [CT])
    sets1 = {ps.covered for ps in extract_pdcs_at_point(ev1, CT, tp((0.0, 0.0)))}
    assert sets0 == sets1


def test_utility_invariance_full_scenario():
    """End-to-end: translating a whole scenario leaves a placement's utility
    unchanged."""
    from repro.model import CoefficientTable, Scenario

    devices = [Device((3.0, 1.0), 2.0, DT, 0.1), Device((6.0, 4.0), 4.0, DT, 0.1)]
    sc = Scenario(
        bounds=(0.0, 0.0, 10.0, 10.0),
        devices=tuple(devices),
        obstacles=(OBSTACLE,),
        charger_types=(CT,),
        budgets={"ct": 2},
        table=TABLE,
    )
    strategies = [Strategy((1.0, 1.0), 0.3, CT), Strategy((8.0, 8.0), 3.5, CT)]
    u0 = sc.utility_of(strategies)

    dx, dy = 100.0, -40.0
    sc2 = Scenario(
        bounds=(dx, dy - 0.0, 10.0 + dx, 10.0 + dy),
        devices=tuple(Device((d.position[0] + dx, d.position[1] + dy), d.orientation, DT, 0.1) for d in devices),
        obstacles=(OBSTACLE.translated(dx, dy),),
        charger_types=(CT,),
        budgets={"ct": 2},
        table=TABLE,
    )
    strategies2 = [Strategy((s.position[0] + dx, s.position[1] + dy), s.orientation, CT) for s in strategies]
    assert math.isclose(u0, sc2.utility_of(strategies2), rel_tol=1e-12)
