"""Helpers shared by the backend test modules.

``PyLoopBackend`` (now shipped in :mod:`repro.backend.pyloop_backend`) is
the numba backend *without* compilation: the same scalar-loop kernel bodies
running as plain Python.  It lets the numba kernel logic be exercised
against the numpy oracle on every machine — when numba is installed, the
compiled backend is additionally tested (same bodies, compiled).
"""

from __future__ import annotations

import math

import pytest

from repro import backend as backend_pkg
from repro.backend import KernelBackend, register_backend
from repro.backend.numba_backend import NumbaBackend
from repro.backend.numpy_backend import NumpyBackend
from repro.backend.pyloop_backend import PyLoopBackend
from repro.geometry import rectangle
from repro.model import (
    ChargerType,
    CoefficientTable,
    Device,
    DeviceType,
    PairCoefficients,
    Scenario,
)


def alternative_backends() -> list[KernelBackend]:
    """Every backend that must match the numpy oracle on this machine."""
    alts: list[KernelBackend] = [PyLoopBackend()]
    compiled = NumbaBackend()
    if compiled.available():
        alts.append(compiled.ensure_loaded())
    return alts


@pytest.fixture
def pyloop_registered():
    """The pyloop backend (now package-registered) under a fresh instance."""
    register_backend(PyLoopBackend())
    try:
        yield "pyloop"
    finally:
        # Restore a pristine package-level registration for later tests.
        register_backend(PyLoopBackend())
        backend_pkg._DEFAULT_CACHE.clear()


@pytest.fixture(scope="session")
def numpy_backend() -> NumpyBackend:
    return NumpyBackend()


def solve_scenario() -> Scenario:
    """A small obstacle-rich instance for end-to-end byte-equality tests."""
    ct = ChargerType("ct", math.pi / 2.0, 1.0, 6.0)
    dt = DeviceType("dt", 2.0 * math.pi)
    table = CoefficientTable({("ct", "dt"): PairCoefficients(100.0, 5.0)})
    positions = [(4.0, 4.0), (8.0, 11.0), (12.0, 10.0), (16.0, 14.0), (5.0, 15.0)]
    devices = tuple(Device(p, 0.0, dt, 0.5) for p in positions)
    return Scenario(
        bounds=(0.0, 0.0, 20.0, 20.0),
        devices=devices,
        obstacles=(rectangle(6.0, 6.0, 9.0, 9.0), rectangle(12.0, 3.0, 14.0, 5.0)),
        charger_types=(ct,),
        budgets={"ct": 2},
        table=table,
    )
