"""Cross-backend bit-equality: every backend must match the numpy oracle.

The seam's contract is *bitwise* interchangeability — candidate sets,
cache blobs and placements may not depend on the backend.  Hypothesis
drives the kernels over lattice coordinates (quarter-integer grid) so
degenerate configurations — collinear touches, vertex-grazing rays,
segments lying exactly along edges, zero-aperture sectors — occur with
high probability instead of almost never.

The ``pyloop`` backend (see ``backend_testlib.py``) runs the numba kernel bodies
uncompiled, so the compiled path's logic is verified even on machines
without numba; when numba is importable the compiled backend joins the
comparison too.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from backend_testlib import (  # noqa: F401  (fixtures register on import)
    alternative_backends,
    numpy_backend,
    pyloop_registered,
    solve_scenario,
)

from repro.backend import use_backend
from repro.geometry import Polygon, rectangle, visible_mask, visible_mask_many
from repro.geometry.primitives import TWO_PI

ALTS = alternative_backends()


def alt_ids():
    return [b.name for b in ALTS]


# Quarter-integer lattice coordinates: exact in binary floating point, so
# collinearity and on-boundary cases are *exact*, not approximate.
coord = st.integers(min_value=-20, max_value=20).map(lambda k: k / 4.0)
point = st.tuples(coord, coord)


@st.composite
def lattice_polygon(draw):
    """A valid (positive-area) axis-aligned rectangle on the lattice."""
    x0 = draw(st.integers(min_value=-16, max_value=12))
    y0 = draw(st.integers(min_value=-16, max_value=12))
    w = draw(st.integers(min_value=1, max_value=8))
    h = draw(st.integers(min_value=1, max_value=8))
    return rectangle(x0 / 2.0, y0 / 2.0, (x0 + w) / 2.0, (y0 + h) / 2.0)


@st.composite
def lattice_triangle(draw):
    """A positive-area triangle on the lattice (degenerate draws rejected)."""
    pts = draw(st.lists(point, min_size=3, max_size=3, unique=True))
    (ax, ay), (bx, by), (cx, cy) = pts
    area2 = (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)
    assume(area2 != 0)  # reject collinear triples
    return Polygon(pts if area2 > 0 else list(reversed(pts)))


obstacle = st.one_of(lattice_polygon(), lattice_triangle())


def assert_bits_equal(expected: np.ndarray, got: np.ndarray, label: str) -> None:
    assert got.dtype == expected.dtype, f"{label}: dtype {got.dtype} != {expected.dtype}"
    assert got.shape == expected.shape, f"{label}: shape {got.shape} != {expected.shape}"
    assert got.tobytes() == expected.tobytes(), f"{label}: payload bits differ"


@pytest.mark.parametrize("alt", ALTS, ids=alt_ids())
@settings(max_examples=150, deadline=None)
@given(
    segs=st.lists(st.tuples(point, point), min_size=1, max_size=12),
    poly=obstacle,
)
def test_blocked_segments_bitwise_equal(numpy_backend, alt, segs, poly):
    starts = np.array([s for s, _ in segs], dtype=float)
    ends = np.array([e for _, e in segs], dtype=float)
    c, d, s = poly.edge_arrays()
    expected = numpy_backend.blocked_segments(starts, ends, c, d, s)
    got = alt.blocked_segments(starts, ends, c, d, s)
    assert_bits_equal(expected, np.asarray(got), "blocked_segments")


@pytest.mark.parametrize("alt", ALTS, ids=alt_ids())
@settings(max_examples=150, deadline=None)
@given(pts=st.lists(point, min_size=1, max_size=16), poly=obstacle)
def test_parity_inside_bitwise_equal(numpy_backend, alt, pts, poly):
    points = np.array(pts, dtype=float)
    c, d, _ = poly.edge_arrays()
    expected = numpy_backend.parity_inside(c, d, points)
    got = alt.parity_inside(c, d, points)
    assert_bits_equal(expected, np.asarray(got), "parity_inside")


@pytest.mark.parametrize("alt", ALTS, ids=alt_ids())
@settings(max_examples=100, deadline=None)
@given(
    positions=st.lists(point, min_size=1, max_size=6),
    targets=st.lists(point, min_size=1, max_size=6),
    polys=st.lists(obstacle, min_size=0, max_size=2),
    chunk=st.integers(min_value=1, max_value=64),
)
def test_visible_mask_many_bitwise_equal(numpy_backend, alt, positions, targets, polys, chunk):
    pos = np.array(positions, dtype=float)
    tgt = np.array(targets, dtype=float)
    with use_backend(numpy_backend):
        expected = visible_mask_many(pos, tgt, polys, chunk_size=chunk)
        expected_single = visible_mask(pos[0], tgt, polys)
    with use_backend(alt):
        got = visible_mask_many(pos, tgt, polys, chunk_size=chunk)
        got_single = visible_mask(pos[0], tgt, polys)
    assert_bits_equal(expected, got, "visible_mask_many")
    assert_bits_equal(expected_single, got_single, "visible_mask")
    # The batched row equals the single-origin mask on every backend.
    assert_bits_equal(got[0], got_single, "row-vs-single")


# Bearings on an exact lattice of angles so cone boundaries are grazed.
bearing = st.integers(min_value=0, max_value=63).map(lambda k: k * (TWO_PI / 64.0))
# Half-angles include 0.0 — the zero-area sector — and π (omni cone edge).
half_angle = st.sampled_from(
    [0.0, TWO_PI / 64.0, TWO_PI / 8.0, math.pi / 2.0, math.pi - 1e-9, math.pi]
)


@pytest.mark.parametrize("alt", ALTS, ids=alt_ids())
@settings(max_examples=150, deadline=None)
@given(bearings=st.lists(bearing, min_size=1, max_size=12), half=half_angle)
def test_sweep_coverage_bitwise_equal(numpy_backend, alt, bearings, half):
    b = np.array(bearings, dtype=float)
    thetas_e, cov_e = numpy_backend.sweep_coverage(b, half, 1e-9)
    thetas_g, cov_g = alt.sweep_coverage(b, half, 1e-9)
    assert_bits_equal(thetas_e, np.asarray(thetas_g), "sweep thetas")
    assert_bits_equal(cov_e, np.asarray(cov_g), "sweep coverage")
    # A device always sits on its own clockwise boundary: diagonal covered.
    assert bool(np.all(np.diagonal(cov_g)))


positive = st.integers(min_value=1, max_value=400).map(lambda k: k / 8.0)


@pytest.mark.parametrize("alt", ALTS, ids=alt_ids())
@settings(max_examples=150, deadline=None)
@given(
    rows=st.integers(min_value=1, max_value=4),
    cols=st.integers(min_value=1, max_value=6),
    data=st.data(),
)
def test_power_fill_bitwise_equal(numpy_backend, alt, rows, cols, data):
    a = np.array(data.draw(st.lists(positive, min_size=cols, max_size=cols)))
    b = np.array(data.draw(st.lists(positive, min_size=cols, max_size=cols)))
    flat = np.array(data.draw(st.lists(positive, min_size=cols, max_size=cols)))
    grid = np.array(
        data.draw(
            st.lists(
                st.lists(positive, min_size=cols, max_size=cols),
                min_size=rows,
                max_size=rows,
            )
        )
    )
    assert_bits_equal(
        numpy_backend.power_fill(a, b, flat), np.asarray(alt.power_fill(a, b, flat)), "1d"
    )
    assert_bits_equal(
        numpy_backend.power_fill(a, b, grid), np.asarray(alt.power_fill(a, b, grid)), "2d"
    )


# ---------------------------------------------------------------- solves --


def _solve_scenario():
    return solve_scenario()


def test_candidates_and_solutions_byte_identical_across_backends(pyloop_registered):
    """The acceptance criterion, end to end: candidate blobs and placements
    from different backends are byte-for-byte the same."""
    from repro.core import build_candidate_set, solve_hipo
    from repro.core.reuse import serialize_candidate_set

    sc = _solve_scenario()
    backends = ["numpy", pyloop_registered]
    from repro.backend.numba_backend import NumbaBackend

    if NumbaBackend().available():
        backends.append("numba")

    blobs = {}
    solutions = {}
    for name in backends:
        blobs[name] = serialize_candidate_set(build_candidate_set(sc, backend=name))
        solutions[name] = solve_hipo(sc, backend=name)
    reference = blobs["numpy"]
    for name in backends[1:]:
        assert blobs[name] == reference, f"candidate blob differs on {name}"
        assert solutions[name].utility == solutions["numpy"].utility
        assert solutions[name].approx_utility == solutions["numpy"].approx_utility
        assert [s.position for s in solutions[name].strategies] == [
            s.position for s in solutions["numpy"].strategies
        ]
        assert [s.orientation for s in solutions[name].strategies] == [
            s.orientation for s in solutions["numpy"].strategies
        ]


def test_cache_key_excludes_backend(pyloop_registered):
    """Candidate-cache keys are backend-independent: a set extracted on one
    backend warm-starts a solve on another, byte-identically."""
    from repro.core import solve_hipo
    from repro.core.reuse import CandidateSetCache, extraction_cache_key

    sc = _solve_scenario()
    key = extraction_cache_key(sc)
    cache = CandidateSetCache()
    cold = solve_hipo(sc, backend="numpy", candidate_cache=cache)
    assert cache.stats()["misses"] == 1
    warm = solve_hipo(sc, backend=pyloop_registered, candidate_cache=cache)
    assert cache.stats()["hits"] == 1
    assert extraction_cache_key(sc) == key  # key is a pure content address
    assert warm.utility == cold.utility
    assert [s.position for s in warm.strategies] == [s.position for s in cold.strategies]


def test_solve_span_records_backend():
    from repro.core import solve_hipo

    sol = solve_hipo(_solve_scenario(), backend="numpy")
    solve_span = sol.trace.find_all("solve")[-1]
    assert solve_span.attrs["backend"] == "numpy"
    ext_span = sol.trace.find_all("extraction")[-1]
    assert ext_span.attrs["backend"] == "numpy"
