"""Registry, resolution order and lifecycle of the compute-backend seam."""

from __future__ import annotations

import pytest
from backend_testlib import pyloop_registered  # noqa: F401  (fixture)

from repro import backend as backend_pkg
from repro.backend import (
    BackendUnavailable,
    activate_backend,
    active_backend,
    available_backends,
    backend_status,
    get_backend,
    registered_backends,
    resolve_backend,
    use_backend,
)


def test_builtin_backends_registered():
    names = set(registered_backends())
    assert {"numpy", "numba", "cupy"} <= names
    status = backend_status()
    assert status["numpy"] is True
    assert "numpy" in available_backends()


def test_numpy_always_resolves():
    assert get_backend("numpy").name == "numpy"
    assert get_backend(" NumPy ").name == "numpy"  # normalized
    assert resolve_backend("numpy").name == "numpy"


def test_unknown_backend_is_a_clear_error():
    with pytest.raises(BackendUnavailable, match="unknown backend"):
        get_backend("tpu")


def test_cupy_stub_never_loads():
    with pytest.raises(BackendUnavailable):
        get_backend("cupy")


def test_explicit_unavailable_backend_does_not_fall_back():
    """An explicit request for a missing backend errors instead of silently
    running numpy (auto-selection is where graceful fallback lives)."""
    from repro.backend.numba_backend import NumbaBackend

    if NumbaBackend().available():
        pytest.skip("numba installed; the unavailable path is moot here")
    with pytest.raises(BackendUnavailable, match="not available"):
        get_backend("numba")


def test_auto_selection_prefers_compiled_when_available(monkeypatch):
    from repro.backend.numba_backend import NumbaBackend

    monkeypatch.delenv("REPRO_BACKEND", raising=False)  # CI pins the env
    expected = "numba" if NumbaBackend().available() else "numpy"
    assert resolve_backend(None).name == expected
    assert resolve_backend("auto").name == expected


def test_env_var_selects_backend(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "numpy")
    assert resolve_backend(None).name == "numpy"
    monkeypatch.setenv("REPRO_BACKEND", "bogus")
    with pytest.raises(BackendUnavailable):
        resolve_backend(None)


def test_use_backend_scopes_the_ambient_choice():
    before = active_backend().name
    with use_backend("numpy") as b:
        assert b.name == "numpy"
        assert active_backend() is b
        # Ambient beats the environment inside the block.
        assert resolve_backend(None) is b
    assert active_backend().name == before


def test_use_backend_nests():
    with use_backend("numpy") as outer:
        with use_backend(None) as inner:  # auto defers to ambient
            assert inner is outer


def test_activate_backend_installs_unscoped(pyloop_registered):
    token = backend_pkg._ACTIVE.set(None)  # isolate this test's context
    try:
        activate_backend("pyloop")
        assert active_backend().name == "pyloop"
    finally:
        backend_pkg._ACTIVE.reset(token)


def test_load_failure_reads_as_backend_unavailable():
    from repro.backend import KernelBackend

    class Broken(backend_pkg.KernelBackend):
        name = "broken-test"

        def load(self) -> None:
            raise RuntimeError("compiler exploded")

        def blocked_segments(self, *a):
            raise NotImplementedError

        def parity_inside(self, *a):
            raise NotImplementedError

        def power_fill(self, *a):
            raise NotImplementedError

        def sweep_coverage(self, *a):
            raise NotImplementedError

    with pytest.raises(BackendUnavailable, match="compiler exploded"):
        Broken().ensure_loaded()
    assert isinstance(Broken(), KernelBackend)
