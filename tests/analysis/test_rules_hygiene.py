"""NUM301/OBS401/PCK501: numeric, trace, and pool-payload hygiene."""

from __future__ import annotations


def rule_ids(result):
    return [v.rule_id for v in result.violations]


# ------------------------------------------------------------ NUM301 --


def test_num301_fires_on_float_equality(lint_tree):
    result = lint_tree(
        {
            "geometry/pred.py": """\
    import math

    def on_ring(d, r):
        if d == 0.0:
            return True
        if math.sqrt(d) != r:
            return False
        return d / 2 == r
    """
        },
        select=["NUM301"],
    )
    assert rule_ids(result) == ["NUM301", "NUM301", "NUM301"]
    assert "isclose" in result.violations[0].message


def test_num301_clean_on_int_and_epsilon_compare(lint_tree):
    result = lint_tree(
        {
            "geometry/pred.py": """\
    import math

    EPS = 1e-9

    def on_ring(d, r, k):
        if k == 0:
            return True
        if abs(d - r) <= EPS:
            return True
        return math.isclose(d, r)
    """
        },
        select=["NUM301"],
    )
    assert result.violations == []


def test_num301_out_of_scope_in_serve(lint_tree):
    result = lint_tree(
        {
            "serve/retry.py": """\
    def f(x):
        return x == 0.5
    """
        },
        select=["NUM301"],
    )
    assert result.violations == []


# ------------------------------------------------------------ OBS401 --


def test_obs401_fires_on_bare_span_call(lint_tree):
    result = lint_tree(
        {
            "core/solve.py": """\
    def run(tracer):
        span = tracer.span("solve", phase="extract")
        do_work()
        return span
    """
        },
        select=["OBS401"],
    )
    assert rule_ids(result) == ["OBS401"]
    assert "tracer.span" in result.violations[0].message


def test_obs401_clean_on_with_span(lint_tree):
    result = lint_tree(
        {
            "core/solve.py": """\
    def run(tracer):
        with tracer.span("solve", phase="extract"):
            do_work()
        with tracer.span("a"), tracer.span("b") as s:
            s.set(ok=True)
    """
        },
        select=["OBS401"],
    )
    assert result.violations == []


# ------------------------------------------------------------ PCK501 --


def test_pck501_fires_on_lambda_and_nested_def(lint_tree):
    result = lint_tree(
        {
            "core/par.py": """\
    def run(pool, items):
        def scale(x):
            return x * 2.0

        a = pool.map(lambda x: x + 1, items)
        b = pool.map(scale, items)
        c = my_executor.submit(scale, items[0])
        return a, b, c
    """
        },
        select=["PCK501"],
    )
    assert rule_ids(result) == ["PCK501", "PCK501", "PCK501"]
    messages = " ".join(v.message for v in result.violations)
    assert "lambda" in messages and "scale" in messages


def test_pck501_clean_on_module_level_function(lint_tree):
    result = lint_tree(
        {
            "core/par.py": """\
    def scale(x):
        return x * 2.0

    def run(pool, items):
        return pool.map(scale, items)
    """
        },
        select=["PCK501"],
    )
    assert result.violations == []


def test_pck501_ignores_non_pool_receivers(lint_tree):
    # ``map``/``submit`` on receivers that are not pool-ish are not
    # dispatches (e.g. a plain dict named ``handlers``).
    result = lint_tree(
        {
            "core/par.py": """\
    def run(handlers, items):
        return handlers.map(lambda x: x + 1, items)
    """
        },
        select=["PCK501"],
    )
    assert result.violations == []
