"""DET101/DET102/DET103: good and bad fixture pairs, plus scoping."""

from __future__ import annotations


def rule_ids(result):
    return [v.rule_id for v in result.violations]


# ------------------------------------------------------------ DET101 --


def test_det101_fires_on_global_rng(lint_tree):
    result = lint_tree(
        {
            "core/sample.py": """\
    import random
    import numpy as np

    def jitter():
        return random.random() + np.random.rand() + np.random.uniform(0, 1)
    """
        },
        select=["DET101"],
    )
    assert rule_ids(result) == ["DET101", "DET101", "DET101"]


def test_det101_clean_on_seeded_generator(lint_tree):
    result = lint_tree(
        {
            "core/sample.py": """\
    import numpy as np

    def make_rng(seed: int):
        return np.random.default_rng(seed)

    def jitter(rng: np.random.Generator) -> float:
        return float(rng.random())
    """
        },
        select=["DET101"],
    )
    assert result.violations == []


def test_det101_out_of_scope_in_serve(lint_tree):
    # The serve layer may use ambient randomness (e.g. jitter for retries);
    # determinism rules bind only the numeric core.
    result = lint_tree(
        {
            "serve/backoff.py": """\
    import random

    def jitter():
        return random.random()
    """
        },
        select=["DET101"],
    )
    assert result.violations == []


# ------------------------------------------------------------ DET102 --


def test_det102_fires_on_wall_clock(lint_tree):
    result = lint_tree(
        {
            "model/stamp.py": """\
    import time
    import datetime

    def stamp():
        return time.time(), datetime.datetime.now()
    """
        },
        select=["DET102"],
    )
    assert rule_ids(result) == ["DET102", "DET102"]


def test_det102_clean_on_duration_clocks(lint_tree):
    result = lint_tree(
        {
            "model/stamp.py": """\
    import time

    def measure():
        t0 = time.perf_counter()
        c0 = time.process_time()
        m0 = time.monotonic()
        return time.perf_counter() - t0, c0, m0
    """
        },
        select=["DET102"],
    )
    assert result.violations == []


# ------------------------------------------------------------ DET103 --


def test_det103_fires_on_set_iteration(lint_tree):
    result = lint_tree(
        {
            "geometry/order.py": """\
    def accumulate(names):
        total = 0.0
        for n in set(names):
            total += len(n) * 0.5
        return total, [x for x in {1.0, 2.0}]
    """
        },
        select=["DET103"],
    )
    assert rule_ids(result) == ["DET103", "DET103"]


def test_det103_clean_on_sorted_iteration(lint_tree):
    result = lint_tree(
        {
            "geometry/order.py": """\
    def accumulate(names):
        total = 0.0
        for n in sorted(set(names)):
            total += len(n) * 0.5
        return total
    """
        },
        select=["DET103"],
    )
    assert result.violations == []


# ------------------------------------------------ published entry points --


def test_det_rules_cover_benchmarks_and_examples(lint_tree):
    # Figure scripts are part of the reproducibility surface: the same
    # RNG/wall-clock/hash-order bans apply under benchmarks/ and examples/.
    result = lint_tree(
        {
            "benchmarks/bench_thing.py": """\
    import random

    def sample():
        return random.random()
    """,
            "examples/demo.py": """\
    import time

    def stamp():
        return time.time(), [x for x in {1, 2}]
    """,
        },
        select=["DET"],
    )
    assert sorted(rule_ids(result)) == ["DET101", "DET102", "DET103"]


def test_repo_benchmarks_and_examples_are_det_clean():
    from pathlib import Path

    from repro.analysis import run_analysis

    repo_root = Path(__file__).resolve().parents[2]
    result = run_analysis(
        [repo_root / "benchmarks", repo_root / "examples"], select=["DET"]
    )
    assert result.violations == []
