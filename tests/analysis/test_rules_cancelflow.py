"""CNC205: interprocedural cancel-token propagation."""

from __future__ import annotations


def rule_ids(result):
    return [v.rule_id for v in result.violations]


def test_cnc205_flags_dropped_token_two_hops_deep(lint_tree):
    # CNC203's single-hop heuristic is satisfied here (run forwards the
    # token to helper); the interprocedural rule catches helper dropping it
    # before the actual work loop.
    result = lint_tree(
        {
            "core/solve.py": """\
            def run(cancel=None):
                return helper(cancel)

            def helper(cancel=None):
                return work()

            def work(cancel=None):
                total = 0
                for i in range(10):
                    total += i
                return total
            """
        },
        select=["CNC205"],
    )
    assert rule_ids(result) == ["CNC205"]
    msg = result.violations[0].message
    assert "helper" in msg and "work" in msg
    assert "without forwarding" in msg
    assert "DELETE" in msg


def test_cnc205_flags_transitively_loopy_callee(lint_tree):
    # The callee itself has no loop, but reaches one through its own calls.
    result = lint_tree(
        {
            "core/deep.py": """\
            def entry(cancel=None):
                return middle()

            def middle(cancel=None):
                return spin()

            def spin():
                while True:
                    pass
            """
        },
        select=["CNC205"],
    )
    assert rule_ids(result) == ["CNC205"]
    assert "middle" in result.violations[0].message


def test_cnc205_clean_when_token_is_forwarded(lint_tree):
    result = lint_tree(
        {
            "core/good.py": """\
            def run(cancel=None):
                helper(cancel)
                return work(cancel=cancel)

            def helper(cancel=None):
                return work(cancel)

            def work(cancel=None):
                for i in range(10):
                    pass
            """
        },
        select=["CNC205"],
    )
    assert result.violations == []


def test_cnc205_ignores_callees_that_do_not_cooperate(lint_tree):
    # A loopy callee without a cancel parameter is CNC203's problem at its
    # own definition site; the caller cannot forward a token it won't take.
    # A cancel-accepting callee that never loops needs no token either.
    result = lint_tree(
        {
            "core/mixed.py": """\
            def run(cancel=None):
                crunch()
                return fmt()

            def crunch():
                for i in range(10):
                    pass

            def fmt(cancel=None):
                return "x"
            """
        },
        select=["CNC205"],
    )
    assert result.violations == []


def test_cnc205_out_of_scope_outside_core(lint_tree):
    result = lint_tree(
        {
            "serve/api.py": """\
            def run(cancel=None):
                return work()

            def work(cancel=None):
                for i in range(10):
                    pass
            """
        },
        select=["CNC205"],
    )
    assert result.violations == []
