"""TYP601/TYP602: the AST half of the strict-typing gate."""

from __future__ import annotations


def rule_ids(result):
    return [v.rule_id for v in result.violations]


# ------------------------------------------------------------ TYP601 --


def test_typ601_fires_and_names_missing_annotations(lint_tree):
    result = lint_tree(
        {
            "model/calc.py": """\
    class Calc:
        def __init__(self, base, scale: float):
            self.base = base
            self.scale = scale

        def apply(self, x: float) -> float:
            return x * self.scale

    def helper(a, *rest, flag: bool = False, **extra) -> int:
        return len(rest)
    """
        },
        select=["TYP601"],
    )
    assert rule_ids(result) == ["TYP601", "TYP601"]
    init, helper = result.violations
    # self is exempt; base lacks a param annotation, __init__ lacks -> None.
    assert "base" in init.message and "return" in init.message
    assert "scale" not in init.message
    assert "a" in helper.message and "*rest" in helper.message
    assert "**extra" in helper.message and "flag" not in helper.message


def test_typ601_clean_when_fully_annotated(lint_tree):
    result = lint_tree(
        {
            "model/calc.py": """\
    from typing import Any

    class Calc:
        def __init__(self, base: float) -> None:
            self.base = base

        def apply(self, x: float, *rest: float, **extra: Any) -> float:
            return x + self.base
    """
        },
        select=["TYP601"],
    )
    assert result.violations == []


def test_typ601_out_of_scope_in_core(lint_tree):
    # The typed scope mirrors pyproject's mypy packages; core/ is not in it.
    result = lint_tree(
        {
            "core/calc.py": """\
    def helper(a):
        return a
    """
        },
        select=["TYP601"],
    )
    assert result.violations == []


# ------------------------------------------------------------ TYP602 --


def test_typ602_fires_on_bare_generics(lint_tree):
    result = lint_tree(
        {
            "serve/payload.py": """\
    def load(raw: bytes) -> dict:
        out: list = []
        return {"items": out}
    """
        },
        select=["TYP602"],
    )
    assert sorted(v.message.split("'")[1] for v in result.violations) == ["dict", "list"]
    assert all(v.rule_id == "TYP602" for v in result.violations)


def test_typ602_clean_when_parameterized(lint_tree):
    result = lint_tree(
        {
            "serve/payload.py": """\
    from typing import Any

    def load(raw: bytes) -> dict[str, Any]:
        out: list[dict[str, Any]] = []
        return {"items": out}
    """
        },
        select=["TYP602"],
    )
    assert result.violations == []


def test_typ602_string_annotation_anchored_at_original_line(lint_tree):
    result = lint_tree(
        {
            "serve/payload.py": """\
    def a() -> int:
        return 1

    def load(raw: bytes) -> "dict":
        return {}
    """
        },
        select=["TYP602"],
    )
    assert rule_ids(result) == ["TYP602"]
    # Anchored at the annotation on line 4, not at the parsed string's
    # internal line 1.
    assert result.violations[0].line == 4
