"""CNC204: global lock-order cycle detection."""

from __future__ import annotations

# A real two-lock deadlock: Queue.push acquires Store._lock while holding
# Queue._lock (via self.store.flush()), Store.drain acquires Queue._lock
# while holding Store._lock (via self.queue.push()).  Two threads entering
# from different sides block forever.
CYCLE_FIXTURE = {
    "jobs.py": """\
    import threading

    from store import Store

    class Queue:
        def __init__(self):
            self._lock = threading.Lock()
            self.store = Store()

        def push(self):
            with self._lock:
                self.store.flush()
    """,
    "store.py": """\
    import threading

    from jobs import Queue

    class Store:
        def __init__(self):
            self._lock = threading.Lock()
            self.queue = Queue()

        def flush(self):
            with self._lock:
                return 1

        def drain(self):
            with self._lock:
                self.queue.push()
    """,
}


def test_cnc204_reports_cycle_with_both_witness_paths(lint_tree):
    result = lint_tree(dict(CYCLE_FIXTURE), select=["CNC204"])
    assert [v.rule_id for v in result.violations] == ["CNC204"]
    msg = result.violations[0].message
    assert "lock-order cycle Queue._lock -> Store._lock -> Queue._lock" in msg
    assert "potential deadlock" in msg
    # Both directions of the cycle carry their own witness acquisition path.
    assert "[Queue._lock then Store._lock]" in msg
    assert "[Store._lock then Queue._lock]" in msg
    assert "jobs.py:" in msg and "store.py:" in msg
    assert "push acquires Queue._lock" in msg
    assert "drain acquires Store._lock" in msg


def test_cnc204_fires_once_per_cycle(lint_tree):
    # Two files participate; the cycle must not be double-reported.
    result = lint_tree(dict(CYCLE_FIXTURE), select=["CNC204"])
    assert len(result.violations) == 1


def test_cnc204_clean_on_consistent_order(lint_tree):
    result = lint_tree(
        {
            "jobs.py": """\
            import threading

            from store import Store

            class Queue:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.store = Store()

                def push(self):
                    with self._lock:
                        self.store.flush()
            """,
            "store.py": """\
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()

                def flush(self):
                    with self._lock:
                        return 1
            """,
        },
        select=["CNC204"],
    )
    assert result.violations == []


def test_cnc204_shared_ctor_lock_is_one_node(lint_tree):
    # The serve-tier sharing pattern: Cache takes the owner's lock through
    # its constructor, so "nested" acquisition is reentry on one mutex, not
    # an ordering edge, and must not produce a cycle.
    result = lint_tree(
        {
            "cache.py": """\
            import threading

            class Cache:
                def __init__(self, lock=None):
                    self._lock = lock if lock is not None else threading.Lock()

                def get(self):
                    with self._lock:
                        return 1
            """,
            "svc.py": """\
            import threading

            from cache import Cache

            class Service:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.cache = Cache(lock=self._lock)

                def snapshot(self):
                    with self._lock:
                        return self.cache.get()
            """,
        },
        select=["CNC204"],
    )
    assert result.violations == []


def test_cnc204_module_lock_cycle_via_calls(lint_tree):
    result = lint_tree(
        {
            "m1.py": """\
            import threading

            import m2

            LOCK_A = threading.Lock()

            def forward():
                with LOCK_A:
                    m2.backward_inner()

            def forward_inner():
                with LOCK_A:
                    return 1
            """,
            "m2.py": """\
            import threading

            import m1

            LOCK_B = threading.Lock()

            def backward():
                with LOCK_B:
                    m1.forward_inner()

            def backward_inner():
                with LOCK_B:
                    return 1
            """,
        },
        select=["CNC204"],
    )
    assert [v.rule_id for v in result.violations] == ["CNC204"]
    msg = result.violations[0].message
    assert "m1.LOCK_A" in msg and "m2.LOCK_B" in msg
