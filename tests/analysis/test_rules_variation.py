"""VAR801: variation purity — good and bad fixtures, plus scoping."""

from __future__ import annotations


def rule_ids(result):
    return [v.rule_id for v in result.violations]


def test_var801_fires_on_every_impurity(lint_tree):
    result = lint_tree(
        {
            "variation/bad.py": """\
    import os
    import random
    import time

    import numpy as np

    def build(params, seed):
        t = time.time()
        stamp = time.perf_counter()
        x = random.random()
        y = np.random.rand(3)
        home = os.environ["HOME"]
        cfg = os.environ.get("CFG")
        z = os.getenv("Z")
        return t, stamp, x, y, home, cfg, z
    """
        },
        select=["VAR801"],
    )
    assert rule_ids(result) == ["VAR801"] * 7


def test_var801_fires_on_datetime_now(lint_tree):
    result = lint_tree(
        {
            "variation/stamped.py": """\
    from datetime import datetime

    def stamp():
        return datetime.now().isoformat()
    """
        },
        select=["VAR801"],
    )
    assert rule_ids(result) == ["VAR801"]


def test_var801_clean_on_pure_builder(lint_tree):
    result = lint_tree(
        {
            "variation/good.py": """\
    import numpy as np

    def build(params: dict, seed: int):
        rng = np.random.default_rng(np.random.SeedSequence((7, seed)))
        return rng.uniform(0.0, float(params["size"]))
    """
        },
        select=["VAR801"],
    )
    assert rule_ids(result) == []


def test_var801_scoped_to_variation_only(lint_tree):
    # The same impure reads outside variation/ are DET territory, not VAR801.
    result = lint_tree(
        {
            "obs/clock.py": """\
    import os
    import time

    def snapshot():
        return time.perf_counter(), os.environ.get("HOME")
    """
        },
        select=["VAR801"],
    )
    assert rule_ids(result) == []


def test_var801_noqa_suppression(lint_tree):
    result = lint_tree(
        {
            "variation/escape.py": """\
    import os

    def knob():
        return os.getenv("REPRO_KNOB")  # repro: noqa[VAR801]
    """
        },
        select=["VAR801"],
    )
    assert rule_ids(result) == []


def test_det101_covers_generator_modules(lint_tree):
    result = lint_tree(
        {
            "experiments/generators.py": """\
    import numpy as np

    def sloppy():
        return np.random.rand()
    """
        },
        select=["DET101"],
    )
    assert rule_ids(result) == ["DET101"]
