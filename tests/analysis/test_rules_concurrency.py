"""CNC201/CNC202/CNC203: lock discipline and cancellation plumbing."""

from __future__ import annotations


def rule_ids(result):
    return [v.rule_id for v in result.violations]


# ------------------------------------------------------------ CNC201 --


def test_cnc201_fires_on_unguarded_mutation(lint_tree):
    result = lint_tree(
        {
            "serve/box.py": """\
    import threading

    class Box:
        def __init__(self):
            self._lock = threading.Lock()
            self._items = []
            self._total = 0

        def add(self, x):
            self._items.append(x)

        def bump(self):
            self._total += 1
    """
        },
        select=["CNC201"],
    )
    assert rule_ids(result) == ["CNC201", "CNC201"]


def test_cnc201_clean_when_guarded(lint_tree):
    result = lint_tree(
        {
            "serve/box.py": """\
    import threading

    class Box:
        def __init__(self):
            self._lock = threading.Lock()
            self._items = []

        def add(self, x):
            with self._lock:
                self._items.append(x)
    """
        },
        select=["CNC201"],
    )
    assert result.violations == []


def test_cnc201_atomic_containers_exempt(lint_tree):
    # deque/Event mutations are GIL-atomic or synchronization primitives;
    # the AnnAssign form (attr: deque = deque()) must be recognized too.
    result = lint_tree(
        {
            "serve/box.py": """\
    import threading
    from collections import deque

    class Box:
        def __init__(self):
            self._lock = threading.Lock()
            self._guarded = []
            self.log: deque = deque(maxlen=8)
            self._stop = threading.Event()

        def add(self, x):
            self.log.append(x)
            self._stop.set()
    """
        },
        select=["CNC201"],
    )
    assert result.violations == []


def test_cnc201_locked_suffix_convention_exempt(lint_tree):
    result = lint_tree(
        {
            "serve/box.py": """\
    import threading

    class Box:
        def __init__(self):
            self._lock = threading.Lock()
            self._items = []

        def add(self, x):
            with self._lock:
                self._add_locked(x)

        def _add_locked(self, x):
            self._items.append(x)
    """
        },
        select=["CNC201"],
    )
    assert result.violations == []


def test_cnc201_condition_sharing_lock_counts_as_guard(lint_tree):
    result = lint_tree(
        {
            "serve/q.py": """\
    import threading

    class Q:
        def __init__(self):
            self._lock = threading.Lock()
            self._not_empty = threading.Condition(self._lock)
            self._items = []

        def put(self, x):
            with self._not_empty:
                self._items.append(x)
                self._not_empty.notify()
    """
        },
        select=["CNC201"],
    )
    assert result.violations == []


def test_cnc201_ignores_classes_without_locks(lint_tree):
    result = lint_tree(
        {
            "serve/plain.py": """\
    class Plain:
        def __init__(self):
            self._items = []

        def add(self, x):
            self._items.append(x)
    """
        },
        select=["CNC201"],
    )
    assert result.violations == []


# ------------------------------------------------------------ CNC202 --


def test_cnc202_fires_on_blocking_call_under_lock(lint_tree):
    result = lint_tree(
        {
            "serve/svc.py": """\
    import threading
    import time

    class Svc:
        def __init__(self):
            self._lock = threading.Lock()
            self._n = 0

        def slow(self):
            with self._lock:
                time.sleep(0.1)
                self._n += 1
    """
        },
        select=["CNC202"],
    )
    assert rule_ids(result) == ["CNC202"]
    assert "time.sleep" in result.violations[0].message


def test_cnc202_fires_on_nested_own_locks(lint_tree):
    result = lint_tree(
        {
            "serve/svc.py": """\
    import threading

    class Svc:
        def __init__(self):
            self._a = threading.Lock()
            self._b = threading.Lock()

        def both(self):
            with self._a:
                with self._b:
                    pass
    """
        },
        select=["CNC202"],
    )
    assert rule_ids(result) == ["CNC202"]
    assert "lock-ordering" in result.violations[0].message


def test_cnc202_fires_on_cross_object_lock_acquisition(lint_tree):
    # The api.py bug shape: reading a lock-acquiring property of another
    # lock-owning object while holding your own lock.
    result = lint_tree(
        {
            "serve/svc.py": """\
    import threading

    class JobQueue:
        def __init__(self):
            self._lock = threading.Lock()
            self._items = []

        @property
        def depth(self):
            with self._lock:
                return len(self._items)

    class Svc:
        def __init__(self):
            self._metrics_lock = threading.Lock()
            self.queue = JobQueue()
            self.peak = 0

        def record(self):
            with self._metrics_lock:
                self.peak = max(self.peak, self.queue.depth)
    """
        },
        select=["CNC202"],
    )
    assert rule_ids(result) == ["CNC202"]
    assert "queue.depth" in result.violations[0].message


def test_cnc202_clean_when_read_hoisted(lint_tree):
    result = lint_tree(
        {
            "serve/svc.py": """\
    import threading

    class JobQueue:
        def __init__(self):
            self._lock = threading.Lock()
            self._items = []

        @property
        def depth(self):
            with self._lock:
                return len(self._items)

    class Svc:
        def __init__(self):
            self._metrics_lock = threading.Lock()
            self.queue = JobQueue()
            self.peak = 0

        def record(self):
            depth = self.queue.depth
            with self._metrics_lock:
                self.peak = max(self.peak, depth)
    """
        },
        select=["CNC202"],
    )
    assert result.violations == []


def test_cnc202_condition_wait_on_held_lock_is_sanctioned(lint_tree):
    result = lint_tree(
        {
            "serve/q.py": """\
    import threading

    class Q:
        def __init__(self):
            self._lock = threading.Lock()
            self._not_empty = threading.Condition(self._lock)
            self._items = []

        def pop(self):
            with self._not_empty:
                while not self._items:
                    self._not_empty.wait()
                return self._items.pop()
    """
        },
        select=["CNC202"],
    )
    assert result.violations == []


def test_cnc202_thread_join_under_lock_fires_but_str_join_does_not(lint_tree):
    result = lint_tree(
        {
            "serve/svc.py": """\
    import threading

    class Svc:
        def __init__(self):
            self._lock = threading.Lock()
            self._threads = []

        def stop(self):
            with self._lock:
                for t in self._threads:
                    t.join(1.0)

        def label(self, parts):
            with self._lock:
                return ", ".join(parts)
    """
        },
        select=["CNC202"],
    )
    assert rule_ids(result) == ["CNC202"]
    assert "join" in result.violations[0].message


# ------------------------------------------------------------ CNC203 --


def test_cnc203_fires_when_cancel_ignored(lint_tree):
    result = lint_tree(
        {
            "core/work.py": """\
    def run(data, cancel=None):
        total = 0.0
        for d in data:
            total += d
        return total
    """
        },
        select=["CNC203"],
    )
    assert rule_ids(result) == ["CNC203"]


def test_cnc203_clean_when_polled_or_forwarded(lint_tree):
    result = lint_tree(
        {
            "core/work.py": """\
    from repro.core import check_cancel

    def run(data, cancel=None):
        total = 0.0
        for d in data:
            check_cancel(cancel)
            total += d
        return total

    def outer(data, cancel=None):
        return run(data, cancel=cancel)

    def polls(data, cancel):
        for d in data:
            if cancel is not None and cancel.is_set():
                break
    """
        },
        select=["CNC203"],
    )
    assert result.violations == []


def test_cnc203_out_of_scope_outside_core(lint_tree):
    result = lint_tree(
        {
            "serve/work.py": """\
    def run(data, cancel=None):
        return sum(data)
    """
        },
        select=["CNC203"],
    )
    assert result.violations == []
