"""Engine mechanics: suppressions, selection, exit codes, output formats."""

from __future__ import annotations

import json

import pytest

from repro.analysis import LINT_SCHEMA, UNUSED_SUPPRESSION_ID, main, run_analysis
from repro.analysis.engine import AnalysisError


def rule_ids(result):
    return [v.rule_id for v in result.violations]


_BAD_DET101 = """\
    import random

    def draw():
        return random.random()
"""


def test_violation_fields_and_sorting(lint_tree):
    result = lint_tree(
        {
            "core/b.py": _BAD_DET101,
            "core/a.py": _BAD_DET101,
        }
    )
    assert rule_ids(result) == ["DET101", "DET101"]
    paths = [v.path for v in result.violations]
    assert paths == sorted(paths)  # sorted by location
    v = result.violations[0]
    assert v.severity == "error"
    assert v.line == 4 and v.col > 0
    assert "random.random" in v.message
    assert v.path in v.format() and "DET101" in v.format()


def test_noqa_suppresses_and_counts_as_used(lint_tree):
    result = lint_tree(
        {
            "core/a.py": """\
    import random

    def draw():
        return random.random()  # repro: noqa[DET101] -- seeded upstream, test fixture
    """
        }
    )
    assert result.violations == []
    assert result.exit_code() == 0


def test_unused_noqa_reported_as_sup001_warning(lint_tree):
    result = lint_tree(
        {
            "core/a.py": """\
    def clean():
        return 1  # repro: noqa[DET101]
    """
        }
    )
    assert rule_ids(result) == [UNUSED_SUPPRESSION_ID]
    assert result.violations[0].severity == "warning"
    assert result.errors == 0 and result.warnings == 1
    # Warnings only: clean exit by default, failure under --strict.
    assert result.exit_code() == 0
    assert result.exit_code(strict=True) == 1


def test_noqa_in_docstring_is_not_a_suppression(lint_tree):
    result = lint_tree(
        {
            "core/a.py": '''\
    def helper():
        """Mentions the # repro: noqa[DET101] syntax in prose only."""
        return 1
    '''
        }
    )
    assert result.violations == []  # no SUP001: the docstring is not a comment


def test_noqa_multiple_ids_and_case_insensitive(lint_tree):
    result = lint_tree(
        {
            "core/a.py": """\
    import random

    def draw():
        return random.random()  # repro: noqa[det101, DET102] -- fixture
    """
        }
    )
    # DET101 suppressed (used); DET102 never fired -> unused warning.
    assert rule_ids(result) == [UNUSED_SUPPRESSION_ID]
    assert "DET102" in result.violations[0].message


def test_select_and_ignore_by_prefix(lint_tree):
    files = {
        "core/a.py": """\
    import random
    import time

    def draw():
        return random.random() + time.time()
    """
    }
    both = lint_tree(files)
    assert sorted(rule_ids(both)) == ["DET101", "DET102"]
    only_101 = lint_tree(files, select=["DET101"])
    assert rule_ids(only_101) == ["DET101"]
    family = lint_tree(files, select=["DET"])
    assert sorted(rule_ids(family)) == ["DET101", "DET102"]
    ignored = lint_tree(files, ignore=["DET102"])
    assert rule_ids(ignored) == ["DET101"]
    assert "DET102" not in ignored.rules_run


def test_result_to_dict_schema(lint_tree):
    result = lint_tree({"core/a.py": _BAD_DET101})
    doc = result.to_dict()
    assert doc["schema"] == LINT_SCHEMA
    assert doc["counts"] == {"error": 1, "warning": 0}
    assert doc["files"] == 1
    (v,) = doc["violations"]
    assert set(v) == {"rule", "severity", "path", "line", "col", "message"}
    json.dumps(doc)  # must be JSON-serializable as-is


def test_unreadable_path_raises_analysis_error(tmp_path):
    with pytest.raises(AnalysisError):
        run_analysis([tmp_path / "does-not-exist"])


def test_syntax_error_raises_analysis_error(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    with pytest.raises(AnalysisError):
        run_analysis([tmp_path])


def test_main_exit_codes_and_json_output(tmp_path, capsys):
    src = tmp_path / "core"
    src.mkdir()
    (src / "a.py").write_text("import random\n\ndef f():\n    return random.random()\n")

    assert main([str(tmp_path), "--format", "json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == LINT_SCHEMA
    assert doc["counts"]["error"] == 1

    (src / "a.py").write_text("def f():\n    return 1\n")
    assert main([str(tmp_path)]) == 0

    assert main([str(tmp_path / "missing")]) == 2
    assert "error" in capsys.readouterr().err


def test_main_strict_promotes_warnings(tmp_path):
    src = tmp_path / "core"
    src.mkdir()
    (src / "a.py").write_text("def f():\n    return 1  # repro: noqa[DET101]\n")
    assert main([str(tmp_path)]) == 0
    assert main([str(tmp_path), "--strict"]) == 1


def test_main_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rid in ("DET101", "CNC201", "NUM301", "OBS401", "PCK501", "TYP601"):
        assert rid in out


def test_unknown_rule_id_raises_analysis_error(lint_tree):
    with pytest.raises(AnalysisError, match="unknown rule id 'NOPE'"):
        lint_tree({"core/a.py": _BAD_DET101}, select=["NOPE"])
    with pytest.raises(AnalysisError, match="unknown rule id 'DET10X'"):
        lint_tree({"core/a.py": _BAD_DET101}, ignore=["DET10X"])
    # Prefixes that match at least one registered rule stay valid.
    lint_tree({"core/a.py": _BAD_DET101}, select=["DET", "SUP001"])


def test_unknown_rule_id_exits_2_via_cli(tmp_path):
    """The exact CI invocation: a --select typo must fail usage-style."""
    import subprocess
    import sys
    from pathlib import Path

    (tmp_path / "a.py").write_text("x = 1\n")
    repo_root = Path(__file__).resolve().parents[2]
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", str(tmp_path), "--select", "NOPE"],
        capture_output=True,
        text=True,
        cwd=repo_root,
        env={"PYTHONPATH": str(repo_root / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 2
    assert "NOPE" in proc.stderr
    assert "unknown rule id" in proc.stderr


def test_sup001_multi_rule_noqa_reports_only_unused_ids(lint_tree):
    result = lint_tree(
        {
            "core/a.py": """\
    import random
    import time

    def draw():
        return random.random() + time.time()  # repro: noqa[DET101,DET102,CNC201] -- fixture
    """
        }
    )
    # DET101/DET102 both fire and are suppressed; CNC201 never fires here.
    assert rule_ids(result) == [UNUSED_SUPPRESSION_ID]
    msg = result.violations[0].message
    assert "CNC201" in msg
    assert "DET101" not in msg and "DET102" not in msg


def test_noqa_works_inside_decorated_and_nested_functions(lint_tree):
    result = lint_tree(
        {
            "core/a.py": """\
    import functools
    import random

    @functools.lru_cache(maxsize=None)
    def cached_draw():
        return random.random()  # repro: noqa[DET101] -- fixture

    def outer():
        def inner():
            return random.random()  # repro: noqa[DET101] -- fixture

        return inner
    """
        },
        select=["DET101"],
    )
    assert result.violations == []
    strict = lint_tree(
        {
            "core/b.py": """\
    import functools
    import random

    @functools.lru_cache(maxsize=None)
    def cached_draw():
        return random.random()
    """
        },
        select=["DET101"],
    )
    assert rule_ids(strict) == ["DET101"]


def test_lint_summary_reports_per_family_rule_counts(tmp_path):
    from repro.analysis import lint_summary

    summary = lint_summary([tmp_path])
    assert summary["rules"] == sum(summary["families"].values())
    for family in ("BKD", "CNC", "DET", "TYP"):
        assert summary["families"][family] >= 2
    assert summary["families"]["CTX"] == 1
    assert summary["errors"] == 0 and summary["warnings"] == 0
