"""The analyzer gates its own repository — and CI can rely on the exit code."""

from __future__ import annotations

import subprocess
import sys
import textwrap
from pathlib import Path

from repro.analysis import default_rules, default_source_root, main, run_analysis

REPO_ROOT = Path(__file__).resolve().parents[2]

# The shape of regression ci.sh must catch: an unseeded RNG call in the
# numeric core and an unguarded mutation in a lock-owning serve class.
_BROKEN_TREE = {
    "core/solver.py": """\
        import random

        def perturb(x):
            return x + random.random()
    """,
    "serve/registry.py": """\
        import threading

        class Registry:
            def __init__(self):
                self._lock = threading.Lock()
                self._jobs = {}

            def register(self, job):
                self._jobs[job.id] = job
    """,
}


def _write_tree(root: Path) -> None:
    for rel, source in _BROKEN_TREE.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))


def test_src_repro_is_clean():
    """Acceptance: the analyzer over src/repro finds nothing to report.

    Zero violations — not merely zero errors — so there are no warnings
    and no bug-masking suppressions hiding real findings either.
    """
    result = run_analysis([default_source_root()])
    assert result.violations == []
    assert result.exit_code(strict=True) == 0


def test_default_source_root_is_the_package():
    root = default_source_root()
    assert root.name == "repro"
    assert (root / "analysis" / "engine.py").is_file()


def test_at_least_eight_distinct_rules_registered():
    ids = {rule.rule_id for rule in default_rules()}
    assert len(ids) == len(default_rules())  # no duplicate IDs
    assert len(ids) >= 8


def test_broken_tree_fails_via_main(tmp_path):
    _write_tree(tmp_path)
    assert main([str(tmp_path)]) == 1
    result = run_analysis([tmp_path])
    fired = {v.rule_id for v in result.violations}
    # serve/ is also in the typed scope, so TYP601 piles on; the point is
    # that the planted determinism and lock violations are both caught.
    assert {"CNC201", "DET101"} <= fired


def test_broken_tree_fails_via_module_subprocess(tmp_path):
    """The exact invocation scripts/ci.sh uses must exit non-zero."""
    _write_tree(tmp_path)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(tmp_path)],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 1
    assert "DET101" in proc.stdout and "CNC201" in proc.stdout


def test_repo_ci_script_runs_the_analyzer():
    ci = (REPO_ROOT / "scripts" / "ci.sh").read_text()
    assert "repro.analysis" in ci
    assert "typecheck.sh" in ci
    # Static gates come before the test suite (fail fast).
    assert ci.index("repro.analysis") < ci.index("pytest")
