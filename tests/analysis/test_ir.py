"""Whole-program IR and call-graph resolution (``analysis/ir`` + ``callgraph``)."""

from __future__ import annotations

import textwrap

from repro.analysis.callgraph import build_callgraph
from repro.analysis.engine import Project, collect_files, load_module
from repro.analysis.ir import build_project_ir, module_name


def build_ir(tmp_path, files):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    project = Project(modules=[load_module(root, f) for root, f in collect_files([tmp_path])])
    return build_project_ir(project)


def test_module_name_of_display_paths():
    assert module_name("serve/api.py") == "serve.api"
    assert module_name("backend/__init__.py") == "backend"
    assert module_name("cli.py") == "cli"


def test_resolve_symbol_chases_init_reexports(tmp_path):
    ir = build_ir(
        tmp_path,
        {
            "pkg/__init__.py": "from .impl import helper\n",
            "pkg/impl.py": "def helper():\n    return 1\n",
            "main.py": "from pkg import helper\n",
        },
    )
    fn = ir.resolve_symbol("pkg", "helper")
    assert fn is not None and fn.qualname == "pkg.impl:helper"
    # The importing module's local name maps to the package, not the impl.
    assert ir.by_modname["main"].imports["helper"] == ("pkg", "helper")


def test_condition_shares_the_underlying_lock(tmp_path):
    ir = build_ir(
        tmp_path,
        {
            "q.py": """\
            import threading

            class Queue:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._not_empty = threading.Condition(self._lock)
            """
        },
    )
    assert ir.canonical_lock("Queue._not_empty") == ir.canonical_lock("Queue._lock")
    aliases = ir.lock_aliases()
    rep = ir.canonical_lock("Queue._lock")
    assert aliases[rep] == ("Queue._lock", "Queue._not_empty")


def test_ctor_lock_param_aliases_across_classes(tmp_path):
    ir = build_ir(
        tmp_path,
        {
            "cache.py": """\
            import threading

            class Cache:
                def __init__(self, lock=None):
                    self._lock = lock if lock is not None else threading.Lock()
            """,
            "svc.py": """\
            import threading
            from cache import Cache

            class Service:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.cache = Cache(lock=self._lock)
            """,
        },
    )
    assert ir.canonical_lock("Cache._lock") == ir.canonical_lock("Service._lock")
    # The concretely-constructed lock wins the representative election.
    assert ir.canonical_lock("Cache._lock") == "Service._lock"


def test_lock_reach_is_transitive_with_witness_path(tmp_path):
    ir = build_ir(
        tmp_path,
        {
            "locks.py": """\
            import threading

            GUARD = threading.Lock()

            def inner():
                with GUARD:
                    return 1
            """,
            "outer.py": """\
            from locks import inner

            def run():
                return inner()
            """,
        },
    )
    cg = build_callgraph(ir)
    reach = cg.lock_reach("outer:run")
    assert set(reach) == {"locks.GUARD"}
    steps = [s.format() for s in reach["locks.GUARD"]]
    assert steps[0].startswith("outer.py:") and "run calls inner" in steps[0]
    assert steps[1].startswith("locks.py:") and "inner acquires locks.GUARD" in steps[1]


def test_loop_reach_is_transitive(tmp_path):
    ir = build_ir(
        tmp_path,
        {
            "work.py": """\
            def spin():
                while True:
                    pass

            def middle():
                spin()

            def flat():
                return 1
            """
        },
    )
    cg = build_callgraph(ir)
    assert cg.loop_reach("work:spin")
    assert cg.loop_reach("work:middle")
    assert not cg.loop_reach("work:flat")


def test_self_attr_method_calls_resolve_through_attr_types(tmp_path):
    ir = build_ir(
        tmp_path,
        {
            "a.py": """\
            from b import Store

            class Queue:
                def __init__(self):
                    self.store = Store()

                def push(self):
                    self.store.flush()
            """,
            "b.py": """\
            class Store:
                def flush(self):
                    return 1
            """,
        },
    )
    cg = build_callgraph(ir)
    callees = [callee for callee, _ in cg.callees("a:Queue.push")]
    assert callees == ["b:Store.flush"]
