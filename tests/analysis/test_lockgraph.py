"""The ``repro.lockgraph/v1`` artifact: determinism, schema, CLI."""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import default_source_root
from repro.analysis.lockgraph import (
    LOCKGRAPH_SCHEMA,
    build_lock_graph,
    validate_lock_graph,
    write_lock_graph,
)

FIXTURE = {
    "jobs.py": """\
    import threading

    from store import Store

    class Queue:
        def __init__(self):
            self._lock = threading.Lock()
            self._not_empty = threading.Condition(self._lock)
            self.store = Store()

        def push(self):
            with self._lock:
                self.store.flush()
    """,
    "store.py": """\
    import threading

    class Store:
        def __init__(self):
            self._lock = threading.Lock()

        def flush(self):
            with self._lock:
                return 1
    """,
}


def write_fixture(tmp_path: Path) -> Path:
    for rel, source in FIXTURE.items():
        (tmp_path / rel).write_text(textwrap.dedent(source))
    return tmp_path


def test_lock_graph_document_shape(tmp_path):
    doc = build_lock_graph([write_fixture(tmp_path)])
    assert doc["schema"] == LOCKGRAPH_SCHEMA
    locks = {lock["id"]: lock["aliases"] for lock in doc["locks"]}
    assert locks["Queue._lock"] == ["Queue._lock", "Queue._not_empty"]
    assert locks["Store._lock"] == ["Store._lock"]
    assert [(e["from"], e["to"]) for e in doc["edges"]] == [("Queue._lock", "Store._lock")]
    witness = doc["edges"][0]["witness"]
    assert witness[0]["path"] == "jobs.py" and "acquires Queue._lock" in witness[0]["text"]
    assert witness[-1]["path"] == "store.py" and "acquires Store._lock" in witness[-1]["text"]
    assert doc["cycles"] == []
    validate_lock_graph(doc)


def test_lock_graph_serialization_is_byte_identical(tmp_path):
    root = write_fixture(tmp_path)
    out1 = write_lock_graph(build_lock_graph([root]), tmp_path / "g1.json")
    out2 = write_lock_graph(build_lock_graph([root]), tmp_path / "g2.json")
    b1, b2 = out1.read_bytes(), out2.read_bytes()
    assert b1 == b2
    assert b1.endswith(b"\n")


def test_lock_graph_round_trips_through_validator(tmp_path):
    root = write_fixture(tmp_path)
    out = write_lock_graph(build_lock_graph([root]), tmp_path / "graph.json")
    validate_lock_graph(json.loads(out.read_text()))


def test_validator_rejects_malformed_documents():
    with pytest.raises(ValueError, match="schema"):
        validate_lock_graph({"schema": "bogus", "locks": [], "edges": [], "cycles": []})
    with pytest.raises(ValueError, match="unknown lock"):
        validate_lock_graph(
            {
                "schema": LOCKGRAPH_SCHEMA,
                "locks": [],
                "edges": [{"from": "A", "to": "B", "witness": [{"path": "a.py", "line": 1, "text": "t"}]}],
                "cycles": [],
            }
        )
    with pytest.raises(ValueError, match="witness"):
        validate_lock_graph(
            {
                "schema": LOCKGRAPH_SCHEMA,
                "locks": [{"id": "A", "aliases": ["A"]}, {"id": "B", "aliases": ["B"]}],
                "edges": [{"from": "A", "to": "B", "witness": []}],
                "cycles": [],
            }
        )
    with pytest.raises(ValueError, match="cycle edge"):
        validate_lock_graph(
            {
                "schema": LOCKGRAPH_SCHEMA,
                "locks": [{"id": "A", "aliases": ["A"]}],
                "edges": [],
                "cycles": [{"locks": ["A"], "edges": [{"from": "A", "to": "A"}]}],
            }
        )


def test_cycles_are_reported_in_the_document(tmp_path):
    (tmp_path / "m.py").write_text(
        textwrap.dedent(
            """\
            import threading

            LOCK_A = threading.Lock()
            LOCK_B = threading.Lock()

            def forward():
                with LOCK_A:
                    with LOCK_B:
                        pass

            def backward():
                with LOCK_B:
                    with LOCK_A:
                        pass
            """
        )
    )
    doc = build_lock_graph([tmp_path])
    validate_lock_graph(doc)
    assert len(doc["cycles"]) == 1
    cycle = doc["cycles"][0]
    assert cycle["locks"] == ["m.LOCK_A", "m.LOCK_B"]
    assert len(cycle["edges"]) == 2


def test_cli_lock_graph_flag_writes_validated_artifact(tmp_path):
    out = tmp_path / "lockgraph.json"
    repo_root = Path(__file__).resolve().parents[2]
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "lint",
            str(default_source_root()),
            "--select",
            "CNC204",
            "--lock-graph",
            str(out),
        ],
        capture_output=True,
        text=True,
        cwd=repo_root,
        env={"PYTHONPATH": str(repo_root / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stderr
    doc = json.loads(out.read_text())
    validate_lock_graph(doc)
    assert doc["cycles"] == []
    # src/repro's serve locks collapse onto the shared ctor lock.
    ids = {lock["id"] for lock in doc["locks"]}
    assert "JobQueue._lock" in ids
