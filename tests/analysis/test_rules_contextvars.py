"""CTX901: ContextVar scope hygiene."""

from __future__ import annotations


def rule_ids(result):
    return [v.rule_id for v in result.violations]


GOOD_HELPER = """\
from contextlib import contextmanager
from contextvars import ContextVar

_ACTIVE = ContextVar("active", default=None)

@contextmanager
def use_thing(value):
    token = _ACTIVE.set(value)
    try:
        yield value
    finally:
        _ACTIVE.reset(token)
"""


def test_ctx901_clean_on_canonical_scope_helper(lint_tree):
    result = lint_tree({"state.py": GOOD_HELPER}, select=["CTX901"])
    assert result.violations == []


def test_ctx901_flags_set_outside_scope_helper(lint_tree):
    result = lint_tree(
        {
            "state.py": GOOD_HELPER
            + """\

def set_thing(value):
    _ACTIVE.set(value)
"""
        },
        select=["CTX901"],
    )
    assert rule_ids(result) == ["CTX901"]
    assert "leaks ambient state" in result.violations[0].message


def test_ctx901_flags_module_scope_set(lint_tree):
    result = lint_tree(
        {
            "state.py": """\
            from contextvars import ContextVar

            _ACTIVE = ContextVar("active", default=None)
            _ACTIVE.set("numpy")
            """
        },
        select=["CTX901"],
    )
    assert rule_ids(result) == ["CTX901"]
    assert "module scope" in result.violations[0].message


def test_ctx901_flags_discarded_token(lint_tree):
    result = lint_tree(
        {
            "state.py": """\
            from contextlib import contextmanager
            from contextvars import ContextVar

            _ACTIVE = ContextVar("active", default=None)

            @contextmanager
            def use_thing(value):
                _ACTIVE.set(value)
                yield value
            """
        },
        select=["CTX901"],
    )
    assert rule_ids(result) == ["CTX901"]
    assert "discards the token" in result.violations[0].message


def test_ctx901_flags_reset_outside_finally(lint_tree):
    # Reset on the fall-through path only: an exception in the body leaks
    # the scope.
    result = lint_tree(
        {
            "state.py": """\
            from contextlib import contextmanager
            from contextvars import ContextVar

            _ACTIVE = ContextVar("active", default=None)

            @contextmanager
            def use_thing(value):
                token = _ACTIVE.set(value)
                yield value
                _ACTIVE.reset(token)
            """
        },
        select=["CTX901"],
    )
    assert rule_ids(result) == ["CTX901"]
    assert "finally" in result.violations[0].message


def test_ctx901_allows_activate_initializers(lint_tree):
    # Pool-worker process initializers install ambient state for the
    # worker's whole lifetime on purpose.
    result = lint_tree(
        {
            "state.py": GOOD_HELPER
            + """\

def activate_thing(value):
    _ACTIVE.set(value)
"""
        },
        select=["CTX901"],
    )
    assert result.violations == []


def test_ctx901_flags_bare_helper_call(lint_tree):
    result = lint_tree(
        {
            "state.py": GOOD_HELPER,
            "caller.py": """\
            from state import use_thing

            def setup():
                use_thing("numpy")
            """,
        },
        select=["CTX901"],
    )
    assert rule_ids(result) == ["CTX901"]
    v = result.violations[0]
    assert v.path == "caller.py"
    assert "never entered" in v.message and "with use_thing" in v.message


def test_ctx901_allows_with_and_assignment_forms(lint_tree):
    # `with use_thing(...)` enters the scope; the conditional-assignment
    # form (sweeps.py) stores the manager for a later `with`.
    result = lint_tree(
        {
            "state.py": GOOD_HELPER,
            "caller.py": """\
            import contextlib

            from state import use_thing

            def run(flag):
                scope = use_thing("numpy") if flag else contextlib.nullcontext()
                with scope:
                    with use_thing("numba"):
                        return 1
            """,
        },
        select=["CTX901"],
    )
    assert result.violations == []
