"""Runtime lock-order sanitizer (``analysis/sanitizer.py``)."""

from __future__ import annotations

import threading

import pytest

from repro.analysis.sanitizer import (
    SANITIZER_ENV_VAR,
    LockOrderViolation,
    SanitizedLock,
    install_static_order,
    new_lock,
    observed_order,
    reset_order,
    sanitizer_enabled,
)


@pytest.fixture(autouse=True)
def clean_order_graph():
    # The ordering graph is process-wide; isolate each test and leave it
    # empty for whoever runs next (the serve conftest re-seeds per session).
    reset_order()
    yield
    reset_order()


def test_new_lock_is_plain_when_disabled(monkeypatch):
    monkeypatch.delenv(SANITIZER_ENV_VAR, raising=False)
    assert not sanitizer_enabled()
    lock = new_lock("X")
    assert not isinstance(lock, SanitizedLock)
    monkeypatch.setenv(SANITIZER_ENV_VAR, "0")
    assert not sanitizer_enabled()


def test_new_lock_is_sanitized_when_enabled(monkeypatch):
    monkeypatch.setenv(SANITIZER_ENV_VAR, "1")
    assert sanitizer_enabled()
    lock = new_lock("X")
    assert isinstance(lock, SanitizedLock)
    assert lock.name == "X"


def test_inversion_raises_with_both_orders_named():
    a = SanitizedLock("A")
    b = SanitizedLock("B")
    with a:
        with b:
            pass
    assert observed_order() == {"A": ("B",)}
    with pytest.raises(LockOrderViolation) as exc:
        with b:
            with a:
                pass
    msg = str(exc.value)
    assert "acquiring 'A' while holding 'B'" in msg
    assert "A -> B" in msg
    assert "deadlock" in msg


def test_inversion_raises_before_blocking():
    # The check fires on the inverted acquire even while another thread
    # holds the contested mutex — a plain lock would deadlock here.
    a = SanitizedLock("A")
    b = SanitizedLock("B")
    with a:
        with b:
            pass
    a._inner.acquire()  # simulate the other thread owning A's mutex
    try:
        with pytest.raises(LockOrderViolation):
            with b:
                a.acquire()  # would block forever if checked after acquiring
    finally:
        a._inner.release()


def test_static_seeding_catches_never_executed_half():
    # The X -> Y edge comes from the static lock graph; this process never
    # ran that path, yet acquiring in Y-then-X order is still an inversion.
    assert install_static_order([("X", "Y")]) == 1
    assert install_static_order([("X", "Y")]) == 0  # idempotent
    y = SanitizedLock("Y")
    x = SanitizedLock("X")
    with pytest.raises(LockOrderViolation):
        with y:
            with x:
                pass


def test_transitive_inversion_detected():
    a = SanitizedLock("A")
    c = SanitizedLock("C")
    install_static_order([("A", "B"), ("B", "C")])
    with pytest.raises(LockOrderViolation) as exc:
        with c:
            with a:
                pass
    assert "A -> B -> C" in str(exc.value)


def test_condition_compatibility():
    lock = SanitizedLock("Cond._lock")
    cond = threading.Condition(lock)
    with cond:
        # notify paths probe ownership via a reentrant acquire(0); that
        # must not count as a self-edge or an inversion.
        cond.notify_all()
        assert not cond.wait(timeout=0.01)
    assert observed_order() == {}


def test_out_of_order_release_keeps_stack_consistent():
    # Condition.wait releases out of strict stack order; the held stack
    # must drain fully so later acquisitions see an empty hold set.
    a = SanitizedLock("A")
    b = SanitizedLock("B")
    a.acquire()
    b.acquire()
    a.release()
    b.release()
    assert observed_order() == {"A": ("B",)}
    with a:  # nothing held: no new edges, no inversion
        pass
    assert observed_order() == {"A": ("B",)}
