"""BKD701: accelerator imports in backend code must be lazy."""

from __future__ import annotations


def rule_ids(result):
    return [v.rule_id for v in result.violations]


def test_bkd701_fires_on_top_level_accelerator_imports(lint_tree):
    result = lint_tree(
        {
            "backend/bad.py": """\
    import numba
    from cupy import asarray
    import numpy as np

    def kernel(x):
        return np.sum(x)
    """
        },
        select=["BKD701"],
    )
    assert rule_ids(result) == ["BKD701", "BKD701"]
    messages = " ".join(v.message for v in result.violations)
    assert "numba" in messages and "cupy" in messages and "load()" in messages


def test_bkd701_fires_inside_top_level_try_and_if(lint_tree):
    # try/except and plain `if` at module level still import eagerly.
    result = lint_tree(
        {
            "backend/guarded.py": """\
    import os

    try:
        import numba
    except ImportError:
        numba = None

    if os.environ.get("ACCEL"):
        import cupy
    """
        },
        select=["BKD701"],
    )
    assert rule_ids(result) == ["BKD701", "BKD701"]


def test_bkd701_clean_on_lazy_and_type_checking_imports(lint_tree):
    result = lint_tree(
        {
            "backend/good.py": """\
    from typing import TYPE_CHECKING

    import numpy as np

    if TYPE_CHECKING:
        import numba

    class NumbaBackend:
        def load(self):
            import numba

            self.jit = numba.njit(cache=True)

    def helper():
        from cupy import asarray

        return asarray
    """
        },
        select=["BKD701"],
    )
    assert result.violations == []


def test_bkd701_out_of_scope_outside_backend(lint_tree):
    # The rule polices repro.backend only; experiments may import torch etc.
    result = lint_tree(
        {
            "experiments/accel.py": """\
    import numba
    """
        },
        select=["BKD701"],
    )
    assert result.violations == []


def test_bkd701_real_backend_package_is_clean():
    """The shipped backend implementations obey their own rule."""
    from repro.analysis import default_source_root, run_analysis

    result = run_analysis([default_source_root()], select=["BKD701"])
    assert result.violations == []
