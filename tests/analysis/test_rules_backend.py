"""BKD701: accelerator imports in backend code must be lazy."""

from __future__ import annotations


def rule_ids(result):
    return [v.rule_id for v in result.violations]


def test_bkd701_fires_on_top_level_accelerator_imports(lint_tree):
    result = lint_tree(
        {
            "backend/bad.py": """\
    import numba
    from cupy import asarray
    import numpy as np

    def kernel(x):
        return np.sum(x)
    """
        },
        select=["BKD701"],
    )
    assert rule_ids(result) == ["BKD701", "BKD701"]
    messages = " ".join(v.message for v in result.violations)
    assert "numba" in messages and "cupy" in messages and "load()" in messages


def test_bkd701_fires_inside_top_level_try_and_if(lint_tree):
    # try/except and plain `if` at module level still import eagerly.
    result = lint_tree(
        {
            "backend/guarded.py": """\
    import os

    try:
        import numba
    except ImportError:
        numba = None

    if os.environ.get("ACCEL"):
        import cupy
    """
        },
        select=["BKD701"],
    )
    assert rule_ids(result) == ["BKD701", "BKD701"]


def test_bkd701_clean_on_lazy_and_type_checking_imports(lint_tree):
    result = lint_tree(
        {
            "backend/good.py": """\
    from typing import TYPE_CHECKING

    import numpy as np

    if TYPE_CHECKING:
        import numba

    class NumbaBackend:
        def load(self):
            import numba

            self.jit = numba.njit(cache=True)

    def helper():
        from cupy import asarray

        return asarray
    """
        },
        select=["BKD701"],
    )
    assert result.violations == []


def test_bkd701_out_of_scope_outside_backend(lint_tree):
    # The rule polices repro.backend only; experiments may import torch etc.
    result = lint_tree(
        {
            "experiments/accel.py": """\
    import numba
    """
        },
        select=["BKD701"],
    )
    assert result.violations == []


def test_bkd701_real_backend_package_is_clean():
    """The shipped backend implementations obey their own rule."""
    from repro.analysis import default_source_root, run_analysis

    result = run_analysis([default_source_root()], select=["BKD701"])
    assert result.violations == []


def test_bkd702_flags_absolute_orchestration_imports(lint_tree):
    result = lint_tree(
        {
            "backend/impure.py": """\
    import repro.core.reuse
    from repro.serve import api

    def kernel(x):
        return x
    """
        },
        select=["BKD702"],
    )
    assert rule_ids(result) == ["BKD702", "BKD702"]
    messages = " ".join(v.message for v in result.violations)
    assert "core.reuse" in messages and "serve" in messages
    assert "byte-identity" in messages


def test_bkd702_flags_relative_and_lazy_imports(lint_tree):
    # Unlike BKD701, laziness is no excuse: a kernel body importing core
    # can observe orchestration state mid-computation.
    result = lint_tree(
        {
            "backend/sneaky.py": """\
    from ..core import reuse

    def kernel(x):
        from ..serve.api import SolveService

        return SolveService
    """
        },
        select=["BKD702"],
    )
    assert rule_ids(result) == ["BKD702", "BKD702"]


def test_bkd702_allows_numeric_helpers_and_type_checking(lint_tree):
    result = lint_tree(
        {
            "backend/pure.py": """\
    from typing import TYPE_CHECKING

    import numpy as np

    from ..geometry import primitives
    from ..model import types

    if TYPE_CHECKING:
        from ..core.solver import Solver

    def kernel(x):
        return np.sum(x)
    """
        },
        select=["BKD702"],
    )
    assert result.violations == []


def test_bkd702_out_of_scope_outside_backend(lint_tree):
    # core importing serve is an architecture question, not this rule's.
    result = lint_tree(
        {
            "core/hub.py": """\
    from repro.serve import api
    """
        },
        select=["BKD702"],
    )
    assert result.violations == []


def test_bkd702_real_backend_package_is_clean():
    """The shipped backend implementations never reach into core/serve."""
    from repro.analysis import default_source_root, run_analysis

    result = run_analysis([default_source_root()], select=["BKD702"])
    assert result.violations == []
