"""Additional coverage of secondary paths across modules."""

import math

import numpy as np
import pytest

from conftest import simple_scenario


def test_ascii_arrows_track_orientation():
    from repro.experiments import render_scene
    from repro.model import Strategy

    sc = simple_scenario([(10.0, 10.0)])
    ct = sc.charger_types[0]
    for theta, arrow in ((0.0, ">"), (math.pi / 2, "^"), (math.pi, "<"), (3 * math.pi / 2, "v")):
        out = render_scene(sc, [Strategy((4.0, 4.0), theta, ct)], width=30, height=15)
        assert arrow in out, (theta, arrow)


def test_pair_approximation_exact_power_mask():
    from repro.core import PairApproximation
    from repro.model import ChargerType, PairCoefficients

    pa = PairApproximation.build(PairCoefficients(100.0, 5.0), ChargerType("c", 1.0, 2.0, 6.0), 0.4)
    assert pa.exact_power(1.0) == 0.0
    assert pa.exact_power(7.0) == 0.0
    assert math.isclose(pa.exact_power(4.0), 100.0 / 81.0)
    vec = pa.exact_power(np.array([1.0, 4.0, 7.0]))
    assert vec[0] == 0.0 and vec[2] == 0.0 and vec[1] > 0.0


def test_simulate_distributed_times_keys():
    from repro.core import simulate_distributed_times

    sc = simple_scenario([(4.0, 4.0), (12.0, 12.0)])
    times = simulate_distributed_times(sc, [2, 3])
    assert set(times) == {"serial", 2, 3}
    assert times["serial"] > 0.0


def test_deployment_cost_model_defaults():
    from repro.extensions import DeploymentCostModel
    from repro.model import ChargerType, Strategy

    ct = ChargerType("c", 1.0, 1.0, 5.0)
    model = DeploymentCostModel()
    s = Strategy((3.0, 4.0), 0.5, ct)
    # Default power_of_type None -> power component 1.0.
    assert math.isclose(model.strategy_cost(s), 5.0 + 0.5 + 1.0)


def test_continuous_greedy_rounding_repair(rng):
    """Force the over-draw repair path with saturated fractional values."""
    from repro.opt import ChargingUtilityObjective, PartitionMatroid
    from repro.opt.continuous import continuous_greedy

    P = np.eye(4) * 0.05
    f = ChargingUtilityObjective(P, np.full(4, 0.05))
    m = PartitionMatroid([0, 0, 0, 0], [2])
    res = continuous_greedy(f, m, rng, steps=40, samples=4, rounding_trials=8)
    assert len(res.indices) <= 2
    assert m.is_independent(res.indices)


def test_point_strategy_frozen():
    from repro.core import PointStrategy

    ps = PointStrategy(1.0, (0, 2))
    with pytest.raises(Exception):
        ps.orientation = 2.0  # type: ignore[misc]


def test_schedule_tasks_of():
    from repro.opt import lpt_schedule

    s = lpt_schedule([5.0, 1.0, 1.0], 2)
    assert s.tasks_of(s.assignment[0]) is not None
    total = sum(len(s.tasks_of(m)) for m in range(2))
    assert total == 3


def test_hipo_solution_timing_fields():
    from repro import solve_hipo

    sc = simple_scenario([(10.0, 10.0)])
    sol = solve_hipo(sc)
    assert sol.extraction_seconds >= 0.0
    assert sol.selection_seconds >= 0.0


def test_boundary_curves_extend():
    from repro.core import BoundaryCurves

    a = BoundaryCurves(circles=[((0, 0), 1.0)], segments=[])
    b = BoundaryCurves(circles=[((1, 1), 2.0)], segments=[((0, 0), (1, 1))])
    a.extend(b)
    assert len(a.circles) == 2 and len(a.segments) == 1


def test_validation_tiny_charging_range_warning():
    from repro.model import ChargerType, validate_scenario

    sc = simple_scenario([(10.0, 10.0)])
    tiny = (ChargerType("ct", math.pi / 2, 0.01, 0.05),)
    sc2 = sc.with_charger_types(tiny, {"ct": 1})
    report = validate_scenario(sc2, check_reachability=False)
    assert any(i.code == "tiny-charging-range" for i in report.warnings())
