"""Tests for the piecewise-constant power approximation (Lemma 4.1)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ApproxPowerCalculator, PairApproximation, epsilon1_for
from repro.model import ChargerType, DeviceType, PairCoefficients, PowerEvaluator, Device

from conftest import make_table


def build(a=100.0, b=5.0, dmin=1.0, dmax=6.0, eps1=0.4):
    ct = ChargerType("ct", math.pi / 2, dmin, dmax)
    return PairApproximation.build(PairCoefficients(a, b), ct, eps1)


def test_epsilon1_coupling():
    # Theorem 4.2: eps1 = 2 eps / (1 - 2 eps); end-to-end ratio 1/(2(1+eps1)).
    eps = 0.15
    eps1 = epsilon1_for(eps)
    assert math.isclose(1.0 / (2.0 * (1.0 + eps1)), 0.5 - eps, rel_tol=1e-12)
    with pytest.raises(ValueError):
        epsilon1_for(0.5)
    with pytest.raises(ValueError):
        epsilon1_for(0.0)


def test_levels_are_increasing_and_anchored():
    pa = build()
    assert np.all(np.diff(pa.levels) > 0)
    assert math.isclose(pa.levels[-1], 6.0)
    # First level at or beyond dmin (bin k0 covers [dmin, l(k0)]).
    assert pa.levels[0] >= pa.dmin - 1e-12


def test_approx_power_is_underestimate_within_bound():
    pa = build()
    for d in np.linspace(pa.dmin, pa.dmax, 200):
        exact = pa.exact_power(d)
        approx = pa.approx_power(d)
        assert approx > 0
        ratio = exact / approx
        assert 1.0 - 1e-9 <= ratio <= 1.0 + pa.eps1 + 1e-9


@settings(max_examples=60)
@given(
    st.floats(min_value=10.0, max_value=500.0),
    st.floats(min_value=0.5, max_value=50.0),
    st.floats(min_value=0.0, max_value=5.0),
    st.floats(min_value=0.5, max_value=20.0),
    st.floats(min_value=0.05, max_value=2.0),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_lemma_4_1_error_bound_property(a, b, dmin, span, eps1, frac):
    """1 <= P(d)/P~(d) <= 1+eps1 for all d in [dmin, dmax] (Lemma 4.1)."""
    dmax = dmin + span
    ct = ChargerType("ct", math.pi / 2, dmin, dmax)
    pa = PairApproximation.build(PairCoefficients(a, b), ct, eps1)
    d = dmin + frac * (dmax - dmin)
    ratio = pa.exact_power(d) / pa.approx_power(d)
    assert 1.0 - 1e-9 <= ratio <= 1.0 + eps1 + 1e-9


def test_zero_outside_ring():
    pa = build(dmin=1.0, dmax=6.0)
    assert pa.approx_power(0.5) == 0.0
    assert pa.approx_power(6.5) == 0.0
    assert pa.approx_power(1.0) > 0.0
    assert pa.approx_power(6.0) > 0.0


def test_approx_power_vectorized_matches_scalar():
    pa = build()
    ds = np.linspace(0.0, 8.0, 50)
    vec = pa.approx_power(ds)
    for d, v in zip(ds, vec):
        assert math.isclose(v, pa.approx_power(float(d)), rel_tol=1e-12)


def test_piecewise_constant_within_bins():
    pa = build()
    # Midpoints strictly inside a bin share the bin's level power.
    for k in range(1, pa.num_levels):
        lo, hi = pa.levels[k - 1], pa.levels[k]
        if hi - lo < 1e-6:
            continue
        mid1 = lo + (hi - lo) * 0.3
        mid2 = lo + (hi - lo) * 0.7
        assert math.isclose(pa.approx_power(mid1), pa.approx_power(mid2), rel_tol=1e-12)
        assert math.isclose(pa.approx_power(mid2), pa.powers[k], rel_tol=1e-12)


def test_smaller_eps_gives_more_levels():
    coarse = build(eps1=1.0)
    fine = build(eps1=0.05)
    assert fine.num_levels > coarse.num_levels


def test_boundary_radii_include_dmin_and_dmax():
    pa = build(dmin=1.0, dmax=6.0)
    radii = pa.boundary_radii()
    assert math.isclose(radii[0], 1.0) or radii[0] <= 1.0 + 1e-9
    assert math.isclose(radii[-1], 6.0)
    assert np.all(np.diff(radii) > 0)


def test_calculator_groups_device_types():
    ct = ChargerType("ct", math.pi / 2, 1.0, 6.0)
    dt1 = DeviceType("d1", math.pi)
    dt2 = DeviceType("d2", math.pi / 2)
    table = make_table([ct], [dt1, dt2], a=100.0, b=5.0).with_entry(
        "ct", "d2", PairCoefficients(200.0, 10.0)
    )
    devices = [
        Device((3.0, 0.0), 0.0, dt1, 0.1),
        Device((0.0, 3.0), 0.0, dt2, 0.1),
    ]
    ev = PowerEvaluator(devices, [], table, [ct])
    calc = ApproxPowerCalculator(ev, [ct], eps1=0.4)
    dists = np.array([3.0, 3.0])
    out = calc.approx_powers(ct, dists)
    # Each device quantized with its own pair coefficients.
    assert math.isclose(out[0], calc.pair(ct, dt1).approx_power(3.0))
    assert math.isclose(out[1], calc.pair(ct, dt2).approx_power(3.0))
    assert out[0] != out[1]


def test_calculator_boundary_radii_per_device():
    ct = ChargerType("ct", math.pi / 2, 1.0, 6.0)
    dt = DeviceType("d1", math.pi)
    table = make_table([ct], [dt])
    ev = PowerEvaluator([Device((0.0, 0.0), 0.0, dt, 0.1)], [], table, [ct])
    calc = ApproxPowerCalculator(ev, [ct], eps1=0.4)
    radii = calc.boundary_radii(ct, 0)
    assert radii[-1] == 6.0
