"""Observability of the solve pipeline: trace structure, cross-process
metric merge, PhaseTimings-as-view, distributed task surfacing."""

import json

import numpy as np

from repro.core import PhaseTimings, simulate_distributed_times, solve_hipo
from repro.obs import MetricsRegistry, Tracer, validate_trace_lines

from conftest import simple_scenario


def scenario():
    return simple_scenario(
        [(4.0, 4.0), (8.0, 6.0), (12.0, 10.0), (16.0, 14.0), (6.0, 12.0)], budget=2
    )


def test_solve_trace_structure_and_phase_coverage():
    sol = solve_hipo(scenario())
    trace = sol.trace
    assert trace is not None
    root = trace.find("solve")
    ext = trace.find("extraction")
    sel = trace.find("selection")
    assert root is not None and ext is not None and sel is not None
    assert ext.parent_id == root.span_id and sel.parent_id == root.span_id
    # The root span covers the sum of its phase spans.
    assert root.wall_s >= ext.wall_s + sel.wall_s - 1e-4
    # Sub-phases nest under extraction.
    assert trace.find("positions").parent_id == ext.span_id
    assert trace.find("sweeps").parent_id == ext.span_id
    # The exported JSONL validates against the schema.
    validate_trace_lines(trace.to_jsonl().splitlines())


def test_worker_metrics_merge_matches_serial():
    """A workers=2 run ships worker-side counters back through the pool and
    merges them into totals identical to the serial run's."""
    s1 = solve_hipo(scenario(), workers=1)
    s2 = solve_hipo(scenario(), workers=2)
    assert s1.metrics.counters == s2.metrics.counters
    for key in (
        "extraction.positions",
        "extraction.chunks",
        "extraction.candidates_raw",
        "extraction.candidates",
        "greedy.iterations",
    ):
        assert s1.metrics.counters[key] > 0, key
    # Candidate bookkeeping is consistent.
    assert s1.metrics.counters["extraction.candidates"] == s1.timings.num_candidates
    assert (
        s1.metrics.counters["extraction.candidates_raw"]
        == s1.metrics.counters["extraction.candidates"]
        + s1.metrics.counters["extraction.duplicates"]
    )


def test_greedy_metrics_and_report():
    sol = solve_hipo(scenario(), keep_candidates=True)
    hist = sol.metrics.histograms.get("greedy.marginal_gain")
    assert hist is not None and hist["count"] == len(sol.greedy.gains)
    assert sol.metrics.counters["greedy.evaluations"] == sol.greedy.evaluations
    report = sol.report()
    for phase in ("solve", "extraction", "selection", "counters:"):
        assert phase in report
    assert "extraction.candidates" in report


def test_phase_timings_is_a_trace_view():
    sol = solve_hipo(scenario())
    derived = PhaseTimings.from_trace(sol.trace)
    t = sol.timings
    assert derived.num_positions == t.num_positions
    assert derived.num_candidates == t.num_candidates
    assert derived.workers == t.workers
    assert abs(derived.extraction_seconds - t.extraction_seconds) < 1e-9
    assert abs(derived.selection_seconds - t.selection_seconds) < 1e-9
    d = t.as_dict()
    assert json.loads(json.dumps(d)) == d
    assert set(d) == {
        "extraction_seconds",
        "sweep_seconds",
        "dedupe_seconds",
        "selection_seconds",
        "num_positions",
        "num_candidates",
        "workers",
    }


def test_external_tracer_and_metrics_aggregate_across_solves():
    trace = Tracer()
    metrics = MetricsRegistry()
    solve_hipo(scenario(), tracer=trace, metrics=metrics)
    one_run = metrics.counter("extraction.candidates")
    solve_hipo(scenario(), tracer=trace, metrics=metrics)
    assert len(trace.find_all("solve")) == 2
    assert metrics.counter("extraction.candidates") == 2 * one_run


def test_simulate_distributed_times_surfaces_tasks_and_spans():
    sc = scenario()
    tracer = Tracer()
    times = simulate_distributed_times(sc, [2], include_tasks=True, tracer=tracer)
    assert set(times) == {"serial", 2, "tasks"}
    assert len(times["tasks"]) == sc.num_devices
    assert np.isclose(sum(times["tasks"]), times["serial"])
    # One span per task under measure_tasks, one schedule span per count.
    tasks = tracer.find_all("task")
    assert len(tasks) == sc.num_devices
    measure = tracer.find("measure_tasks")
    assert all(sp.parent_id == measure.span_id for sp in tasks)
    assert tracer.find("schedule").attrs["machines"] == 2
    # Default output shape is unchanged (no tasks key).
    assert set(simulate_distributed_times(sc, [2])) == {"serial", 2}
