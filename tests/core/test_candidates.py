"""Tests for candidate position generation (Algorithms 2/4 geometry)."""

import math

import numpy as np
import pytest

from repro.core import CandidateGenerator
from repro.geometry import distance, rectangle

from conftest import simple_scenario


def make_gen(sc, **kw):
    return CandidateGenerator(sc, **kw)


def test_device_curves_structure():
    sc = simple_scenario([(10.0, 10.0)], device_angle=math.pi, obstacles=[rectangle(3, 3, 5, 5)])
    gen = make_gen(sc)
    ct = sc.charger_types[0]
    curves = gen.device_curves(ct, 0)
    # Level circles all centered at the device, radii within [dmin, dmax].
    assert len(curves.circles) >= 2
    for c, r in curves.circles:
        assert np.allclose(c, [10.0, 10.0])
        assert sc.charger_types[0].dmin - 1e-9 <= r <= sc.charger_types[0].dmax + 1e-9
    # Cone edges present (receiving angle < 2*pi) plus hole rays.
    assert len(curves.segments) >= 2
    # Cached
    assert gen.device_curves(ct, 0) is curves


def test_device_curves_full_circle_receiver_has_no_cone_edges():
    sc = simple_scenario([(10.0, 10.0)], device_angle=2.0 * math.pi)
    gen = make_gen(sc)
    curves = gen.device_curves(sc.charger_types[0], 0)
    assert curves.segments == []  # no obstacles, no cone edges


def test_neighbor_indices_radius():
    sc = simple_scenario([(0.0, 0.0), (5.0, 0.0), (19.0, 19.0)], dmax=6.0)
    gen = make_gen(sc)
    ct = sc.charger_types[0]
    nb = gen.neighbor_indices(ct, 0)
    assert 1 in nb and 2 not in nb and 0 not in nb


def test_positions_feasible_and_in_region():
    obs = [rectangle(6.0, 6.0, 9.0, 9.0)]
    sc = simple_scenario([(4.0, 4.0), (12.0, 12.0), (4.0, 12.0)], obstacles=obs)
    gen = make_gen(sc)
    pts = gen.positions(sc.charger_types[0])
    assert len(pts) > 0
    for p in pts:
        assert sc.in_region(p)
        assert not obs[0].contains(p, include_boundary=False)


def test_positions_nonempty_for_single_device():
    sc = simple_scenario([(10.0, 10.0)])
    pts = make_gen(sc).positions(sc.charger_types[0])
    assert len(pts) > 0
    # All single-device candidates lie within the device's reach band.
    d = np.hypot(pts[:, 0] - 10.0, pts[:, 1] - 10.0)
    assert np.all(d <= sc.charger_types[0].dmax + 1e-6)


def test_pair_positions_within_reach_of_both():
    sc = simple_scenario([(8.0, 10.0), (12.0, 10.0)])
    gen = make_gen(sc)
    ct = sc.charger_types[0]
    pts = gen.positions_for_pair(ct, 0, 1)
    assert len(pts) > 0
    for p in pts:
        assert distance(p, (8.0, 10.0)) <= ct.dmax + 1e-6
        assert distance(p, (12.0, 10.0)) <= ct.dmax + 1e-6


def test_pair_positions_empty_when_far_apart():
    sc = simple_scenario([(1.0, 1.0), (19.0, 19.0)], dmax=6.0)
    gen = make_gen(sc)
    assert gen.positions_for_pair(sc.charger_types[0], 0, 1) == []


def test_pair_loci_cover_joint_coverage_positions():
    """Somewhere among the pair candidates there must be a strategy position
    from which BOTH devices are coverable (they are 4 m apart, well within
    the ring)."""
    sc = simple_scenario([(8.0, 10.0), (12.0, 10.0)], charger_angle=math.pi / 2)
    gen = make_gen(sc)
    ct = sc.charger_types[0]
    ev = sc.evaluator()
    pts = gen.positions_for_task(ct, 0)
    found = False
    for p in pts:
        mask, _d, _b = ev.coverable(ct, p)
        if mask.all():
            found = True
            break
    assert found


def test_max_positions_cap():
    sc = simple_scenario([(6.0, 10.0), (10.0, 10.0), (14.0, 10.0), (10.0, 6.0)])
    gen_full = make_gen(sc)
    full = gen_full.positions(sc.charger_types[0])
    cap = max(4, len(full) // 3)
    gen_capped = make_gen(sc, max_positions=cap)
    capped = gen_capped.positions(sc.charger_types[0])
    assert len(capped) <= cap + 1
    assert len(capped) < len(full)


def test_eps_validation():
    sc = simple_scenario([(10.0, 10.0)])
    with pytest.raises(ValueError):
        CandidateGenerator(sc, eps=0.6)


def test_finer_eps_more_positions():
    sc = simple_scenario([(6.0, 10.0), (10.0, 10.0)])
    coarse = make_gen(sc, eps=0.3).positions(sc.charger_types[0])
    fine = make_gen(sc, eps=0.05).positions(sc.charger_types[0])
    assert len(fine) > len(coarse)


def test_obstacle_adds_hole_ray_candidates():
    base = simple_scenario([(4.0, 10.0), (16.0, 10.0)])
    with_obs = simple_scenario(
        [(4.0, 10.0), (16.0, 10.0)], obstacles=[rectangle(9.0, 9.5, 11.0, 10.5)]
    )
    n_base = len(make_gen(base).positions(base.charger_types[0]))
    n_obs = len(make_gen(with_obs).positions(with_obs.charger_types[0]))
    # Obstacles forbid some area but add boundary/hole candidates; the
    # generator must still produce a healthy candidate set.
    assert n_obs > 0 and n_base > 0
