"""Tests for the distributed PDCS extraction (§5)."""

import numpy as np
import pytest

from repro.core import (
    CandidateGenerator,
    assign_tasks,
    measure_task_costs,
    parallel_positions_by_type,
    simulate_distributed_times,
)
from repro.geometry import dedupe_points

from conftest import simple_scenario


def scenario():
    return simple_scenario(
        [(4.0, 4.0), (8.0, 6.0), (12.0, 10.0), (16.0, 14.0)], budget=2
    )


def test_measure_task_costs_shape():
    sc = scenario()
    meas = measure_task_costs(sc)
    assert len(meas.durations) == sc.num_devices
    assert np.all(meas.durations >= 0.0)
    assert meas.serial_total > 0.0
    assert set(meas.positions_by_type) == {"ct"}


def test_task_union_equals_serial_positions():
    """The distributed tasks together produce the same candidate set as the
    serial generator (Algorithm 4's pair-splitting is lossless)."""
    sc = scenario()
    gen = CandidateGenerator(sc)
    ct = sc.charger_types[0]
    serial = gen.positions(ct)
    meas = measure_task_costs(sc)
    parallel = meas.positions_by_type["ct"]
    a = {tuple(np.round(p, 6)) for p in serial}
    b = {tuple(np.round(p, 6)) for p in parallel}
    assert a == b


def test_assign_tasks_one_per_machine_when_enough():
    durations = np.array([3.0, 1.0, 2.0])
    sched = assign_tasks(durations, machines=5)
    assert sched.makespan == 3.0
    assert len(set(sched.assignment)) == 3


def test_assign_tasks_lpt_otherwise():
    durations = np.array([3.0, 3.0, 2.0, 2.0, 2.0])
    sched = assign_tasks(durations, machines=2)
    assert np.isclose(sum(sched.loads), 12.0)
    assert sched.makespan < 12.0


def test_simulate_distributed_times_monotone():
    sc = scenario()
    times = simulate_distributed_times(sc, [1, 2, 4])
    assert times["serial"] >= times[1] - 1e-9  # LPT(1) == serial
    assert times[1] >= times[2] - 1e-9 >= 0.0
    assert times[2] >= times[4] - 1e-9
    # Makespan never drops below the longest single task.
    meas_floor = 0.0
    assert times[4] >= meas_floor


def test_parallel_positions_match_serial_workers1():
    sc = scenario()
    gen = CandidateGenerator(sc)
    serial = gen.positions(sc.charger_types[0])
    par = parallel_positions_by_type(sc, workers=1)["ct"]
    a = {tuple(np.round(p, 6)) for p in serial}
    b = {tuple(np.round(p, 6)) for p in par}
    assert a == b


@pytest.mark.slow
def test_parallel_positions_with_process_pool():
    sc = scenario()
    par = parallel_positions_by_type(sc, workers=2)["ct"]
    serial = CandidateGenerator(sc).positions(sc.charger_types[0])
    a = {tuple(np.round(p, 6)) for p in serial}
    b = {tuple(np.round(p, 6)) for p in par}
    assert a == b


def test_parallel_positions_empty_scenario():
    sc = simple_scenario([(4.0, 4.0)]).with_devices([])
    out = parallel_positions_by_type(sc, workers=1)
    assert out["ct"].shape == (0, 2)


def test_cancel_token_stops_measurement():
    import threading

    from repro.core import SolveCancelled, check_cancel, measure_task_costs

    cancel = threading.Event()
    cancel.set()
    with pytest.raises(SolveCancelled):
        measure_task_costs(scenario(), cancel=cancel)
    with pytest.raises(SolveCancelled):
        parallel_positions_by_type(scenario(), workers=1, cancel=cancel)
    # A None token (the default) never fires.
    check_cancel(None)
    check_cancel(threading.Event())
