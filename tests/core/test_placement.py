"""Tests for the end-to-end HIPO solver (Theorem 4.2 pipeline)."""

import math

import numpy as np
import pytest

from repro.core import build_candidate_set, select_strategies, solve_hipo
from repro.geometry import rectangle
from repro.opt import exhaustive_best, ChargingUtilityObjective

from conftest import simple_scenario


def test_candidate_set_structure():
    sc = simple_scenario([(8.0, 10.0), (12.0, 10.0)], budget=2)
    cs = build_candidate_set(sc)
    assert cs.num_candidates > 0
    assert cs.approx_power.shape == (cs.num_candidates, 2)
    assert cs.exact_power.shape == (cs.num_candidates, 2)
    assert len(cs.part_of) == cs.num_candidates
    assert cs.capacities == [2]
    # Approximation is an underestimate of the exact power.
    assert np.all(cs.approx_power <= cs.exact_power + 1e-12)
    # Lemma 4.1 bound row-wise on covered entries.
    covered = cs.approx_power > 0
    ratio = cs.exact_power[covered] / cs.approx_power[covered]
    from repro.core import epsilon1_for

    assert np.all(ratio <= 1.0 + epsilon1_for(0.15) + 1e-9)


def test_candidate_rows_match_evaluator():
    sc = simple_scenario([(8.0, 10.0), (12.0, 10.0)], budget=1)
    cs = build_candidate_set(sc)
    ev = sc.evaluator()
    for k in range(min(25, cs.num_candidates)):
        vec = ev.power_vector(cs.strategies[k])
        assert np.allclose(vec, cs.exact_power[k], atol=1e-9)


def test_zero_budget_type_skipped():
    sc = simple_scenario([(10.0, 10.0)], budget=0)
    cs = build_candidate_set(sc)
    assert cs.num_candidates == 0
    strategies, greedy = select_strategies(sc, cs)
    assert strategies == []


def test_solve_hipo_respects_budget():
    sc = simple_scenario([(6.0, 10.0), (10.0, 10.0), (14.0, 10.0)], budget=2)
    sol = solve_hipo(sc)
    assert len(sol.strategies) <= 2
    assert 0.0 <= sol.utility <= 1.0
    assert sol.utility >= sol.approx_utility - 1e-9  # underestimated objective


def test_solve_hipo_covers_single_device_fully():
    # One device, generous threshold: HIPO should saturate it.
    sc = simple_scenario([(10.0, 10.0)], budget=2, threshold=0.5)
    sol = solve_hipo(sc)
    assert sol.utility > 0.0
    # Best single-charger power is a/(dmin+b)^2 at distance dmin = 1: 100/36.
    # threshold 0.5 saturates easily with one charger.
    assert math.isclose(sol.utility, 1.0, rel_tol=1e-9)


def test_solver_deterministic():
    sc = simple_scenario([(6.0, 10.0), (10.0, 10.0), (14.0, 10.0)], budget=2)
    s1 = solve_hipo(sc)
    s2 = solve_hipo(sc)
    assert s1.utility == s2.utility
    assert [s.position for s in s1.strategies] == [s.position for s in s2.strategies]


def test_greedy_vs_exhaustive_on_candidates():
    """The greedy achieves >= 1/2 of the optimum over the same candidate set
    (here we verify against exhaustive search, usually it is optimal)."""
    sc = simple_scenario([(6.0, 10.0), (10.0, 10.0), (14.0, 10.0)], budget=2, threshold=0.3)
    cs = build_candidate_set(sc)
    if cs.num_candidates > 60:
        # Thin deterministically to keep exhaustive search tractable.
        keep = list(range(0, cs.num_candidates, cs.num_candidates // 60 + 1))
        cs.strategies = [cs.strategies[k] for k in keep]
        cs.approx_power = cs.approx_power[keep]
        cs.exact_power = cs.exact_power[keep]
        cs.part_of = [cs.part_of[k] for k in keep]
    ev = sc.evaluator()
    obj = ChargingUtilityObjective(cs.approx_power, ev.thresholds)
    _strats, greedy = select_strategies(sc, cs)
    best = exhaustive_best(obj, cs.matroid())
    assert greedy.value >= 0.5 * best.value - 1e-9


def test_lazy_and_algorithm3_order_agree_on_value():
    sc = simple_scenario([(6.0, 10.0), (10.0, 10.0), (14.0, 10.0)], budget=2)
    base = solve_hipo(sc)
    lazy = solve_hipo(sc, lazy=True)
    ordered = solve_hipo(sc, algorithm3_order=True)
    assert math.isclose(base.approx_utility, lazy.approx_utility, abs_tol=1e-9)
    # Algorithm-3 order may differ slightly but stays within the guarantee.
    assert ordered.approx_utility > 0.0


def test_exact_objective_mode():
    sc = simple_scenario([(6.0, 10.0), (10.0, 10.0)], budget=1)
    sol = solve_hipo(sc, objective_power="exact")
    assert sol.utility > 0.0


def test_positions_override():
    sc = simple_scenario([(10.0, 10.0)], budget=1)
    override = {"ct": np.array([[7.0, 10.0]])}
    sol = solve_hipo(sc, positions_by_type=override, keep_candidates=True)
    assert all(s.position == (7.0, 10.0) for s in sol.strategies)
    assert sol.utility > 0.0


def test_obstacle_blocks_reduce_utility():
    free = simple_scenario([(10.0, 10.0)], budget=1, threshold=5.0)
    # Box the device in so every candidate position is shadowed or far.
    walls = [
        rectangle(8.0, 8.0, 12.0, 9.5),
        rectangle(8.0, 10.5, 12.0, 12.0),
        rectangle(8.0, 9.5, 9.0, 10.5),
    ]
    blocked = simple_scenario([(10.0, 10.0)], budget=1, threshold=5.0, obstacles=walls)
    u_free = solve_hipo(free).utility
    u_blocked = solve_hipo(blocked).utility
    assert u_blocked <= u_free + 1e-12


def test_keep_candidates_flag():
    sc = simple_scenario([(10.0, 10.0)], budget=1)
    assert solve_hipo(sc).candidate_set is None
    assert solve_hipo(sc, keep_candidates=True).candidate_set is not None


def test_refine_option_never_worse():
    sc = simple_scenario([(6.0, 10.0), (10.0, 10.0), (14.0, 10.0)], budget=2)
    base = solve_hipo(sc)
    refined = solve_hipo(sc, refine=True)
    assert refined.approx_utility >= base.approx_utility - 1e-12


def test_hardened_solver_margins():
    from repro.core import solve_hipo_hardened

    sc = simple_scenario(
        [(6.0, 10.0), (10.0, 10.0), (14.0, 10.0)], budget=2, dmin=1.0, dmax=6.0
    )
    sol = solve_hipo_hardened(sc, angle_margin=0.05, radial_margin=0.3)
    # Strategies carry the TRUE hardware types.
    for s in sol.strategies:
        assert s.ctype.dmin == 1.0 and s.ctype.dmax == 6.0
    assert 0.0 <= sol.utility <= 1.0
    # Every covered device keeps radial slack: distance within the shrunk ring.
    ev = sc.evaluator()
    for s in sol.strategies:
        powers = ev.power_vector(s)
        for j in np.nonzero(powers)[0]:
            d = math.dist(s.position, sc.devices[j].position)
            assert 1.0 + 0.3 - 1e-6 <= d <= 6.0 - 0.3 + 1e-6


def test_hardened_solver_validation():
    from repro.core import solve_hipo_hardened

    sc = simple_scenario([(10.0, 10.0)])
    with pytest.raises(ValueError):
        solve_hipo_hardened(sc, angle_margin=-0.1)
