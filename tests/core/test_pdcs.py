"""Tests for PDCS extraction at a point (Algorithm 1)."""

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import extract_pdcs_at_point, filter_dominated_sets, strategies_at_point
from repro.model import ChargerType, Device, DeviceType, PowerEvaluator, Strategy, pair_power

from conftest import make_table

DT = DeviceType("dt", 2.0 * math.pi)  # omnidirectional receivers for clarity


def evaluator(device_positions, *, angle=math.pi / 2, dmin=1.0, dmax=6.0, obstacles=()):
    ct = ChargerType("ct", angle, dmin, dmax)
    devices = [Device(tuple(p), 0.0, DT, 0.1) for p in device_positions]
    table = make_table([ct], [DT])
    return PowerEvaluator(devices, list(obstacles), table, [ct]), ct


def covered_set(ev, ct, strategy):
    return frozenset(int(j) for j in np.nonzero(ev.power_vector(strategy))[0])


def test_filter_dominated_sets():
    items = [
        (0.0, frozenset({1})),
        (1.0, frozenset({1, 2})),
        (2.0, frozenset({3})),
        (3.0, frozenset({1, 2})),  # duplicate, keeps first
    ]
    kept = filter_dominated_sets(items)
    sets = {s for _t, s in kept}
    assert sets == {frozenset({1, 2}), frozenset({3})}
    assert len(kept) == 2


def test_no_coverable_devices():
    ev, ct = evaluator([(20.0, 20.0)])
    assert extract_pdcs_at_point(ev, ct, (0.0, 0.0)) == []


def test_single_device_single_pdcs():
    ev, ct = evaluator([(3.0, 0.0)])
    out = extract_pdcs_at_point(ev, ct, (0.0, 0.0))
    assert len(out) == 1
    assert out[0].covered == (0,)
    # The witness orientation actually covers the device.
    s = Strategy((0.0, 0.0), out[0].orientation, ct)
    assert ev.power_vector(s)[0] > 0.0


def test_opposite_devices_narrow_cone_two_pdcs():
    ev, ct = evaluator([(3.0, 0.0), (-3.0, 0.0)], angle=math.pi / 2)
    out = extract_pdcs_at_point(ev, ct, (0.0, 0.0))
    sets = {ps.covered for ps in out}
    assert sets == {(0,), (1,)}


def test_close_devices_single_covering_pdcs():
    ev, ct = evaluator([(3.0, 0.5), (3.0, -0.5)], angle=math.pi / 2)
    out = extract_pdcs_at_point(ev, ct, (0.0, 0.0))
    assert len(out) == 1
    assert out[0].covered == (0, 1)


def test_omnidirectional_charger_single_strategy():
    ev, ct = evaluator([(3.0, 0.0), (-3.0, 0.0), (0.0, 3.0)], angle=2.0 * math.pi)
    out = extract_pdcs_at_point(ev, ct, (0.0, 0.0))
    assert len(out) == 1
    assert out[0].covered == (0, 1, 2)


def test_extracted_sets_are_mutually_nondominated():
    rng = np.random.default_rng(0)
    for _ in range(20):
        pts = rng.uniform(-6, 6, size=(6, 2))
        ev, ct = evaluator(pts, angle=math.pi / 3)
        out = extract_pdcs_at_point(ev, ct, (0.0, 0.0))
        sets = [frozenset(ps.covered) for ps in out]
        for i, a in enumerate(sets):
            for k, b in enumerate(sets):
                assert not (i != k and a < b), "dominated set survived the filter"


def test_witness_orientation_covers_reported_set_exactly():
    rng = np.random.default_rng(1)
    for _ in range(20):
        pts = rng.uniform(-6, 6, size=(5, 2))
        ev, ct = evaluator(pts, angle=math.pi / 3)
        for ps in extract_pdcs_at_point(ev, ct, (0.0, 0.0)):
            s = Strategy((0.0, 0.0), ps.orientation, ct)
            assert covered_set(ev, ct, s) == frozenset(ps.covered)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10_000), st.floats(min_value=0.3, max_value=3.0))
def test_algorithm1_dominates_every_orientation(seed, angle):
    """Theorem-4.1 restricted to a point: for ANY orientation there is an
    extracted PDCS that dominates or equals its covered set."""
    rng = np.random.default_rng(seed)
    pts = rng.uniform(-6, 6, size=(5, 2))
    ev, ct = evaluator(pts, angle=angle)
    extracted = [frozenset(ps.covered) for ps in extract_pdcs_at_point(ev, ct, (0.0, 0.0))]
    for theta in rng.uniform(0, 2 * math.pi, size=12):
        s = Strategy((0.0, 0.0), float(theta), ct)
        cov = covered_set(ev, ct, s)
        if not cov:
            continue
        assert any(cov <= e for e in extracted), (cov, extracted)


def test_obstacle_excludes_devices_from_sweep():
    from repro.geometry import rectangle

    obs = [rectangle(1.0, -0.5, 2.0, 0.5)]
    ev, ct = evaluator([(3.0, 0.0), (0.0, 3.0)], obstacles=obs)
    out = extract_pdcs_at_point(ev, ct, (0.0, 0.0))
    covered = set().union(*[set(ps.covered) for ps in out])
    assert covered == {1}  # device 0 is shadowed


def test_strategies_at_point_wrapper():
    ev, ct = evaluator([(3.0, 0.0)])
    strats = strategies_at_point(ev, ct, (0.0, 0.0))
    assert len(strats) == 1
    assert strats[0].ctype is ct
    assert strats[0].position == (0.0, 0.0)
