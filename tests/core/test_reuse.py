"""Candidate-set reuse: codec stability, cache bounds, key semantics,
and the headline guarantee — warm-started solves are byte-identical to
cold ones."""

import json
import threading

import numpy as np
import pytest

from repro.core import (
    CandidateSetCache,
    active_candidate_cache,
    build_candidate_set,
    deserialize_candidate_set,
    extraction_cache_key,
    serialize_candidate_set,
    solve_hipo,
    use_candidate_cache,
)
from repro.core.candidates import CandidateGenerator
from repro.core.reuse import CANDIDATE_BLOB_MAGIC
from repro.io import strategies_to_list
from repro.model import ChargerType
from repro.obs import MetricsRegistry

from conftest import simple_scenario


def scenario():
    return simple_scenario(
        [(4.0, 4.0), (8.0, 6.0), (12.0, 10.0), (16.0, 14.0), (6.0, 12.0)], budget=2
    )


def fingerprint(sol):
    """Everything a caller reads off a solution, as canonical bytes."""
    return json.dumps(
        {
            "utility": sol.utility,
            "approx_utility": sol.approx_utility,
            "strategies": strategies_to_list(sol.strategies),
            "greedy": list(sol.greedy.indices),
        },
        sort_keys=True,
    )


def assert_candidate_sets_identical(a, b):
    assert a.num_candidates == b.num_candidates
    assert a.part_of == b.part_of
    assert a.capacities == b.capacities
    assert a.positions_per_type == b.positions_per_type
    assert np.array_equal(a.approx_power, b.approx_power)
    assert np.array_equal(a.exact_power, b.exact_power)
    assert [(s.position, s.orientation, s.ctype.name) for s in a.strategies] == [
        (s.position, s.orientation, s.ctype.name) for s in b.strategies
    ]


# -- codec ----------------------------------------------------------------


def test_serialize_is_byte_stable_and_round_trips():
    sc = scenario()
    cs = build_candidate_set(sc)
    blob = serialize_candidate_set(cs)
    assert blob.startswith(CANDIDATE_BLOB_MAGIC)
    # Byte stability: re-serializing the same (or a freshly rebuilt) set
    # yields the same bytes — the content-addressed cache's core property.
    assert serialize_candidate_set(cs) == blob
    assert serialize_candidate_set(build_candidate_set(sc)) == blob
    assert_candidate_sets_identical(deserialize_candidate_set(blob), cs)


def test_deserialize_rebinds_to_scenario():
    sc = scenario()
    blob = serialize_candidate_set(build_candidate_set(sc))
    doubled = sc.with_budgets({"ct": 4})
    cs = deserialize_candidate_set(blob, doubled)
    # Strategies point at the requesting scenario's own ChargerType objects,
    # and capacities follow its current budgets (not the stored ones).
    assert all(s.ctype is doubled.charger_types[0] for s in cs.strategies)
    assert cs.capacities == [4]


def test_deserialize_rejects_garbage_and_unknown_types():
    with pytest.raises(ValueError, match="bad magic"):
        deserialize_candidate_set(b"not a blob")
    sc = scenario()
    blob = serialize_candidate_set(build_candidate_set(sc))
    ct = sc.charger_types[0]
    renamed = sc.with_charger_types(
        [ChargerType("other", ct.charging_angle, ct.dmin, ct.dmax)], {"other": 2}
    )
    with pytest.raises(ValueError, match="unknown charger type"):
        deserialize_candidate_set(blob, renamed)


# -- cache bounds + persistence ------------------------------------------


def test_lru_eviction_and_counters():
    metrics = MetricsRegistry()
    cache = CandidateSetCache(max_entries=2, metrics=metrics)
    blob = CANDIDATE_BLOB_MAGIC + b"x" * 10
    for key in ("a", "b", "c"):
        assert cache.put_bytes(key, blob)
    assert len(cache) == 2
    assert cache.get_bytes("a") is None  # least-recently-used got evicted
    assert cache.get_bytes("c") == blob
    stats = cache.stats()
    assert stats["evictions"] == 1 and stats["misses"] == 1 and stats["hits"] == 1
    cache.clear()
    assert len(cache) == 0 and cache.size_bytes == 0


def test_bytes_bound_and_oversize():
    cache = CandidateSetCache(max_entries=10, max_bytes=100)
    small = CANDIDATE_BLOB_MAGIC + b"s" * 10  # 30 bytes
    assert cache.put_bytes("a", small)
    assert cache.put_bytes("b", small)
    assert cache.put_bytes("c", small)
    # 3 x 30 = 90 <= 100; a fourth forces an eviction to stay under budget.
    assert cache.put_bytes("d", small)
    assert cache.size_bytes <= 100
    assert cache.get_bytes("a") is None
    # A blob larger than the whole budget is refused outright.
    assert not cache.put_bytes("huge", b"h" * 200)
    assert "huge" not in cache
    with pytest.raises(ValueError):
        CandidateSetCache(max_entries=0)
    with pytest.raises(ValueError):
        CandidateSetCache(max_bytes=0)


def test_disk_persistence_across_instances(tmp_path):
    sc = scenario()
    key = extraction_cache_key(sc)
    first = CandidateSetCache(directory=tmp_path)
    first.put(key, build_candidate_set(sc))
    assert list(tmp_path.glob("*.candidates"))

    metrics = MetricsRegistry()
    reborn = CandidateSetCache(directory=tmp_path, metrics=metrics)
    assert key in reborn  # disk probe, not memory
    assert len(reborn) == 0
    got = reborn.get(key, sc)
    assert got is not None
    assert_candidate_sets_identical(got, build_candidate_set(sc))
    assert metrics.counter("cache.candidates.disk_loads") == 1
    assert len(reborn) == 1  # re-promoted to the memory tier
    assert reborn.stats()["persistent"] is True


def test_shared_external_lock():
    lock = threading.Lock()
    cache = CandidateSetCache(metrics=MetricsRegistry(), lock=lock)
    blob = CANDIDATE_BLOB_MAGIC + b"z"
    cache.put_bytes("k", blob)
    assert cache.get_bytes("k") == blob
    assert not lock.locked()  # released on every path


# -- key semantics --------------------------------------------------------


def test_key_invariant_to_budgets_and_thresholds():
    sc = scenario()
    key = extraction_cache_key(sc)
    assert extraction_cache_key(sc.with_budgets({"ct": 7})) == key
    assert extraction_cache_key(sc.with_thresholds({"dt": 2.5})) == key


def test_key_sensitive_to_geometry_eps_and_active_types():
    sc = scenario()
    key = extraction_cache_key(sc)
    moved = simple_scenario(
        [(4.5, 4.0), (8.0, 6.0), (12.0, 10.0), (16.0, 14.0), (6.0, 12.0)], budget=2
    )
    assert extraction_cache_key(moved) != key
    assert extraction_cache_key(sc, eps=0.2) != key
    # A zero budget removes the type from extraction entirely.
    assert extraction_cache_key(sc.with_budgets({"ct": 0})) != key


def test_key_folds_in_generator_parameters():
    sc = scenario()
    key = extraction_cache_key(sc)
    assert extraction_cache_key(sc, generator=CandidateGenerator(sc, eps=0.15)) == key
    assert extraction_cache_key(sc, generator=CandidateGenerator(sc, eps=0.3)) != key
    assert (
        extraction_cache_key(sc, generator=CandidateGenerator(sc, eps=0.15, max_positions=9))
        != key
    )

    class Exotic(CandidateGenerator):
        pass

    assert extraction_cache_key(sc, generator=Exotic(sc, eps=0.15)) != key


# -- warm-start guarantee -------------------------------------------------


def test_warm_start_solve_is_byte_identical():
    sc = scenario()
    cache = CandidateSetCache()
    cold = solve_hipo(sc, candidate_cache=cache)  # miss: pays extraction
    warm = solve_hipo(sc, candidate_cache=cache)  # hit: selection only
    assert fingerprint(warm) == fingerprint(cold)
    stats = cache.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1

    # Different budgets share the extraction but re-run selection.
    swept = solve_hipo(sc.with_budgets({"ct": 3}), candidate_cache=cache)
    assert cache.stats()["hits"] == 2
    assert fingerprint(swept) == fingerprint(solve_hipo(sc.with_budgets({"ct": 3})))


def test_warm_start_marks_extraction_span_cached():
    sc = scenario()
    cache = CandidateSetCache()
    solve_hipo(sc, candidate_cache=cache)
    warm = solve_hipo(sc, candidate_cache=cache, keep_candidates=True)
    span = warm.trace.find("extraction")
    assert span is not None and span.attrs.get("cached") is True
    assert warm.candidate_set.num_candidates > 0


def test_ambient_cache_via_context_manager():
    sc = scenario()
    assert active_candidate_cache() is None
    cache = CandidateSetCache()
    with use_candidate_cache(cache) as active:
        assert active_candidate_cache() is active is cache
        solve_hipo(sc)
        solve_hipo(sc)
    assert active_candidate_cache() is None
    stats = cache.stats()
    assert stats["misses"] == 1 and stats["hits"] == 1
    # Outside the block solve_hipo no longer consults it.
    solve_hipo(sc)
    assert cache.stats()["hits"] == 1


def test_explicit_positions_bypass_cache():
    sc = scenario()
    cache = CandidateSetCache()
    rng = np.random.default_rng(0)
    override = {"ct": rng.uniform(0.0, 20.0, size=(10, 2))}
    solve_hipo(sc, positions_by_type=override, candidate_cache=cache)
    stats = cache.stats()
    assert len(cache) == 0 and stats["misses"] == 0 and stats["hits"] == 0
