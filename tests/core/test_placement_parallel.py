"""Equivalence and determinism of the batched / multi-worker extraction.

The tentpole guarantee: the legacy one-position-at-a-time path, the batched
kernels and the process-pool fan-out all produce *identical* candidate sets
(same strategies in the same order), hence identical greedy selections and
utilities.
"""

import numpy as np
import pytest

from repro.core import CandidateGenerator, build_candidate_set, solve_hipo
from repro.geometry import rectangle

from conftest import simple_scenario


def scenario_no_obstacles():
    return simple_scenario(
        [(4.0, 4.0), (8.0, 6.0), (12.0, 10.0), (16.0, 14.0), (6.0, 12.0)], budget=2
    )


def scenario_with_obstacles():
    return simple_scenario(
        [(4.0, 4.0), (8.0, 11.0), (12.0, 10.0), (16.0, 14.0), (5.0, 15.0)],
        obstacles=[rectangle(6.0, 6.0, 9.0, 9.0), rectangle(12.0, 3.0, 14.0, 5.0)],
        budget=2,
    )


def assert_candidate_sets_identical(a, b):
    assert a.num_candidates == b.num_candidates
    assert a.part_of == b.part_of
    assert np.array_equal(a.approx_power, b.approx_power)
    assert np.array_equal(a.exact_power, b.exact_power)
    assert [(s.position, s.orientation, s.ctype.name) for s in a.strategies] == [
        (s.position, s.orientation, s.ctype.name) for s in b.strategies
    ]


@pytest.mark.parametrize("make", [scenario_no_obstacles, scenario_with_obstacles])
def test_batched_matches_legacy(make):
    sc = make()
    legacy = build_candidate_set(sc, batched=False)
    batched = build_candidate_set(sc, batched=True)
    assert_candidate_sets_identical(legacy, batched)


@pytest.mark.parametrize("make", [scenario_no_obstacles, scenario_with_obstacles])
def test_parallel_matches_serial_candidates(make):
    sc = make()
    serial = build_candidate_set(sc, workers=1)
    parallel = build_candidate_set(sc, workers=4)
    assert_candidate_sets_identical(serial, parallel)


@pytest.mark.parametrize("make", [scenario_no_obstacles, scenario_with_obstacles])
def test_solve_equivalence_and_determinism(make):
    """``workers=1`` and ``workers=4`` give the same utility and candidate
    count, and repeated runs are bit-identical (determinism)."""
    sc = make()
    s1 = solve_hipo(sc, workers=1, keep_candidates=True)
    s4 = solve_hipo(sc, workers=4, keep_candidates=True)
    assert s1.utility == s4.utility
    assert s1.approx_utility == s4.approx_utility
    assert s1.candidate_set.num_candidates == s4.candidate_set.num_candidates
    assert [s.position for s in s1.strategies] == [s.position for s in s4.strategies]
    # Determinism: a repeat of the parallel solve is bit-identical.
    again = solve_hipo(sc, workers=4, keep_candidates=True)
    assert again.utility == s4.utility
    assert again.candidate_set.num_candidates == s4.candidate_set.num_candidates


def test_chunk_size_invariance():
    sc = scenario_with_obstacles()
    base = build_candidate_set(sc)
    for chunk in (1, 7, 64):
        other = build_candidate_set(sc, extraction_chunk_size=chunk)
        assert_candidate_sets_identical(base, other)


def test_chunk_size_env_override(monkeypatch):
    sc = scenario_with_obstacles()
    base = build_candidate_set(sc)
    monkeypatch.setenv("REPRO_EXTRACTION_CHUNK", "9")
    other = build_candidate_set(sc)
    assert_candidate_sets_identical(base, other)
    monkeypatch.setenv("REPRO_EXTRACTION_CHUNK", "not-a-number")
    with pytest.raises(ValueError):
        build_candidate_set(sc)
    monkeypatch.setenv("REPRO_EXTRACTION_CHUNK", "0")
    with pytest.raises(ValueError):
        build_candidate_set(sc)


def test_chunk_size_recorded_in_sweeps_span():
    from repro.obs import Tracer

    sc = scenario_no_obstacles()
    trace = Tracer()
    build_candidate_set(sc, extraction_chunk_size=33, tracer=trace)
    sweeps = trace.find_all("sweeps")
    assert sweeps and sweeps[-1].attrs["chunk_size"] == 33


def test_timings_populated():
    sc = scenario_no_obstacles()
    sol = solve_hipo(sc, keep_candidates=True)
    t = sol.timings
    assert t is not None
    assert t.workers == 1
    assert t.num_candidates == sol.candidate_set.num_candidates
    assert t.num_positions == sum(sol.candidate_set.positions_per_type.values())
    assert t.extraction_seconds >= 0.0 and t.selection_seconds >= 0.0
    assert "workers=1" in t.format()


@pytest.mark.parametrize("max_positions", [None, 25])
def test_custom_generator_parallel_matches_serial(max_positions):
    """A plain generator with non-default approximation parameters must pool
    identically to the serial path: the pool ships ``eps`` and
    ``max_positions``, and the position cap is applied by the parent after
    gathering (the regression this guards: phase 2 used to rebuild workers
    from defaults, and phase 1 never pooled custom generators at all)."""
    sc = scenario_with_obstacles()
    gen = CandidateGenerator(sc, eps=0.3, max_positions=max_positions)
    serial = build_candidate_set(sc, generator=gen, workers=1)
    pooled = build_candidate_set(sc, generator=gen, workers=2)
    assert_candidate_sets_identical(serial, pooled)


class _EveryOtherPositionGenerator(CandidateGenerator):
    """A subclass the pool cannot reproduce (overridden position logic)."""

    def positions(self, ctype):
        return super().positions(ctype)[::2]


def test_subclassed_generator_falls_back_in_process():
    """Generator subclasses must not be silently replaced by stock workers:
    both pooled phases fall back to the in-process path, so ``workers=2``
    equals the serial run even for exotic extractors."""
    sc = scenario_no_obstacles()
    gen = _EveryOtherPositionGenerator(sc, eps=0.2)
    serial = build_candidate_set(sc, generator=gen, workers=1)
    pooled = build_candidate_set(sc, generator=gen, workers=2)
    assert_candidate_sets_identical(serial, pooled)
    # And the subclass genuinely changed extraction vs the stock generator.
    stock = build_candidate_set(sc, generator=CandidateGenerator(sc, eps=0.2))
    assert stock.num_candidates != serial.num_candidates


def test_positions_by_type_override_with_workers():
    """Explicit positions short-circuit generation but still sweep in the pool."""
    sc = scenario_no_obstacles()
    rng = np.random.default_rng(5)
    override = {"ct": rng.uniform(0.0, 20.0, size=(40, 2))}
    serial = build_candidate_set(sc, positions_by_type=override, workers=1)
    parallel = build_candidate_set(sc, positions_by_type=override, workers=3)
    assert_candidate_sets_identical(serial, parallel)
