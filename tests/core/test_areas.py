"""Tests for the feasible-geometric-area signature index (§4.1.2)."""

import math

import numpy as np
import pytest

from repro.core import INFEASIBLE, FeasibleAreaIndex
from repro.geometry import polar_offset, rectangle

from conftest import simple_scenario


def index_for(sc, **kw):
    return FeasibleAreaIndex(sc, **kw)


def test_signature_infeasible_everywhere_far_away():
    sc = simple_scenario([(10.0, 10.0)], dmax=3.0)
    idx = index_for(sc)
    ct = sc.charger_types[0]
    assert idx.signature(ct, (0.0, 0.0)) == (INFEASIBLE,)


def test_signature_levels_increase_with_distance():
    sc = simple_scenario([(10.0, 10.0)], dmin=1.0, dmax=6.0, device_angle=2 * math.pi)
    idx = index_for(sc)
    ct = sc.charger_types[0]
    near = idx.signature(ct, (11.5, 10.0))[0]
    far = idx.signature(ct, (15.5, 10.0))[0]
    assert near != INFEASIBLE and far != INFEASIBLE
    assert far > near


def test_signature_respects_device_cone():
    # Device faces east; a charger to its west is outside the receiving cone.
    sc = simple_scenario(
        [(10.0, 10.0)], device_orientations=[0.0], device_angle=math.pi / 2
    )
    idx = index_for(sc)
    ct = sc.charger_types[0]
    assert idx.signature(ct, (13.0, 10.0))[0] != INFEASIBLE  # east: inside cone
    assert idx.signature(ct, (7.0, 10.0))[0] == INFEASIBLE  # west: outside


def test_signature_respects_obstacle_shadow():
    sc = simple_scenario(
        [(10.0, 10.0)],
        device_angle=2 * math.pi,
        obstacles=[rectangle(11.0, 9.5, 12.0, 10.5)],
    )
    idx = index_for(sc)
    ct = sc.charger_types[0]
    assert idx.signature(ct, (14.0, 10.0))[0] == INFEASIBLE  # shadowed
    assert idx.signature(ct, (10.0, 14.0))[0] != INFEASIBLE  # clear to the north


def test_constant_power_within_signature():
    sc = simple_scenario([(10.0, 10.0)], device_angle=2 * math.pi)
    idx = index_for(sc)
    ct = sc.charger_types[0]
    # Two points in the same distance bin at different bearings share the
    # signature; the approximated power vectors agree.
    p1 = polar_offset((10.0, 10.0), 0.3, 3.0)
    p2 = polar_offset((10.0, 10.0), 2.1, 3.0)
    assert idx.constant_power_within_signature(ct, p1, p2)
    sig = idx.signature(ct, p1)
    power = idx.approx_power_of_signature(ct, sig)
    assert power[0] > 0
    assert np.allclose(power, idx.approx_power_of_signature(ct, idx.signature(ct, p2)))


def test_approx_power_of_infeasible_signature_zero():
    sc = simple_scenario([(10.0, 10.0)])
    idx = index_for(sc)
    ct = sc.charger_types[0]
    assert idx.approx_power_of_signature(ct, (INFEASIBLE,)).sum() == 0.0


def test_count_areas_scales_with_devices():
    one = simple_scenario([(10.0, 10.0)], device_angle=2 * math.pi)
    three = simple_scenario(
        [(6.0, 10.0), (10.0, 10.0), (14.0, 10.0)], device_angle=2 * math.pi
    )
    ct = one.charger_types[0]
    c1 = index_for(one).count_areas(ct, resolution=40)
    c3 = index_for(three).count_areas(ct, resolution=40)
    assert c3.distinct_signatures > c1.distinct_signatures
    assert c1.samples > 0 and c3.samples > 0


def test_count_areas_under_lemma44_bound():
    """Lemma 4.4 (up to constants): empirical area count stays below the
    O(No^2 eps1^-2 Nh^2 c^2) expression."""
    sc = simple_scenario(
        [(6.0, 10.0), (10.0, 10.0), (14.0, 10.0)],
        obstacles=[rectangle(9.0, 6.0, 11.0, 8.0)],
        device_angle=2 * math.pi,
    )
    idx = index_for(sc)
    count = idx.count_areas(sc.charger_types[0], resolution=48)
    assert count.distinct_signatures <= count.lemma44_bound


def test_finer_eps_more_areas():
    sc = simple_scenario([(8.0, 10.0), (12.0, 10.0)], device_angle=2 * math.pi)
    ct = sc.charger_types[0]
    coarse = index_for(sc, eps=0.3).count_areas(ct, resolution=40).distinct_signatures
    fine = index_for(sc, eps=0.05).count_areas(ct, resolution=40).distinct_signatures
    assert fine > coarse
