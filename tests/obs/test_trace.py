"""Tracer: span nesting, exception safety, JSONL schema round-trip."""

import json

import pytest

from repro.obs import (
    TRACE_SCHEMA,
    TraceValidationError,
    Tracer,
    NULL_TRACER,
    validate_trace_file,
    validate_trace_lines,
)


def test_span_nesting_and_parentage():
    tr = Tracer()
    with tr.span("root") as root:
        with tr.span("child_a") as a:
            with tr.span("grandchild") as g:
                pass
        with tr.span("child_b") as b:
            pass
    assert root.parent_id is None
    assert a.parent_id == root.span_id
    assert g.parent_id == a.span_id
    assert b.parent_id == root.span_id
    # Completion order: innermost first.
    assert [s.name for s in tr.spans] == ["grandchild", "child_a", "child_b", "root"]
    assert [s.name for s in tr.children_of(root)] == ["child_a", "child_b"]
    assert tr.current is None


def test_span_durations_and_attrs():
    tr = Tracer()
    with tr.span("work", items=3) as sp:
        sp.set(extra="yes")
        sp.add("acc", 1.5)
        sp.add("acc", 0.5)
    assert sp.wall_s >= 0.0 and sp.cpu_s >= 0.0
    assert sp.attrs == {"items": 3, "extra": "yes", "acc": 2.0}
    assert sp.status == "ok"
    assert tr.find("work") is sp
    assert tr.find("missing") is None


def test_parent_intervals_exactly_contain_children():
    """Spans end on the same clock origin they start on, so a parent's
    [start_s, end_s] contains its children's with zero tolerance — a second
    entry-time sample would let preemption shrink the parent's interval."""
    tr = Tracer()
    with tr.span("root"):
        with tr.span("mid"):
            with tr.span("leaf"):
                pass
    by_name = {sp.name: sp for sp in tr.spans}
    for parent, child in (("root", "mid"), ("mid", "leaf")):
        p, c = by_name[parent], by_name[child]
        assert p.start_s <= c.start_s
        assert c.end_s <= p.end_s


def test_exception_safety():
    tr = Tracer()
    with pytest.raises(RuntimeError, match="boom"):
        with tr.span("outer"):
            with tr.span("inner"):
                raise RuntimeError("boom")
    inner = tr.find("inner")
    outer = tr.find("outer")
    assert inner.status == "error" and "RuntimeError: boom" in inner.attrs["error"]
    assert outer.status == "error"
    # Stack unwound: a new root span can be opened.
    with tr.span("again") as again:
        pass
    assert again.parent_id is None


def test_jsonl_round_trip(tmp_path):
    tr = Tracer()
    with tr.span("root", n=2):
        with tr.span("leaf", name_attr="x"):
            pass
    path = tmp_path / "trace.jsonl"
    tr.write_jsonl(path)
    spans = validate_trace_file(path)
    assert [s["name"] for s in spans] == ["root", "leaf"]
    for s in spans:
        assert s["schema"] == TRACE_SCHEMA
        assert s["trace_id"] == tr.trace_id
    # Line-parseable JSON, attrs survive.
    lines = [json.loads(l) for l in path.read_text().splitlines()]
    assert lines[0]["attrs"] == {"n": 2}
    assert lines[1]["attrs"] == {"name_attr": "x"}


def test_validate_rejects_bad_traces():
    with pytest.raises(TraceValidationError, match="empty"):
        validate_trace_lines([])
    with pytest.raises(TraceValidationError, match="not valid JSON"):
        validate_trace_lines(["{nope"])
    good = {
        "schema": TRACE_SCHEMA,
        "trace_id": "t",
        "span_id": "s1",
        "parent_id": None,
        "name": "root",
        "start_s": 0.0,
        "wall_s": 1.0,
        "cpu_s": 0.5,
        "status": "ok",
        "attrs": {},
    }
    with pytest.raises(TraceValidationError, match="missing keys"):
        validate_trace_lines([json.dumps({k: v for k, v in good.items() if k != "wall_s"})])
    with pytest.raises(TraceValidationError, match="unknown parent"):
        validate_trace_lines([json.dumps({**good, "parent_id": "nope"})])
    with pytest.raises(TraceValidationError, match="duplicate span_id"):
        validate_trace_lines([json.dumps(good), json.dumps({**good, "parent_id": "s1"})])
    # Child escaping the parent interval is a containment violation.
    child = {**good, "span_id": "s2", "parent_id": "s1", "start_s": 0.9, "wall_s": 5.0}
    with pytest.raises(TraceValidationError, match="not contained"):
        validate_trace_lines([json.dumps(good), json.dumps(child)])
    # And a well-formed pair validates.
    child_ok = {**good, "span_id": "s2", "parent_id": "s1", "start_s": 0.2, "wall_s": 0.5}
    assert len(validate_trace_lines([json.dumps(good), json.dumps(child_ok)])) == 2


def test_null_tracer_records_nothing():
    with NULL_TRACER.span("anything", k=1) as sp:
        sp.set(more=2)  # must not raise
    assert NULL_TRACER.spans == []
    assert not NULL_TRACER.enabled
