"""Metrics registry: instruments, picklable snapshots, cross-registry merge."""

import json
import pickle

from repro.obs import HistogramSummary, MetricsRegistry, MetricsSnapshot


def test_counters_gauges_histograms():
    m = MetricsRegistry()
    m.inc("c")
    m.inc("c", 4)
    m.gauge("g", 10.0)
    m.gauge("g", 7.0)  # gauges keep the max
    m.gauge("g", 12.0)
    for v in (1.0, 3.0, 2.0):
        m.observe("h", v)
    assert m.counter("c") == 5
    assert m.counter("absent") == 0
    assert m.gauge_value("g") == 12.0
    h = m.histogram("h")
    assert (h.count, h.total, h.min, h.max) == (3, 6.0, 1.0, 3.0)
    assert h.mean == 2.0


def test_snapshot_is_picklable_and_jsonable():
    m = MetricsRegistry()
    m.inc("a", 2)
    m.gauge("g", 1.5)
    m.observe("h", 0.25)
    snap = m.snapshot()
    clone = pickle.loads(pickle.dumps(snap))
    assert isinstance(clone, MetricsSnapshot)
    assert clone.counters == {"a": 2}
    assert clone.histograms["h"]["count"] == 1
    # JSON-serializable without custom encoders (bench meta embeds this).
    assert json.loads(json.dumps(snap.to_dict()))["gauges"]["g"] == 1.5


def test_merge_adds_counters_maxes_gauges_combines_histograms():
    a = MetricsRegistry()
    b = MetricsRegistry()
    a.inc("c", 3)
    b.inc("c", 4)
    b.inc("only_b")
    a.gauge("g", 5.0)
    b.gauge("g", 9.0)
    a.observe("h", 1.0)
    b.observe("h", 5.0)
    b.observe("h2", 2.0)
    a.merge(b.snapshot())
    assert a.counter("c") == 7
    assert a.counter("only_b") == 1
    assert a.gauge_value("g") == 9.0
    h = a.histogram("h")
    assert (h.count, h.min, h.max) == (2, 1.0, 5.0)
    assert a.histogram("h2").count == 1


def test_merge_registry_directly_and_empty_histogram():
    a = MetricsRegistry()
    b = MetricsRegistry()
    b.inc("x")
    a.merge(b)  # registry (not snapshot) also accepted
    assert a.counter("x") == 1
    empty = HistogramSummary()
    assert empty.to_dict() == {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0}
    filled = HistogramSummary()
    filled.observe(2.0)
    filled.merge(empty.to_dict())  # merging an empty summary is a no-op
    assert (filled.count, filled.min, filled.max) == (1, 2.0, 2.0)


def test_record_peak_rss_sets_gauge_on_linux():
    m = MetricsRegistry()
    m.record_peak_rss()
    peak = m.gauge_value("mem.peak_rss_bytes")
    assert peak is None or peak > 1024  # present on unix, sane if present
