"""Unit tests for the shared baseline machinery."""

import math

import numpy as np

from repro.baselines import free_grid_points, greedy_select
from repro.geometry import rectangle
from repro.model import Strategy

from conftest import simple_scenario


def scenario(budget=2):
    return simple_scenario([(5.0, 10.0), (15.0, 10.0)], budget=budget)


def test_greedy_select_prefers_covering_strategies():
    sc = scenario(budget=1)
    ct = sc.charger_types[0]
    good = Strategy((8.0, 10.0), math.pi, ct)  # points at device 0
    useless = Strategy((10.0, 2.0), 3.0, ct)  # points at nothing
    chosen = greedy_select(sc, {"ct": [useless, good]})
    assert len(chosen) == 1
    assert chosen[0] == good


def test_greedy_select_pads_to_budget_with_zero_gain_pool():
    """Budgets are always spent even when extra candidates add nothing."""
    sc = scenario(budget=3)
    ct = sc.charger_types[0]
    good = Strategy((8.0, 10.0), math.pi, ct)
    dud1 = Strategy((10.0, 2.0), 3.0, ct)
    dud2 = Strategy((2.0, 2.0), 3.0, ct)
    chosen = greedy_select(sc, {"ct": [good, dud1, dud2]})
    assert len(chosen) == 3
    assert good in chosen


def test_greedy_select_smaller_pool_than_budget():
    sc = scenario(budget=5)
    ct = sc.charger_types[0]
    pool = [Strategy((8.0, 10.0), math.pi, ct)]
    chosen = greedy_select(sc, {"ct": pool})
    assert len(chosen) == 1  # cannot invent chargers


def test_greedy_select_empty_pool():
    sc = scenario()
    assert greedy_select(sc, {"ct": []}) == []
    assert greedy_select(sc, {}) == []


def test_free_grid_points_filters():
    sc = simple_scenario([(5.0, 10.0)], obstacles=[rectangle(8.0, 8.0, 12.0, 12.0)])
    pts = np.array([[10.0, 10.0], [1.0, 1.0], [25.0, 1.0]])
    out = free_grid_points(sc, pts)
    assert len(out) == 1
    assert np.allclose(out[0], [1.0, 1.0])


def test_free_grid_points_empty():
    sc = scenario()
    assert free_grid_points(sc, np.zeros((0, 2))).shape == (0, 2)
