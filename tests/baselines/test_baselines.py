"""Tests for the eight comparison algorithms of §6."""

import math

import numpy as np
import pytest

from repro.baselines import (
    ALGORITHMS,
    BASELINES,
    discretized_orientations,
    grid_placement,
    grid_points_for_type,
    rpad,
    rpar,
    run_algorithm,
)
from repro.geometry import grid_length_for_radius, rectangle

from conftest import simple_scenario


def scenario(budget=3):
    return simple_scenario(
        [(4.0, 4.0), (8.0, 14.0), (15.0, 6.0), (16.0, 16.0)],
        obstacles=[rectangle(9.0, 8.0, 11.0, 10.0)],
        budget=budget,
    )


def test_discretized_orientations():
    out = discretized_orientations(math.pi / 2.0)
    assert len(out) == 4
    assert np.allclose(out, [0.0, math.pi / 2, math.pi, 3 * math.pi / 2])
    # Non-divisor aperture: ceil covers the circle.
    assert len(discretized_orientations(math.pi / 3 * 2.0)) == 3


def test_rpar_budget_and_feasibility(rng):
    sc = scenario()
    strats = rpar(sc, rng)
    assert len(strats) == 3
    for s in strats:
        assert sc.is_free(s.position)


def test_rpad_improves_on_orientation(rng):
    """On identical positions, RPAD's chosen orientations can only do at
    least as well as a fixed arbitrary orientation."""
    sc = scenario(budget=4)
    strats = rpad(sc, rng)
    assert len(strats) == 4
    u_rpad = sc.utility_of(strats)
    worst = [type(s)(s.position, 1.234, s.ctype) for s in strats]
    # RPAD picked the best discretized orientation sequentially; a fixed
    # arbitrary orientation on the same positions cannot beat it by much —
    # but strictly: the first charger's orientation is optimal in isolation.
    first_alone = sc.utility_of(strats[:1])
    fixed_alone = max(
        sc.utility_of([type(strats[0])(strats[0].position, t, strats[0].ctype)])
        for t in discretized_orientations(strats[0].ctype.charging_angle)
    )
    assert math.isclose(first_alone, fixed_alone, rel_tol=1e-9)
    assert u_rpad >= 0.0 and all(sc.is_free(s.position) for s in worst)


def test_grid_points_respect_pitch_and_obstacles():
    sc = scenario()
    ct = sc.charger_types[0]
    pts = grid_points_for_type(sc, ct, "square")
    assert len(pts) > 0
    pitch = grid_length_for_radius(ct.dmax)
    xs = np.unique(np.round(pts[:, 0], 6))
    if len(xs) > 1:
        assert np.allclose(np.diff(xs), pitch, atol=1e-6)
    for p in pts:
        assert sc.is_free(p)


def test_grid_points_triangle_differs_from_square():
    sc = scenario()
    ct = sc.charger_types[0]
    sq = grid_points_for_type(sc, ct, "square")
    tr = grid_points_for_type(sc, ct, "triangle")
    assert not (len(sq) == len(tr) and np.allclose(np.sort(sq, axis=0), np.sort(tr, axis=0)))
    with pytest.raises(ValueError):
        grid_points_for_type(sc, ct, "hex")


@pytest.mark.parametrize("orientation", ["random", "discrete", "pdcs"])
@pytest.mark.parametrize("kind", ["square", "triangle"])
def test_grid_placement_budget_and_positions(kind, orientation, rng):
    sc = scenario()
    strats = grid_placement(sc, rng, kind=kind, orientation=orientation)
    assert len(strats) == 3
    pts = grid_points_for_type(sc, sc.charger_types[0], kind)
    keys = {tuple(np.round(p, 6)) for p in pts}
    for s in strats:
        assert tuple(np.round(s.position, 6)) in keys


def test_grid_placement_rejects_unknown_orientation(rng):
    sc = scenario()
    with pytest.raises(ValueError):
        grid_placement(sc, rng, orientation="nope")


def test_orientation_hierarchy_on_average():
    """GPAD should (weakly) beat GPAR and GPPDCS should be competitive with
    GPAD — the §6 ordering, averaged over seeds."""
    sc = scenario(budget=3)
    u = {k: 0.0 for k in ("random", "discrete", "pdcs")}
    for seed in range(6):
        for mode in u:
            rng = np.random.default_rng(seed)
            u[mode] += sc.utility_of(grid_placement(sc, rng, kind="square", orientation=mode))
    assert u["discrete"] >= u["random"] - 1e-9
    assert u["pdcs"] >= u["discrete"] - 0.05 * 6  # allow small slack


def test_registry_contains_nine_algorithms():
    assert set(ALGORITHMS) == {
        "HIPO",
        "GPPDCS Triangle",
        "GPPDCS Square",
        "GPAD Triangle",
        "GPAD Square",
        "GPAR Triangle",
        "GPAR Square",
        "RPAD",
        "RPAR",
    }
    assert "HIPO" not in BASELINES and len(BASELINES) == 8


def test_run_algorithm_dispatch(rng):
    sc = scenario()
    strats = run_algorithm("RPAR", sc, rng)
    assert len(strats) == 3
    with pytest.raises(KeyError):
        run_algorithm("nope", sc, rng)


def test_all_baselines_spend_budget(rng):
    sc = scenario(budget=2)
    for name in BASELINES:
        strats = run_algorithm(name, sc, np.random.default_rng(0))
        assert len(strats) == 2, name
