"""Edge-case tests for paths not covered by the module suites."""

import math

import numpy as np
import pytest

from repro.experiments import SeriesTable, render_svg
from repro.geometry import SectorRing, polar_offset, rectangle
from repro.model import ChargerType, DeviceType, Strategy

from conftest import simple_scenario


def test_svg_reflex_aperture_sector():
    """Charging sectors wider than pi need the SVG large-arc flag."""
    sc = simple_scenario([(10.0, 10.0)], charger_angle=1.5 * math.pi)
    ct = sc.charger_types[0]
    svg = render_svg(sc, [Strategy((10.0, 10.0), 0.0, ct)])
    # Large-arc flag set on the outer arc.
    assert " 1 1 " in svg


def test_svg_empty_scenario_obstacle_only():
    sc = simple_scenario([(10.0, 10.0)], obstacles=[rectangle(2, 2, 4, 4)]).with_devices([])
    svg = render_svg(sc)
    assert "<polygon" in svg and "<circle" not in svg


def test_sector_ring_reflex_half_angle_contains():
    ring = SectorRing((0.0, 0.0), 0.0, 0.9 * math.pi, 1.0, 4.0)
    # Almost everything except a thin wedge behind is covered.
    assert ring.contains(polar_offset((0, 0), 0.8 * math.pi, 2.0))
    assert not ring.contains(polar_offset((0, 0), math.pi, 2.0))


def test_series_table_long_labels_alignment():
    t = SeriesTable("a very long x axis label indeed", [1])
    t.add("short", [0.5])
    lines = t.format().splitlines()
    # Header and row columns line up despite the long label.
    assert lines[0].index("short") > len("a very long x axis label indeed")


def test_charger_type_scaled_identity():
    ct = ChargerType("x", math.pi / 3, 2.0, 7.0)
    s = ct.scaled()
    assert s == ct


def test_device_receiving_ring_narrow_type():
    from repro.model import Device

    dt = DeviceType("narrow", math.pi / 12)
    d = Device((0.0, 0.0), 0.0, dt, 0.1)
    ct = ChargerType("c", math.pi / 2, 1.0, 5.0)
    ring = d.receiving_ring(ct)
    assert ring.contains((3.0, 0.0))
    assert not ring.contains((0.0, 3.0))


def test_ant_colony_zero_capacity_part(rng):
    from repro.opt import ant_colony

    res = ant_colony(lambda idx: float(len(idx)), [0, 0, 1, 1], [0, 1], rng, ants=4, iterations=5)
    assert all(e >= 2 for e in res.indices)
    assert len(res.indices) == 1


def test_pso_single_member_parts(rng):
    from repro.opt import particle_swarm

    res = particle_swarm(lambda idx: float(sum(idx)), [0, 1], [1, 1], rng, particles=4, iterations=5)
    assert sorted(res.indices) == [0, 1]


def test_evaluator_multiple_types_distinct_coefficients():
    from repro.model import CoefficientTable, Device, PairCoefficients, PowerEvaluator

    ct1 = ChargerType("c1", math.pi / 2, 1.0, 6.0)
    ct2 = ChargerType("c2", math.pi / 2, 1.0, 6.0)
    dt = DeviceType("d", 2 * math.pi)
    table = CoefficientTable(
        {("c1", "d"): PairCoefficients(100.0, 5.0), ("c2", "d"): PairCoefficients(200.0, 5.0)}
    )
    ev = PowerEvaluator([Device((3.0, 0.0), 0.0, dt, 0.1)], [], table, [ct1, ct2])
    p1 = ev.power_vector(Strategy((0.0, 0.0), 0.0, ct1))[0]
    p2 = ev.power_vector(Strategy((0.0, 0.0), 0.0, ct2))[0]
    assert math.isclose(p2, 2.0 * p1, rel_tol=1e-12)


def test_candidate_generator_empty_devices():
    from repro.core import CandidateGenerator

    sc = simple_scenario([(10.0, 10.0)]).with_devices([])
    gen = CandidateGenerator(sc)
    assert gen.positions(sc.charger_types[0]).shape == (0, 2)


def test_solve_hipo_no_devices():
    from repro import solve_hipo

    sc = simple_scenario([(10.0, 10.0)]).with_devices([])
    sol = solve_hipo(sc)
    assert sol.strategies == []
    assert sol.utility == 0.0


def test_cli_figure_all_names_registered():
    from repro.cli import FIGURES, build_parser

    for name in FIGURES:
        args = build_parser().parse_args(["figure", name])
        assert args.name == name
