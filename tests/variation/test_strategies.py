"""Variation strategies: grids, stratified draws, adversarial mutation."""

import math
from collections import Counter

import numpy as np
import pytest

from repro.variation import FAMILIES, case_seed, generate_corpus, get_family, grid_cases, random_cases
from repro.variation.strategies import nudge_obstacle, perturb_device, shrink_budget

ALL = tuple(FAMILIES)


def test_grid_cases_cover_full_product():
    fam = get_family("corridor")
    cases = grid_cases(fam)
    expected = math.prod(len(p.choices) for p in fam.params)
    assert len(cases) == expected
    assert len({tuple(sorted(c.items())) for c in cases}) == expected


def test_random_cases_balanced_marginals_and_deterministic():
    fam = get_family("corridor")
    cases = random_cases(fam, 12, seed=7)
    assert cases == random_cases(fam, 12, seed=7)
    assert cases != random_cases(fam, 12, seed=8)
    walls = Counter(c["walls"] for c in cases)
    # 12 draws over 3 choices: exactly 4 each (latin-hypercube stratification).
    assert set(walls.values()) == {4}


def test_case_seed_is_stable_and_spread():
    seeds = [case_seed(1, i) for i in range(50)]
    assert seeds == [case_seed(1, i) for i in range(50)]
    assert len(set(seeds)) == 50


def test_generate_corpus_exact_budget_and_round_robin():
    corpus = generate_corpus(ALL, budget=13, seed=0)
    assert len(corpus) == 13
    counts = Counter(v.family for v in corpus)
    assert max(counts.values()) - min(counts.values()) <= 1


def test_generate_corpus_deterministic_and_distinct():
    a = generate_corpus(ALL, budget=20, seed=3)
    b = generate_corpus(ALL, budget=20, seed=3)
    assert [v.stamp() for v in a] == [v.stamp() for v in b]
    assert len({v.scenario_hash() for v in a}) == 20


@pytest.mark.parametrize("strategy", ["grid", "random", "adversarial", "mixed"])
def test_all_strategies_produce_stamped_scenarios(strategy):
    corpus = generate_corpus(("sparse",), budget=5, seed=2, strategy=strategy)
    assert len(corpus) == 5
    for v in corpus:
        assert v.family == "sparse"
        assert v.provenance()["scenario_hash"]


def test_unknown_strategy_rejected():
    with pytest.raises(ValueError, match="unknown strategy"):
        generate_corpus(ALL, budget=3, seed=0, strategy="bogus")


def test_nudge_obstacle_flips_a_sight_line():
    base = get_family("cluttered").build(seed=6)
    nudged = nudge_obstacle(base)
    assert nudged is not None
    assert len(nudged.mutations) == 1 and nudged.mutations[0].startswith("nudge_obstacle")
    s0, s1 = base.scenario, nudged.scenario
    center = ((s0.bounds[0] + s0.bounds[2]) / 2.0, (s0.bounds[1] + s0.bounds[3]) / 2.0)
    flipped = any(
        o0.blocks_segment(d.position, center) != o1.blocks_segment(d.position, center)
        for o0, o1 in zip(s0.obstacles, s1.obstacles)
        for d in s0.devices
    )
    assert flipped


def test_nudge_obstacle_none_without_obstacles():
    v = get_family("sparse").build({"with_obstacle": 0}, seed=1)
    assert not v.scenario.obstacles
    assert nudge_obstacle(v) is None


def test_shrink_budget_descends_to_one_charger():
    v = get_family("corridor").build(seed=5)
    chain = shrink_budget(v)
    totals = [sum(w.scenario.budgets.values()) for w in chain]
    assert totals == list(range(sum(v.scenario.budgets.values()) - 1, 0, -1))
    assert all(w.mutations for w in chain)
    assert all(min(w.scenario.budgets.values()) > 0 for w in chain)


def test_perturb_device_stays_in_free_space():
    v = get_family("cluttered").build(seed=7)
    rng = np.random.default_rng(0)
    p = perturb_device(v, rng)
    assert p is not None
    moved = [
        (a.position, b.position)
        for a, b in zip(v.scenario.devices, p.scenario.devices)
        if a.position != b.position
    ]
    assert len(moved) == 1
    new_pos = moved[0][1]
    assert p.scenario.in_region(new_pos)
    assert not any(h.contains(new_pos) for h in p.scenario.obstacles)
