"""The differential harness end to end: reports, bug capture, shrink, replay, CLI."""

import json

import pytest

from repro.core.placement import solve_hipo
from repro.variation import (
    DiffConfig,
    InvariantContext,
    load_repro,
    replay_repro,
    run_differential,
    shrink_failure,
    get_family,
)
from repro.variation.cli import main as vary_main

FAMS = ("cluttered", "corridor", "sparse", "kcoverage", "fairness")


def parity_bug_solver(scenario, **kw):
    """The canonical injected bug: odd-total budgets report inflated utility."""
    sol = solve_hipo(scenario, **kw)
    if sum(scenario.budgets.values()) % 2 == 1:
        sol.approx_utility = sol.approx_utility * 1.5 + 0.1
    return sol


def test_healthy_run_is_clean_and_deterministic(tmp_path):
    cfg = DiffConfig(families=FAMS, budget=10, seed=1, eps=0.4, out_dir=str(tmp_path))
    a = run_differential(cfg)
    b = run_differential(cfg)
    assert a.ok and b.ok
    assert a.scenarios == 10 and a.distinct_scenarios == 10
    assert set(a.families_seen) == set(FAMS)
    assert a.stamps_digest == b.stamps_digest
    assert a.to_dict() == b.to_dict()
    assert not list(tmp_path.iterdir())  # no repro files on a clean run


def test_report_shapes():
    cfg = DiffConfig(families=("sparse",), budget=3, seed=2, eps=0.4)
    report = run_differential(cfg)
    d = report.to_dict()
    assert d["schema"] == "repro.variation.report/v1"
    assert d["ok"] is True and d["violations"] == []
    assert sum(d["checks"].values()) == 3  # rotation: one invariant per scenario
    text = report.format()
    assert "OK" in text and "sparse:3" in text


def test_config_validation():
    with pytest.raises(ValueError, match="budget"):
        DiffConfig(families=FAMS, budget=0)
    with pytest.raises(ValueError, match="strategy"):
        DiffConfig(families=FAMS, strategy="bogus")
    with pytest.raises(ValueError, match="invariant"):
        DiffConfig(families=FAMS, invariants=("bogus",))
    with pytest.raises(ValueError, match="workers"):
        DiffConfig(families=FAMS, workers=0)


def test_workers_fan_out_is_byte_identical_to_serial():
    """workers is an execution knob: digest and report must not change."""
    kwargs = dict(families=("sparse", "kcoverage"), budget=6, seed=7, eps=0.4)
    serial = run_differential(DiffConfig(**kwargs))
    pooled = run_differential(DiffConfig(**kwargs, workers=2))
    assert pooled.stamps_digest == serial.stamps_digest
    assert pooled.to_dict() == serial.to_dict()


def test_workers_fan_out_still_catches_injected_bug(tmp_path):
    ctx = InvariantContext(eps=0.4, solver=parity_bug_solver)
    kwargs = dict(
        families=("sparse",),
        budget=2,
        seed=3,
        eps=0.4,
        invariants=("budget_monotone",),
    )
    serial = run_differential(DiffConfig(**kwargs), ctx=ctx)
    pooled = run_differential(DiffConfig(**kwargs, workers=2), ctx=ctx)
    assert not pooled.ok
    assert pooled.to_dict() == serial.to_dict()


def test_injected_bug_is_caught_shrunk_and_replayable(tmp_path):
    ctx = InvariantContext(eps=0.4, solver=parity_bug_solver)
    cfg = DiffConfig(
        families=("sparse",),
        budget=2,
        seed=3,
        eps=0.4,
        invariants=("budget_monotone",),
        out_dir=str(tmp_path),
    )
    report = run_differential(cfg, ctx=ctx)
    assert not report.ok and report.findings
    finding = report.findings[0]
    # Shrunk: strictly smaller than any family instance (builders make >= 3 devices).
    assert len(finding.varied.scenario.devices) <= 2
    assert any(m.startswith("shrink:") for m in finding.varied.mutations)
    # The repro file exists, parses, and replays.
    assert finding.repro_path is not None
    data = load_repro(finding.repro_path)
    assert data["violation"]["invariant"] == "budget_monotone"
    assert data["provenance"]["family"] == "sparse"
    # Replaying against the buggy solver still fails; against the real
    # solver (bug "fixed") it passes.
    assert replay_repro(finding.repro_path, ctx=ctx) is not None
    assert replay_repro(finding.repro_path) is None


def test_shrink_returns_unchanged_on_non_failure():
    v = get_family("sparse").build(seed=1)
    minimal, violation, evals = shrink_failure(v, "budget_monotone", InvariantContext(eps=0.4))
    assert violation is None and evals == 1
    assert minimal is v


def test_cli_clean_run_and_listings(tmp_path, capsys):
    rc = vary_main(
        [
            "--families", "sparse,kcoverage",
            "--budget", "4",
            "--seed", "5",
            "--eps", "0.4",
            "--out", str(tmp_path),
            "--quiet",
            "--json",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    payload = json.loads(out)
    assert payload["ok"] is True and payload["scenarios"] == 4

    assert vary_main(["--list-families"]) == 0
    assert vary_main(["--list-invariants"]) == 0
    listings = capsys.readouterr().out
    assert "corridor" in listings and "budget_monotone" in listings


def test_cli_unknown_family_exits_2(capsys):
    rc = vary_main(["--families", "bogus", "--budget", "1", "--quiet"])
    assert rc == 2
    assert "unknown scenario family" in capsys.readouterr().err


def test_cli_replay_roundtrip(tmp_path, capsys):
    ctx = InvariantContext(eps=0.4, solver=parity_bug_solver)
    cfg = DiffConfig(
        families=("sparse",),
        budget=1,
        seed=3,
        eps=0.4,
        invariants=("budget_monotone",),
        out_dir=str(tmp_path),
    )
    report = run_differential(cfg, ctx=ctx)
    path = report.findings[0].repro_path
    # The real solver has no such bug, so the replay reports it fixed.
    rc = vary_main(["--replay", path, "--eps", "0.4"])
    assert rc == 0
    assert "fixed" in capsys.readouterr().out
