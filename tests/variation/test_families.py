"""Scenario families: determinism, provenance, and per-family structure."""

import pytest

from repro.io import canonical_scenario_hash
from repro.variation import FAMILIES, get_family
from repro.variation.families import ParamSpec


def test_catalog_has_at_least_five_families():
    assert len(FAMILIES) >= 5
    assert set(FAMILIES) >= {"cluttered", "corridor", "sparse", "kcoverage", "fairness"}


@pytest.mark.parametrize("name", sorted(FAMILIES))
def test_build_is_pure_in_params_and_seed(name):
    fam = get_family(name)
    a = fam.build(seed=42)
    b = fam.build(seed=42)
    assert a.stamp() == b.stamp()
    assert a.scenario_hash() == b.scenario_hash()
    c = fam.build(seed=43)
    assert c.scenario_hash() != a.scenario_hash()


@pytest.mark.parametrize("name", sorted(FAMILIES))
def test_devices_are_placed_outside_obstacles(name):
    s = get_family(name).build(seed=9).scenario
    for d in s.devices:
        assert s.in_region(d.position)
        assert not any(h.contains(d.position, include_boundary=False) for h in s.obstacles)


def test_equal_seeds_are_independent_across_families():
    hashes = {name: get_family(name).build(seed=5).scenario_hash() for name in FAMILIES}
    assert len(set(hashes.values())) == len(hashes)


def test_provenance_stamp_shape():
    v = get_family("corridor").build({"walls": 3}, seed=1)
    prov = v.provenance()
    assert prov["family"] == "corridor"
    assert prov["seed"] == 1
    assert prov["params"]["walls"] == 3
    assert prov["mutations"] == []
    assert prov["scenario_hash"] == canonical_scenario_hash(v.scenario)


def test_validate_params_rejects_unknown_and_merges_defaults():
    fam = get_family("sparse")
    with pytest.raises(KeyError, match="no parameter"):
        fam.build({"nonsense": 1}, seed=0)
    merged = fam.validate_params({"devices": 6})
    assert merged["devices"] == 6
    assert set(merged) == set(fam.param_names())


def test_get_family_unknown_name():
    with pytest.raises(KeyError, match="unknown scenario family"):
        get_family("no-such-family")


def test_param_spec_requires_choices():
    with pytest.raises(ValueError):
        ParamSpec("empty", ())


def test_corridor_wall_count_follows_param():
    for walls in (2, 4):
        s = get_family("corridor").build({"walls": walls}, seed=3).scenario
        assert len(s.obstacles) == walls


def test_kcoverage_budgets_scale_with_k():
    fam = get_family("kcoverage")
    s1 = fam.build({"k": 1}, seed=2).scenario
    s3 = fam.build({"k": 3}, seed=2).scenario
    assert sum(s3.budgets.values()) == 3 * sum(s1.budgets.values())
    # Higher k also raises the per-device demand threshold proportionally.
    assert s3.devices[0].threshold == pytest.approx(3 * s1.devices[0].threshold)


def test_fairness_family_splits_clusters():
    v = get_family("fairness").build({"main_devices": 4, "starved_devices": 2}, seed=8)
    s = v.scenario
    assert len(s.devices) == 6
    assert len(s.obstacles) == 2  # the two wall arms
    # The starved devices sit in the walled-off far corner.
    size = s.bounds[2]
    starved = s.devices[-2:]
    assert all(d.position[0] > size * 0.6 and d.position[1] > size * 0.6 for d in starved)


def test_mutation_trail_preserves_stamp_lineage():
    v = get_family("sparse").build(seed=4)
    w = v.with_scenario(v.scenario.with_budgets({"charger-1": 1}), "shrink_budget[test]")
    assert w.family == v.family and w.seed == v.seed and w.params == v.params
    assert w.mutations == ("shrink_budget[test]",)
    assert w.scenario_hash() != v.scenario_hash()
