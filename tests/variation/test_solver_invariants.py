"""Solver invariants: pass on healthy solver, catch an injected bug."""

import pytest

from repro.core.placement import solve_hipo
from repro.variation import INVARIANTS, InvariantContext, check_invariant, get_family

#: One small, fixed instance per invariant keeps this module tier-1 fast.
CTX = InvariantContext(eps=0.4)


def small(family="sparse", seed=11, **params):
    return get_family(family).build(params or None, seed=seed)


@pytest.mark.parametrize("name", sorted(INVARIANTS))
def test_invariants_pass_on_healthy_solver(name):
    violation = check_invariant(name, small(), CTX)
    assert violation is None


def test_obstacle_blocking_on_obstacle_rich_family():
    v = get_family("corridor").build({"walls": 2, "devices": 3}, seed=4)
    assert check_invariant("obstacle_blocking", v, CTX) is None


def test_cross_impl_on_corridor():
    v = get_family("corridor").build({"walls": 2, "devices": 3}, seed=5)
    assert check_invariant("cross_impl", v, CTX) is None


def test_unknown_invariant_rejected():
    with pytest.raises(KeyError, match="unknown invariant"):
        check_invariant("bogus", small(), CTX)


def test_budget_monotone_catches_flipped_utility_shim():
    # A deliberately buggy solver: placements whose total budget has odd
    # parity report inflated utility, so shrinking 6 -> 5 chargers "wins".
    def buggy(scenario, **kw):
        sol = solve_hipo(scenario, **kw)
        if sum(scenario.budgets.values()) % 2 == 1:
            sol.approx_utility = sol.approx_utility * 1.5 + 0.1
        return sol

    ctx = InvariantContext(eps=0.4, solver=buggy)
    violation = check_invariant("budget_monotone", small(), ctx)
    assert violation is not None
    assert violation.invariant == "budget_monotone"
    assert violation.details["shrunk_approx_utility"] > violation.details["base_approx_utility"]


def test_warm_cold_catches_cache_dependent_shim():
    # A solver that returns a different placement when a cache is attached.
    def buggy(scenario, **kw):
        sol = solve_hipo(scenario, **kw)
        if kw.get("candidate_cache") is not None:
            sol.strategies = sol.strategies[:-1]
            sol.utility = scenario.utility_of(sol.strategies)
        return sol

    ctx = InvariantContext(eps=0.4, solver=buggy)
    violation = check_invariant("warm_cold", small(), ctx)
    assert violation is not None and violation.invariant == "warm_cold"


def test_cross_impl_catches_backend_dependent_shim():
    def buggy(scenario, **kw):
        sol = solve_hipo(scenario, **kw)
        if kw.get("backend") == "pyloop":
            sol.approx_utility += 0.25
        return sol

    ctx = InvariantContext(eps=0.4, solver=buggy)
    violation = check_invariant("cross_impl", small(), ctx)
    assert violation is not None and violation.invariant == "cross_impl"


def test_violation_details_are_json_plain():
    import json

    def buggy(scenario, **kw):
        sol = solve_hipo(scenario, **kw)
        if sum(scenario.budgets.values()) % 2 == 1:
            sol.approx_utility = sol.approx_utility * 1.5 + 0.1
        return sol

    violation = check_invariant(
        "budget_monotone", small(), InvariantContext(eps=0.4, solver=buggy)
    )
    json.dumps(violation.to_dict())  # must not raise
