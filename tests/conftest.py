"""Shared fixtures and helpers for the test suite.

The runtime lock-order sanitizer is switched on for the whole tier-1
suite: setting ``REPRO_LOCK_SANITIZER=1`` before any repro module
instantiates its locks makes ``repro.concurrency.new_lock`` hand out
order-checked proxies, so every threaded test doubles as a dynamic
deadlock check — an acquisition that inverts the established lock order
raises ``LockOrderViolation`` instead of hanging the suite.  The session
fixture below seeds the ordering graph from the *static*
``repro.lockgraph/v1`` document, so a runtime inversion is caught even
when the other half of the cycle never executes under test.
"""

from __future__ import annotations

import math
import os
from typing import Iterator

os.environ.setdefault("REPRO_LOCK_SANITIZER", "1")

import numpy as np
import pytest

from repro.geometry import Polygon, rectangle
from repro.model import (
    ChargerType,
    CoefficientTable,
    Device,
    DeviceType,
    PairCoefficients,
    Scenario,
)


@pytest.fixture(scope="session", autouse=True)
def seed_static_lock_order() -> Iterator[None]:
    from repro.analysis import default_source_root
    from repro.analysis.lockgraph import build_lock_graph, validate_lock_graph
    from repro.analysis.sanitizer import install_static_order

    doc = build_lock_graph([default_source_root()])
    validate_lock_graph(doc)
    # A statically known deadlock should fail loudly here, not flake later.
    assert doc["cycles"] == [], f"static lock-order cycles: {doc['cycles']}"
    install_static_order((edge["from"], edge["to"]) for edge in doc["edges"])
    yield


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def make_charger_type(
    name: str = "ct",
    angle: float = math.pi / 2.0,
    dmin: float = 1.0,
    dmax: float = 6.0,
) -> ChargerType:
    return ChargerType(name, angle, dmin, dmax)


def make_device_type(name: str = "dt", angle: float = math.pi) -> DeviceType:
    return DeviceType(name, angle)


def make_table(ctypes, dtypes, a: float = 100.0, b: float = 5.0) -> CoefficientTable:
    entries = {}
    for ct in ctypes:
        for dt in dtypes:
            entries[(ct.name, dt.name)] = PairCoefficients(a, b)
    return CoefficientTable(entries)


def simple_scenario(
    device_positions,
    *,
    device_orientations=None,
    obstacles=(),
    bounds=(0.0, 0.0, 20.0, 20.0),
    charger_angle: float = math.pi / 2.0,
    device_angle: float = 2.0 * math.pi,
    dmin: float = 1.0,
    dmax: float = 6.0,
    threshold: float = 0.5,
    budget: int = 2,
    a: float = 100.0,
    b: float = 5.0,
) -> Scenario:
    """A single-charger-type, single-device-type scenario for unit tests."""
    ct = ChargerType("ct", charger_angle, dmin, dmax)
    dt = DeviceType("dt", device_angle)
    table = make_table([ct], [dt], a=a, b=b)
    if device_orientations is None:
        device_orientations = [0.0] * len(device_positions)
    devices = tuple(
        Device(tuple(p), o, dt, threshold) for p, o in zip(device_positions, device_orientations)
    )
    return Scenario(
        bounds=bounds,
        devices=devices,
        obstacles=tuple(obstacles),
        charger_types=(ct,),
        budgets={"ct": budget},
        table=table,
    )


@pytest.fixture
def square_obstacle() -> Polygon:
    return rectangle(4.0, 4.0, 6.0, 6.0)


@pytest.fixture
def lint_tree(tmp_path):
    """Write ``{relative_path: source}`` files and run the static analyzer.

    Returns a function; source strings are dedented so tests/analysis
    fixtures can be written inline as indented triple-quoted blocks.
    """
    import textwrap

    from repro.analysis import run_analysis

    def run(files, **kwargs):
        for rel, source in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source))
        return run_analysis([tmp_path], **kwargs)

    return run
