"""Tests for Hungarian / Hopcroft–Karp matching (the §8.1 substrate)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.optimize import linear_sum_assignment

from repro.opt import has_perfect_matching, hopcroft_karp, hungarian


def brute_min_assignment(cost: np.ndarray) -> float:
    n = len(cost)
    return min(sum(cost[i, p[i]] for i in range(n)) for p in itertools.permutations(range(n)))


def test_hungarian_simple():
    cost = np.array([[4.0, 1.0, 3.0], [2.0, 0.0, 5.0], [3.0, 2.0, 2.0]])
    assignment, total = hungarian(cost)
    assert np.isclose(total, 5.0)
    assert sorted(assignment.tolist()) == [0, 1, 2]


def test_hungarian_identity():
    cost = np.eye(4) * 10 + 1 - np.eye(4)
    # Off-diagonal zeros... just check vs scipy below; here diag is expensive.
    assignment, total = hungarian(cost)
    assert np.isclose(total, brute_min_assignment(cost))


def test_hungarian_empty():
    assignment, total = hungarian(np.zeros((0, 0)))
    assert total == 0.0 and len(assignment) == 0


def test_hungarian_rejects_non_square():
    with pytest.raises(ValueError):
        hungarian(np.zeros((2, 3)))


@settings(max_examples=40)
@given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=10_000))
def test_hungarian_matches_scipy(n, seed):
    rng = np.random.default_rng(seed)
    cost = rng.uniform(0, 10, size=(n, n))
    assignment, total = hungarian(cost)
    rows, cols = linear_sum_assignment(cost)
    assert np.isclose(total, cost[rows, cols].sum(), atol=1e-9)
    # assignment is a permutation
    assert sorted(assignment.tolist()) == list(range(n))


def test_hungarian_with_forbidden_edges():
    cost = np.array([[np.inf, 1.0], [1.0, np.inf]])
    assignment, total = hungarian(cost)
    assert np.isclose(total, 2.0)
    assert assignment.tolist() == [1, 0]


def test_hungarian_infeasible_returns_inf():
    cost = np.array([[np.inf, np.inf], [1.0, 1.0]])
    _assignment, total = hungarian(cost)
    assert total == float("inf")


def test_hopcroft_karp_perfect():
    adj = np.array([[True, True, False], [True, False, False], [False, True, True]])
    size, mr, mc = hopcroft_karp(adj)
    assert size == 3
    for i, j in enumerate(mr):
        assert adj[i, j]
        assert mc[j] == i


def test_hopcroft_karp_partial():
    adj = np.array([[True, False], [True, False]])
    size, mr, mc = hopcroft_karp(adj)
    assert size == 1


@settings(max_examples=40)
@given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=10_000))
def test_hopcroft_karp_maximum_vs_brute(n, seed):
    rng = np.random.default_rng(seed)
    adj = rng.random((n, n)) < 0.4

    def brute_max(adj):
        best = 0
        cols = range(adj.shape[1])
        for size in range(min(adj.shape), 0, -1):
            for rows in itertools.combinations(range(adj.shape[0]), size):
                for perm in itertools.permutations(cols, size):
                    if all(adj[r, c] for r, c in zip(rows, perm)):
                        return size
        return 0

    size, _, _ = hopcroft_karp(adj)
    assert size == brute_max(adj)


def test_has_perfect_matching_hall_violation():
    # Two rows share a single column: Hall's condition fails.
    adj = np.array([[True, False], [True, False]])
    assert not has_perfect_matching(adj)
    adj2 = np.array([[True, False], [True, True]])
    assert has_perfect_matching(adj2)


def test_has_perfect_matching_more_rows_than_cols():
    assert not has_perfect_matching(np.ones((3, 2), dtype=bool))
