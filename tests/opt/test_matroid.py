"""Tests for matroid classes (Definitions 4.6/4.7)."""

import pytest

from repro.opt import PartitionMatroid, UniformMatroid


def test_uniform_matroid_independence():
    m = UniformMatroid(5, 2)
    assert m.is_independent([])
    assert m.is_independent([0, 4])
    assert not m.is_independent([0, 1, 2])
    assert not m.is_independent([7])  # out of range


def test_uniform_matroid_can_extend():
    m = UniformMatroid(5, 2)
    assert m.can_extend([0], 1)
    assert not m.can_extend([0, 1], 2)
    assert not m.can_extend([0], 0)  # duplicate


def test_uniform_matroid_rank():
    assert UniformMatroid(5, 2).rank() == 2
    assert UniformMatroid(1, 4).rank() == 1


def test_partition_matroid_independence():
    # Elements 0,1 in part 0 (cap 1); elements 2,3,4 in part 1 (cap 2).
    m = PartitionMatroid([0, 0, 1, 1, 1], [1, 2])
    assert m.is_independent([0, 2, 3])
    assert not m.is_independent([0, 1])  # part 0 over capacity
    assert not m.is_independent([2, 3, 4])  # part 1 over capacity
    assert m.is_independent([])


def test_partition_matroid_can_extend():
    m = PartitionMatroid([0, 0, 1, 1, 1], [1, 2])
    assert m.can_extend([0], 2)
    assert not m.can_extend([0], 1)
    assert m.can_extend([2], 3)
    assert not m.can_extend([2, 3], 4)


def test_partition_matroid_rank():
    m = PartitionMatroid([0, 0, 1, 1, 1], [1, 2])
    assert m.rank() == 3
    # Capacity above availability is limited by availability.
    m2 = PartitionMatroid([0, 1], [5, 5])
    assert m2.rank() == 2


def test_partition_matroid_validation():
    with pytest.raises(ValueError):
        PartitionMatroid([0, 2], [1, 1])  # part index out of range
    with pytest.raises(ValueError):
        PartitionMatroid([0], [-1])


def test_matroid_exchange_property():
    """Definition 4.6(3): |X| < |Y| independent => some y extends X."""
    m = PartitionMatroid([0, 0, 1, 1, 1], [1, 2])
    from itertools import combinations

    ground = range(5)
    indep = [set(c) for size in range(4) for c in combinations(ground, size) if m.is_independent(c)]
    for X in indep:
        for Y in indep:
            if len(X) < len(Y):
                assert any(m.is_independent(X | {y}) for y in Y - X)


def test_matroid_hereditary_property():
    """Definition 4.6(2): subsets of independent sets are independent."""
    m = PartitionMatroid([0, 0, 1, 1, 1], [1, 2])
    from itertools import combinations

    for size in range(4):
        for c in combinations(range(5), size):
            if m.is_independent(c):
                for sub_size in range(size):
                    for sub in combinations(c, sub_size):
                        assert m.is_independent(sub)
