"""Tests for the metaheuristics (§8.3 solvers)."""

import numpy as np
import pytest

from repro.opt import (
    ant_colony,
    particle_swarm,
    random_feasible_solution,
    simulated_annealing,
)

PART_OF = [0, 0, 0, 0, 1, 1, 1, 1]
CAPS = [2, 2]


def feasible(indices):
    counts = [0, 0]
    for e in set(indices):
        counts[PART_OF[e]] += 1
    return len(set(indices)) == len(indices) and all(c <= cap for c, cap in zip(counts, CAPS))


def value_table(rng):
    vals = rng.uniform(0, 1, len(PART_OF))

    def objective(indices):
        return float(sum(vals[e] for e in indices))

    best = sorted(vals[:4])[-2:] + sorted(vals[4:])[-2:]
    return objective, float(sum(best))


def test_random_feasible_solution_properties(rng):
    for _ in range(30):
        sol = random_feasible_solution(rng, PART_OF, CAPS)
        assert feasible(sol)
        assert len(sol) == 4  # maximal


def test_random_feasible_with_small_parts(rng):
    sol = random_feasible_solution(rng, [0, 1], [3, 0])
    assert sol == [0]


@pytest.mark.parametrize("method", ["sa", "pso", "aco"])
def test_metaheuristics_find_modular_optimum(method, rng):
    """With a modular (additive) objective all three should find the exact
    optimum on this tiny instance."""
    objective, opt = value_table(rng)
    if method == "sa":
        res = simulated_annealing(objective, PART_OF, CAPS, rng, iterations=800)
    elif method == "pso":
        res = particle_swarm(objective, PART_OF, CAPS, rng, particles=10, iterations=50)
    else:
        res = ant_colony(objective, PART_OF, CAPS, rng, ants=10, iterations=50)
    assert feasible(res.indices)
    assert res.value >= opt - 1e-9


def test_simulated_annealing_never_degrades_best(rng):
    objective, _ = value_table(rng)
    res = simulated_annealing(objective, PART_OF, CAPS, rng, iterations=300)
    hist = res.history
    assert all(b >= a - 1e-12 for a, b in zip(hist, hist[1:]))
    assert np.isclose(res.value, hist[-1])


def test_simulated_annealing_accepts_initial(rng):
    objective, _ = value_table(rng)
    init = [0, 1, 4, 5]
    res = simulated_annealing(objective, PART_OF, CAPS, rng, iterations=0, initial=init)
    assert res.value >= objective(init) - 1e-12


def test_particle_swarm_history_monotone(rng):
    objective, _ = value_table(rng)
    res = particle_swarm(objective, PART_OF, CAPS, rng, particles=6, iterations=20)
    assert all(b >= a - 1e-12 for a, b in zip(res.history, res.history[1:]))


def test_ant_colony_history_monotone(rng):
    objective, _ = value_table(rng)
    res = ant_colony(objective, PART_OF, CAPS, rng, ants=6, iterations=20)
    assert all(b >= a - 1e-12 for a, b in zip(res.history, res.history[1:]))


def test_metaheuristics_deterministic_given_seed():
    objective = lambda idx: float(sum(idx))
    r1 = simulated_annealing(objective, PART_OF, CAPS, np.random.default_rng(7), iterations=100)
    r2 = simulated_annealing(objective, PART_OF, CAPS, np.random.default_rng(7), iterations=100)
    assert r1.indices == r2.indices and r1.value == r2.value
