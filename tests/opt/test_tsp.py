"""Tests for TSP heuristics (§8.2 travel-cost substrate)."""

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.opt import mtsp_split, nearest_neighbor_tour, plan_tour, tour_length, two_opt


def brute_optimal(points):
    n = len(points)
    best = math.inf
    for perm in itertools.permutations(range(1, n)):
        best = min(best, tour_length(points, [0, *perm]))
    return best


def test_tour_length_square():
    pts = np.array([[0, 0], [1, 0], [1, 1], [0, 1]], dtype=float)
    assert math.isclose(tour_length(pts, [0, 1, 2, 3]), 4.0)
    assert math.isclose(tour_length(pts, [0, 1, 2, 3], closed=False), 3.0)


def test_tour_length_trivial():
    pts = np.array([[0, 0], [1, 0]], dtype=float)
    assert tour_length(pts, [0]) == 0.0
    assert math.isclose(tour_length(pts, [0, 1]), 2.0)


def test_nearest_neighbor_visits_all():
    rng = np.random.default_rng(0)
    pts = rng.uniform(0, 10, (12, 2))
    tour = nearest_neighbor_tour(pts)
    assert sorted(tour) == list(range(12))


def test_nearest_neighbor_empty():
    assert nearest_neighbor_tour(np.zeros((0, 2))) == []


def test_two_opt_never_worse():
    rng = np.random.default_rng(1)
    for _ in range(10):
        pts = rng.uniform(0, 10, (10, 2))
        nn = nearest_neighbor_tour(pts)
        improved = two_opt(pts, nn)
        assert sorted(improved) == list(range(10))
        assert tour_length(pts, improved) <= tour_length(pts, nn) + 1e-9


def test_two_opt_untangles_crossing():
    # Square visited in crossing order 0-2-1-3; 2-opt should fix it.
    pts = np.array([[0, 0], [1, 0], [1, 1], [0, 1]], dtype=float)
    improved = two_opt(pts, [0, 2, 1, 3])
    assert math.isclose(tour_length(pts, improved), 4.0)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=4, max_value=7), st.integers(min_value=0, max_value=1000))
def test_plan_tour_near_optimal_small(n, seed):
    rng = np.random.default_rng(seed)
    pts = rng.uniform(0, 10, (n, 2))
    _tour, length = plan_tour(pts)
    opt = brute_optimal(pts)
    assert length >= opt - 1e-9
    # NN + 2-opt is a decent heuristic on tiny instances.
    assert length <= 1.5 * opt + 1e-9


def test_mtsp_split_assigns_every_point_once():
    rng = np.random.default_rng(2)
    pts = rng.uniform(0, 10, (15, 2))
    bases = np.array([[0.0, 0.0], [10.0, 10.0]])
    groups = mtsp_split(pts, bases)
    flat = sorted(i for g in groups for i in g)
    assert flat == list(range(15))


def test_mtsp_split_respects_proximity():
    pts = np.array([[1.0, 1.0], [9.0, 9.0]])
    bases = np.array([[0.0, 0.0], [10.0, 10.0]])
    groups = mtsp_split(pts, bases)
    assert groups[0] == [0] and groups[1] == [1]


def test_mtsp_split_edge_cases():
    with pytest.raises(ValueError):
        mtsp_split(np.zeros((2, 2)), np.zeros((0, 2)))
    groups = mtsp_split(np.zeros((0, 2)), np.array([[0.0, 0.0]]))
    assert groups == [[]]


def test_matrix_variants_match_point_variants():
    rng = np.random.default_rng(5)
    pts = rng.uniform(0, 10, (9, 2))
    dist = np.hypot(
        pts[:, None, 0] - pts[None, :, 0], pts[:, None, 1] - pts[None, :, 1]
    )
    from repro.opt import (
        nearest_neighbor_tour_matrix,
        plan_tour_matrix,
        tour_length_matrix,
        two_opt_matrix,
    )

    nn_p = nearest_neighbor_tour(pts)
    nn_m = nearest_neighbor_tour_matrix(dist)
    assert nn_p == nn_m
    assert math.isclose(tour_length(pts, nn_p), tour_length_matrix(dist, nn_m), rel_tol=1e-12)
    t_p = two_opt(pts, nn_p)
    t_m = two_opt_matrix(dist, nn_m)
    assert math.isclose(tour_length(pts, t_p), tour_length_matrix(dist, t_m), rel_tol=1e-12)
    _tp, lp = plan_tour(pts)
    _tm, lm = plan_tour_matrix(dist)
    assert math.isclose(lp, lm, rel_tol=1e-12)


def test_matrix_tour_with_detour_distances():
    """The matrix variants accept non-Euclidean (obstacle-aware) metrics."""
    from repro.opt import plan_tour_matrix

    # A 3-node metric where the direct 0-2 hop is expensive (detour).
    dist = np.array([[0.0, 1.0, 10.0], [1.0, 0.0, 1.0], [10.0, 1.0, 0.0]])
    tour, length = plan_tour_matrix(dist, start=0)
    assert sorted(tour) == [0, 1, 2]
    # Closed tour must include the expensive leg once: 1 + 1 + 10.
    assert math.isclose(length, 12.0)
