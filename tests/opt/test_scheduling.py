"""Tests for LPT scheduling (Graham's bound, used by §5)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.opt import Schedule, brute_force_makespan, lpt_schedule, makespan


def test_lpt_basic():
    # The classical LPT worst-ish case: OPT = 6, LPT = 7 (within 4/3 bound).
    s = lpt_schedule([3.0, 3.0, 2.0, 2.0, 2.0], 2)
    assert np.isclose(s.makespan, 7.0)
    assert len(s.assignment) == 5
    assert np.isclose(sum(s.loads), 12.0)


def test_lpt_single_machine():
    s = lpt_schedule([1.0, 2.0, 3.0], 1)
    assert np.isclose(s.makespan, 6.0)


def test_lpt_more_machines_than_tasks():
    s = lpt_schedule([5.0, 1.0], 4)
    assert np.isclose(s.makespan, 5.0)


def test_lpt_empty():
    s = lpt_schedule([], 3)
    assert s.makespan == 0.0


def test_lpt_validation():
    with pytest.raises(ValueError):
        lpt_schedule([1.0], 0)
    with pytest.raises(ValueError):
        lpt_schedule([-1.0], 2)


def test_tasks_of_partition():
    s = lpt_schedule([4.0, 3.0, 2.0, 1.0], 2)
    all_tasks = sorted(t for m in range(2) for t in s.tasks_of(m))
    assert all_tasks == [0, 1, 2, 3]


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=7),
    st.integers(min_value=1, max_value=3),
)
def test_lpt_within_graham_bound(durations, m):
    """LPT makespan <= (4/3 - 1/(3m)) * OPT (Graham 1969)."""
    opt = brute_force_makespan(durations, m)
    got = makespan(durations, m)
    assert got <= (4.0 / 3.0 - 1.0 / (3.0 * m)) * opt + 1e-9
    assert got >= opt - 1e-9  # cannot beat the optimum


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=10),
    st.integers(min_value=1, max_value=5),
)
def test_lpt_lower_bounds(durations, m):
    got = makespan(durations, m)
    assert got >= max(durations) - 1e-12
    assert got >= sum(durations) / m - 1e-9


def test_makespan_monotone_in_machines():
    dur = [5.0, 4.0, 3.0, 2.0, 1.0, 1.0]
    spans = [makespan(dur, m) for m in range(1, 7)]
    assert all(a >= b - 1e-12 for a, b in zip(spans, spans[1:]))
