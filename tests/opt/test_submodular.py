"""Tests for the submodular objective and greedy solvers (Lemma 4.6, Thm 4.2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.opt import (
    ChargingUtilityObjective,
    PartitionMatroid,
    ProportionalFairnessObjective,
    UniformMatroid,
    exhaustive_best,
    greedy_matroid,
    lazy_greedy_matroid,
)


def random_instance(rng, n=8, m=5):
    P = rng.uniform(0.0, 0.06, size=(n, m))
    P[rng.random((n, m)) < 0.5] = 0.0
    th = np.full(m, 0.05)
    return P, th


small_floats = st.floats(min_value=0.0, max_value=0.2)


def test_objective_validation():
    with pytest.raises(ValueError):
        ChargingUtilityObjective(np.zeros((2, 3)), np.zeros(2))  # wrong threshold length
    with pytest.raises(ValueError):
        ChargingUtilityObjective(np.zeros((2, 3)), np.zeros(3))  # non-positive thresholds
    with pytest.raises(ValueError):
        ChargingUtilityObjective(np.zeros(3), np.ones(3))  # 1-D matrix


def test_objective_value_basic():
    P = np.array([[0.05, 0.0], [0.0, 0.025]])
    th = np.array([0.05, 0.05])
    f = ChargingUtilityObjective(P, th)
    assert f.value([]) == 0.0
    assert np.isclose(f.value([0]), 0.5)  # one device saturated / 2 devices
    assert np.isclose(f.value([0, 1]), 0.75)


def test_objective_normalized_monotone_submodular_properties():
    rng = np.random.default_rng(0)
    P, th = random_instance(rng)
    f = ChargingUtilityObjective(P, th)
    n = P.shape[0]
    # Normalized
    assert f.value([]) == 0.0
    for trial in range(50):
        A = set(int(i) for i in rng.choice(n, size=rng.integers(0, 4), replace=False))
        extra = set(int(i) for i in rng.choice(n, size=rng.integers(0, 3), replace=False))
        B = A | extra
        candidates = [e for e in range(n) if e not in B]
        if not candidates:
            continue
        e = int(rng.choice(candidates))
        fa, fb = f.value(A), f.value(B)
        fae, fbe = f.value(A | {e}), f.value(B | {e})
        # Monotone
        assert fae >= fa - 1e-12 and fbe >= fb - 1e-12
        # Submodular (diminishing returns)
        assert (fae - fa) >= (fbe - fb) - 1e-12


def test_proportional_fairness_also_submodular():
    rng = np.random.default_rng(1)
    P, th = random_instance(rng)
    f = ProportionalFairnessObjective(P, th)
    assert f.value([]) == 0.0
    for trial in range(30):
        A = set(int(i) for i in rng.choice(8, size=2, replace=False))
        B = A | {int(rng.integers(0, 8))}
        e = next(i for i in range(8) if i not in B)
        assert (f.value(A | {e}) - f.value(A)) >= (f.value(B | {e}) - f.value(B)) - 1e-12


def test_gains_matches_value_difference():
    rng = np.random.default_rng(2)
    P, th = random_instance(rng)
    f = ChargingUtilityObjective(P, th)
    subset = [0, 3]
    current = P[subset].sum(axis=0)
    pool = np.array([1, 2, 5])
    gains = f.gains(current, pool)
    for g, e in zip(gains, pool):
        assert np.isclose(g, f.value(subset + [int(e)]) - f.value(subset))


def test_greedy_respects_partition_budgets():
    rng = np.random.default_rng(3)
    P, th = random_instance(rng, n=9)
    f = ChargingUtilityObjective(P, th)
    m = PartitionMatroid([0, 0, 0, 1, 1, 1, 2, 2, 2], [1, 2, 0])
    res = greedy_matroid(f, m)
    assert m.is_independent(res.indices)
    parts = [sum(1 for e in res.indices if q == m.part_of[e]) for q in range(3)]
    assert parts[2] == 0 and parts[0] <= 1 and parts[1] <= 2


def test_greedy_half_optimal_vs_exhaustive():
    rng = np.random.default_rng(4)
    for trial in range(10):
        P, th = random_instance(rng, n=7, m=4)
        f = ChargingUtilityObjective(P, th)
        m = PartitionMatroid([0, 0, 0, 0, 1, 1, 1], [2, 1])
        greedy = greedy_matroid(f, m)
        best = exhaustive_best(f, m)
        assert greedy.value >= 0.5 * best.value - 1e-9
        assert greedy.value <= best.value + 1e-12


def test_greedy_part_order_mode():
    rng = np.random.default_rng(5)
    P, th = random_instance(rng, n=9)
    f = ChargingUtilityObjective(P, th)
    m = PartitionMatroid([0, 0, 0, 1, 1, 1, 2, 2, 2], [1, 1, 1])
    res = greedy_matroid(f, m, part_order=[0, 1, 2])
    assert m.is_independent(res.indices)
    assert res.value > 0.0
    with pytest.raises(TypeError):
        greedy_matroid(f, UniformMatroid(9, 3), part_order=[0])


def test_lazy_greedy_matches_full_scan():
    rng = np.random.default_rng(6)
    for trial in range(10):
        P, th = random_instance(rng, n=10, m=6)
        f = ChargingUtilityObjective(P, th)
        m = PartitionMatroid([0] * 5 + [1] * 5, [2, 2])
        full = greedy_matroid(f, m)
        lazy = lazy_greedy_matroid(f, m)
        assert np.isclose(full.value, lazy.value, atol=1e-12)
        # CELF should not evaluate more than the full scan.
        assert lazy.evaluations <= full.evaluations


def test_lazy_greedy_fewer_evaluations_on_larger_instance():
    rng = np.random.default_rng(7)
    P, th = random_instance(rng, n=200, m=20)
    f = ChargingUtilityObjective(P, th)
    m = PartitionMatroid([0] * 100 + [1] * 100, [5, 5])
    full = greedy_matroid(f, m)
    lazy = lazy_greedy_matroid(f, m)
    assert np.isclose(full.value, lazy.value, atol=1e-9)
    assert lazy.evaluations < full.evaluations


def test_greedy_skips_zero_gain_candidates():
    P = np.zeros((3, 2))
    th = np.ones(2)
    f = ChargingUtilityObjective(P, th)
    res = greedy_matroid(f, PartitionMatroid([0, 0, 0], [3]))
    assert res.indices == []
    assert res.value == 0.0


def test_greedy_mismatched_matroid_rejected():
    P = np.zeros((3, 2))
    f = ChargingUtilityObjective(P, np.ones(2))
    with pytest.raises(ValueError):
        greedy_matroid(f, PartitionMatroid([0, 0], [2]))


def test_empty_candidate_set():
    f = ChargingUtilityObjective(np.zeros((0, 3)), np.ones(3))
    res = greedy_matroid(f, PartitionMatroid([], [1]))
    assert res.indices == [] and res.value == 0.0
    lazy = lazy_greedy_matroid(f, PartitionMatroid([], [1]))
    assert lazy.indices == []


def test_stochastic_greedy_feasible_and_competitive():
    from repro.opt import stochastic_greedy_matroid

    rng = np.random.default_rng(11)
    P, th = random_instance(rng, n=120, m=12)
    f = ChargingUtilityObjective(P, th)
    m = PartitionMatroid([0] * 60 + [1] * 60, [4, 4])
    full = greedy_matroid(f, m)
    stoch = stochastic_greedy_matroid(f, m, np.random.default_rng(0), sample_fraction=0.3)
    assert m.is_independent(stoch.indices)
    assert stoch.value >= 0.7 * full.value
    assert stoch.evaluations < full.evaluations


def test_stochastic_greedy_full_fraction_matches_greedy_value():
    from repro.opt import stochastic_greedy_matroid

    rng = np.random.default_rng(12)
    P, th = random_instance(rng, n=30, m=8)
    f = ChargingUtilityObjective(P, th)
    m = PartitionMatroid([0] * 15 + [1] * 15, [3, 3])
    full = greedy_matroid(f, m)
    stoch = stochastic_greedy_matroid(f, m, np.random.default_rng(0), sample_fraction=1.0)
    assert np.isclose(stoch.value, full.value, atol=1e-12)


def test_stochastic_greedy_validation():
    from repro.opt import stochastic_greedy_matroid

    f = ChargingUtilityObjective(np.zeros((3, 2)), np.ones(2))
    m = PartitionMatroid([0, 0, 0], [2])
    with pytest.raises(ValueError):
        stochastic_greedy_matroid(f, m, np.random.default_rng(0), sample_fraction=0.0)
    res = stochastic_greedy_matroid(f, m, np.random.default_rng(0))
    assert res.indices == []  # all-zero gains terminate cleanly
