"""Tests for the swap local-search refinement."""

import numpy as np
import pytest

from repro.opt import (
    ChargingUtilityObjective,
    PartitionMatroid,
    exhaustive_best,
    greedy_matroid,
    local_search_refine,
)


def instance(rng, n=14, m=8):
    P = rng.uniform(0.0, 0.06, size=(n, m))
    P[rng.random((n, m)) < 0.5] = 0.0
    th = np.full(m, 0.05)
    return ChargingUtilityObjective(P, th)


def test_refine_never_degrades():
    for seed in range(8):
        rng = np.random.default_rng(seed)
        f = instance(rng)
        matroid = PartitionMatroid([0] * 7 + [1] * 7, [2, 2])
        greedy = greedy_matroid(f, matroid)
        refined = local_search_refine(f, matroid, greedy.indices)
        assert refined.value >= greedy.value - 1e-12
        assert matroid.is_independent(refined.indices)


def test_refine_preserves_part_counts():
    rng = np.random.default_rng(3)
    f = instance(rng)
    matroid = PartitionMatroid([0] * 7 + [1] * 7, [2, 1])
    greedy = greedy_matroid(f, matroid)
    refined = local_search_refine(f, matroid, greedy.indices)
    parts0 = sorted(matroid.part_of[e] for e in greedy.indices)
    parts1 = sorted(matroid.part_of[e] for e in refined.indices)
    assert parts0 == parts1  # swaps stay within the part


def test_refine_fixes_deliberately_bad_start():
    """Start from the worst maximal independent set; refinement must reach
    at least the greedy's value region (and often the optimum)."""
    rng = np.random.default_rng(4)
    f = instance(rng, n=10, m=6)
    matroid = PartitionMatroid([0] * 5 + [1] * 5, [2, 2])
    # Worst start: pick the elements with minimal singleton value.
    singles = [f.value([e]) for e in range(10)]
    worst = sorted(range(5), key=lambda e: singles[e])[:2] + sorted(
        range(5, 10), key=lambda e: singles[e]
    )[:2]
    refined = local_search_refine(f, matroid, worst)
    best = exhaustive_best(f, matroid)
    assert refined.value >= 0.5 * best.value - 1e-9
    assert refined.value >= f.value(worst)


def test_refine_rejects_infeasible_start():
    f = instance(np.random.default_rng(0), n=6, m=4)
    matroid = PartitionMatroid([0] * 3 + [1] * 3, [1, 1])
    with pytest.raises(ValueError):
        local_search_refine(f, matroid, [0, 1])  # two from part 0


def test_refine_empty_start():
    f = instance(np.random.default_rng(0), n=6, m=4)
    matroid = PartitionMatroid([0] * 3 + [1] * 3, [1, 1])
    refined = local_search_refine(f, matroid, [])
    assert refined.indices == [] and refined.value == 0.0
