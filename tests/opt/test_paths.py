"""Tests for visibility-graph shortest paths (§8.2 travel substrate)."""

import math

import numpy as np
import pytest

from repro.geometry import Polygon, rectangle
from repro.opt.paths import VisibilityGraph, path_length_matrix, shortest_path_length


def test_free_space_is_euclidean():
    vg = VisibilityGraph([])
    assert math.isclose(vg.distance((0, 0), (3, 4)), 5.0)
    assert vg.path((0, 0), (3, 4)) == [(0.0, 0.0), (3.0, 4.0)]


def test_detour_around_wall():
    # Wall between the terminals: the path must go around an end.
    wall = rectangle(4.0, -5.0, 5.0, 5.0)
    vg = VisibilityGraph([wall])
    d = vg.distance((0.0, 0.0), (9.0, 0.0))
    euclid = 9.0
    assert d > euclid  # strictly longer
    # Going over the top corner (4,5)/(5,5): path length via corners.
    via_top = (
        math.hypot(4.0, 5.0) + 1.0 + math.hypot(4.0, 5.0)
    )
    assert d <= via_top + 0.1


def test_path_polyline_valid():
    wall = rectangle(4.0, -5.0, 5.0, 5.0)
    vg = VisibilityGraph([wall])
    pts = vg.path((0.0, 0.0), (9.0, 0.0))
    assert pts[0] == (0.0, 0.0) and pts[-1] == (9.0, 0.0)
    assert len(pts) >= 3  # at least one corner
    # Consecutive waypoints are mutually visible.
    from repro.geometry import line_of_sight

    for a, b in zip(pts, pts[1:]):
        assert line_of_sight(a, b, [wall])
    # Polyline length equals the reported distance.
    length = sum(math.dist(a, b) for a, b in zip(pts, pts[1:]))
    assert math.isclose(length, vg.distance((0.0, 0.0), (9.0, 0.0)), rel_tol=1e-9)


def test_distance_symmetry_and_triangle_inequality():
    obstacles = [rectangle(3.0, 3.0, 6.0, 6.0), Polygon([(8.0, 1.0), (10.0, 2.0), (9.0, 4.0)])]
    vg = VisibilityGraph(obstacles)
    rng = np.random.default_rng(0)
    pts = []
    while len(pts) < 4:
        p = rng.uniform(0, 12, 2)
        if not any(h.contains(p) for h in obstacles):
            pts.append(tuple(p))
    for a in pts:
        for b in pts:
            assert math.isclose(vg.distance(a, b), vg.distance(b, a), rel_tol=1e-9)
    for a in pts:
        for b in pts:
            for c in pts:
                assert vg.distance(a, c) <= vg.distance(a, b) + vg.distance(b, c) + 1e-9


def test_distance_lower_bounded_by_euclidean():
    obstacles = [rectangle(3.0, 3.0, 6.0, 6.0)]
    vg = VisibilityGraph(obstacles)
    rng = np.random.default_rng(1)
    for _ in range(20):
        a = tuple(rng.uniform(0, 10, 2))
        b = tuple(rng.uniform(0, 10, 2))
        if any(h.contains(a) or h.contains(b) for h in obstacles):
            continue
        assert vg.distance(a, b) >= math.dist(a, b) - 1e-9


def test_one_shot_helper():
    wall = rectangle(4.0, -5.0, 5.0, 5.0)
    assert shortest_path_length((0, 0), (9, 0), [wall]) > 9.0
    assert math.isclose(shortest_path_length((0, 0), (1, 0), []), 1.0)


def test_path_length_matrix():
    obstacles = [rectangle(4.0, -5.0, 5.0, 5.0)]
    pts = np.array([[0.0, 0.0], [9.0, 0.0], [0.0, 7.0]])
    m = path_length_matrix(pts, obstacles)
    assert m.shape == (3, 3)
    assert np.allclose(np.diag(m), 0.0)
    assert np.allclose(m, m.T)
    assert m[0, 1] > 9.0  # detour
    assert math.isclose(m[0, 2], 7.0)  # clear line


def test_skeleton_size():
    vg = VisibilityGraph([rectangle(0, 0, 1, 1)])
    nodes, edges = vg.skeleton_size
    assert nodes == 4
    assert edges >= 4  # the four sides are mutually visible along edges
