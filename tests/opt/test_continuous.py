"""Tests for the sampled continuous greedy (the paper's [39] alternative)."""

import numpy as np
import pytest

from repro.opt import (
    ChargingUtilityObjective,
    PartitionMatroid,
    continuous_greedy,
    exhaustive_best,
    greedy_matroid,
)


def instance(rng, n=10, m=6):
    P = rng.uniform(0.0, 0.06, size=(n, m))
    P[rng.random((n, m)) < 0.5] = 0.0
    th = np.full(m, 0.05)
    return ChargingUtilityObjective(P, th)


def test_continuous_greedy_feasible():
    rng = np.random.default_rng(0)
    f = instance(rng)
    m = PartitionMatroid([0] * 5 + [1] * 5, [2, 2])
    res = continuous_greedy(f, m, rng)
    assert m.is_independent(res.indices)
    assert 0.0 <= res.value <= 1.0
    assert np.all((0.0 <= res.fractional) & (res.fractional <= 1.0))


def test_continuous_greedy_near_optimal_small():
    """On small instances the sampled continuous greedy should land within
    the (1 - 1/e) band of the optimum (checked loosely)."""
    rng = np.random.default_rng(1)
    f = instance(rng, n=8, m=5)
    m = PartitionMatroid([0] * 4 + [1] * 4, [2, 1])
    res = continuous_greedy(f, m, rng, steps=30, samples=12, rounding_trials=24)
    best = exhaustive_best(f, m)
    assert res.value >= (1.0 - 1.0 / np.e) * best.value - 0.05
    assert res.value <= best.value + 1e-9


def test_continuous_greedy_competitive_with_greedy():
    rng = np.random.default_rng(2)
    vals_cg, vals_g = [], []
    for seed in range(5):
        local = np.random.default_rng(seed)
        f = instance(local, n=12, m=8)
        m = PartitionMatroid([0] * 6 + [1] * 6, [2, 2])
        vals_cg.append(continuous_greedy(f, m, local, steps=25, samples=10).value)
        vals_g.append(greedy_matroid(f, m).value)
    assert np.mean(vals_cg) >= 0.85 * np.mean(vals_g)


def test_continuous_greedy_costs_more_evaluations():
    rng = np.random.default_rng(3)
    f = instance(rng, n=20, m=8)
    m = PartitionMatroid([0] * 10 + [1] * 10, [3, 3])
    res = continuous_greedy(f, m, rng)
    full = greedy_matroid(f, m)
    assert res.evaluations > full.evaluations  # "too computationally demanding"


def test_continuous_greedy_empty_and_validation():
    f = instance(np.random.default_rng(0), n=0, m=3)
    res = continuous_greedy(f, PartitionMatroid([], [1]), np.random.default_rng(0))
    assert res.indices == [] and res.value == 0.0
    f2 = instance(np.random.default_rng(0), n=4, m=3)
    with pytest.raises(ValueError):
        continuous_greedy(f2, PartitionMatroid([0, 0], [1]), np.random.default_rng(0))


def test_continuous_greedy_zero_capacity_part():
    rng = np.random.default_rng(4)
    f = instance(rng, n=6, m=4)
    m = PartitionMatroid([0, 0, 0, 1, 1, 1], [2, 0])
    res = continuous_greedy(f, m, rng)
    assert all(e < 3 for e in res.indices)
