"""Tests for scenario/placement JSON serialization."""

import json
import math

import numpy as np
import pytest

from repro.io import (
    load_scenario,
    save_scenario,
    scenario_from_dict,
    scenario_to_dict,
    strategies_from_list,
    strategies_to_list,
)
from repro.model import Strategy
from repro.experiments import random_scenario, small_scenario


def test_round_trip_scenario(rng):
    sc = small_scenario(rng, num_devices=5)
    data = scenario_to_dict(sc)
    sc2, strategies = scenario_from_dict(data)
    assert strategies == []
    assert sc2.bounds == sc.bounds
    assert sc2.budgets == sc.budgets
    assert len(sc2.devices) == len(sc.devices)
    for a, b in zip(sc.devices, sc2.devices):
        assert a.position == b.position
        assert math.isclose(a.orientation, b.orientation)
        assert a.dtype.name == b.dtype.name
        assert a.threshold == b.threshold
    assert len(sc2.obstacles) == len(sc.obstacles)
    for ha, hb in zip(sc.obstacles, sc2.obstacles):
        assert np.allclose(ha.vertices, hb.vertices)
    # Coefficient table preserved.
    for key, pc in sc.table.entries.items():
        assert sc2.table.entries[key].a == pc.a


def test_round_trip_utility_identical(rng):
    """The reloaded scenario scores placements identically."""
    sc = small_scenario(rng, num_devices=6)
    ct = sc.charger_types[0]
    strategies = [Strategy((5.0, 5.0), 1.0, ct), Strategy((12.0, 12.0), 4.0, ct)]
    data = scenario_to_dict(sc, strategies)
    sc2, strategies2 = scenario_from_dict(data)
    assert math.isclose(sc.utility_of(strategies), sc2.utility_of(strategies2), rel_tol=1e-12)


def test_save_load_file(tmp_path, rng):
    sc = random_scenario(rng, device_multiple=1)
    path = tmp_path / "scenario.json"
    ct = sc.charger_types[0]
    save_scenario(str(path), sc, [Strategy((5.0, 5.0), 0.5, ct)])
    sc2, strategies = load_scenario(str(path))
    assert sc2.num_devices == sc.num_devices
    assert len(strategies) == 1
    assert strategies[0].ctype.name == ct.name
    # File is valid JSON.
    json.loads(path.read_text())


def test_strategy_list_round_trip():
    from repro.experiments import default_charger_types

    cts = {ct.name: ct for ct in default_charger_types()}
    strategies = [Strategy((1.0, 2.0), 0.7, cts["charger-1"])]
    items = strategies_to_list(strategies)
    back = strategies_from_list(items, cts)
    assert back == strategies


def test_unknown_charger_type_rejected():
    with pytest.raises(ValueError):
        strategies_from_list([{"position": [0, 0], "orientation": 0.0, "type": "nope"}], {})


def test_unknown_version_rejected(rng):
    data = scenario_to_dict(small_scenario(rng))
    data["version"] = 99
    with pytest.raises(ValueError):
        scenario_from_dict(data)


def test_missing_scenario_field_named_in_error(rng):
    data = scenario_to_dict(small_scenario(rng))
    del data["budgets"]
    with pytest.raises(ValueError, match="budgets"):
        scenario_from_dict(data)


def test_missing_device_field_named_with_index(rng):
    data = scenario_to_dict(small_scenario(rng, num_devices=3))
    del data["devices"][1]["threshold"]
    with pytest.raises(ValueError, match=r"devices\[1\].*threshold"):
        scenario_from_dict(data)


def test_missing_charger_type_field_named(rng):
    data = scenario_to_dict(small_scenario(rng))
    del data["charger_types"][0]["dmax"]
    with pytest.raises(ValueError, match=r"charger_types\[0\].*dmax"):
        scenario_from_dict(data)


def test_unknown_device_type_reference_named(rng):
    data = scenario_to_dict(small_scenario(rng))
    data["devices"][0]["type"] = "mystery"
    with pytest.raises(ValueError, match="mystery"):
        scenario_from_dict(data)


def test_non_dict_scenario_rejected():
    with pytest.raises(ValueError, match="expected a JSON object"):
        scenario_from_dict([1, 2, 3])


def test_malformed_errors_are_never_key_errors(rng):
    """Every malformed variant raises ValueError, never a bare KeyError."""
    base = scenario_to_dict(small_scenario(rng))
    variants = []
    for key in ("bounds", "charger_types", "device_types", "coefficients", "devices"):
        broken = dict(base)
        del broken[key]
        variants.append(broken)
    broken = json.loads(json.dumps(base))
    del broken["coefficients"][0]["a"]
    variants.append(broken)
    for variant in variants:
        with pytest.raises(ValueError):
            scenario_from_dict(variant)


def test_round_trip_preserves_canonical_hash_across_families():
    """Serialization is lossless down to the content address: every
    variation family's scenario round-trips through JSON text to an
    identical canonical hash (the cache-key / provenance contract)."""
    from repro.io import canonical_scenario_hash
    from repro.variation import FAMILIES, get_family

    for name in sorted(FAMILIES):
        sc = get_family(name).build(seed=123).scenario
        data = json.loads(json.dumps(scenario_to_dict(sc)))
        sc2, _ = scenario_from_dict(data)
        assert canonical_scenario_hash(sc2) == canonical_scenario_hash(sc), name
        # And a second hop is a fixed point (no drift through re-serialization).
        sc3, _ = scenario_from_dict(json.loads(json.dumps(scenario_to_dict(sc2))))
        assert canonical_scenario_hash(sc3) == canonical_scenario_hash(sc), name


def test_canonical_hash_sensitive_to_scenario_content(rng):
    from repro.io import canonical_scenario_hash
    from repro.variation import get_family

    v = get_family("sparse").build(seed=9)
    base = canonical_scenario_hash(v.scenario)
    tweaked = v.scenario.with_budgets({k: n + 1 for k, n in v.scenario.budgets.items()})
    assert canonical_scenario_hash(tweaked) != base
