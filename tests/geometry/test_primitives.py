"""Unit + property tests for repro.geometry.primitives."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry import (
    TWO_PI,
    angle_of,
    angle_within,
    angles_of,
    cross2,
    dedupe_points,
    distance,
    distances,
    normalize_angle,
    polar_offset,
    rotate,
    signed_angle_diff,
    unit_vector,
)

angles = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)
coords = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False)


@given(angles)
def test_normalize_angle_range(theta):
    n = normalize_angle(theta)
    assert 0.0 <= n < TWO_PI


@given(angles)
def test_normalize_angle_preserves_direction(theta):
    n = normalize_angle(theta)
    assert math.isclose(math.cos(n), math.cos(theta), abs_tol=1e-9)
    assert math.isclose(math.sin(n), math.sin(theta), abs_tol=1e-9)


@given(angles, angles)
def test_signed_angle_diff_range_and_consistency(a, b):
    d = signed_angle_diff(a, b)
    assert -math.pi < d <= math.pi + 1e-12
    # b + d should point in the same direction as a
    assert math.isclose(math.cos(b + d), math.cos(a), abs_tol=1e-9)
    assert math.isclose(math.sin(b + d), math.sin(a), abs_tol=1e-9)


@given(angles, angles)
def test_signed_angle_diff_antisymmetry(a, b):
    d1 = signed_angle_diff(a, b)
    d2 = signed_angle_diff(b, a)
    # Antisymmetric except at the +pi branch cut.
    if abs(abs(d1) - math.pi) > 1e-9:
        assert math.isclose(d1, -d2, abs_tol=1e-9)


def test_angle_within_boundary_inclusive():
    assert angle_within(0.5, 0.0, 0.5)
    assert angle_within(-0.5, 0.0, 0.5)
    assert not angle_within(0.5 + 1e-6, 0.0, 0.5)


def test_angle_within_wraparound():
    # Cone centred just below 2*pi includes directions just above 0.
    assert angle_within(0.1, TWO_PI - 0.1, 0.3)
    assert not angle_within(0.5, TWO_PI - 0.1, 0.3)


def test_angle_of_cardinal_directions():
    assert math.isclose(angle_of((0, 0), (1, 0)), 0.0, abs_tol=1e-12)
    assert math.isclose(angle_of((0, 0), (0, 1)), math.pi / 2, abs_tol=1e-12)
    assert math.isclose(angle_of((0, 0), (-1, 0)), math.pi, abs_tol=1e-12)
    assert math.isclose(angle_of((0, 0), (0, -1)), 3 * math.pi / 2, abs_tol=1e-12)


@given(coords, coords, coords, coords)
def test_angles_of_matches_scalar(px, py, qx, qy):
    p = np.array([px, py])
    qs = np.array([[qx, qy]])
    if abs(qx - px) < 1e-12 and abs(qy - py) < 1e-12:
        return
    assert math.isclose(angles_of(p, qs)[0], angle_of(p, (qx, qy)), abs_tol=1e-12)


@given(coords, coords, coords, coords)
def test_distances_matches_scalar(px, py, qx, qy):
    assert math.isclose(
        distances(np.array([px, py]), np.array([[qx, qy]]))[0],
        distance((px, py), (qx, qy)),
        rel_tol=1e-12,
        abs_tol=1e-12,
    )


@given(angles)
def test_unit_vector_is_unit(theta):
    v = unit_vector(theta)
    assert math.isclose(np.hypot(v[0], v[1]), 1.0, rel_tol=1e-12)


@given(coords, coords, angles)
def test_rotate_preserves_origin_distance(x, y, theta):
    p = rotate((x, y), theta)
    assert math.isclose(np.hypot(p[0], p[1]), np.hypot(x, y), rel_tol=1e-9, abs_tol=1e-9)


def test_rotate_about_point():
    p = rotate((2.0, 1.0), math.pi, about=(1.0, 1.0))
    assert np.allclose(p, [0.0, 1.0])


@given(coords, coords, angles, st.floats(min_value=0.0, max_value=100.0))
def test_polar_offset_distance(x, y, theta, r):
    q = polar_offset((x, y), theta, r)
    assert math.isclose(distance((x, y), q), r, rel_tol=1e-9, abs_tol=1e-9)


def test_cross2_sign():
    assert cross2((1, 0), (0, 1)) > 0  # anticlockwise
    assert cross2((0, 1), (1, 0)) < 0


def test_dedupe_points_removes_near_duplicates():
    pts = np.array([[0.0, 0.0], [1.0, 1.0], [1.0 + 1e-9, 1.0], [2.0, 2.0]])
    out = dedupe_points(pts, tol=1e-7)
    assert len(out) == 3


def test_dedupe_points_empty():
    out = dedupe_points(np.zeros((0, 2)))
    assert out.shape == (0, 2)


def test_dedupe_points_preserves_first_occurrence_order():
    pts = np.array([[3.0, 3.0], [1.0, 1.0], [3.0, 3.0]])
    out = dedupe_points(pts)
    assert np.allclose(out, [[3.0, 3.0], [1.0, 1.0]])
