"""Tests for polygons (obstacles)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Polygon, convex_hull, rectangle, regular_polygon

coords = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False)


def test_polygon_requires_three_vertices():
    with pytest.raises(ValueError):
        Polygon([(0, 0), (1, 1)])


def test_polygon_rejects_degenerate():
    with pytest.raises(ValueError):
        Polygon([(0, 0), (1, 1), (2, 2)])


def test_polygon_normalizes_to_ccw():
    cw = Polygon([(0, 0), (0, 1), (1, 1), (1, 0)])  # clockwise input
    ccw = Polygon([(0, 0), (1, 0), (1, 1), (0, 1)])
    # Both should have positive (equal) area and CCW vertex loops.
    assert math.isclose(cw.area, 1.0)
    assert math.isclose(ccw.area, 1.0)
    x, y = cw.vertices[:, 0], cw.vertices[:, 1]
    signed = (x * np.roll(y, -1) - np.roll(x, -1) * y).sum() / 2.0
    assert signed > 0


def test_rectangle_area_and_bbox():
    r = rectangle(1.0, 2.0, 4.0, 6.0)
    assert math.isclose(r.area, 12.0)
    assert r.bbox == (1.0, 2.0, 4.0, 6.0)


def test_rectangle_rejects_empty():
    with pytest.raises(ValueError):
        rectangle(1.0, 1.0, 1.0, 5.0)


def test_contains_interior_exterior_boundary():
    r = rectangle(0.0, 0.0, 2.0, 2.0)
    assert r.contains((1.0, 1.0))
    assert not r.contains((3.0, 1.0))
    assert r.contains((0.0, 1.0), include_boundary=True)
    assert not r.contains((0.0, 1.0), include_boundary=False)


def test_contains_nonconvex():
    # L-shape: the notch is outside.
    L = Polygon([(0, 0), (3, 0), (3, 1), (1, 1), (1, 3), (0, 3)])
    assert L.contains((0.5, 2.0))
    assert L.contains((2.0, 0.5))
    assert not L.contains((2.0, 2.0))


@settings(max_examples=50)
@given(st.lists(st.tuples(coords, coords), min_size=2, max_size=30), coords, coords)
def test_contains_many_matches_scalar(pts, x, y):
    poly = rectangle(-10.0, -10.0, 10.0, 10.0)
    arr = np.array(pts + [(x, y)])
    vec = poly.contains_many(arr)
    for k, p in enumerate(arr):
        assert vec[k] == poly.contains(p)


def test_centroid_of_rectangle():
    r = rectangle(0.0, 0.0, 2.0, 4.0)
    assert np.allclose(r.centroid(), [1.0, 2.0])


def test_blocks_segment_through_interior():
    r = rectangle(2.0, 2.0, 4.0, 4.0)
    assert r.blocks_segment((0.0, 3.0), (6.0, 3.0))
    assert not r.blocks_segment((0.0, 5.0), (6.0, 5.0))


def test_blocks_segment_endpoint_inside():
    r = rectangle(2.0, 2.0, 4.0, 4.0)
    assert r.blocks_segment((3.0, 3.0), (6.0, 3.0))


def test_blocks_segment_grazing_edge_not_blocked():
    r = rectangle(2.0, 2.0, 4.0, 4.0)
    # Sliding exactly along the outside of the top edge: midpoint not interior.
    assert not r.blocks_segment((0.0, 4.0), (6.0, 4.0))


def test_blocks_segment_through_corners_diagonal():
    # The open segment runs through the interior along the square's diagonal,
    # entering and leaving exactly at vertices: no proper edge crossing, and
    # the whole-segment midpoint can land on a corner or outside the box.
    r = rectangle(2.0, 2.0, 3.0, 3.0)
    assert r.blocks_segment((0.0, 0.0), (4.0, 4.0))  # midpoint is corner (2, 2)
    assert r.blocks_segment((0.0, 0.0), (8.0, 8.0))  # midpoint (4, 4) outside


def test_blocks_segment_vertex_touch_not_blocked():
    r = rectangle(2.0, 2.0, 3.0, 3.0)
    # Ends exactly at a corner: never enters the interior.
    assert not r.blocks_segment((0.0, 0.0), (2.0, 2.0))
    # Crosses the corner transversally, interior stays on the other side.
    assert not r.blocks_segment((1.0, 3.0), (3.0, 1.0))


def test_blocks_segment_far_away_bbox_shortcut():
    r = rectangle(2.0, 2.0, 4.0, 4.0)
    assert not r.blocks_segment((10.0, 10.0), (12.0, 12.0))


def test_distance_to_point():
    r = rectangle(0.0, 0.0, 2.0, 2.0)
    assert r.distance_to_point((1.0, 1.0)) == 0.0
    assert math.isclose(r.distance_to_point((4.0, 1.0)), 2.0)
    assert math.isclose(r.distance_to_point((5.0, 6.0)), 5.0)


def test_translated_and_scaled():
    r = rectangle(0.0, 0.0, 2.0, 2.0)
    t = r.translated(1.0, 1.0)
    assert t.contains((2.5, 2.5)) and not t.contains((0.5, 0.5))
    s = r.scaled(2.0)
    assert math.isclose(s.area, 16.0)  # linear factor 2 -> area factor 4
    assert np.allclose(s.centroid(), r.centroid())


def test_regular_polygon():
    hexagon = regular_polygon((0.0, 0.0), 2.0, 6)
    assert hexagon.num_edges == 6
    # Area of regular hexagon with circumradius R: 3*sqrt(3)/2 * R^2
    assert math.isclose(hexagon.area, 3.0 * math.sqrt(3.0) / 2.0 * 4.0, rel_tol=1e-9)
    with pytest.raises(ValueError):
        regular_polygon((0, 0), 1.0, 2)


@settings(max_examples=30)
@given(st.lists(st.tuples(coords, coords), min_size=4, max_size=20))
def test_convex_hull_contains_all_points(pts):
    try:
        hull = convex_hull(pts)
    except ValueError:
        return  # collinear or too few distinct points
    for p in pts:
        assert hull.contains(p, include_boundary=True) or hull.distance_to_point(p) < 1e-6


def test_convex_hull_square():
    hull = convex_hull([(0, 0), (1, 0), (1, 1), (0, 1), (0.5, 0.5)])
    assert hull.num_edges == 4
    assert math.isclose(hull.area, 1.0)


def test_edge_arrays_consistent_with_edges():
    tri = Polygon([(0, 0), (2, 0), (1, 2)])
    c, d, s = tri.edge_arrays()
    for k, (a, b) in enumerate(tri.edges()):
        assert np.allclose(c[k], a)
        assert np.allclose(d[k], b)
        assert np.allclose(s[k], np.asarray(b) - np.asarray(a))
