"""Tests for segment/line/ray intersection routines."""

import math

import numpy as np
from hypothesis import given, strategies as st

from repro.geometry import (
    line_intersection,
    line_segment_intersection,
    point_on_segment,
    point_segment_distance,
    ray_segment_intersection,
    segment_intersection,
    segment_segment_distance,
    segments_intersect,
    segments_properly_intersect,
)

coords = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)
points = st.tuples(coords, coords)


def test_segment_intersection_basic_cross():
    p = segment_intersection((0, 0), (2, 2), (0, 2), (2, 0))
    assert np.allclose(p, [1.0, 1.0])


def test_segment_intersection_disjoint():
    assert segment_intersection((0, 0), (1, 0), (0, 1), (1, 1)) is None


def test_segment_intersection_parallel():
    assert segment_intersection((0, 0), (1, 0), (0, 1), (1, 1)) is None
    assert segment_intersection((0, 0), (1, 1), (1, 0), (2, 1)) is None


def test_segment_intersection_at_endpoint():
    p = segment_intersection((0, 0), (1, 0), (1, 0), (1, 1))
    assert p is not None and np.allclose(p, [1.0, 0.0])


def test_segments_intersect_collinear_overlap():
    assert segments_intersect((0, 0), (2, 0), (1, 0), (3, 0))
    assert not segments_intersect((0, 0), (1, 0), (2, 0), (3, 0))


def test_segments_properly_intersect_excludes_touching():
    assert segments_properly_intersect((0, 0), (2, 2), (0, 2), (2, 0))
    # Touching at an endpoint is not a proper crossing.
    assert not segments_properly_intersect((0, 0), (1, 1), (1, 1), (2, 0))
    # Collinear overlap is not a proper crossing.
    assert not segments_properly_intersect((0, 0), (2, 0), (1, 0), (3, 0))


@given(points, points, points, points)
def test_segment_intersection_point_lies_on_both(a, b, c, d):
    p = segment_intersection(a, b, c, d)
    if p is not None:
        assert point_on_segment(p, a, b, tol=1e-6)
        assert point_on_segment(p, c, d, tol=1e-6)


@given(points, points, points, points)
def test_proper_implies_intersect(a, b, c, d):
    if segments_properly_intersect(a, b, c, d):
        assert segments_intersect(a, b, c, d)
        assert segment_intersection(a, b, c, d) is not None


def test_line_intersection_extends_segments():
    p = line_intersection((0, 0), (1, 0), (5, -1), (5, 1))
    assert np.allclose(p, [5.0, 0.0])


def test_line_segment_intersection_respects_segment():
    assert line_segment_intersection((0, 0), (1, 0), (5, 1), (5, 3)) is None
    p = line_segment_intersection((0, 0), (1, 0), (5, -1), (5, 1))
    assert np.allclose(p, [5.0, 0.0])


def test_ray_segment_intersection_direction():
    p = ray_segment_intersection((0, 0), (1, 0), (5, -1), (5, 1))
    assert np.allclose(p, [5.0, 0.0])
    # Behind the ray origin: no intersection.
    assert ray_segment_intersection((0, 0), (-1, 0), (5, -1), (5, 1)) is None


def test_point_segment_distance_cases():
    # Projection inside the segment.
    assert math.isclose(point_segment_distance((1, 1), (0, 0), (2, 0)), 1.0)
    # Projection beyond an endpoint.
    assert math.isclose(point_segment_distance((3, 0), (0, 0), (2, 0)), 1.0)
    # Degenerate segment.
    assert math.isclose(point_segment_distance((3, 4), (0, 0), (0, 0)), 5.0)


@given(points, points, points)
def test_point_segment_distance_nonnegative_and_bounded(p, a, b):
    d = point_segment_distance(p, a, b)
    assert d >= 0.0
    assert d <= math.dist(p, a) + 1e-9


def test_segment_segment_distance_intersecting_is_zero():
    assert segment_segment_distance((0, 0), (2, 2), (0, 2), (2, 0)) == 0.0


def test_segment_segment_distance_parallel():
    assert math.isclose(segment_segment_distance((0, 0), (1, 0), (0, 1), (1, 1)), 1.0)


@given(points, points, points, points)
def test_segment_segment_distance_symmetry(a, b, c, d):
    d1 = segment_segment_distance(a, b, c, d)
    d2 = segment_segment_distance(c, d, a, b)
    assert math.isclose(d1, d2, rel_tol=1e-9, abs_tol=1e-9)
