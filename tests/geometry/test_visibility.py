"""Tests for line-of-sight and hole (shadow) computations."""

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.geometry import (
    Polygon,
    distance,
    line_of_sight,
    obstacle_boundary_segments,
    rectangle,
    shadow_rays,
    visible_mask,
    visible_mask_many,
)

coords = st.floats(min_value=0.0, max_value=10.0, allow_nan=False)


def test_line_of_sight_blocked_and_clear():
    obs = [rectangle(2, 2, 4, 4)]
    assert not line_of_sight((0, 3), (6, 3), obs)
    assert line_of_sight((0, 5), (6, 5), obs)
    assert line_of_sight((0, 0), (1, 1), obs)


def test_line_of_sight_no_obstacles():
    assert line_of_sight((0, 0), (100, 100), [])


def test_visible_mask_mixed():
    obs = [rectangle(2, 2, 4, 4)]
    targets = np.array([[6.0, 3.0], [6.0, 7.0], [1.0, 1.0]])
    mask = visible_mask((0.0, 3.0), targets, obs)
    assert mask.tolist() == [False, True, True]


def test_visible_mask_empty_targets():
    assert visible_mask((0, 0), np.zeros((0, 2)), [rectangle(1, 1, 2, 2)]).shape == (0,)


@settings(max_examples=60)
@given(coords, coords, st.lists(st.tuples(coords, coords), min_size=1, max_size=12))
def test_visible_mask_matches_scalar_path(px, py, targets):
    obs = [rectangle(2.0, 2.0, 4.5, 4.5), Polygon([(6.0, 1.0), (8.5, 2.0), (7.0, 4.0)])]
    pts = np.array(targets, dtype=float)
    # Skip degenerate configurations where an endpoint grazes a boundary;
    # the vectorized path resolves these by parity only.
    for h in obs:
        if h.distance_to_point((px, py)) < 1e-6:
            return
        for t in targets:
            if h.distance_to_point(t) < 1e-6:
                return
    vec = visible_mask((px, py), pts, obs)
    for k, t in enumerate(pts):
        assert vec[k] == line_of_sight((px, py), t, obs)


def test_shadow_rays_extend_to_rmax():
    obs = rectangle(3, -1, 4, 1)
    device = (0.0, 0.0)
    rays = shadow_rays(device, obs, rmax=10.0)
    assert len(rays) == 4
    for start, end in rays:
        # Each ray starts at an obstacle vertex and ends at distance rmax.
        assert any(np.allclose(start, v) for v in obs.vertices)
        assert math.isclose(distance(device, end), 10.0, rel_tol=1e-9)
        # start, end, device are collinear with end beyond start
        assert distance(device, end) > distance(device, start)


def test_shadow_rays_skip_far_vertices():
    obs = rectangle(3, -1, 4, 1)
    rays = shadow_rays((0.0, 0.0), obs, rmax=3.05)
    # Only the two near vertices (distance ~3.16? no: (3,±1) at ~3.16) — all
    # four vertices are beyond 3.05, so no rays at all.
    assert rays == []


def test_shadow_blocks_points_behind_obstacle():
    obs = [rectangle(3, -1, 4, 1)]
    device = (0.0, 0.0)
    # A point straight behind the obstacle is in the hole.
    assert not line_of_sight(device, (6.0, 0.0), obs)
    # A point at the same distance but off-axis is visible.
    assert line_of_sight(device, (6.0, 5.0), obs)


def test_obstacle_boundary_segments_count():
    obs = [rectangle(0, 0, 1, 1), Polygon([(2, 2), (3, 2), (2.5, 3)])]
    segs = obstacle_boundary_segments(obs)
    assert len(segs) == 4 + 3


def test_visible_mask_many_matches_serial_rows():
    obs = [rectangle(3, 3, 5, 5), Polygon([(7, 1), (9, 1), (8, 3)])]
    rng = np.random.default_rng(42)
    positions = rng.uniform(0.0, 10.0, size=(23, 2))
    targets = rng.uniform(0.0, 10.0, size=(11, 2))
    out = visible_mask_many(positions, targets, obs)
    assert out.shape == (23, 11)
    for i, p in enumerate(positions):
        assert np.array_equal(out[i], visible_mask(p, targets, obs))


def test_visible_mask_many_chunking_invariant():
    obs = [rectangle(2, 2, 4, 4)]
    rng = np.random.default_rng(7)
    positions = rng.uniform(0.0, 8.0, size=(17, 2))
    targets = rng.uniform(0.0, 8.0, size=(9, 2))
    full = visible_mask_many(positions, targets, obs)
    for chunk in (1, 5, 9, 1000):
        assert np.array_equal(full, visible_mask_many(positions, targets, obs, chunk_size=chunk))


def test_visible_mask_many_no_obstacles_all_true():
    out = visible_mask_many(np.zeros((3, 2)), np.ones((4, 2)), [])
    assert out.shape == (3, 4) and out.all()


def test_visible_mask_many_empty_inputs():
    obs = [rectangle(0, 0, 1, 1)]
    assert visible_mask_many(np.zeros((0, 2)), np.ones((4, 2)), obs).shape == (0, 4)
    assert visible_mask_many(np.zeros((3, 2)), np.zeros((0, 2)), obs).shape == (3, 0)
