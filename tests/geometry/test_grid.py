"""Tests for grid generators used by the baselines."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry import grid_length_for_radius, square_grid, triangular_grid


def test_grid_length_formula():
    assert math.isclose(grid_length_for_radius(10.0), math.sqrt(2.0) / 2.0 * 10.0)


def test_square_grid_covers_and_stays_inside():
    pts = square_grid(0.0, 0.0, 10.0, 10.0, 3.0)
    assert len(pts) == 16  # 4 x 4
    assert pts[:, 0].min() >= 0.0 and pts[:, 0].max() <= 10.0
    assert pts[:, 1].min() >= 0.0 and pts[:, 1].max() <= 10.0


def test_square_grid_is_centered():
    pts = square_grid(0.0, 0.0, 10.0, 10.0, 3.0)
    # Margins split evenly: min + max == extent.
    assert math.isclose(pts[:, 0].min() + pts[:, 0].max(), 10.0, abs_tol=1e-9)


def test_square_grid_pitch():
    pts = square_grid(0.0, 0.0, 10.0, 10.0, 3.0)
    xs = np.unique(np.round(pts[:, 0], 9))
    assert np.allclose(np.diff(xs), 3.0)


def test_square_grid_degenerate_small_region():
    pts = square_grid(0.0, 0.0, 1.0, 1.0, 5.0)
    assert len(pts) == 1


def test_square_grid_rejects_bad_pitch():
    with pytest.raises(ValueError):
        square_grid(0, 0, 1, 1, 0.0)


def test_triangular_grid_row_offset():
    pts = triangular_grid(0.0, 0.0, 10.0, 10.0, 2.0)
    ys = np.unique(np.round(pts[:, 1], 6))
    assert len(ys) >= 2
    # Row spacing is pitch * sqrt(3)/2.
    assert np.allclose(np.diff(ys), 2.0 * math.sqrt(3.0) / 2.0, atol=1e-6)
    # Alternate rows are offset by half a pitch.
    row0 = np.sort(pts[np.isclose(pts[:, 1], ys[0])][:, 0])
    row1 = np.sort(pts[np.isclose(pts[:, 1], ys[1])][:, 0])
    assert not math.isclose(row0[0], row1[0], abs_tol=1e-9)


def test_triangular_grid_neighbor_distances():
    pts = triangular_grid(0.0, 0.0, 20.0, 20.0, 4.0)
    # Nearest-neighbour distance in a triangular lattice equals the pitch.
    d = np.hypot(
        pts[:, None, 0] - pts[None, :, 0], pts[:, None, 1] - pts[None, :, 1]
    )
    np.fill_diagonal(d, np.inf)
    # Interior points should have a neighbour at exactly the pitch; allow
    # boundary-row centering slack.
    assert abs(d.min() - 4.0) < 0.75


@given(st.floats(min_value=0.5, max_value=5.0))
def test_grids_inside_bounds(pitch):
    for gen in (square_grid, triangular_grid):
        pts = gen(-3.0, 2.0, 7.0, 9.0, pitch)
        assert len(pts) >= 1
        assert pts[:, 0].min() >= -3.0 - 1e-9 and pts[:, 0].max() <= 7.0 + 1e-9
        assert pts[:, 1].min() >= 2.0 - 1e-9 and pts[:, 1].max() <= 9.0 + 1e-9
