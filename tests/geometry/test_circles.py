"""Tests for circle/arc intersection routines."""

import math

import numpy as np
from hypothesis import given, strategies as st

from repro.geometry import (
    circle_circle_intersections,
    circle_line_intersections,
    circle_ray_intersections,
    circle_segment_intersections,
    distance,
    inscribed_angle_arc_centers,
    inscribed_angle_arc_points,
    point_subtends_angle,
)

coords = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False)
radii = st.floats(min_value=0.1, max_value=30.0, allow_nan=False)


def test_circle_circle_two_points():
    pts = circle_circle_intersections((0, 0), 5.0, (6, 0), 5.0)
    assert len(pts) == 2
    for p in pts:
        assert math.isclose(distance(p, (0, 0)), 5.0, rel_tol=1e-9)
        assert math.isclose(distance(p, (6, 0)), 5.0, rel_tol=1e-9)


def test_circle_circle_tangent():
    pts = circle_circle_intersections((0, 0), 2.0, (4, 0), 2.0)
    assert len(pts) == 1
    assert np.allclose(pts[0], [2.0, 0.0])


def test_circle_circle_disjoint_and_contained():
    assert circle_circle_intersections((0, 0), 1.0, (5, 0), 1.0) == []
    assert circle_circle_intersections((0, 0), 5.0, (1, 0), 1.0) == []


def test_circle_circle_concentric():
    assert circle_circle_intersections((0, 0), 2.0, (0, 0), 3.0) == []


@given(coords, coords, radii, coords, coords, radii)
def test_circle_circle_points_on_both(c1x, c1y, r1, c2x, c2y, r2):
    pts = circle_circle_intersections((c1x, c1y), r1, (c2x, c2y), r2)
    for p in pts:
        assert math.isclose(distance(p, (c1x, c1y)), r1, rel_tol=1e-6, abs_tol=1e-6)
        assert math.isclose(distance(p, (c2x, c2y)), r2, rel_tol=1e-6, abs_tol=1e-6)


def test_circle_line_secant_tangent_miss():
    assert len(circle_line_intersections((0, 0), 2.0, (-5, 0), (5, 0))) == 2
    assert len(circle_line_intersections((0, 0), 2.0, (-5, 2), (5, 2))) == 1
    assert circle_line_intersections((0, 0), 2.0, (-5, 3), (5, 3)) == []


def test_circle_segment_respects_extent():
    # The full line crosses, but the segment stops short.
    assert circle_segment_intersections((0, 0), 2.0, (3, 0), (5, 0)) == []
    pts = circle_segment_intersections((0, 0), 2.0, (0, 0), (5, 0))
    assert len(pts) == 1 and np.allclose(pts[0], [2.0, 0.0])
    pts = circle_segment_intersections((0, 0), 2.0, (-5, 0), (5, 0))
    assert len(pts) == 2


@given(coords, coords, radii, coords, coords, coords, coords)
def test_circle_segment_points_lie_on_circle_and_segment(cx, cy, r, ax, ay, bx, by):
    pts = circle_segment_intersections((cx, cy), r, (ax, ay), (bx, by))
    from repro.geometry import point_on_segment

    for p in pts:
        assert math.isclose(distance(p, (cx, cy)), r, rel_tol=1e-6, abs_tol=1e-5)
        assert point_on_segment(p, (ax, ay), (bx, by), tol=1e-5)


def test_circle_ray_behind_origin_excluded():
    pts = circle_ray_intersections((5, 0), 1.0, (0, 0), (1, 0))
    assert len(pts) == 2
    pts_back = circle_ray_intersections((5, 0), 1.0, (0, 0), (-1, 0))
    assert pts_back == []


def test_circle_ray_origin_inside():
    pts = circle_ray_intersections((0, 0), 2.0, (0, 0), (1, 0))
    assert len(pts) == 1 and np.allclose(pts[0], [2.0, 0.0])


def test_inscribed_angle_right_angle_is_diameter_circle():
    # Thales: points subtending 90 degrees over pq lie on the circle with
    # diameter pq.
    centers, radius = inscribed_angle_arc_centers((0, 0), (2, 0), math.pi / 2.0)
    assert math.isclose(radius, 1.0, rel_tol=1e-9)
    assert len(centers) == 1
    assert np.allclose(centers[0], [1.0, 0.0])


def test_inscribed_angle_sixty_degrees():
    d = 2.0
    angle = math.pi / 3.0
    centers, radius = inscribed_angle_arc_centers((0, 0), (d, 0), angle)
    assert math.isclose(radius, d / (2.0 * math.sin(angle)), rel_tol=1e-9)
    assert len(centers) == 2
    # Centers are symmetric about the chord.
    assert math.isclose(centers[0][1], -centers[1][1], rel_tol=1e-9)


def test_inscribed_angle_degenerate():
    centers, radius = inscribed_angle_arc_centers((0, 0), (2, 0), math.pi)
    assert centers == [] and radius == 0.0
    centers, radius = inscribed_angle_arc_centers((0, 0), (0, 0), 1.0)
    assert centers == []


@given(
    st.floats(min_value=0.3, max_value=math.pi - 0.3),
    st.floats(min_value=0.5, max_value=20.0),
)
def test_inscribed_angle_arc_points_subtend_angle(angle, d):
    pts = inscribed_angle_arc_points((0.0, 0.0), (d, 0.0), angle, n=4)
    assert len(pts) > 0
    for p in pts:
        assert math.isclose(point_subtends_angle(p, (0, 0), (d, 0)), angle, abs_tol=1e-5)


def test_point_subtends_angle_basics():
    assert math.isclose(point_subtends_angle((0, 1), (-1, 0), (1, 0)), math.pi / 2.0, rel_tol=1e-9)
    # Collapsed to a device position: zero angle.
    assert point_subtends_angle((0, 0), (0, 0), (1, 0)) == 0.0
