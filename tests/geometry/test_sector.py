"""Tests for the SectorRing region."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry import SectorRing, polar_offset

angles = st.floats(min_value=0.0, max_value=2.0 * math.pi, allow_nan=False)


def ring(orient=0.0, half=math.pi / 4.0, rmin=1.0, rmax=4.0):
    return SectorRing((0.0, 0.0), orient, half, rmin, rmax)


def test_invalid_parameters():
    with pytest.raises(ValueError):
        SectorRing((0, 0), 0.0, math.pi / 4, 3.0, 2.0)
    with pytest.raises(ValueError):
        SectorRing((0, 0), 0.0, 0.0, 1.0, 2.0)
    with pytest.raises(ValueError):
        SectorRing((0, 0), 0.0, math.pi / 4, -1.0, 2.0)


def test_contains_radial_extent():
    r = ring()
    assert not r.contains((0.5, 0.0))  # inside the keep-out
    assert r.contains((1.0, 0.0))  # inner boundary
    assert r.contains((2.5, 0.0))
    assert r.contains((4.0, 0.0))  # outer boundary
    assert not r.contains((4.5, 0.0))


def test_contains_angular_extent():
    r = ring()
    p_in = polar_offset((0, 0), math.pi / 8.0, 2.0)
    p_edge = polar_offset((0, 0), math.pi / 4.0, 2.0)
    p_out = polar_offset((0, 0), math.pi / 3.0, 2.0)
    assert r.contains(p_in)
    assert r.contains(p_edge)
    assert not r.contains(p_out)


def test_apex_membership():
    assert not ring(rmin=1.0).contains((0.0, 0.0))
    zero_ring = SectorRing((0, 0), 0.0, math.pi / 4, 0.0, 4.0)
    assert zero_ring.contains((0.0, 0.0))


def test_full_annulus_has_no_radial_edges():
    annulus = SectorRing((0, 0), 0.0, math.pi, 1.0, 2.0)
    assert annulus.radial_edges() == []
    # Any bearing is inside as long as the radius fits.
    for theta in np.linspace(0, 2 * math.pi, 8, endpoint=False):
        assert annulus.contains(polar_offset((0, 0), theta, 1.5))


@given(angles, st.floats(min_value=0.05, max_value=math.pi), angles,
       st.floats(min_value=0.0, max_value=3.0), st.floats(min_value=0.1, max_value=5.0))
def test_contains_many_matches_scalar(orient, half, theta, rmin, extra):
    r = SectorRing((1.0, -2.0), orient, half, rmin, rmin + extra)
    pts = np.array(
        [polar_offset((1.0, -2.0), theta + dt, rad) for dt in (0.0, 0.5, 1.5) for rad in (0.5, rmin + extra / 2, 10.0)]
    )
    vec = r.contains_many(pts)
    for k, p in enumerate(pts):
        assert vec[k] == r.contains(p)


def test_rotation_invariance():
    r = ring()
    p = polar_offset((0, 0), 0.1, 2.0)
    assert r.contains(p)
    rotated = r.rotated(1.0)
    p_rot = polar_offset((0, 0), 0.1 + 1.0, 2.0)
    assert rotated.contains(p_rot)
    assert not rotated.contains(polar_offset((0, 0), 0.1 - 1.0, 2.0))


def test_radial_edges_endpoints():
    r = ring()
    edges = r.radial_edges()
    assert len(edges) == 2
    for a, b in edges:
        assert math.isclose(np.hypot(*a), 1.0, rel_tol=1e-9)
        assert math.isclose(np.hypot(*b), 4.0, rel_tol=1e-9)


def test_clockwise_anticlockwise_boundaries():
    r = ring(orient=1.0, half=0.5)
    assert math.isclose(r.clockwise_boundary_angle(), 0.5, rel_tol=1e-12)
    assert math.isclose(r.anticlockwise_boundary_angle(), 1.5, rel_tol=1e-12)


def test_boundary_points_are_on_boundaryish():
    r = ring()
    pts = r.boundary_points(arc_samples=8)
    assert len(pts) > 0
    for p in pts:
        assert r.contains(p, tol=1e-6)


def test_area_formula():
    r = ring(half=math.pi / 4.0, rmin=1.0, rmax=4.0)
    assert math.isclose(r.area(), math.pi / 4.0 * (16.0 - 1.0), rel_tol=1e-12)


def test_direction_unit_vector():
    r = ring(orient=math.pi / 2.0)
    assert np.allclose(r.direction(), [0.0, 1.0], atol=1e-12)
