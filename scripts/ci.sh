#!/bin/sh
# Tier-1 gate: full test suite plus the extraction-scaling bench in smoke
# mode (tiny scenario; asserts the bench completes and emits well-formed
# JSON, not any particular speedup).
set -eu

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

python -m pytest -x -q

SMOKE_OUT="${TMPDIR:-/tmp}/bench_extraction_smoke.json"
python benchmarks/bench_extraction_scaling.py --smoke --out "$SMOKE_OUT"
python -c "import json, sys; json.load(open(sys.argv[1])); print('smoke bench JSON ok')" "$SMOKE_OUT"
