#!/bin/sh
# Tier-1 gate: full test suite, the extraction-scaling and cache-reuse
# benches in smoke mode (tiny scenarios; assert the benches complete,
# emit well-formed meta-stamped JSON and — for the cache bench — produce
# byte-identical warm results, not any particular speedup), an observability
# smoke run: a traced multi-worker solve whose JSONL trace must validate
# against the repro.trace/v1 schema (every line parses, required keys
# present, root span covers child spans), and a serve smoke run: boot
# `repro serve`, health-check it over HTTP, verify a cached solve
# round-trip (second POST must be served from cache, byte-identical),
# then shut it down cleanly via SIGTERM.  Compute backends: tier-1 is
# pinned to the numpy reference backend; the cross-backend equivalence
# suite re-runs on numba when that accelerator is importable, and the
# backends smoke bench asserts cold solves are byte-identical across
# whatever backends load on this machine.
#
# Static gates run first (fail fast, cheapest signals): the project
# analyzer (docs/static-analysis.md) over src/repro — run twice, with the
# JSON report and the repro.lockgraph/v1 artifact asserted byte-identical
# across runs and kept under ${CI_ARTIFACTS_DIR:-/tmp} — the DET
# determinism gate over the published entry points (benchmarks/,
# examples/), then the strict-typing gate (scripts/typecheck.sh).
#
# The differential smoke (repro.variation, docs/variation.md) generates
# a bounded corpus of seeded scenarios across every registered family
# and checks one solver invariant per scenario; the run must be clean,
# every scenario distinct, and a second run with the same seed must
# reproduce the exact same provenance stamps (stamps_digest equality).
set -eu

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

ARTIFACTS="${CI_ARTIFACTS_DIR:-/tmp}"
mkdir -p "$ARTIFACTS"

# Lint gate + artifacts.  Both the JSON report and the lock-order graph
# are part of the analyzer's determinism contract: a second run over the
# same tree must serialize byte-for-byte identically.
python -m repro.analysis src/repro --format json \
    --lock-graph "$ARTIFACTS/lint-lockgraph.json" > "$ARTIFACTS/lint-report.json"
python -m repro.analysis src/repro --format json \
    --lock-graph "$ARTIFACTS/lint-lockgraph.rerun.json" > "$ARTIFACTS/lint-report.rerun.json"
cmp "$ARTIFACTS/lint-report.json" "$ARTIFACTS/lint-report.rerun.json"
cmp "$ARTIFACTS/lint-lockgraph.json" "$ARTIFACTS/lint-lockgraph.rerun.json"
rm -f "$ARTIFACTS/lint-report.rerun.json" "$ARTIFACTS/lint-lockgraph.rerun.json"
echo "lint ok (report + lock graph deterministic, artifacts in $ARTIFACTS)"

# The figure scripts are part of the reproducibility surface: hold
# benchmarks/ and examples/ to the same determinism rules as the core.
python -m repro.analysis benchmarks examples --select DET

sh scripts/typecheck.sh

# Tier-1 runs pinned to the numpy reference backend so the gate is
# deterministic regardless of which accelerators this machine has; the
# backend-equivalence suite is then repeated on the compiled backend when
# numba is importable (skipped silently otherwise).
REPRO_BACKEND=numpy python -m pytest -x -q

if python -c "import numba" 2>/dev/null; then
    echo "numba importable: repeating backend equivalence on the compiled backend"
    REPRO_BACKEND=numba python -m pytest tests/backend -x -q
fi

SMOKE_OUT="${TMPDIR:-/tmp}/bench_extraction_smoke.json"
python benchmarks/bench_extraction_scaling.py --smoke --out "$SMOKE_OUT"
python -c "
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc['meta']['schema'] == 'repro.bench/v1', doc.get('meta')
assert doc['meta']['cpu_count'] and doc['meta']['python'], doc['meta']
print('smoke bench JSON ok (meta stamped)')
" "$SMOKE_OUT"

CACHE_OUT="${TMPDIR:-/tmp}/bench_cache_smoke.json"
python benchmarks/bench_cache_reuse.py --smoke --out "$CACHE_OUT"
python -c "
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc['meta']['schema'] == 'repro.bench/v1', doc.get('meta')
assert doc['byte_identical'] is True, doc
assert doc['warm']['cache']['hits'] >= doc['sweep']['points'], doc['warm']
print('cache-reuse smoke bench ok (warm byte-identical)')
" "$CACHE_OUT"

BACKENDS_OUT="${TMPDIR:-/tmp}/bench_backends_smoke.json"
python benchmarks/bench_backends.py --smoke --chunk-sweep --out "$BACKENDS_OUT"
python -c "
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc['meta']['schema'] == 'repro.bench/v1', doc.get('meta')
assert doc['cold_solve']['byte_identical'] is True, doc['cold_solve']
assert doc['meta']['backend']['active'] in doc['backends']['tested'], doc['meta']['backend']
print('backends smoke bench ok (cold solves byte-identical, backend stamped)')
" "$BACKENDS_OUT"

VARY_OUT="${TMPDIR:-/tmp}/vary_smoke.json"
VARY_OUT2="${TMPDIR:-/tmp}/vary_smoke_rerun.json"
VARY_REPROS="${TMPDIR:-/tmp}/vary_smoke_repros"
python -m repro.variation --families all --budget 60 --seed 20260808 \
    --eps 0.4 --out "$VARY_REPROS" --quiet --json > "$VARY_OUT"
python -m repro.variation --families all --budget 60 --seed 20260808 \
    --eps 0.4 --out "$VARY_REPROS" --quiet --json > "$VARY_OUT2"
python -c "
import json, sys
a = json.load(open(sys.argv[1]))
b = json.load(open(sys.argv[2]))
assert a['schema'] == 'repro.variation.report/v1', a.get('schema')
assert a['ok'] is True, a['violations']
assert a['scenarios'] >= 60 and a['distinct_scenarios'] == a['scenarios'], a
assert len(a['families_seen']) >= 5, a['families_seen']
assert a['stamps_digest'] == b['stamps_digest'], 'non-deterministic corpus'
print('variation differential smoke ok (clean, distinct, deterministic)')
" "$VARY_OUT" "$VARY_OUT2"

TRACE_OUT="${TMPDIR:-/tmp}/repro_trace_smoke.jsonl"
python -m repro solve --seed 3 --devices 1 --chargers 1 --workers 2 \
    --trace "$TRACE_OUT" --metrics --timings --json > /dev/null
python -m repro.obs.validate "$TRACE_OUT"

sh scripts/serve_smoke.sh
