#!/bin/sh
# Strict-typing gate for the annotated packages (model, geometry, obs,
# serve) — see [tool.mypy] in pyproject.toml.
#
# Two layers:
#
#   1. The AST strict-typing rules (TYP601 full annotations, TYP602 no
#      bare generics) via `python -m repro.analysis --select TYP`.  These
#      always run and always gate — they are the in-repo approximation of
#      mypy-strict's disallow_untyped_defs / disallow_any_generics.
#   2. mypy itself, when installed, ratcheted against the committed
#      baseline (scripts/mypy-baseline.txt): more errors than the baseline
#      fails; fewer prints a reminder to lower the baseline.  The baseline
#      may only ever go down.  When mypy is absent (the reference
#      container does not ship it) this layer is skipped with a notice —
#      layer 1 still gates.
set -eu
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

BASELINE_FILE="scripts/mypy-baseline.txt"

python -m repro.analysis src/repro --select TYP --strict

if ! python -c "import mypy" 2>/dev/null; then
    echo "typecheck: mypy not installed; skipped (AST rules TYP601/TYP602 enforced above)"
    exit 0
fi

BASELINE=$(grep -v '^#' "$BASELINE_FILE" | grep . | head -1)
OUT=$(python -m mypy 2>&1) && ERRORS=0 || \
    ERRORS=$(printf '%s\n' "$OUT" | grep -c ': error:' || true)
printf '%s\n' "$OUT"
if [ "$ERRORS" -gt "$BASELINE" ]; then
    echo "typecheck: FAIL — $ERRORS mypy errors > baseline $BASELINE (the ratchet only goes down)" >&2
    exit 1
fi
if [ "$ERRORS" -lt "$BASELINE" ]; then
    echo "typecheck: $ERRORS mypy errors < baseline $BASELINE — lower the number in $BASELINE_FILE"
fi
echo "typecheck: ok ($ERRORS mypy errors, baseline $BASELINE)"
