#!/bin/sh
# Serve smoke test (`make serve-smoke`; also run by scripts/ci.sh): boot
# `repro serve` in the background on an ephemeral port, curl /v1/healthz,
# run one solve to completion, verify the second identical POST is served
# from the cache byte-identically (no solve span in its trace), verify the
# candidate tier (same geometry under different budgets answers immediately
# with cache_tier=candidates), check /v1/metrics reflects both tiers'
# hit/miss counts, then shut down cleanly via SIGTERM and assert the
# graceful-exit message.
set -eu

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

SERVE_DIR="${TMPDIR:-/tmp}/repro_serve_smoke"
rm -rf "$SERVE_DIR" && mkdir -p "$SERVE_DIR"
python -m repro solve --seed 3 --devices 1 --chargers 1 \
    --save "$SERVE_DIR/scenario.json" > /dev/null
python -c "
import json, sys
d = sys.argv[1]
with open(d + '/scenario.json') as f:
    scenario = json.load(f)
with open(d + '/request.json', 'w') as f:
    json.dump({'scenario': scenario}, f)
" "$SERVE_DIR"

python -m repro serve --port 0 --pool-size 2 --quiet > "$SERVE_DIR/serve.log" 2>&1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT

PORT=""
for _ in $(seq 1 100); do
    PORT=$(sed -n 's|.*http://[^:]*:\([0-9][0-9]*\).*|\1|p' "$SERVE_DIR/serve.log")
    [ -n "$PORT" ] && break
    sleep 0.1
done
[ -n "$PORT" ] || { echo "repro serve did not start"; cat "$SERVE_DIR/serve.log"; exit 1; }
BASE="http://127.0.0.1:$PORT"

curl -sf "$BASE/v1/healthz" | python -c "
import json, sys
doc = json.load(sys.stdin)
assert doc['status'] == 'ok', doc
print('serve healthz ok (workers=%d)' % doc['workers_alive'])
"

# First solve: accepted + polled to completion.
JOB=$(curl -sf -X POST "$BASE/v1/solve" -H 'Content-Type: application/json' \
    --data-binary @"$SERVE_DIR/request.json" | python -c "
import json, sys
doc = json.load(sys.stdin)
assert doc['state'] == 'queued', doc
print(doc['id'])
")
python -c "
import json, sys, time, urllib.request
base, job = sys.argv[1], sys.argv[2]
for _ in range(300):
    with urllib.request.urlopen(f'{base}/v1/jobs/{job}') as r:
        doc = json.load(r)
    if doc['state'] in ('done', 'failed', 'timeout', 'cancelled'):
        break
    time.sleep(0.1)
assert doc['state'] == 'done', doc
json.dump(doc['result'], open(sys.argv[3] + '/first_result.json', 'w'), sort_keys=True)
print('serve solve ok (utility=%.4f)' % doc['result']['utility'])
" "$BASE" "$JOB" "$SERVE_DIR"

# Second identical solve: must be a synchronous cache hit, byte-identical.
curl -sf -X POST "$BASE/v1/solve" -H 'Content-Type: application/json' \
    --data-binary @"$SERVE_DIR/request.json" | python -c "
import json, sys
doc = json.load(sys.stdin)
assert doc['cached'] is True and doc['state'] == 'done', doc
assert 'solve' not in [sp['name'] for sp in doc['trace']], doc['trace']
first = json.load(open(sys.argv[1] + '/first_result.json'))
assert json.dumps(doc['result'], sort_keys=True) == json.dumps(first, sort_keys=True)
print('serve cache round-trip ok (byte-identical, no solve span)')
" "$SERVE_DIR"

# Candidate tier: same geometry, different budgets.  The full cache cannot
# match, but extraction must be reused — expect an immediate (HTTP 200)
# done job tagged cache_tier=candidates.
python -c "
import json, sys
d = sys.argv[1]
with open(d + '/scenario.json') as f:
    scenario = json.load(f)
scenario['budgets'] = {k: v + 1 for k, v in scenario['budgets'].items()}
with open(d + '/request_budgets.json', 'w') as f:
    json.dump({'scenario': scenario}, f)
" "$SERVE_DIR"
curl -sf -X POST "$BASE/v1/solve" -H 'Content-Type: application/json' \
    --data-binary @"$SERVE_DIR/request_budgets.json" | python -c "
import json, sys
doc = json.load(sys.stdin)
assert doc['state'] == 'done', doc
assert doc.get('cache_tier') == 'candidates', doc
print('serve candidate-tier ok (cache_tier=%s)' % doc['cache_tier'])
"

curl -sf "$BASE/v1/metrics" | python -c "
import json, sys
doc = json.load(sys.stdin)
c = doc['metrics']['counters']
assert doc['cache']['hits'] >= 1 and doc['cache']['misses'] >= 1, doc['cache']
assert c.get('serve.jobs.done', 0) >= 1, c
assert c.get('cache.candidates.hits', 0) >= 1, c
assert doc['candidate_cache']['entries'] >= 1, doc['candidate_cache']
print('serve metrics ok (hits=%d misses=%d candidate_hits=%d)'
      % (doc['cache']['hits'], doc['cache']['misses'], c['cache.candidates.hits']))
"

kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
trap - EXIT
grep -q "repro serve stopped" "$SERVE_DIR/serve.log"
echo "serve shutdown clean"
