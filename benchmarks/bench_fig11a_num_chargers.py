"""Fig. 11(a) — charging utility vs number of chargers (1x-8x).

Paper shape: every algorithm increases monotonically with Ns; HIPO rises
fastest and approaches utility 1 around 5x; headline aggregation "HIPO
outperforms GPPDCS-T/S, GPAD-T/S, GPAR-T/S, RPAD, RPAR by 33.49%, 38.32%,
43.43%, 47.65%, 116.60%, 144.15%, 166.85%, 970.37%".
"""

from repro.experiments import fig11a_num_chargers, format_percent

from repro.experiments.sweeps import bench_repeats as _repeats

from conftest import pick


def bench_fig11a_num_chargers(benchmark, report):
    table = benchmark.pedantic(
        lambda: fig11a_num_chargers(
            multiples=pick((1, 2, 4, 6, 8), (1, 2, 3, 4, 5, 6, 7, 8)),
            repeats=_repeats(2),
        ),
        rounds=1,
        iterations=1,
    )
    imp = table.improvement_over("HIPO")
    lines = [table.format(), "mean improvement of HIPO over:"]
    lines += [f"  {name:<18} {format_percent(v)}" for name, v in imp.items()]
    report("fig11a_num_chargers", "\n".join(lines))
    hipo = table.series["HIPO"]
    # Shape checks: HIPO grows with Ns and dominates every baseline pointwise
    # on average.
    assert hipo[-1] >= hipo[0]
    for name, vals in table.series.items():
        if name != "HIPO":
            assert sum(hipo) >= sum(vals)
