"""Ablation (DESIGN.md §6.1) — PDCS geometric candidates vs dense grid.

The PDCS extraction (lines/arcs through device pairs intersected with the
feasible-area boundaries) is the paper's key device for shrinking the
continuous strategy space without losing dominance.  This ablation swaps the
geometric candidate positions for dense square lattices of increasing
resolution and compares achieved utility and candidate counts.
"""

import numpy as np

from repro.core import solve_hipo
from repro.experiments import random_scenario
from repro.geometry import square_grid


def bench_ablation_candidates(benchmark, report):
    rng = np.random.default_rng(99)
    scenario = random_scenario(rng, device_multiple=2)

    def run():
        rows = []
        pdcs = solve_hipo(scenario, keep_candidates=True)
        rows.append(("PDCS (paper)", pdcs.candidate_set.num_candidates, pdcs.utility))
        for pitch in (8.0, 4.0, 2.0):
            pts = square_grid(0.0, 0.0, 40.0, 40.0, pitch)
            free = pts[[scenario.is_free(p) for p in pts]]
            grid_sol = solve_hipo(
                scenario,
                positions_by_type={ct.name: free for ct in scenario.charger_types},
                keep_candidates=True,
            )
            rows.append(
                (f"grid pitch {pitch:g}", grid_sol.candidate_set.num_candidates, grid_sol.utility)
            )
        return rows, pdcs

    rows, pdcs = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'candidate source':<18} {'candidates':>10} {'utility':>9}"]
    lines += [f"{name:<18} {n:>10d} {u:>9.4f}" for name, n, u in rows]
    report("ablation_candidates", "\n".join(lines))
    # The geometric candidates should match or beat the comparable grids.
    grid_best = max(u for name, _n, u in rows if name != "PDCS (paper)")
    assert pdcs.utility >= grid_best - 0.05
