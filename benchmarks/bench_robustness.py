"""Robustness of placements under deployment imprecision (extension study).

Not a paper figure — a practicality extension in the paper's spirit: how
much utility survives when installers misplace chargers by σ metres and
jitter orientations?  The plain solver places devices *exactly* on coverage
boundaries (PDCS orientations by construction), so it is fragile; the
margin-hardened variant (`solve_hipo_hardened`) trades a sliver of nominal
utility for a large robustness gain.
"""

import numpy as np

from repro.baselines import run_algorithm
from repro.core import solve_hipo_hardened
from repro.experiments import placement_robustness, random_scenario


def bench_robustness(benchmark, report):
    scenario = random_scenario(np.random.default_rng(321), device_multiple=2)
    sigmas = (0.25, 0.5, 1.0, 2.0)

    def run():
        curves = {}
        for name in ("HIPO", "GPPDCS Triangle", "RPAD"):
            strategies = run_algorithm(name, scenario, np.random.default_rng(0))
            curves[name] = placement_robustness(
                scenario, strategies, np.random.default_rng(1), sigmas=sigmas, trials=12
            )
        hard = solve_hipo_hardened(scenario, angle_margin=0.08, radial_margin=0.5)
        curves["HIPO hardened"] = placement_robustness(
            scenario, hard.strategies, np.random.default_rng(1), sigmas=sigmas, trials=12
        )
        return curves

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = []
    for name, curve in curves.items():
        lines.append(f"{name} (nominal {curve.nominal_utility:.4f})")
        lines.append(curve.format())
        lines.append("")
    report("robustness", "\n".join(lines))
    hipo = curves["HIPO"]
    hard = curves["HIPO hardened"]
    # Hardening costs little nominal utility...
    assert hard.nominal_utility >= 0.9 * hipo.nominal_utility
    # ...and buys clearly better retention at small noise.
    assert hard.retention()[0] >= hipo.retention()[0] + 0.1
    # Perturbed HIPO still clearly beats perturbed RPAD everywhere.
    for h, r in zip(hipo.mean_utility, curves["RPAD"].mean_utility):
        assert h >= r - 0.02
