"""Ablation — swap local search on top of the Algorithm-3 greedy.

The 1/2 guarantee leaves headroom; matroid-preserving 1-swaps recover part
of it at the cost of extra gain evaluations.  This bench measures the value
uplift and cost across several seeded instances.
"""

import numpy as np

from repro.core import solve_hipo
from repro.experiments import small_scenario


def bench_ablation_local_search(benchmark, report):
    scenarios = [small_scenario(np.random.default_rng(s), num_devices=12) for s in range(4)]

    def run():
        rows = []
        for i, sc in enumerate(scenarios):
            base = solve_hipo(sc)
            refined = solve_hipo(sc, refine=True)
            rows.append((i, base.utility, refined.utility))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'instance':>8} {'greedy':>10} {'greedy+swap':>12} {'uplift':>8}"]
    for i, base, refined in rows:
        lines.append(f"{i:>8d} {base:>10.4f} {refined:>12.4f} {refined - base:>8.4f}")
    mean_uplift = float(np.mean([r - b for _i, b, r in rows]))
    lines.append(f"mean uplift: {mean_uplift:.4f}")
    report("ablation_local_search", "\n".join(lines))
    for _i, base, refined in rows:
        assert refined >= base - 1e-9
