"""Fig. 11(d) — charging utility vs receiving-angle scale (0.6x-2x).

Paper shape: all algorithms increase as devices listen over wider apertures.
"""

from repro.experiments import fig11d_receiving_angle, format_percent

from repro.experiments.sweeps import bench_repeats as _repeats

from conftest import pick


def bench_fig11d_receiving_angle(benchmark, report):
    table = benchmark.pedantic(
        lambda: fig11d_receiving_angle(
            factors=pick((0.6, 1.0, 1.4, 2.0), (0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0)),
            repeats=_repeats(2),
        ),
        rounds=1,
        iterations=1,
    )
    imp = table.improvement_over("HIPO")
    lines = [table.format(), "mean improvement of HIPO over:"]
    lines += [f"  {name:<18} {format_percent(v)}" for name, v in imp.items()]
    report("fig11d_receiving_angle", "\n".join(lines))
    hipo = table.series["HIPO"]
    assert hipo[-1] >= hipo[0] - 0.05  # increasing trend
    for name, vals in table.series.items():
        if name != "HIPO":
            assert sum(hipo) >= sum(vals)
