"""Ablation — plain greedy (1/2) vs continuous greedy (1 − 1/e).

Theorem 4.2's closing remark: the ratio can be improved to ``1 − 1/e − ε``
via [39], "which is, however, too computationally demanding to use in
practice."  This bench quantifies that trade-off on a real candidate set:
achieved utility vs objective evaluations and wall time.
"""

import numpy as np

from repro.core import build_candidate_set
from repro.experiments import small_scenario
from repro.opt import ChargingUtilityObjective, continuous_greedy, greedy_matroid


def setup():
    sc = small_scenario(np.random.default_rng(31), num_devices=10)
    cs = build_candidate_set(sc)
    obj = ChargingUtilityObjective(cs.approx_power, sc.evaluator().thresholds)
    return obj, cs.matroid()


def bench_plain_greedy(benchmark, report):
    obj, matroid = setup()
    res = benchmark(lambda: greedy_matroid(obj, matroid))
    report(
        "ablation_continuous_plain",
        f"plain greedy: value={res.value:.4f} evaluations={res.evaluations}",
    )


def bench_continuous_greedy(benchmark, report):
    obj, matroid = setup()
    res = benchmark.pedantic(
        lambda: continuous_greedy(obj, matroid, np.random.default_rng(0), steps=15, samples=6),
        rounds=2,
        iterations=1,
    )
    plain = greedy_matroid(obj, matroid)
    report(
        "ablation_continuous",
        f"continuous greedy: value={res.value:.4f} evaluations={res.evaluations}\n"
        f"plain greedy     : value={plain.value:.4f} evaluations={plain.evaluations}\n"
        f"evaluation blow-up: {res.evaluations / max(plain.evaluations, 1):.1f}x",
    )
    # The paper's observation: much more work for (at best) modest gains.
    assert res.evaluations > plain.evaluations
    assert res.value >= 0.8 * plain.value
