"""Fig. 11(f) — charging utility vs nearest-distance scale (0x-1.4x).

Paper shape: utility decreases as the keep-out ring dmin grows (the charging
area shrinks), and decreases faster at large dmin; comparison algorithms
suffer more because their predetermined positions strand devices inside the
keep-out.
"""

from repro.experiments import fig11f_dmin, format_percent

from repro.experiments.sweeps import bench_repeats as _repeats

from conftest import pick


def bench_fig11f_dmin(benchmark, report):
    table = benchmark.pedantic(
        lambda: fig11f_dmin(
            factors=pick((0.0, 0.6, 1.0, 1.4), (0.0, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4)),
            repeats=_repeats(2),
        ),
        rounds=1,
        iterations=1,
    )
    imp = table.improvement_over("HIPO")
    lines = [table.format(), "mean improvement of HIPO over:"]
    lines += [f"  {name:<18} {format_percent(v)}" for name, v in imp.items()]
    report("fig11f_dmin", "\n".join(lines))
    hipo = table.series["HIPO"]
    assert hipo[0] >= hipo[-1] - 0.02  # shrinking ring cannot help
    for name, vals in table.series.items():
        if name != "HIPO":
            assert sum(hipo) >= sum(vals)
