"""Fig. 12 — distributed PDCS extraction time vs number of devices.

Paper shape (log-scale y): distributed runs cut time dramatically —
"5/10/15/20/25-distributed reduce the time consumption by 80.10%, 88.79%,
91.05%, 92.32%, 92.39% on average" — with diminishing returns as the
machine count approaches the device count.
"""

import numpy as np

from repro.experiments import fig12_distributed_time

from repro.experiments.sweeps import bench_repeats as _repeats

from conftest import pick


def bench_fig12_distributed(benchmark, report):
    table = benchmark.pedantic(
        lambda: fig12_distributed_time(
            multiples=pick((1, 2, 4, 8), (1, 2, 3, 4, 5, 6, 7, 8)),
            machines=(5, 10, 15, 20, 25),
            repeats=_repeats(2),
        ),
        rounds=1,
        iterations=1,
    )
    serial = np.array(table.series["Non-Dis"])
    lines = [table.format(), "mean time reduction vs non-distributed:"]
    for m in (5, 10, 15, 20, 25):
        dist = np.array(table.series[f"Dis-{m}"])
        reduction = (1.0 - dist / serial).mean() * 100.0
        lines.append(f"  Dis-{m:<3} {reduction:.2f}%")
    report("fig12_distributed", "\n".join(lines))
    # Shape: more machines => no slower; distribution always helps.
    for m1, m2 in ((5, 10), (10, 15), (15, 20), (20, 25)):
        a = np.array(table.series[f"Dis-{m1}"])
        b = np.array(table.series[f"Dis-{m2}"])
        assert np.all(b <= a + 1e-9)
    assert np.all(np.array(table.series["Dis-5"]) <= serial + 1e-9)
