"""Extraction scaling benchmark: serial vs batched vs multi-worker.

Times :func:`repro.core.build_candidate_set` end to end on a fixed seeded
§6 scenario in three configurations:

* ``serial``   — legacy one-position-at-a-time kernels (``batched=False``),
* ``batched``  — the broadcast coverability/LOS kernels, in-process,
* ``workersN`` — batched kernels with the PDCS sweeps and per-device
  position tasks fanned out over an N-worker process pool.

Each configuration runs on a freshly built scenario (so no line-of-sight
cache carries over) and the best of ``--repeats`` wall-clocks is kept.  The
result is written as JSON (default: ``BENCH_1.json`` at the repo root, the
checked-in record for this machine).

Usage::

    PYTHONPATH=src python benchmarks/bench_extraction_scaling.py
    PYTHONPATH=src python benchmarks/bench_extraction_scaling.py --smoke --out /tmp/bench.json
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

import numpy as np

from repro.core import build_candidate_set
from repro.experiments import random_scenario
from repro.obs import MetricsRegistry, write_bench_json

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_SEED = 20260806


def _worker_list(spec: str) -> list[int]:
    try:
        return [int(w) for w in spec.split(",") if w]
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid worker list {spec!r} (expected e.g. '2,4')")


def make_scenario(seed: int, device_multiple: int, charger_multiple: int):
    return random_scenario(
        np.random.default_rng(seed),
        device_multiple=device_multiple,
        charger_multiple=charger_multiple,
    )


def time_mode(args, repeats: int, **build_kwargs):
    """Best-of-*repeats* wall-clock of one extraction configuration.

    Returns ``(mode_dict, metrics_snapshot)`` — the snapshot is from the
    final repeat (fresh registry per repeat so counters aren't inflated).
    """
    runs = []
    candidates = positions = None
    snapshot = None
    for _ in range(repeats):
        scenario = make_scenario(args.seed, args.devices, args.chargers)
        registry = MetricsRegistry()
        t0 = time.perf_counter()
        cs = build_candidate_set(scenario, metrics=registry, **build_kwargs)
        runs.append(time.perf_counter() - t0)
        candidates = cs.num_candidates
        positions = sum(cs.positions_per_type.values())
        snapshot = registry.snapshot()
    mode = {
        "seconds": min(runs),
        "runs": [round(r, 4) for r in runs],
        "candidates": candidates,
        "positions": positions,
    }
    return mode, snapshot


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--devices", type=int, default=4, help="device multiple (of 4,3,2,1)")
    parser.add_argument("--chargers", type=int, default=3, help="charger multiple (of 1,2,3)")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--workers",
        type=_worker_list,
        default="2,4",
        help="comma-separated worker counts for the multi-process modes",
    )
    parser.add_argument("--out", type=str, default=str(REPO_ROOT / "BENCH_1.json"))
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny scenario, single repeat, single 2-worker mode (CI completeness check)",
    )
    args = parser.parse_args(argv)

    worker_counts = args.workers
    if args.smoke:
        args.devices, args.chargers, args.repeats = 1, 1, 1
        worker_counts = [2]

    scenario = make_scenario(args.seed, args.devices, args.chargers)
    print(
        f"scenario: seed={args.seed} devices={scenario.num_devices} "
        f"chargers={scenario.num_chargers} obstacles={len(scenario.obstacles)}"
    )

    modes: dict[str, dict] = {}
    snapshots: dict[str, object] = {}
    modes["serial"], snapshots["serial"] = time_mode(args, args.repeats, batched=False)
    print(f"serial   : {modes['serial']['seconds']:.3f}s")
    modes["batched"], snapshots["batched"] = time_mode(args, args.repeats, batched=True)
    print(f"batched  : {modes['batched']['seconds']:.3f}s")
    for w in worker_counts:
        modes[f"workers{w}"], snapshots[f"workers{w}"] = time_mode(args, args.repeats, workers=w)
        print(f"workers{w} : {modes[f'workers{w}']['seconds']:.3f}s")

    serial_s = modes["serial"]["seconds"]
    speedups = {
        name: round(serial_s / m["seconds"], 3) for name, m in modes.items() if name != "serial"
    }
    # All configurations must extract the same candidate set.
    counts = {m["candidates"] for m in modes.values()}
    if len(counts) != 1:
        raise SystemExit(f"candidate counts diverged across modes: {counts}")
    for name, snap in snapshots.items():
        modes[name]["counters"] = {k: snap.counters[k] for k in sorted(snap.counters)}

    payload = {
        "scenario": {
            "seed": args.seed,
            "device_multiple": args.devices,
            "charger_multiple": args.chargers,
            "num_devices": scenario.num_devices,
            "num_chargers": scenario.num_chargers,
            "num_obstacles": len(scenario.obstacles),
        },
        "repeats": args.repeats,
        "smoke": args.smoke,
        "modes": modes,
        "speedup_vs_serial": speedups,
    }
    # The shared writer stamps the provenance meta block (git sha, versions,
    # cpu count) plus the batched-mode metric snapshot, and re-parses the
    # file as a well-formedness check.
    out = write_bench_json(
        Path(args.out), "extraction_scaling", payload, metrics=snapshots["batched"]
    )
    print(f"speedups vs serial: {speedups}")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
