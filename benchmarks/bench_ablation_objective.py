"""Ablation (DESIGN.md §6.2) — greedy on approximated vs exact power.

The guarantee of Theorem 4.2 covers the greedy run on the piecewise-constant
P̃; this ablation measures the empirical gap to a greedy run on the exact
power law, and the effect of the approximation parameter ε.
"""

import numpy as np

from repro.core import solve_hipo
from repro.experiments import random_scenario


def bench_ablation_objective(benchmark, report):
    rng = np.random.default_rng(123)
    scenario = random_scenario(rng, device_multiple=2)

    def run():
        rows = []
        for eps in (0.05, 0.15, 0.3, 0.45):
            approx_sol = solve_hipo(scenario, eps=eps, objective_power="approx")
            rows.append((f"approx eps={eps:g}", approx_sol.utility, approx_sol.approx_utility))
        exact_sol = solve_hipo(scenario, objective_power="exact")
        rows.append(("exact objective", exact_sol.utility, exact_sol.approx_utility))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'objective':<18} {'exact utility':>14} {'approx utility':>15}"]
    lines += [f"{name:<18} {u:>14.4f} {a:>15.4f}" for name, u, a in rows]
    report("ablation_objective", "\n".join(lines))
    utilities = {name: u for name, u, _ in rows}
    # Finer eps should not be (much) worse than coarse eps.
    assert utilities["approx eps=0.05"] >= utilities["approx eps=0.45"] - 0.08
    # Approximated greedy stays close to exact-objective greedy.
    assert utilities["approx eps=0.15"] >= utilities["exact objective"] - 0.1
