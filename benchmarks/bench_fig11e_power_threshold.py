"""Fig. 11(e) — charging utility vs power threshold Pth (0.02-0.09).

Paper shape: utility roughly stable at small Pth, then gradually decreases
as saturating a device needs more chargers; HIPO dominates throughout.
"""

from repro.experiments import fig11e_power_threshold, format_percent

from repro.experiments.sweeps import bench_repeats as _repeats

from conftest import pick


def bench_fig11e_power_threshold(benchmark, report):
    table = benchmark.pedantic(
        lambda: fig11e_power_threshold(
            thresholds=pick((0.02, 0.05, 0.09), (0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08, 0.09)),
            repeats=_repeats(2),
        ),
        rounds=1,
        iterations=1,
    )
    imp = table.improvement_over("HIPO")
    lines = [table.format(), "mean improvement of HIPO over:"]
    lines += [f"  {name:<18} {format_percent(v)}" for name, v in imp.items()]
    report("fig11e_power_threshold", "\n".join(lines))
    hipo = table.series["HIPO"]
    assert hipo[0] >= hipo[-1] - 0.02  # higher threshold cannot help
    for name, vals in table.series.items():
        if name != "HIPO":
            assert sum(hipo) >= sum(vals)
