"""Ablation — why the *practical* charging model matters (§1 motivation).

Optimize the placement under each simplified model from the related-work
taxonomy (classical sector with no keep-out; omnidirectional disks;
obstacle-free), then evaluate the resulting placement under the full
practical model.  The utility forfeited by each simplification quantifies
the paper's argument for modelling the keep-out ring, directionality and
obstacles.
"""

import numpy as np

from repro.core import solve_hipo
from repro.experiments import random_scenario
from repro.model import (
    classical_sector_variant,
    obstacle_free_variant,
    omnidirectional_variant,
)


def bench_ablation_model(benchmark, report):
    scenario = random_scenario(np.random.default_rng(55), device_multiple=2)

    def run():
        rows = []
        true_sol = solve_hipo(scenario)
        rows.append(("practical (paper)", true_sol.utility, true_sol.utility))
        for name, variant in (
            ("classical sector", classical_sector_variant),
            ("omnidirectional", omnidirectional_variant),
            ("obstacle-free", obstacle_free_variant),
        ):
            simplified = variant(scenario)
            sol = solve_hipo(simplified)
            # Evaluate the simplified-model placement under the TRUE model.
            realized = scenario.utility_of(sol.strategies)
            rows.append((name, sol.utility, realized))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'optimized under':<20} {'believed utility':>16} {'realized utility':>17}"]
    lines += [f"{name:<20} {believed:>16.4f} {realized:>17.4f}" for name, believed, realized in rows]
    report("ablation_model", "\n".join(lines))
    # Each simplified model's believed utility upper-bounds reality (its
    # power law dominates the practical one pointwise).
    for name, believed, realized in rows:
        assert realized <= believed + 1e-9, name
    realized = {name: r for name, _b, r in rows}
    believed = {name: b for name, b, _r in rows}
    # The omnidirectional simplification is the paper's cautionary tale: it
    # believes (near-)full coverage and forfeits a large share in reality.
    assert realized["practical (paper)"] >= realized["omnidirectional"]
    assert believed["omnidirectional"] - realized["omnidirectional"] >= 0.1
