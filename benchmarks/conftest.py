"""Shared machinery for the reproduction benchmarks.

Each ``bench_*`` file regenerates one paper table/figure: the benchmark
fixture times the harness, and the regenerated series is printed and saved
under ``benchmarks/results/`` so the paper-vs-measured comparison in
EXPERIMENTS.md can be refreshed.

Scaling knobs (environment variables):

``REPRO_BENCH_REPEATS``
    Random topologies per sweep point (paper: 100; default here: 2).
``REPRO_BENCH_FULL``
    Set to 1 to run the paper's full x-axis ranges instead of the reduced
    default grids.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def full_scale() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") not in ("", "0", "false")


def pick(reduced, full):
    """Choose the reduced or full parameter grid."""
    return full if full_scale() else reduced


@pytest.fixture
def report():
    """Save a regenerated series under benchmarks/results and echo it.

    Every series is written twice: the human-diffable ``<name>.txt`` (as
    before) and a ``<name>.json`` artifact routed through the shared
    :func:`repro.obs.write_bench_json` writer, which stamps the provenance
    ``meta`` block (git sha, python/numpy versions, platform, CPU count,
    timestamp) so saved numbers are attributable to the code and machine
    that produced them.
    """
    from repro.obs import write_bench_json

    def _report(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text)
        write_bench_json(RESULTS_DIR / f"{name}.json", name, {"text": text})
        print(f"\n=== {name} ===")
        print(text)

    return _report
