"""Fig. 10 — one-instance comparison of all nine algorithms.

Paper: utilities 0.8495 (HIPO), 0.6932/0.6348 (GPPDCS T/S), 0.6191/0.6006
(GPAD T/S), 0.4867/0.4605 (GPAR T/S), 0.4046 (RPAD), 0.1000 (RPAR) —
HIPO charges every device, baselines leave many dark.
"""

from repro.experiments import fig10_instance

from conftest import pick


def bench_fig10_instance(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig10_instance(seed=7, charger_multiple=pick(4, 4)),
        rounds=1,
        iterations=1,
    )
    ev = result.scenario.evaluator()
    lines = [result.format(), "", "uncharged devices:"]
    for name, strategies in result.placements.items():
        dark = int((ev.total_power(strategies) <= 0).sum())
        lines.append(f"{name:<20} {dark} of {result.scenario.num_devices}")
    report("fig10_instance", "\n".join(lines))
    assert result.utilities["HIPO"] == max(result.utilities.values())
