"""Micro-benchmarks of the hot kernels (profiling-driven; see the guides).

These are the inner loops the figure harnesses spend their time in:
line-of-sight masking, the orientation-independent coverability kernel, the
Algorithm-1 sweep, candidate generation, and one full HIPO solve.
"""

import numpy as np

from repro.core import CandidateGenerator, extract_pdcs_at_point, solve_hipo
from repro.experiments import random_scenario
from repro.geometry import visible_mask


def _scenario(seed=1, device_multiple=4):
    return random_scenario(np.random.default_rng(seed), device_multiple=device_multiple)


def bench_visible_mask(benchmark):
    sc = _scenario()
    ev = sc.evaluator()
    rng = np.random.default_rng(0)
    points = rng.uniform(0, 40, size=(64, 2))
    benchmark(lambda: [visible_mask(p, ev.positions, sc.obstacles) for p in points])


def bench_coverable_kernel(benchmark):
    sc = _scenario()
    ev = sc.evaluator()
    ct = sc.charger_types[2]
    rng = np.random.default_rng(0)
    points = rng.uniform(0, 40, size=(64, 2))

    def run():
        ev.clear_cache()
        for p in points:
            ev.coverable(ct, p)

    benchmark(run)


def bench_pdcs_sweep(benchmark):
    sc = _scenario()
    ev = sc.evaluator()
    ct = sc.charger_types[2]
    rng = np.random.default_rng(0)
    points = rng.uniform(0, 40, size=(64, 2))
    benchmark(lambda: [extract_pdcs_at_point(ev, ct, p) for p in points])


def bench_candidate_generation(benchmark):
    sc = _scenario(device_multiple=1)
    gen = CandidateGenerator(sc)
    benchmark.pedantic(
        lambda: [gen.positions(ct) for ct in sc.charger_types], rounds=2, iterations=1
    )


def bench_full_solve_small(benchmark):
    sc = _scenario(device_multiple=1)
    benchmark.pedantic(lambda: solve_hipo(sc), rounds=2, iterations=1)


def bench_full_solve_default(benchmark):
    sc = _scenario(device_multiple=4)
    benchmark.pedantic(lambda: solve_hipo(sc), rounds=1, iterations=1)
