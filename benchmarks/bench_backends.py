"""Compute-backend benchmark: per-kernel A/B plus cold-solve comparison.

Exercises the ``repro.backend`` seam (docs/backends.md) two ways:

* **kernels** — microbenchmarks of the four seam kernels
  (``blocked_segments``, ``parity_inside``, ``power_fill``,
  ``sweep_coverage``) on synthetic arrays sized like a §6 extraction,
  for every backend loadable on this machine;
* **cold solve** — end-to-end :func:`repro.core.build_candidate_set`
  wall-clock per backend on the BENCH_1 scenario, asserting the
  serialized candidate sets are **byte-identical** across backends
  before reporting any speedup (a faster wrong answer is not a speedup).

With ``--chunk-sweep`` it additionally sweeps ``extraction_chunk_size``
over powers of two on the numpy backend — the measurement behind
``DEFAULT_EXTRACTION_CHUNK`` in ``repro.core.placement``.

The result is written as JSON (default: ``BENCH_3.json`` at the repo
root); the shared writer stamps provenance ``meta`` including the active
backend and per-backend availability.

Usage::

    PYTHONPATH=src python benchmarks/bench_backends.py
    PYTHONPATH=src python benchmarks/bench_backends.py --chunk-sweep
    PYTHONPATH=src python benchmarks/bench_backends.py --smoke --out /tmp/bench.json
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

import numpy as np

from repro.backend import backend_status, get_backend, use_backend
from repro.core import build_candidate_set
from repro.core.reuse import serialize_candidate_set
from repro.experiments import random_scenario
from repro.geometry import rectangle
from repro.obs import write_bench_json

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_SEED = 20260806
CHUNK_GRID = (64, 128, 256, 512, 1024, 2048, 4096)


def make_scenario(seed: int, device_multiple: int, charger_multiple: int):
    return random_scenario(
        np.random.default_rng(seed),
        device_multiple=device_multiple,
        charger_multiple=charger_multiple,
    )


def loadable_backends() -> list:
    """Selectable backends that actually load here, numpy first."""
    backends = []
    for name, ok in sorted(backend_status().items(), key=lambda kv: kv[0] != "numpy"):
        if not ok:
            continue
        try:
            backends.append(get_backend(name))
        except Exception:
            continue  # registered but unloadable (e.g. the cupy stub)
    return backends


def kernel_inputs(rng: np.random.Generator, scale: int):
    """Synthetic arrays shaped like one obstacle's worth of extraction work."""
    n_seg = 256 * scale
    n_pts = 512 * scale
    n_dev = 12 * scale
    starts = rng.uniform(0.0, 20.0, size=(n_seg, 2))
    ends = rng.uniform(0.0, 20.0, size=(n_seg, 2))
    c, d, s = rectangle(6.0, 6.0, 11.0, 9.0).edge_arrays()
    points = rng.uniform(0.0, 20.0, size=(n_pts, 2))
    a = rng.uniform(50.0, 150.0, size=n_pts)
    b = rng.uniform(1.0, 10.0, size=n_pts)
    dists = rng.uniform(0.5, 8.0, size=(8, n_pts))
    bearings = rng.uniform(0.0, 2.0 * np.pi, size=n_dev)
    return {
        "blocked_segments": lambda bk: bk.blocked_segments(starts, ends, c, d, s),
        "parity_inside": lambda bk: bk.parity_inside(c, d, points),
        "power_fill": lambda bk: bk.power_fill(a, b, dists),
        "sweep_coverage": lambda bk: bk.sweep_coverage(bearings, np.pi / 4.0, 1e-9),
    }


def time_call(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_kernels(backends, repeats: int, scale: int) -> dict:
    rng = np.random.default_rng(DEFAULT_SEED)
    kernels = kernel_inputs(rng, scale)
    out: dict[str, dict] = {}
    for kname, call in kernels.items():
        per_backend = {}
        for bk in backends:
            call(bk)  # warm-up (numba: triggers/loads the compile cache)
            per_backend[bk.name] = round(time_call(lambda: call(bk), repeats), 6)
        base = per_backend.get("numpy")
        out[kname] = {
            "seconds": per_backend,
            "speedup_vs_numpy": {
                n: round(base / s, 3) for n, s in per_backend.items() if n != "numpy" and s > 0
            },
        }
    return out


def bench_cold_solve(args, backends, repeats: int) -> dict:
    """Cold extraction per backend; blobs must be byte-identical."""
    results: dict[str, dict] = {}
    blobs: dict[str, bytes] = {}
    for bk in backends:
        runs = []
        for _ in range(repeats):
            scenario = make_scenario(args.seed, args.devices, args.chargers)
            t0 = time.perf_counter()
            cs = build_candidate_set(scenario, backend=bk.name)
            runs.append(time.perf_counter() - t0)
        blobs[bk.name] = serialize_candidate_set(cs)
        results[bk.name] = {
            "seconds": min(runs),
            "runs": [round(r, 4) for r in runs],
            "candidates": cs.num_candidates,
        }
    reference = blobs["numpy"]
    for name, blob in blobs.items():
        if blob != reference:
            raise SystemExit(f"candidate set from backend {name!r} differs from numpy byte-wise")
    base = results["numpy"]["seconds"]
    return {
        "per_backend": results,
        "byte_identical": True,
        "speedup_vs_numpy": {
            n: round(base / r["seconds"], 3) for n, r in results.items() if n != "numpy"
        },
    }


def bench_chunk_sweep(args, repeats: int, grid=CHUNK_GRID) -> dict:
    """Extraction wall-clock vs ``extraction_chunk_size`` (numpy backend)."""
    timings: dict[str, float] = {}
    for chunk in grid:
        runs = []
        for _ in range(repeats):
            scenario = make_scenario(args.seed, args.devices, args.chargers)
            t0 = time.perf_counter()
            build_candidate_set(scenario, backend="numpy", extraction_chunk_size=chunk)
            runs.append(time.perf_counter() - t0)
        timings[str(chunk)] = round(min(runs), 4)
    best = min(timings, key=lambda k: timings[k])
    return {"seconds_by_chunk": timings, "best_chunk": int(best)}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--devices", type=int, default=4, help="device multiple (of 4,3,2,1)")
    parser.add_argument("--chargers", type=int, default=3, help="charger multiple (of 1,2,3)")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--scale", type=int, default=4, help="kernel input size multiplier")
    parser.add_argument("--chunk-sweep", action="store_true", help="sweep extraction_chunk_size")
    parser.add_argument("--out", type=str, default=str(REPO_ROOT / "BENCH_3.json"))
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny scenario and inputs, single repeat (CI completeness check)",
    )
    args = parser.parse_args(argv)

    repeats = args.repeats
    scale = args.scale
    chunk_grid = CHUNK_GRID
    if args.smoke:
        args.devices, args.chargers, repeats, scale = 1, 1, 1, 1
        chunk_grid = (256, 1024)

    backends = loadable_backends()
    status = backend_status()
    print(f"backends under test: {[bk.name for bk in backends]} (status: {status})")

    kernels = bench_kernels(backends, repeats, scale)
    for kname, entry in kernels.items():
        print(f"{kname:18s}: {entry['seconds']}")

    cold = bench_cold_solve(args, backends, repeats)
    print(f"cold solve        : {cold['per_backend']}")
    print(f"speedup vs numpy  : {cold['speedup_vs_numpy']} (byte-identical: yes)")

    payload = {
        "scenario": {
            "seed": args.seed,
            "device_multiple": args.devices,
            "charger_multiple": args.chargers,
        },
        "repeats": repeats,
        "smoke": args.smoke,
        "backends": {"tested": [bk.name for bk in backends], "status": status},
        "kernels": kernels,
        "cold_solve": cold,
    }
    if args.chunk_sweep:
        payload["chunk_sweep"] = bench_chunk_sweep(args, repeats, chunk_grid)
        print(f"chunk sweep       : {payload['chunk_sweep']['seconds_by_chunk']}")
        print(f"best chunk        : {payload['chunk_sweep']['best_chunk']}")

    # Stamp provenance with the fastest loadable backend active, so
    # meta.backend records what a default solve on this machine would use.
    with use_backend(None):
        out = write_bench_json(Path(args.out), "backends", payload)
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
