"""Fig. 14 — HIPO utility surface over (dmax scale, dmin/dmax ratio).

Paper shape: utility grows with dmax, much faster when dmin is near zero;
at high dmin/dmax ratios the ring is thin and utility stays low even for
large dmax.
"""

import numpy as np

from repro.experiments import fig14_dmin_dmax_surface

from repro.experiments.sweeps import bench_repeats as _repeats

from conftest import pick


def bench_fig14_surface(benchmark, report):
    table = benchmark.pedantic(
        lambda: fig14_dmin_dmax_surface(
            dmax_factors=pick((0.6, 1.0, 2.0), (0.6, 0.8, 1.0, 1.25, 1.5, 2.0)),
            ratios=pick((0.0, 0.45, 0.9), (0.0, 0.15, 0.3, 0.45, 0.6, 0.75, 0.9)),
            repeats=_repeats(1),
        ),
        rounds=1,
        iterations=1,
    )
    report("fig14_surface", table.format())
    # Shape: for fixed ratio, larger dmax helps; for fixed dmax, a thin ring
    # (ratio near 1) hurts relative to no keep-out.
    for name, vals in table.series.items():
        assert vals[-1] >= vals[0] - 0.1, name
    first = list(table.series)[0]
    last = list(table.series)[-1]
    assert np.mean(table.series[first]) >= np.mean(table.series[last]) - 0.05
