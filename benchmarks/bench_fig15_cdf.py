"""Fig. 15 — CDF of per-device charging utility, one 40-device topology.

Paper shape: under HIPO no device sits below utility 0.5, while the
comparison algorithms leave a large mass of devices at zero utility; HIPO's
distribution is balanced and high.
"""

import numpy as np

from repro.experiments import fig15_utility_cdf


def bench_fig15_cdf(benchmark, report):
    out = benchmark.pedantic(lambda: fig15_utility_cdf(seed=20), rounds=1, iterations=1)
    lines = ["fraction of devices at utility 0 / below 0.5 / at 1.0:"]
    for name, u in out.items():
        lines.append(
            f"{name:<20} {np.mean(u <= 0):.3f} / {np.mean(u < 0.5):.3f} / {np.mean(u >= 1.0 - 1e-9):.3f}"
        )
    lines.append("")
    lines.append("sorted per-device utilities (CDF x-samples):")
    for name, u in out.items():
        lines.append(f"{name:<20} " + " ".join(f"{v:.2f}" for v in u))
    report("fig15_utility_cdf", "\n".join(lines))
    hipo = out["HIPO"]
    # HIPO leaves the fewest devices uncharged.
    for name, u in out.items():
        assert np.mean(hipo <= 0) <= np.mean(u <= 0) + 1e-9, name
