"""Fig. 11(b) — charging utility vs number of devices (1x-8x).

Paper shape: utility decreases monotonically with No (fixed charger fleet
spread across more devices); HIPO stays on top throughout; decay slows as
devices densify (one charger covers several).
"""

from repro.experiments import fig11b_num_devices, format_percent

from repro.experiments.sweeps import bench_repeats as _repeats

from conftest import pick


def bench_fig11b_num_devices(benchmark, report):
    table = benchmark.pedantic(
        lambda: fig11b_num_devices(
            multiples=pick((1, 2, 4, 8), (1, 2, 3, 4, 5, 6, 7, 8)),
            repeats=_repeats(2),
        ),
        rounds=1,
        iterations=1,
    )
    imp = table.improvement_over("HIPO")
    lines = [table.format(), "mean improvement of HIPO over:"]
    lines += [f"  {name:<18} {format_percent(v)}" for name, v in imp.items()]
    report("fig11b_num_devices", "\n".join(lines))
    hipo = table.series["HIPO"]
    assert hipo[0] >= hipo[-1]  # decreasing trend
    for name, vals in table.series.items():
        if name != "HIPO":
            assert sum(hipo) >= sum(vals)
