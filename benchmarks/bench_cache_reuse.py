"""Candidate-reuse benchmark: cold vs warm budget sweeps.

Times the same budget sweep (one seeded §6 topology solved under several
budget multipliers) twice:

* ``cold`` — no candidate cache; every point pays full extraction,
* ``warm`` — a :class:`repro.core.CandidateSetCache` pre-warmed by a single
  untimed solve; every point then skips extraction and runs only the greedy
  selection (the ``repro.serve`` candidate-tier / ``repro solve
  --budget-sweep`` path).

Besides wall-clock, the run *asserts* that warm results are byte-identical
to cold ones (utility, strategies, greedy indices — serialized and
compared), so the recorded speedup can never come from a divergent answer.
The result is written as JSON (default: ``BENCH_2.json`` at the repo root,
the checked-in record for this machine) with the standard provenance meta
block.

Usage::

    PYTHONPATH=src python benchmarks/bench_cache_reuse.py
    PYTHONPATH=src python benchmarks/bench_cache_reuse.py --smoke --out /tmp/bench.json
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.core import CandidateSetCache, solve_hipo
from repro.experiments import random_scenario
from repro.io import strategies_to_list
from repro.obs import MetricsRegistry, write_bench_json

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_SEED = 20260806


def _multiplier_list(spec: str) -> list[int]:
    try:
        out = [int(x) for x in spec.split(",") if x]
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid multiplier list {spec!r} (expected e.g. '1,2,3')")
    if not out or any(k <= 0 for k in out):
        raise argparse.ArgumentTypeError(f"multipliers must be positive: {spec!r}")
    return out


def make_scenario(seed: int, device_multiple: int, charger_multiple: int):
    return random_scenario(
        np.random.default_rng(seed),
        device_multiple=device_multiple,
        charger_multiple=charger_multiple,
    )


def fingerprint(solution) -> str:
    """Canonical bytes of everything a sweep consumer reads off a solution."""
    return json.dumps(
        {
            "utility": solution.utility,
            "approx_utility": solution.approx_utility,
            "strategies": strategies_to_list(solution.strategies),
            "greedy": list(solution.greedy.indices),
        },
        sort_keys=True,
        separators=(",", ":"),
    )


def run_sweep_once(args, points, cache, registry):
    """One timed pass over the budget points; returns (seconds, fingerprints)."""
    scenario = make_scenario(args.seed, args.devices, args.chargers)
    prints = []
    t0 = time.perf_counter()
    for budgets in points:
        sol = solve_hipo(
            scenario.with_budgets(budgets), candidate_cache=cache, metrics=registry
        )
        prints.append(fingerprint(sol))
    return time.perf_counter() - t0, prints


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--devices", type=int, default=4, help="device multiple (of 4,3,2,1)")
    parser.add_argument("--chargers", type=int, default=3, help="charger multiple (of 1,2,3)")
    parser.add_argument("--repeats", type=int, default=3, help="best-of wall-clock repeats")
    parser.add_argument(
        "--multipliers",
        type=_multiplier_list,
        default="1,2,3,4",
        help="comma-separated budget multipliers forming the sweep points",
    )
    parser.add_argument("--out", type=str, default=str(REPO_ROOT / "BENCH_2.json"))
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny scenario, single repeat, two points (CI completeness check; "
        "asserts byte-identity but no particular speedup)",
    )
    args = parser.parse_args(argv)

    multipliers = args.multipliers
    if args.smoke:
        args.devices, args.chargers, args.repeats = 1, 1, 1
        multipliers = [1, 2]

    scenario = make_scenario(args.seed, args.devices, args.chargers)
    points = [{name: n * k for name, n in scenario.budgets.items()} for k in multipliers]
    print(
        f"scenario: seed={args.seed} devices={scenario.num_devices} "
        f"chargers={scenario.num_chargers} obstacles={len(scenario.obstacles)} "
        f"sweep multipliers={multipliers}"
    )

    cold_runs, warm_runs = [], []
    cold_prints = warm_prints = None
    warm_registry = None
    cache_stats = None
    for _ in range(args.repeats):
        cold_s, cold_prints = run_sweep_once(args, points, None, MetricsRegistry())
        cold_runs.append(cold_s)

        cache = CandidateSetCache(max_entries=max(4, len(points)))
        # Pre-warm with one untimed solve: the steady state of a repeated /
        # swept workload (the serve candidate tier after its first request).
        solve_hipo(
            make_scenario(args.seed, args.devices, args.chargers).with_budgets(points[0]),
            candidate_cache=cache,
        )
        warm_registry = MetricsRegistry()
        warm_s, warm_prints = run_sweep_once(args, points, cache, warm_registry)
        warm_runs.append(warm_s)
        cache_stats = cache.stats()

    if cold_prints != warm_prints:
        raise SystemExit("warm sweep results diverged from cold results")
    byte_identical = True
    if cache_stats["hits"] < len(points):
        raise SystemExit(f"expected {len(points)} warm hits, got {cache_stats['hits']}")

    cold_best, warm_best = min(cold_runs), min(warm_runs)
    speedup = round(cold_best / warm_best, 3)
    print(f"cold : {cold_best:.3f}s  ({len(points)} extractions)")
    print(f"warm : {warm_best:.3f}s  (0 extractions, {cache_stats['hits']} hits)")
    print(f"speedup: {speedup}x  byte-identical: {byte_identical}")
    if not args.smoke and speedup < 5.0:
        raise SystemExit(f"warm sweep only {speedup}x faster than cold (need >= 5x)")

    payload = {
        "scenario": {
            "seed": args.seed,
            "device_multiple": args.devices,
            "charger_multiple": args.chargers,
            "num_devices": scenario.num_devices,
            "num_obstacles": len(scenario.obstacles),
        },
        "sweep": {"multipliers": multipliers, "points": len(points)},
        "repeats": args.repeats,
        "smoke": args.smoke,
        "cold": {"seconds": cold_best, "runs": [round(r, 4) for r in cold_runs]},
        "warm": {
            "seconds": warm_best,
            "runs": [round(r, 4) for r in warm_runs],
            "cache": cache_stats,
        },
        "speedup_warm_vs_cold": speedup,
        "byte_identical": byte_identical,
    }
    out = write_bench_json(
        Path(args.out), "cache_reuse", payload, metrics=warm_registry.snapshot()
    )
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
