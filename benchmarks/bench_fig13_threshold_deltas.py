"""Fig. 13 — HIPO utility vs No under per-type power-threshold offsets.

Paper shape: all five delta settings follow the same decreasing-in-No
pattern as Fig. 11(b); settings where higher-numbered device types (which
receive more power per charger) get *larger* thresholds score lower; the
average spread between settings is only ~3.2%.
"""

import numpy as np

from repro.experiments import fig13_threshold_deltas

from repro.experiments.sweeps import bench_repeats as _repeats

from conftest import pick


def bench_fig13_threshold_deltas(benchmark, report):
    table = benchmark.pedantic(
        lambda: fig13_threshold_deltas(
            deltas=(-0.01, -0.005, 0.0, 0.005, 0.01),
            multiples=pick((1, 2, 4, 8), (1, 2, 3, 4, 5, 6, 7, 8)),
            repeats=_repeats(2),
        ),
        rounds=1,
        iterations=1,
    )
    series = {k: np.array(v) for k, v in table.series.items()}
    means = {k: v.mean() for k, v in series.items()}
    spread = (max(means.values()) - min(means.values())) / max(means.values()) * 100.0
    lines = [table.format(), f"relative spread between settings: {spread:.2f}%"]
    report("fig13_threshold_deltas", "\n".join(lines))
    # Shape: each setting decreases with device count.
    for name, vals in series.items():
        assert vals[0] >= vals[-1] - 0.05, name
    # Negative delta (cheaper thresholds for high-power device types) >= positive.
    assert means["-0.01"] >= means["+0.01"] - 0.05
