"""Empirical check of Lemma 4.4 — number of feasible geometric areas.

Lemma 4.4 bounds the number of feasible geometric areas per charger type by
``O(No² ε1⁻² Nh² c²)``.  We count distinct area signatures over a sampling
lattice for growing device counts and report the ratio to the bound
(constants dropped), which must stay below 1 and shrink as the bound's
quadratic terms outpace the actual geometry.
"""

import numpy as np

from repro.core import FeasibleAreaIndex
from repro.experiments import random_scenario


def bench_lemma44_area_count(benchmark, report):
    def run():
        rows = []
        for mult in (1, 2, 3):
            sc = random_scenario(np.random.default_rng(77), device_multiple=mult)
            idx = FeasibleAreaIndex(sc)
            ct = sc.charger_types[2]  # widest aperture, smallest ring
            count = idx.count_areas(ct, resolution=72)
            rows.append((sc.num_devices, count.distinct_signatures, count.lemma44_bound))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'devices':>8} {'areas (empirical)':>18} {'Lemma 4.4 bound':>16} {'ratio':>8}"]
    for no, areas, bound in rows:
        lines.append(f"{no:>8d} {areas:>18d} {bound:>16.0f} {areas / bound:>8.4f}")
    report("lemma44_area_count", "\n".join(lines))
    for no, areas, bound in rows:
        assert areas <= bound
    # Quadratic growth in the bound outpaces empirical growth.
    ratios = [areas / bound for _no, areas, bound in rows]
    assert ratios[-1] <= ratios[0] + 1e-9
