"""Ablation (DESIGN.md §6.3) — full-scan greedy vs CELF lazy greedy.

Both return the same selection value; CELF exploits submodularity to skip
stale marginal-gain evaluations.  We report evaluation counts and timings on
a synthetic candidate set large enough for the difference to matter.
"""

import numpy as np

from repro.opt import (
    ChargingUtilityObjective,
    PartitionMatroid,
    greedy_matroid,
    lazy_greedy_matroid,
)


def make_instance(n=4000, m=60, parts=3, cap=6, seed=5):
    rng = np.random.default_rng(seed)
    P = rng.uniform(0.0, 0.04, size=(n, m))
    P[rng.random((n, m)) < 0.9] = 0.0
    th = np.full(m, 0.05)
    part_of = rng.integers(0, parts, size=n).tolist()
    matroid = PartitionMatroid(part_of, [cap] * parts)
    return ChargingUtilityObjective(P, th), matroid


def bench_full_scan_greedy(benchmark, report):
    objective, matroid = make_instance()
    result = benchmark(lambda: greedy_matroid(objective, matroid))
    report(
        "ablation_greedy_full",
        f"full-scan greedy: value={result.value:.4f} evaluations={result.evaluations}",
    )


def bench_lazy_greedy(benchmark, report):
    objective, matroid = make_instance()
    result = benchmark(lambda: lazy_greedy_matroid(objective, matroid))
    full = greedy_matroid(objective, matroid)
    report(
        "ablation_greedy_lazy",
        f"lazy (CELF) greedy: value={result.value:.4f} evaluations={result.evaluations}\n"
        f"full-scan reference: value={full.value:.4f} evaluations={full.evaluations}\n"
        f"evaluation ratio: {result.evaluations / max(full.evaluations, 1):.3f}",
    )
    assert np.isclose(result.value, full.value, atol=1e-9)
    assert result.evaluations < full.evaluations
