"""§7 field experiment (Figs. 24-26), simulated substrate.

Paper result: HIPO's chargers hug the sensor cluster and all ten devices
receive charging utility, while GPPDCS Triangle and GPAD Triangle leave
several devices uncharged; HIPO's power CDF reaches 1 slowest (most power
delivered overall).
"""

import numpy as np

from repro.experiments import cdf_points, field_comparison


def bench_field_experiment(benchmark, report):
    result = benchmark.pedantic(lambda: field_comparison(), rounds=1, iterations=1)
    lines = ["Fig 25 - per-device charging utility:", result.format(), ""]
    lines.append("Fig 26 - received power CDF (mW, fraction):")
    for name, p in result.powers.items():
        values, frac = cdf_points(p)
        lines.append(f"{name:<20} " + " ".join(f"{v:.1f}:{f:.1f}" for v, f in zip(values, frac)))
    lines.append("")
    for name, u in result.utilities.items():
        lines.append(f"{name:<20} uncharged: {int((u <= 0).sum())} of {len(u)}")
    report("field_experiment", "\n".join(lines))
    # Paper's qualitative claims.
    assert int((result.utilities["HIPO"] <= 0).sum()) == 0
    assert result.utilities["HIPO"].mean() >= result.utilities["GPPDCS Triangle"].mean()
    assert result.utilities["HIPO"].mean() >= result.utilities["GPAD Triangle"].mean()
    assert result.powers["HIPO"].sum() >= result.powers["GPAD Triangle"].sum()
