"""Job queue for the solve service: bounded, prioritized, cancellable.

A :class:`JobQueue` is the spine of ``repro.serve``: HTTP submissions become
:class:`Job` records, worker threads (:class:`~repro.serve.pool.SolverPool`)
pull them in priority order, and every job walks the state machine ::

    queued ──▶ running ──▶ done
       │          ├──────▶ failed
       │          ├──────▶ timeout
       └──────────┴──────▶ cancelled

* **Bounded capacity** — :meth:`JobQueue.submit` raises :class:`QueueFull`
  once ``maxsize`` jobs are queued; the HTTP layer turns that into a 429 so
  overload produces backpressure instead of unbounded memory growth.
* **Priorities** — higher ``priority`` is served first, FIFO within a
  priority class (heap key ``(-priority, sequence)``).
* **Timeout / cancellation** — each job carries a ``cancel``
  ``threading.Event``; the solver polls it cooperatively via
  :func:`repro.core.check_cancel`.  Deadlines are measured from submission,
  so a job that waited out its whole budget in the queue times out
  immediately when a worker picks it up.
* **History bound** — finished jobs are evicted oldest-first beyond
  ``max_history`` so a long-running service does not accumulate every job
  ever served.

All public methods are thread-safe (single internal lock + condition).
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
import uuid
from dataclasses import dataclass, field

from ..analysis.sanitizer import new_lock
from typing import Any

__all__ = [
    "Job",
    "JobQueue",
    "JobState",
    "QueueFull",
    "UnknownJob",
    "FINAL_STATES",
]


class JobState:
    """String constants for the job state machine."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    TIMEOUT = "timeout"
    CANCELLED = "cancelled"


#: States a job can never leave.
FINAL_STATES = frozenset(
    {JobState.DONE, JobState.FAILED, JobState.TIMEOUT, JobState.CANCELLED}
)


class QueueFull(RuntimeError):
    """The queue is at capacity; the submission was rejected (HTTP 429)."""


class UnknownJob(KeyError):
    """No job with the requested id (it may have been evicted from history)."""


@dataclass
class Job:
    """One solve request travelling through the service."""

    id: str
    request: dict[str, Any]  # parsed request body (scenario dict + params)
    priority: int = 0
    timeout_s: float | None = None
    cache_key: str | None = None
    submitted_s: float = 0.0  # monotonic clock
    started_s: float | None = None
    finished_s: float | None = None
    state: str = JobState.QUEUED
    result: dict[str, Any] | None = None  # payload for ``done`` jobs
    error: str | None = None  # message for ``failed`` jobs
    cached: bool = False
    #: Which cache tier served the job: ``"full"`` (solution bytes replayed),
    #: ``"candidates"`` (extraction skipped, selection re-run) or ``None``
    #: (cold solve).  Deliberately *not* part of ``result`` — the full tier
    #: replays stored result bytes verbatim, so a tier tag inside them would
    #: go stale; the tag describes this serving, not the original solve.
    cache_tier: str | None = None
    trace: list[dict[str, Any]] = field(default_factory=list)  # repro.trace/v1 span dicts
    cancel: threading.Event = field(default_factory=threading.Event)

    @property
    def deadline_s(self) -> float | None:
        """Monotonic instant after which the job counts as timed out."""
        if self.timeout_s is None:
            return None
        return self.submitted_s + self.timeout_s

    @property
    def deadline_passed(self) -> bool:
        d = self.deadline_s
        return d is not None and time.monotonic() > d

    def to_dict(self, *, include_trace: bool = True) -> dict[str, Any]:
        """JSON form served by ``GET /v1/jobs/<id>``."""
        out: dict[str, Any] = {
            "id": self.id,
            "state": self.state,
            "priority": self.priority,
            "cached": self.cached,
            "timeout_s": self.timeout_s,
        }
        if self.cache_tier is not None:
            out["cache_tier"] = self.cache_tier
        if self.started_s is not None and self.finished_s is not None:
            out["run_seconds"] = round(self.finished_s - self.started_s, 6)
        if self.state == JobState.DONE:
            out["result"] = self.result
        if self.error is not None:
            out["error"] = self.error
        if include_trace:
            out["trace"] = self.trace
        return out


class JobQueue:
    """Thread-safe bounded priority queue plus job registry."""

    def __init__(self, maxsize: int = 64, *, max_history: int = 1024) -> None:
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self.max_history = max(max_history, 1)
        self._lock = new_lock("JobQueue._lock")
        self._not_empty = threading.Condition(self._lock)
        self._heap: list[tuple[int, int, Job]] = []  # (-priority, seq, job)
        self._seq = itertools.count()
        self._jobs: dict[str, Job] = {}
        self._finished_order: list[str] = []  # eviction order for history

    # -- submission -----------------------------------------------------
    def submit(
        self,
        request: dict[str, Any],
        *,
        priority: int = 0,
        timeout_s: float | None = None,
        cache_key: str | None = None,
    ) -> Job:
        """Create a queued job, or raise :class:`QueueFull` at capacity."""
        job = Job(
            id=uuid.uuid4().hex[:16],
            request=request,
            priority=int(priority),
            timeout_s=timeout_s,
            cache_key=cache_key,
            submitted_s=time.monotonic(),
        )
        with self._not_empty:
            if self.depth_locked() >= self.maxsize:
                raise QueueFull(
                    f"queue full ({self.maxsize} jobs queued); retry later"
                )
            self._register_locked(job)
            heapq.heappush(self._heap, (-job.priority, next(self._seq), job))
            self._not_empty.notify()
        return job

    def add_finished(self, job: Job) -> None:
        """Register a job that never queues (e.g. a cache hit served
        synchronously), so ``GET /v1/jobs/<id>`` works uniformly."""
        with self._lock:
            self._register_locked(job)
            self._finished_order.append(job.id)
            self._evict_history_locked()

    def _register_locked(self, job: Job) -> None:
        self._jobs[job.id] = job

    # -- worker side ----------------------------------------------------
    def next_job(self, *, timeout: float | None = None) -> Job | None:
        """Pop the highest-priority queued job, blocking up to *timeout*.

        Jobs cancelled while queued are skipped (their state is already
        final).  Returns ``None`` on timeout.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._not_empty:
            while True:
                while self._heap:
                    _, _, job = heapq.heappop(self._heap)
                    if job.state == JobState.QUEUED:
                        job.state = JobState.RUNNING
                        job.started_s = time.monotonic()
                        return job
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    self._not_empty.wait(remaining)
                else:
                    self._not_empty.wait()

    def finish(
        self,
        job: Job,
        state: str,
        *,
        result: dict[str, Any] | None = None,
        error: str | None = None,
    ) -> None:
        """Move a running job to a final state."""
        if state not in FINAL_STATES:
            raise ValueError(f"not a final state: {state!r}")
        with self._lock:
            job.state = state
            job.result = result
            job.error = error
            job.finished_s = time.monotonic()
            self._finished_order.append(job.id)
            self._evict_history_locked()

    def _evict_history_locked(self) -> None:
        while len(self._finished_order) > self.max_history:
            victim = self._finished_order.pop(0)
            job = self._jobs.get(victim)
            if job is not None and job.state in FINAL_STATES:
                del self._jobs[victim]

    # -- client side ----------------------------------------------------
    def get(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise UnknownJob(job_id) from None

    def cancel(self, job_id: str) -> Job:
        """Request cancellation.

        A queued job is finalized immediately; a running job gets its
        ``cancel`` event set and reaches ``cancelled`` when the solver's
        next cooperative check fires.  Cancelling a finished job is a no-op.
        """
        with self._lock:
            try:
                job = self._jobs[job_id]
            except KeyError:
                raise UnknownJob(job_id) from None
            if job.state == JobState.QUEUED:
                job.state = JobState.CANCELLED
                job.finished_s = time.monotonic()
                job.cancel.set()
                self._finished_order.append(job.id)
                self._evict_history_locked()
            elif job.state == JobState.RUNNING:
                job.cancel.set()
            return job

    # -- introspection --------------------------------------------------
    def depth_locked(self) -> int:
        return sum(1 for _, _, j in self._heap if j.state == JobState.QUEUED)

    @property
    def depth(self) -> int:
        """Number of jobs currently waiting (excludes running/finished)."""
        with self._lock:
            return self.depth_locked()

    def counts(self) -> dict[str, int]:
        """Jobs per state across the retained history."""
        with self._lock:
            out: dict[str, int] = {}
            for job in self._jobs.values():
                out[job.state] = out.get(job.state, 0) + 1
            return out
