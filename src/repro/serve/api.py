"""HTTP solve service: validation, caching, backpressure, observability.

Two layers:

* :class:`SolveService` — transport-agnostic façade tying together the
  :class:`~repro.serve.jobs.JobQueue`, the
  :class:`~repro.serve.cache.SolveCache`, the
  :class:`~repro.serve.pool.SolverPool` and a shared
  :class:`~repro.obs.MetricsRegistry`.  Tests drive it directly.
* :func:`create_server` — a stdlib ``ThreadingHTTPServer`` exposing the
  service as a small JSON API.

Endpoints (all JSON)::

    POST   /v1/solve      submit a scenario; 200 on cache hit (result
                          inline), 202 + job id on enqueue, 400 on invalid
                          request, 429 when the queue is full
    GET    /v1/jobs/<id>  job status; carries result when state == "done"
                          and the per-job repro.trace/v1 span list
    DELETE /v1/jobs/<id>  cancel (cooperative for running jobs)
    GET    /v1/healthz    liveness: worker threads, queue depth, uptime
    GET    /v1/metrics    metrics snapshot + live queue/cache views

Request body for ``POST /v1/solve``::

    {
      "scenario": { ... repro.io scenario format ... },
      "params":   {"eps": 0.15, "workers": 1, "lazy": false,
                   "refine": false, "algorithm3_order": false,
                   "objective_power": "approx"},          # all optional
      "priority": 0,          # higher runs first
      "timeout_s": 60.0,      # measured from submission
      "validate": true,       # run repro.model.validation first
      "use_cache": true
    }

Every error is the envelope ``{"error": {"code", "message", ...}}``.
Scenarios are validated with :func:`repro.model.validate_scenario` before
queueing, so ill-posed instances fail fast with a 400 naming the issues
instead of burning a worker.

Results are content-addressed across **two cache tiers** (docs/serving.md
has the full story):

* **Full tier** — key :func:`repro.io.canonical_scenario_hash` over the
  scenario plus the result-affecting params (``workers`` is excluded —
  worker count changes wall-clock, never the placement).  A hit is served
  synchronously as an already-``done`` job (``cache_tier: "full"``) whose
  trace holds a ``cache.lookup`` span and **no** ``solve`` span, and whose
  result bytes are identical to the original solve's.
* **Candidate tier** — key :func:`repro.io.canonical_extraction_hash` over
  the extraction-relevant slice only (budgets/thresholds/greedy flags
  excluded).  A hit skips extraction and re-runs just the millisecond
  greedy selection, synchronously (``200``, ``cache_tier: "candidates"``):
  the sweep-shaped case of "same room, different budget".  Queued cold
  solves populate the tier and are tagged too when they land on it.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from ..analysis.sanitizer import new_lock
from ..backend import backend_status, resolve_backend
from ..core import CandidateSetCache, solve_hipo
from ..core.reuse import extraction_cache_key
from ..io import canonical_scenario_hash, scenario_from_dict
from ..model import validate_scenario
from ..obs import MetricsRegistry, Tracer
from .cache import SolveCache
from .jobs import Job, JobQueue, JobState, QueueFull, UnknownJob
from .pool import SolverPool

__all__ = [
    "BadRequest",
    "SolveService",
    "create_server",
    "run_server",
]

#: Largest accepted request body (a 413 beyond this).
MAX_BODY_BYTES = 32 * 1024 * 1024

#: Solver params accepted from clients: name -> (validator, default).
_PARAM_SPECS = {
    "eps": ("positive float < 1", lambda v: isinstance(v, (int, float)) and 0 < v < 1),
    "workers": ("positive integer", lambda v: isinstance(v, int) and not isinstance(v, bool) and v >= 1),
    "lazy": ("boolean", lambda v: isinstance(v, bool)),
    "refine": ("boolean", lambda v: isinstance(v, bool)),
    "algorithm3_order": ("boolean", lambda v: isinstance(v, bool)),
    "objective_power": ('"approx" or "exact"', lambda v: v in ("approx", "exact")),
}

#: Params that change the solve result and therefore the cache key.
_KEY_PARAMS = ("eps", "lazy", "refine", "algorithm3_order", "objective_power")


class BadRequest(ValueError):
    """Client error; becomes a 400 with the given code + message."""

    def __init__(
        self, message: str, *, code: str = "bad-request", details: object = None
    ) -> None:
        super().__init__(message)
        self.code = code
        self.details = details


def _validate_params(params: object) -> dict[str, Any]:
    if params is None:
        return {}
    if not isinstance(params, dict):
        raise BadRequest("params: expected an object", code="invalid-params")
    out: dict[str, Any] = {}
    for name, value in params.items():
        spec = _PARAM_SPECS.get(name)
        if spec is None:
            raise BadRequest(
                f"params.{name}: unknown parameter (known: {', '.join(sorted(_PARAM_SPECS))})",
                code="invalid-params",
            )
        label, check = spec
        if not check(value):
            raise BadRequest(
                f"params.{name}: expected {label}, got {value!r}", code="invalid-params"
            )
        out[name] = value
    return out


class SolveService:
    """The solve service behind the HTTP API (usable without HTTP)."""

    def __init__(
        self,
        *,
        pool_size: int = 2,
        queue_size: int = 64,
        cache_entries: int = 256,
        cache_bytes: int = 64 * 1024 * 1024,
        candidate_cache_entries: int = 64,
        candidate_cache_bytes: int = 128 * 1024 * 1024,
        candidate_cache_dir: str | None = None,
        default_timeout_s: float | None = None,
        validate_default: bool = True,
        backend: str | None = None,
    ) -> None:
        # Resolve the compute backend up front: a bad --backend should fail
        # service startup with a clear error, not the first job.  Backends
        # are bit-identical by contract, so this choice never affects
        # results or cache keys — only solve wall-clock.
        self.backend_name: str = resolve_backend(backend).name
        self.metrics = MetricsRegistry()
        #: One lock per registry: the registry is not thread-safe, and the
        #: caches and pool record onto the same instance, so they must share
        #: this lock (separate locks would guard nothing).
        self._metrics_lock = new_lock("SolveService._metrics_lock")
        self.queue = JobQueue(queue_size)
        self.cache = SolveCache(
            cache_entries, cache_bytes, metrics=self.metrics, lock=self._metrics_lock
        )
        self.candidate_cache = CandidateSetCache(
            candidate_cache_entries,
            candidate_cache_bytes,
            directory=candidate_cache_dir,
            metrics=self.metrics,
            lock=self._metrics_lock,
        )
        self.pool = SolverPool(
            self.queue,
            self._run_job,
            size=pool_size,
            metrics=self.metrics,
            lock=self._metrics_lock,
        )
        self.default_timeout_s = default_timeout_s
        self.validate_default = validate_default
        self.started_monotonic = time.monotonic()
        #: Recent per-request span dicts (bounded; served for debugging).
        self.request_log: deque[dict[str, Any]] = deque(maxlen=256)

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "SolveService":
        self.pool.start()
        return self

    def shutdown(self) -> None:
        self.pool.shutdown()

    def _count(self, name: str, amount: float = 1) -> None:
        with self._metrics_lock:
            self.metrics.inc(name, amount)

    # -- submission ------------------------------------------------------
    def submit(self, body: dict[str, Any]) -> tuple[Job, bool]:
        """Validate and submit one solve request.

        Returns ``(job, cached)``; *cached* jobs are already ``done``.
        Raises :class:`BadRequest` on invalid input and
        :class:`~repro.serve.jobs.QueueFull` at capacity.
        """
        if not isinstance(body, dict):
            raise BadRequest("request body must be a JSON object")
        scenario_data = body.get("scenario")
        if not isinstance(scenario_data, dict):
            raise BadRequest('missing required field "scenario" (object)', code="missing-scenario")
        params = _validate_params(body.get("params"))
        priority = body.get("priority", 0)
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise BadRequest(f"priority: expected an integer, got {priority!r}")
        timeout_s = body.get("timeout_s", self.default_timeout_s)
        if timeout_s is not None and (
            not isinstance(timeout_s, (int, float)) or isinstance(timeout_s, bool) or timeout_s <= 0
        ):
            raise BadRequest(f"timeout_s: expected a positive number, got {timeout_s!r}")
        use_cache = body.get("use_cache", True)
        if not isinstance(use_cache, bool):
            raise BadRequest(f"use_cache: expected a boolean, got {use_cache!r}")
        run_validation = body.get("validate", self.validate_default)
        if not isinstance(run_validation, bool):
            raise BadRequest(f"validate: expected a boolean, got {run_validation!r}")

        try:
            scenario, _ = scenario_from_dict(scenario_data)
        except ValueError as exc:
            raise BadRequest(str(exc), code="invalid-scenario") from exc
        if run_validation:
            report = validate_scenario(scenario, check_reachability=False)
            if not report.ok:
                raise BadRequest(
                    "scenario failed validation",
                    code="invalid-scenario",
                    details=[
                        {"severity": i.severity, "code": i.code, "message": i.message}
                        for i in report.issues
                    ],
                )

        key = canonical_scenario_hash(
            scenario_data, {k: params[k] for k in _KEY_PARAMS if k in params}
        )
        if use_cache:
            hit = self.cache.get(key)
            if hit is not None:
                return self._cached_job(key, hit, priority), True
            # Candidate tier: same extraction slice seen before (e.g. same
            # geometry, different budgets) → skip the queue and run the
            # millisecond selection-only solve right here.
            if extraction_cache_key(scenario, eps=params.get("eps", 0.15)) in self.candidate_cache:
                return self._candidate_tier_job(key, scenario, params, priority), True

        job = self.queue.submit(
            {"scenario": scenario_data, "params": params, "use_cache": use_cache},
            priority=priority,
            timeout_s=timeout_s,
            cache_key=key,
        )
        self._count("serve.jobs.submitted")
        depth = self.queue.depth  # read first: depth takes the queue's own lock
        with self._metrics_lock:
            self.metrics.gauge("serve.queue.peak_depth", float(depth))
        return job, False

    def _cached_job(self, key: str, payload: dict[str, Any], priority: int) -> Job:
        """Materialize a cache hit as an already-finished job (uniform
        ``GET /v1/jobs/<id>`` semantics).  Its trace has no ``solve`` span."""
        tracer = Tracer()
        with tracer.span("job", cached=True, priority=priority):
            with tracer.span("cache.lookup", key=key, hit=True):
                pass
        now = time.monotonic()
        job = Job(
            id=uuid.uuid4().hex[:16],
            request={},
            priority=priority,
            cache_key=key,
            submitted_s=now,
            started_s=now,
            finished_s=now,
            state=JobState.DONE,
            result=payload,
            cached=True,
            cache_tier="full",
            trace=[sp.to_dict() for sp in sorted(tracer.spans, key=lambda s: s.start_s)],
        )
        self.queue.add_finished(job)
        return job

    def _candidate_tier_job(
        self, key: str, scenario: Any, params: dict[str, Any], priority: int
    ) -> Job:
        """Serve a candidate-tier hit synchronously: extraction comes from
        :attr:`candidate_cache`, only the greedy selection runs (~ms), and
        the finished job is registered like a cache hit (``cache_tier:
        "candidates"``).  Should the cached extraction get evicted between
        the membership check and the solve, the solve silently falls back to
        a cold extraction — slower, still correct."""
        tracer = Tracer()
        job_metrics = MetricsRegistry()
        now = time.monotonic()
        solution = self._solve(scenario, params, tracer, job_metrics, cancel=None)
        payload = self._solution_payload(key, scenario, params, solution)
        self.cache.put(key, payload)
        with self._metrics_lock:
            self.metrics.merge(job_metrics)
            self.metrics.inc("serve.jobs.candidate_tier")
        job = Job(
            id=uuid.uuid4().hex[:16],
            request={},
            priority=priority,
            cache_key=key,
            submitted_s=now,
            started_s=now,
            finished_s=time.monotonic(),
            state=JobState.DONE,
            result=payload,
            cached=False,
            cache_tier="candidates",
            trace=[sp.to_dict() for sp in sorted(tracer.spans, key=lambda s: s.start_s)],
        )
        self.queue.add_finished(job)
        return job

    # -- job execution (runs on pool worker threads) ---------------------
    def _solve(
        self,
        scenario: Any,
        params: dict[str, Any],
        tracer: Tracer,
        job_metrics: MetricsRegistry,
        *,
        cancel: Any,
        use_candidate_cache: bool = True,
    ) -> Any:
        """One :func:`repro.core.solve_hipo` call with the service's
        candidate cache attached (both the queued and the synchronous
        candidate-tier paths run through here)."""
        return solve_hipo(
            scenario,
            eps=params.get("eps", 0.15),
            workers=params.get("workers", 1),
            lazy=params.get("lazy", False),
            refine=params.get("refine", False),
            algorithm3_order=params.get("algorithm3_order", False),
            objective_power=params.get("objective_power", "approx"),
            backend=self.backend_name,
            candidate_cache=self.candidate_cache if use_candidate_cache else None,
            tracer=tracer,
            metrics=job_metrics,
            cancel=cancel,
        )

    @staticmethod
    def _solution_payload(
        key: str | None, scenario: Any, params: dict[str, Any], solution: Any
    ) -> dict[str, Any]:
        """The cacheable result body (identical bytes however produced)."""
        return {
            "scenario_hash": key,
            "num_devices": scenario.num_devices,
            "num_chargers": scenario.num_chargers,
            "utility": solution.utility,
            "approx_utility": solution.approx_utility,
            "strategies": [
                {
                    "position": [float(s.position[0]), float(s.position[1])],
                    "orientation": float(s.orientation),
                    "type": s.ctype.name,
                }
                for s in solution.strategies
            ],
            "params": {k: params[k] for k in sorted(params) if k != "workers"},
        }

    def _run_job(self, job: Job, tracer: Tracer) -> dict[str, Any]:
        request = job.request
        params = request["params"]
        use_cache = request.get("use_cache", True)
        scenario, _ = scenario_from_dict(request["scenario"])
        job_metrics = MetricsRegistry()
        solution = self._solve(
            scenario,
            params,
            tracer,
            job_metrics,
            cancel=job.cancel,
            use_candidate_cache=use_cache,
        )
        if any(sp.attrs.get("cached") for sp in tracer.find_all("extraction")):
            job.cache_tier = "candidates"
        payload = self._solution_payload(job.cache_key, scenario, params, solution)
        if use_cache:
            self.cache.put(job.cache_key, payload)
        with self._metrics_lock:
            self.metrics.merge(job_metrics)
        return payload

    # -- reads -----------------------------------------------------------
    def job_status(self, job_id: str, *, include_trace: bool = True) -> dict[str, Any]:
        return self.queue.get(job_id).to_dict(include_trace=include_trace)

    def cancel_job(self, job_id: str) -> dict[str, Any]:
        job = self.queue.cancel(job_id)
        return {"id": job.id, "state": job.state, "cancel_requested": True}

    def healthz(self) -> dict[str, Any]:
        alive = self.pool.alive
        status = "ok" if alive == self.pool.size else "degraded"
        return {
            "status": status,
            "workers": self.pool.size,
            "workers_alive": alive,
            "queue_depth": self.queue.depth,
            "queue_capacity": self.queue.maxsize,
            "uptime_s": round(time.monotonic() - self.started_monotonic, 3),
        }

    def metrics_payload(self) -> dict[str, Any]:
        with self._metrics_lock:
            snapshot = self.metrics.snapshot().to_dict()
        return {
            "metrics": snapshot,
            "queue": {
                "depth": self.queue.depth,
                "capacity": self.queue.maxsize,
                "running": self.pool.running_jobs,
                "states": self.queue.counts(),
            },
            "cache": self.cache.stats(),
            "candidate_cache": self.candidate_cache.stats(),
            "backend": {"active": self.backend_name, "available": backend_status()},
            "uptime_s": round(time.monotonic() - self.started_monotonic, 3),
        }

    # -- per-request observability ---------------------------------------
    def observe_request(self, method: str, route: str, status: int, seconds: float) -> None:
        """Record one HTTP request: counters + histogram + a span dict in
        the bounded request log (each request is its own one-span trace)."""
        tracer = Tracer()
        with tracer.span("http.request", method=method, route=route, status=status) as sp:
            pass
        sp.wall_s = seconds  # the handler measured the real duration
        self.request_log.append(sp.to_dict())
        with self._metrics_lock:
            self.metrics.inc("serve.requests")
            self.metrics.inc(f"serve.requests.{method.lower()}")
            self.metrics.inc(f"serve.responses.{status}")
            self.metrics.observe("serve.request_seconds", seconds)


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP verbs + paths onto the :class:`SolveService`."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> SolveService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # -- plumbing --------------------------------------------------------
    def _send_json(
        self, status: int, payload: dict[str, Any], headers: dict[str, str] | None = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)
        self._status = status

    def _send_error_json(
        self,
        status: int,
        code: str,
        message: str,
        details: object = None,
        headers: dict[str, str] | None = None,
    ) -> None:
        err: dict[str, Any] = {"code": code, "message": message}
        if details is not None:
            err["details"] = details
        self._send_json(status, {"error": err}, headers)

    def _read_body(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise BadRequest(
                f"request body too large ({length} > {MAX_BODY_BYTES} bytes)",
                code="payload-too-large",
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise BadRequest("empty request body; expected JSON", code="empty-body")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise BadRequest(f"request body is not valid JSON: {exc}", code="invalid-json") from exc

    def _dispatch(self, method: str) -> None:
        t0 = time.perf_counter()
        self._status = 500
        route = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            self._route(method, route)
        except BadRequest as exc:
            status = 413 if exc.code == "payload-too-large" else 400
            self._send_error_json(status, exc.code, str(exc), exc.details)
        except QueueFull as exc:
            self._send_error_json(
                429, "queue-full", str(exc), headers={"Retry-After": "1"}
            )
        except UnknownJob as exc:
            self._send_error_json(404, "unknown-job", f"no such job: {exc.args[0]}")
        except BrokenPipeError:  # client went away mid-response
            return
        except Exception as exc:  # noqa: BLE001 - the server must survive handlers
            self._send_error_json(500, "internal", f"{type(exc).__name__}: {exc}")
        finally:
            self.service.observe_request(method, route, self._status, time.perf_counter() - t0)

    def _route(self, method: str, route: str) -> None:
        if route == "/v1/solve" and method == "POST":
            return self._post_solve()
        if route.startswith("/v1/jobs/"):
            job_id = route.rsplit("/", 1)[1]
            if method == "GET":
                return self._send_json(200, self.service.job_status(job_id))
            if method == "DELETE":
                return self._send_json(200, self.service.cancel_job(job_id))
        if route == "/v1/healthz" and method == "GET":
            health = self.service.healthz()
            return self._send_json(200 if health["status"] == "ok" else 503, health)
        if route == "/v1/metrics" and method == "GET":
            return self._send_json(200, self.service.metrics_payload())
        self._send_error_json(404, "not-found", f"no route {method} {route}")

    def _post_solve(self) -> None:
        body = self._read_body()
        job, cached = self.service.submit(body)
        if cached:
            self._send_json(200, job.to_dict())
        else:
            self._send_json(
                202,
                {"id": job.id, "state": job.state, "location": f"/v1/jobs/{job.id}"},
                {"Location": f"/v1/jobs/{job.id}"},
            )

    # -- verbs -----------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")


def create_server(
    service: SolveService, host: str = "127.0.0.1", port: int = 0, *, verbose: bool = False
) -> ThreadingHTTPServer:
    """Bind a threading HTTP server to the service (``port=0`` picks an
    ephemeral port; read it back from ``server.server_address[1]``)."""
    server = ThreadingHTTPServer((host, port), _Handler)
    server.service = service  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    server.daemon_threads = True
    return server


def run_server(
    *,
    host: str = "127.0.0.1",
    port: int = 8080,
    pool_size: int = 2,
    queue_size: int = 64,
    cache_entries: int = 256,
    cache_bytes: int = 64 * 1024 * 1024,
    candidate_cache_entries: int = 64,
    candidate_cache_bytes: int = 128 * 1024 * 1024,
    candidate_cache_dir: str | None = None,
    default_timeout_s: float | None = None,
    backend: str | None = None,
    verbose: bool = True,
) -> int:
    """Blocking entry point behind ``repro serve``.

    Stops gracefully on Ctrl-C or SIGTERM (in-flight jobs finish; the
    listener closes first so no new work is accepted).
    """
    def _stop(signum: int, frame: object) -> None:
        raise KeyboardInterrupt

    try:
        import signal

        signal.signal(signal.SIGTERM, _stop)
    except (ImportError, ValueError):  # pragma: no cover - non-main thread
        pass
    service = SolveService(
        pool_size=pool_size,
        queue_size=queue_size,
        cache_entries=cache_entries,
        cache_bytes=cache_bytes,
        candidate_cache_entries=candidate_cache_entries,
        candidate_cache_bytes=candidate_cache_bytes,
        candidate_cache_dir=candidate_cache_dir,
        default_timeout_s=default_timeout_s,
        backend=backend,
    ).start()
    server = create_server(service, host, port, verbose=verbose)
    bound_host, bound_port = server.server_address[:2]
    print(
        f"repro serve listening on http://{bound_host}:{bound_port} "
        f"(pool={pool_size}, queue={queue_size}, cache={cache_entries} entries, "
        f"backend={service.backend_name})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        service.shutdown()
        print("repro serve stopped", flush=True)
    return 0
