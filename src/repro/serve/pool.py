"""Worker pool executing queued solve jobs.

A :class:`SolverPool` runs ``size`` daemon threads, each looping::

    pull next job  ─▶  enforce deadline  ─▶  run under a per-job Tracer
                                             ─▶ finalize state + metrics

The *runner* callable does the actual work (``repro.serve.api`` passes one
that deserializes the scenario and calls
:func:`~repro.core.solve_hipo` — which may itself fan out to a process pool
via ``params.workers``).  The pool owns everything around it:

* **Per-job tracing** — every job gets a fresh
  :class:`~repro.obs.Tracer`; its ``repro.trace/v1`` span dicts are stored
  on ``job.trace`` and served back by ``GET /v1/jobs/<id>``.  The root span
  is ``job``; a solve appears as a nested ``solve`` span (absent for cache
  hits).
* **Timeouts** — a job whose deadline passed while queued is finalized as
  ``timeout`` without running.  A running job gets a ``threading.Timer``
  that sets its cooperative ``cancel`` event at the deadline; the solver
  raises :class:`~repro.core.SolveCancelled` at the next check and the pool
  records ``timeout`` (deadline elapsed) or ``cancelled`` (client cancel).
* **Graceful shutdown** — :meth:`shutdown` lets in-flight jobs finish,
  drains nothing new once the stop flag is up, and joins the threads.

Metric counters (``serve.jobs.done`` / ``failed`` / ``timeout`` /
``cancelled``), the ``serve.job_seconds`` histogram and the
``serve.jobs.running`` peak gauge land on the shared registry under the
pool lock (the registry itself is not thread-safe).  When the registry is
shared with other components, pass the lock guarding it as *lock* so there
is exactly one lock per registry — :class:`~repro.serve.api.SolveService`
does this for its service-wide registry.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from ..analysis.sanitizer import LockLike, new_lock
from ..core import SolveCancelled
from ..obs import MetricsRegistry, Tracer
from .jobs import Job, JobQueue, JobState

__all__ = ["SolverPool"]

#: Seconds a worker blocks on the queue before re-checking the stop flag.
_POLL_S = 0.1


class SolverPool:
    """N worker threads draining a :class:`~repro.serve.jobs.JobQueue`."""

    def __init__(
        self,
        queue: JobQueue,
        runner: Callable[[Job, Tracer], dict[str, Any]],
        *,
        size: int = 2,
        metrics: MetricsRegistry | None = None,
        lock: LockLike | None = None,
    ) -> None:
        if size <= 0:
            raise ValueError(f"pool size must be positive, got {size}")
        self.queue = queue
        self.runner = runner
        self.size = size
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Guards the registry, ``_threads`` and ``_running``.  Callers
        #: sharing *metrics* must share this lock too.
        self._lock = lock if lock is not None else new_lock("SolverPool._lock")
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._running = 0

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "SolverPool":
        with self._lock:
            if self._threads:
                raise RuntimeError("pool already started")
            for i in range(self.size):
                t = threading.Thread(target=self._worker, name=f"repro-solver-{i}", daemon=True)
                t.start()
                self._threads.append(t)
        return self

    def shutdown(self, *, wait: bool = True, timeout: float | None = None) -> None:
        """Stop accepting work; in-flight jobs run to completion."""
        self._stop.set()
        with self._lock:
            threads = list(self._threads)
        if wait:
            for t in threads:  # join outside the lock: workers take it to count
                t.join(timeout)
        with self._lock:
            self._threads = []

    @property
    def alive(self) -> int:
        """Worker threads currently alive (healthz)."""
        with self._lock:
            return sum(1 for t in self._threads if t.is_alive())

    @property
    def running_jobs(self) -> int:
        with self._lock:
            return self._running

    # -- worker loop -----------------------------------------------------
    def _worker(self) -> None:
        while True:
            job = self.queue.next_job(timeout=_POLL_S)
            if job is None:
                if self._stop.is_set():
                    return
                continue
            self._run_job(job)

    def _count(self, name: str, amount: float = 1) -> None:
        with self._lock:
            self.metrics.inc(name, amount)

    def _run_job(self, job: Job) -> None:
        if job.deadline_passed:
            self.queue.finish(
                job, JobState.TIMEOUT, error=f"timed out in queue after {job.timeout_s}s"
            )
            self._count("serve.jobs.timeout")
            return
        with self._lock:
            self._running += 1
            self.metrics.gauge("serve.jobs.running", float(self._running))
        timer = None
        deadline = job.deadline_s
        if deadline is not None:
            timer = threading.Timer(max(0.0, deadline - time.monotonic()), job.cancel.set)
            timer.daemon = True
            timer.start()
        tracer = Tracer()
        t0 = time.perf_counter()
        try:
            try:
                with tracer.span(
                    "job", job_id=job.id, priority=job.priority, cached=job.cached
                ):
                    result = self.runner(job, tracer)
            finally:
                job.trace = [
                    sp.to_dict() for sp in sorted(tracer.spans, key=lambda s: s.start_s)
                ]
            self.queue.finish(job, JobState.DONE, result=result)
            self._count("serve.jobs.done")
        except SolveCancelled:
            if job.deadline_passed:
                self.queue.finish(
                    job, JobState.TIMEOUT, error=f"timed out after {job.timeout_s}s"
                )
                self._count("serve.jobs.timeout")
            else:
                self.queue.finish(job, JobState.CANCELLED, error="cancelled by client")
                self._count("serve.jobs.cancelled")
        except Exception as exc:  # noqa: BLE001 - a job must never kill its worker
            self.queue.finish(job, JobState.FAILED, error=f"{type(exc).__name__}: {exc}")
            self._count("serve.jobs.failed")
        finally:
            if timer is not None:
                timer.cancel()
            with self._lock:
                self._running -= 1
                self.metrics.observe("serve.job_seconds", time.perf_counter() - t0)
