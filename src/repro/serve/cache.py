"""Content-addressed solve cache with LRU eviction.

Results are keyed by :func:`repro.io.canonical_scenario_hash` — a SHA-256
over the canonical JSON of the scenario plus solver params — so two requests
that differ only in key order or float spelling (``5`` vs ``5.0``) share one
entry, while any semantic change (a device moved, ``eps`` tweaked) misses.

Values are stored as the *serialized* result payload (UTF-8 JSON bytes).
That makes the byte size exact for the ``max_bytes`` bound and guarantees a
cache hit returns a byte-identical result to the solve that populated it.

Eviction is LRU over both limits: inserting beyond ``max_entries`` or
``max_bytes`` evicts least-recently-used entries until the new entry fits.
A single value larger than ``max_bytes`` is refused (counted as
``cache.oversize``), never cached.

Counters (``cache.hits`` / ``cache.misses`` / ``cache.evictions`` /
``cache.stores`` / ``cache.oversize``) and peak gauges (``cache.entries`` /
``cache.bytes``) are recorded on the :class:`~repro.obs.MetricsRegistry`
passed in — the service exposes them at ``GET /v1/metrics``.

Thread-safe; all operations take one internal lock.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from typing import Any

from ..analysis.sanitizer import LockLike, new_lock
from ..obs import MetricsRegistry

__all__ = ["SolveCache"]


class SolveCache:
    """Bounded LRU mapping ``cache_key -> serialized result payload``."""

    def __init__(
        self,
        max_entries: int = 256,
        max_bytes: int = 64 * 1024 * 1024,
        *,
        metrics: MetricsRegistry | None = None,
        lock: LockLike | None = None,
    ) -> None:
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Guards the entries *and* the registry.  Callers sharing
        #: *metrics* with other components must share this lock too —
        #: a non-thread-safe registry needs exactly one lock.
        self._lock = lock if lock is not None else new_lock("SolveCache._lock")
        self._entries: "OrderedDict[str, bytes]" = OrderedDict()
        self._bytes = 0

    # -- core ------------------------------------------------------------
    def get(self, key: str) -> dict[str, Any] | None:
        """The cached result payload for *key*, or ``None`` on miss.

        A hit moves the entry to most-recently-used and returns a fresh
        ``json.loads`` of the stored bytes (callers can mutate it freely).
        """
        with self._lock:
            blob = self._entries.get(key)
            if blob is None:
                self.metrics.inc("cache.misses")
                return None
            self._entries.move_to_end(key)
            self.metrics.inc("cache.hits")
            return json.loads(blob.decode("utf-8"))

    def put(self, key: str, payload: dict[str, Any]) -> bool:
        """Store *payload* under *key*; returns whether it was cached.

        Serializes deterministically (sorted keys, compact separators) so
        repeated stores of an equal payload produce identical bytes.
        """
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
        with self._lock:
            if len(blob) > self.max_bytes:
                self.metrics.inc("cache.oversize")
                return False
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= len(old)
            while self._entries and (
                len(self._entries) >= self.max_entries
                or self._bytes + len(blob) > self.max_bytes
            ):
                _, victim = self._entries.popitem(last=False)
                self._bytes -= len(victim)
                self.metrics.inc("cache.evictions")
            self._entries[key] = blob
            self._bytes += len(blob)
            self.metrics.inc("cache.stores")
            self.metrics.gauge("cache.entries", float(len(self._entries)))
            self.metrics.gauge("cache.bytes", float(self._bytes))
            return True

    # -- introspection ---------------------------------------------------
    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def size_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def stats(self) -> dict[str, Any]:
        """Live view for ``/v1/metrics`` (counters are cumulative; entries
        and bytes are current, unlike the peak-keeping gauges)."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
                "hits": self.metrics.counter("cache.hits"),
                "misses": self.metrics.counter("cache.misses"),
                "evictions": self.metrics.counter("cache.evictions"),
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0
