"""``repro.serve`` — the solve service (docs/serving.md, DESIGN.md §8).

Turns the library into a long-running service: HTTP requests become jobs in
a bounded priority queue, a thread pool executes them with
:func:`~repro.core.solve_hipo` (cooperatively cancellable, per-job traced),
and results are memoized in a content-addressed LRU cache keyed by
:func:`repro.io.canonical_scenario_hash`.  Start it with
``repro serve --port 8080`` or embed :class:`SolveService` directly.

Stdlib-only: ``http.server`` + ``threading`` + ``queue`` semantics on top of
the existing process-pool machinery — no new runtime dependencies.
"""

from .api import BadRequest, SolveService, create_server, run_server
from .cache import SolveCache
from .jobs import FINAL_STATES, Job, JobQueue, JobState, QueueFull, UnknownJob
from .pool import SolverPool

__all__ = [
    "BadRequest",
    "FINAL_STATES",
    "Job",
    "JobQueue",
    "JobState",
    "QueueFull",
    "SolveCache",
    "SolveService",
    "SolverPool",
    "UnknownJob",
    "create_server",
    "run_server",
]
