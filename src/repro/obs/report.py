"""Human-readable run reports: the per-phase span tree plus metric tables.

Rendering is pure string formatting over a finished :class:`~.trace.Tracer`
and a :class:`~.metrics.MetricsSnapshot`; nothing here touches the solver,
so the module can format traces from any pipeline stage (solve, distributed
measurement, benchmarks).
"""

from __future__ import annotations

from .metrics import MetricsSnapshot
from .trace import Span, Tracer

__all__ = ["render_metrics", "render_run_report", "render_trace_tree"]

#: Attributes rendered inline next to each span line (insertion order wins
#: for anything not listed here).
_HIDDEN_ATTRS = ("error",)


def _format_attrs(span: Span) -> str:
    parts = []
    for key, value in span.attrs.items():
        if key in _HIDDEN_ATTRS:
            continue
        if isinstance(value, float):
            parts.append(f"{key}={value:.3f}")
        else:
            parts.append(f"{key}={value}")
    return "  " + " ".join(parts) if parts else ""


def render_trace_tree(trace: Tracer) -> str:
    """The span hierarchy as an indented tree with durations and counts.

    Example::

        solve                      0.412s
        ├─ extraction              0.330s  workers=2 positions=52 candidates=118
        │  ├─ positions            0.120s
        │  └─ sweeps               0.190s  chunks=3 sweep_seconds=0.110
        └─ selection               0.061s  iterations=6 evaluations=708
    """
    lines: list[str] = []

    def walk(span: Span, prefix: str, child_prefix: str) -> None:
        status = "" if span.status == "ok" else f" [{span.status}]"
        label = f"{prefix}{span.name}{status}"
        lines.append(f"{label:<28s} {span.wall_s:8.3f}s{_format_attrs(span)}")
        kids = trace.children_of(span)
        for i, kid in enumerate(kids):
            last = i == len(kids) - 1
            walk(
                kid,
                child_prefix + ("└─ " if last else "├─ "),
                child_prefix + ("   " if last else "│  "),
            )

    for root in sorted(trace.roots(), key=lambda s: s.start_s):
        walk(root, "", "")
    return "\n".join(lines)


def render_metrics(snapshot: MetricsSnapshot) -> str:
    """Counters, gauges and histogram summaries as aligned text blocks."""
    lines: list[str] = []
    if snapshot.counters:
        lines.append("counters:")
        for name in sorted(snapshot.counters):
            value = snapshot.counters[name]
            shown = int(value) if float(value).is_integer() else value
            lines.append(f"  {name:<34s} {shown}")
    if snapshot.gauges:
        lines.append("gauges:")
        for name in sorted(snapshot.gauges):
            lines.append(f"  {name:<34s} {snapshot.gauges[name]:.0f}")
    if snapshot.histograms:
        lines.append("histograms:")
        for name in sorted(snapshot.histograms):
            h = snapshot.histograms[name]
            count = h.get("count", 0)
            if count:
                mean = h["total"] / count
                lines.append(
                    f"  {name:<34s} n={count} mean={mean:.6g} "
                    f"min={h['min']:.6g} max={h['max']:.6g}"
                )
            else:
                lines.append(f"  {name:<34s} n=0")
    return "\n".join(lines) if lines else "(no metrics recorded)"


def render_run_report(trace: Tracer | None, snapshot: MetricsSnapshot | None) -> str:
    """Full run report: span tree followed by the metric tables."""
    sections: list[str] = []
    if trace is not None and trace.spans:
        sections.append(render_trace_tree(trace))
    if snapshot is not None:
        sections.append(render_metrics(snapshot))
    return "\n\n".join(sections) if sections else "(no observability data recorded)"
