"""CLI validator for ``repro.trace/v1`` JSONL files.

Usage::

    PYTHONPATH=src python -m repro.obs.validate out.jsonl

Exits 0 and prints a one-line summary when the trace is valid; exits 1
with the violation otherwise.  Used by ``scripts/ci.sh`` to gate the smoke
``repro solve --trace`` run.
"""

from __future__ import annotations

import argparse
import sys

from .trace import TraceValidationError, validate_trace_file

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="validate a repro JSONL trace")
    parser.add_argument("path", help="JSONL trace file (from `repro solve --trace`)")
    args = parser.parse_args(argv)
    try:
        spans = validate_trace_file(args.path)
    except (OSError, TraceValidationError) as exc:
        print(f"trace INVALID: {exc}", file=sys.stderr)
        return 1
    roots = [s for s in spans if s["parent_id"] is None]
    root_names = ",".join(s["name"] for s in roots)
    print(f"trace ok: {len(spans)} spans, {len(roots)} root(s) [{root_names}]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
