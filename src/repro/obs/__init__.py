"""Observability for the HIPO solve pipeline.

Three pieces, documented in DESIGN.md §"Observability":

* :mod:`~repro.obs.trace` — hierarchical span tracer with a versioned JSONL
  export schema (``repro.trace/v1``) and a validator;
* :mod:`~repro.obs.metrics` — counters/gauges/histograms with picklable
  snapshots that merge across ``ProcessPoolExecutor`` workers;
* :mod:`~repro.obs.report` / :mod:`~repro.obs.provenance` — human-readable
  run reports and the ``meta``-stamped benchmark JSON writer.
"""

from .metrics import HistogramSummary, MetricsRegistry, MetricsSnapshot
from .provenance import BENCH_SCHEMA, git_sha, run_meta, write_bench_json
from .report import render_metrics, render_run_report, render_trace_tree
from .trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    TRACE_SCHEMA,
    TraceValidationError,
    Tracer,
    validate_trace_file,
    validate_trace_lines,
)

__all__ = [
    "BENCH_SCHEMA",
    "HistogramSummary",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TRACE_SCHEMA",
    "TraceValidationError",
    "Tracer",
    "git_sha",
    "render_metrics",
    "render_run_report",
    "render_trace_tree",
    "run_meta",
    "validate_trace_file",
    "validate_trace_lines",
    "write_bench_json",
]
