"""Hierarchical span tracing for the solve pipeline.

A :class:`Tracer` records a tree of :class:`Span` objects — one per pipeline
phase — each carrying wall-clock seconds, CPU seconds and free-form
attributes.  Spans nest via context managers::

    trace = Tracer()
    with trace.span("solve") as root:
        with trace.span("extraction", workers=2) as sp:
            ...
            sp.set(candidates=120)

The tracer is exception-safe: a span whose body raises is closed with
``status="error"`` and the exception re-raised, so partial traces of failed
runs are still well-formed.

JSONL schema (``repro.trace/v1``)
---------------------------------

:meth:`Tracer.write_jsonl` emits one JSON object per line, one per span, in
start order.  Every line carries exactly these keys:

``schema``
    The literal string ``"repro.trace/v1"``.
``trace_id``
    Identifier shared by all spans of one run.
``span_id`` / ``parent_id``
    Span identifiers; ``parent_id`` is ``null`` for root spans and otherwise
    names a span appearing in the same file.
``name``
    Phase name (``solve``, ``extraction``, ``positions``, ``sweeps``,
    ``selection``, ...).
``start_s``
    Start offset in seconds since the tracer was created.
``wall_s`` / ``cpu_s``
    Wall-clock and process-CPU seconds spent inside the span.  CPU seconds
    of pool workers are *not* included (they accrue in the worker
    processes); worker-side costs travel as metric snapshots instead.
``status``
    ``"ok"``, or ``"error"`` when an exception escaped the span body.
``attrs``
    JSON object of span attributes (counts, worker numbers, accumulated
    sub-phase seconds...).

:func:`validate_trace_lines` checks all of the above plus referential
integrity (unique ids, resolvable parents, parent intervals containing
child intervals).
"""

from __future__ import annotations

import json
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TRACE_SCHEMA",
    "TraceValidationError",
    "Tracer",
    "validate_trace_file",
    "validate_trace_lines",
]

TRACE_SCHEMA = "repro.trace/v1"

#: Keys required on every JSONL trace line.
REQUIRED_KEYS = (
    "schema",
    "trace_id",
    "span_id",
    "parent_id",
    "name",
    "start_s",
    "wall_s",
    "cpu_s",
    "status",
    "attrs",
)

#: Slack allowed when checking that a parent span's interval contains its
#: children (perf_counter/process_time are sampled at slightly different
#: instants on entry/exit).
CONTAINMENT_TOL = 1e-4


@dataclass
class Span:
    """One timed phase of a run."""

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None
    start_s: float  # seconds since the tracer epoch
    wall_s: float = 0.0
    cpu_s: float = 0.0
    status: str = "ok"
    attrs: dict[str, Any] = field(default_factory=dict)

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attributes; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def add(self, key: str, amount: float) -> None:
        """Accumulate a numeric attribute (e.g. interleaved sub-phase time)."""
        self.attrs[key] = self.attrs.get(key, 0.0) + amount

    @property
    def end_s(self) -> float:
        return self.start_s + self.wall_s

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": TRACE_SCHEMA,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": round(self.start_s, 6),
            "wall_s": round(self.wall_s, 6),
            "cpu_s": round(self.cpu_s, 6),
            "status": self.status,
            "attrs": self.attrs,
        }


class Tracer:
    """Collects a tree of spans for one run.

    Span identifiers are sequential (``s1``, ``s2``, ...) in creation order,
    so traces of a deterministic run are diffable apart from timings.
    """

    def __init__(self, trace_id: str | None = None) -> None:
        self.trace_id = trace_id or uuid.uuid4().hex[:16]
        self._epoch = time.perf_counter()
        self._counter = 0
        self._stack: list[Span] = []
        self.spans: list[Span] = []  # finished spans, completion order

    @property
    def enabled(self) -> bool:
        return True

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a child span of the current span (or a root span)."""
        self._counter += 1
        sp = Span(
            name=name,
            trace_id=self.trace_id,
            span_id=f"s{self._counter}",
            parent_id=self._stack[-1].span_id if self._stack else None,
            start_s=time.perf_counter() - self._epoch,
            attrs=dict(attrs),
        )
        self._stack.append(sp)
        cpu0 = time.process_time()
        try:
            yield sp
        except BaseException as exc:
            sp.status = "error"
            sp.attrs.setdefault("error", f"{type(exc).__name__}: {exc}")
            raise
        finally:
            # End on the same clock origin as start_s: a second entry-time
            # perf_counter sample would open a preemption window in which
            # the parent's computed interval ends before its children's,
            # flunking the validator's containment check.
            sp.wall_s = (time.perf_counter() - self._epoch) - sp.start_s
            sp.cpu_s = time.process_time() - cpu0
            self._stack.pop()
            self.spans.append(sp)

    def find(self, name: str) -> Span | None:
        """The first *finished* span with the given name, if any."""
        for sp in self.spans:
            if sp.name == name:
                return sp
        return None

    def find_all(self, name: str) -> list[Span]:
        return [sp for sp in self.spans if sp.name == name]

    def roots(self) -> list[Span]:
        return [sp for sp in self.spans if sp.parent_id is None]

    def children_of(self, span: Span) -> list[Span]:
        kids = [sp for sp in self.spans if sp.parent_id == span.span_id]
        kids.sort(key=lambda s: s.start_s)
        return kids

    def to_jsonl(self) -> str:
        """The full trace as JSON lines, spans in start order."""
        ordered = sorted(self.spans, key=lambda s: s.start_s)
        return "".join(json.dumps(sp.to_dict(), sort_keys=True) + "\n" for sp in ordered)

    def write_jsonl(self, path: str | Path) -> Path:
        """Write the trace to *path*; returns the path written."""
        out = Path(path)
        out.write_text(self.to_jsonl())
        return out


class NullTracer(Tracer):
    """A do-nothing tracer: ``span()`` costs one generator frame, records
    nothing.  Use when tracing must be off entirely (hot inner loops)."""

    def __init__(self) -> None:
        super().__init__(trace_id="null")
        self._null_span = Span("null", "null", "s0", None, 0.0)

    @property
    def enabled(self) -> bool:
        return False

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        yield self._null_span


#: Shared do-nothing tracer instance.
NULL_TRACER = NullTracer()


class TraceValidationError(ValueError):
    """A JSONL trace violated the ``repro.trace/v1`` schema."""


def validate_trace_lines(lines: Iterable[str]) -> list[dict[str, Any]]:
    """Validate JSONL trace lines against the ``repro.trace/v1`` schema.

    Checks, raising :class:`TraceValidationError` on the first violation:

    * every non-empty line parses as a JSON object,
    * every object carries exactly the required keys with sane types,
    * span ids are unique and every ``parent_id`` resolves,
    * at least one root span exists,
    * every parent's ``[start_s, start_s + wall_s]`` interval contains its
      children's (within :data:`CONTAINMENT_TOL`).

    Returns the parsed span dicts (file order).
    """
    spans: list[dict[str, Any]] = []
    for lineno, raw in enumerate(lines, start=1):
        if not raw.strip():
            continue
        try:
            obj = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise TraceValidationError(f"line {lineno}: not valid JSON ({exc})") from exc
        if not isinstance(obj, dict):
            raise TraceValidationError(f"line {lineno}: expected a JSON object")
        missing = [k for k in REQUIRED_KEYS if k not in obj]
        if missing:
            raise TraceValidationError(f"line {lineno}: missing keys {missing}")
        if obj["schema"] != TRACE_SCHEMA:
            raise TraceValidationError(
                f"line {lineno}: schema {obj['schema']!r} != {TRACE_SCHEMA!r}"
            )
        if not isinstance(obj["attrs"], dict):
            raise TraceValidationError(f"line {lineno}: attrs must be an object")
        for key in ("start_s", "wall_s", "cpu_s"):
            if not isinstance(obj[key], (int, float)) or obj[key] < 0.0:
                raise TraceValidationError(f"line {lineno}: {key} must be a non-negative number")
        spans.append(obj)

    if not spans:
        raise TraceValidationError("empty trace")
    by_id: dict[str, dict[str, Any]] = {}
    for obj in spans:
        sid = obj["span_id"]
        if sid in by_id:
            raise TraceValidationError(f"duplicate span_id {sid!r}")
        by_id[sid] = obj
    for obj in spans:
        pid = obj["parent_id"]
        if pid is None:
            continue
        parent = by_id.get(pid)
        if parent is None:
            raise TraceValidationError(f"span {obj['span_id']!r}: unknown parent {pid!r}")
        child_start = obj["start_s"]
        child_end = child_start + obj["wall_s"]
        p_start = parent["start_s"]
        p_end = p_start + parent["wall_s"]
        if child_start < p_start - CONTAINMENT_TOL or child_end > p_end + CONTAINMENT_TOL:
            raise TraceValidationError(
                f"span {obj['span_id']!r} [{child_start:.6f}, {child_end:.6f}] not contained "
                f"in parent {pid!r} [{p_start:.6f}, {p_end:.6f}]"
            )
    if not any(s["parent_id"] is None for s in spans):
        raise TraceValidationError("no root span (every span has a parent)")
    return spans


def validate_trace_file(path: str | Path) -> list[dict[str, Any]]:
    """Validate a JSONL trace file; returns the parsed spans."""
    text = Path(path).read_text()
    return validate_trace_lines(text.splitlines())
