"""Run metrics: counters, gauges and histograms with cross-process merge.

A :class:`MetricsRegistry` accumulates three kinds of instruments:

* **counters** — monotone totals (``inc``): positions generated, candidates
  before/after dedupe, kernel chunks, greedy evaluations...
* **gauges** — level samples (``gauge``); merges keep the **maximum**, which
  is the right semantics for the peak-style gauges recorded here (peak RSS,
  peak traced allocation).
* **histograms** — value distributions (``observe``) summarized as
  count/total/min/max: greedy marginal gain per iteration, per-chunk sweep
  seconds, per-task extraction seconds.

:meth:`MetricsRegistry.snapshot` produces a :class:`MetricsSnapshot` of
plain dicts — picklable, so ``ProcessPoolExecutor`` workers build a local
registry per task and ship the snapshot back with the task result; the
parent folds it in with :meth:`MetricsRegistry.merge`.  Counter totals are
therefore identical whether a pipeline runs serially or across workers.

Canonical metric names used by the solve pipeline are listed in
DESIGN.md §"Observability".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "HistogramSummary",
    "MetricsRegistry",
    "MetricsSnapshot",
]


@dataclass
class HistogramSummary:
    """Streaming summary of an observed value distribution."""

    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    def observe(self, value: float) -> None:
        v = float(value)
        self.count += 1
        self.total += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v

    def merge(self, other: "HistogramSummary | dict[str, float]") -> None:
        if isinstance(other, dict):
            other = HistogramSummary(**other)
        if other.count == 0:
            return
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict[str, float]:
        if self.count == 0:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }


@dataclass
class MetricsSnapshot:
    """Frozen, picklable view of a registry — plain dicts only, so it
    crosses process boundaries and serializes to JSON directly."""

    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    #: name -> HistogramSummary dict
    histograms: dict[str, dict[str, float]] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: dict(v) for k, v in self.histograms.items()},
        }


class MetricsRegistry:
    """Mutable metric accumulator for one run (or one worker task)."""

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, HistogramSummary] = {}

    @property
    def enabled(self) -> bool:
        return True

    # -- instruments ---------------------------------------------------
    def inc(self, name: str, amount: float = 1) -> None:
        """Add *amount* to counter *name* (created at 0)."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Record a level sample; the registry keeps the maximum seen."""
        prev = self._gauges.get(name)
        if prev is None or value > prev:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Feed one value into histogram *name*."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = HistogramSummary()
        hist.observe(value)

    # -- accessors ------------------------------------------------------
    def counter(self, name: str) -> float:
        return self._counters.get(name, 0)

    def gauge_value(self, name: str) -> float | None:
        return self._gauges.get(name)

    def histogram(self, name: str) -> HistogramSummary | None:
        return self._histograms.get(name)

    # -- memory ---------------------------------------------------------
    def record_peak_rss(self) -> None:
        """Record peak memory gauges where the platform provides them.

        ``mem.peak_rss_bytes`` from ``resource.getrusage`` (ru_maxrss is
        kilobytes on Linux); ``mem.tracemalloc_peak_bytes`` only when a
        ``tracemalloc`` trace is already running.  No-ops elsewhere.
        """
        try:
            import resource

            usage = resource.getrusage(resource.RUSAGE_SELF)
            scale = 1024  # ru_maxrss unit on Linux; macOS reports bytes
            import sys

            if sys.platform == "darwin":
                scale = 1
            self.gauge("mem.peak_rss_bytes", float(usage.ru_maxrss) * scale)
        except (ImportError, ValueError):  # pragma: no cover - non-unix
            pass
        try:
            import tracemalloc

            if tracemalloc.is_tracing():
                _, peak = tracemalloc.get_traced_memory()
                self.gauge("mem.tracemalloc_peak_bytes", float(peak))
        except ImportError:  # pragma: no cover
            pass

    # -- snapshot / merge ----------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            counters=dict(self._counters),
            gauges=dict(self._gauges),
            histograms={k: h.to_dict() for k, h in self._histograms.items()},
        )

    def merge(self, other: "MetricsSnapshot | MetricsRegistry") -> None:
        """Fold another registry/snapshot in: counters add, gauges max,
        histograms combine."""
        snap = other.snapshot() if isinstance(other, MetricsRegistry) else other
        for name, value in snap.counters.items():
            self.inc(name, value)
        for name, value in snap.gauges.items():
            self.gauge(name, value)
        for name, hdict in snap.histograms.items():
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = HistogramSummary()
            hist.merge(hdict)
