"""Run provenance: environment metadata and the shared benchmark writer.

Every benchmark JSON artifact (``BENCH_*.json``, ``benchmarks/results/*``)
routes through :func:`write_bench_json`, which stamps a ``meta`` block —
git sha, python/numpy versions, platform, CPU count, UTC timestamp, an
optional metric snapshot, and the ``repro.analysis`` lint summary (rule
and violation counts for the tree that produced the numbers) — so numbers
are attributable to the code and machine that produced them.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import subprocess
from pathlib import Path
from typing import Any

from .metrics import MetricsSnapshot

__all__ = ["BENCH_SCHEMA", "git_sha", "run_meta", "write_bench_json"]

BENCH_SCHEMA = "repro.bench/v1"


def git_sha(cwd: str | Path | None = None) -> str | None:
    """The current commit sha (+``-dirty`` suffix), or None outside a repo."""
    try:
        root = str(cwd) if cwd is not None else os.path.dirname(os.path.abspath(__file__))
        sha = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=10,
        )
        if sha.returncode != 0:
            return None
        dirty = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=10,
        )
        suffix = "-dirty" if dirty.returncode == 0 and dirty.stdout.strip() else ""
        return sha.stdout.strip() + suffix
    except (OSError, subprocess.SubprocessError):
        return None


_LINT_CACHE: dict[str, Any] | None = None


def _lint_meta() -> dict[str, Any] | None:
    """Cached ``repro.analysis`` summary for the installed package.

    One lint pass per process: provenance stamping must stay cheap for
    scripts that write many artifacts.  Any analyzer failure degrades to
    ``None`` (no ``lint`` key) rather than breaking benchmark writes.
    """
    global _LINT_CACHE
    if _LINT_CACHE is None:
        try:
            from ..analysis import lint_summary

            _LINT_CACHE = lint_summary()
        except Exception:
            return None
    return _LINT_CACHE


def _backend_meta() -> dict[str, Any] | None:
    """Active compute backend + availability map for provenance stamping.

    Degrades to ``None`` on any failure so benchmark writes never break on
    an exotic backend state; the import is lazy to keep ``repro.obs``
    importable without the backend package in stripped-down checkouts.
    """
    try:
        from ..backend import active_backend, backend_status

        return {"active": active_backend().name, "available": backend_status()}
    except Exception:
        return None


def run_meta(metrics: MetricsSnapshot | None = None) -> dict[str, Any]:
    """The provenance ``meta`` block stamped into benchmark artifacts."""
    import numpy as np

    meta: dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "git_sha": git_sha(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "timestamp_utc": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
    }
    backend = _backend_meta()
    if backend is not None:
        meta["backend"] = backend
    lint = _lint_meta()
    if lint is not None:
        meta["lint"] = lint
    if metrics is not None:
        meta["metrics"] = metrics.to_dict()
    return meta


def write_bench_json(
    path: str | Path,
    benchmark: str,
    payload: dict[str, Any],
    *,
    metrics: MetricsSnapshot | None = None,
) -> Path:
    """Write one benchmark artifact with a stamped ``meta`` block.

    *payload* supplies the benchmark-specific keys; ``benchmark`` and
    ``meta`` are reserved and added here.  The written file is re-parsed as
    a well-formedness check before returning.
    """
    doc: dict[str, Any] = {"benchmark": benchmark, "meta": run_meta(metrics=metrics)}
    for key, value in payload.items():
        if key in doc:
            raise ValueError(f"payload key {key!r} is reserved for the bench writer")
        doc[key] = value
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc, indent=2, sort_keys=False) + "\n")
    json.loads(out.read_text())
    return out
