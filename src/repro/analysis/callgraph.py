"""Call-graph construction and reachability over the project IR.

Resolution is deliberately conservative: an edge exists only when the
callee can be named statically — module functions (directly or through
resolved imports, including ``__init__`` re-export chains), ``self``
methods, and methods reached through one typed attribute hop
(``self.queue.submit()`` where ``self.queue = JobQueue(...)``).  Computed
callees resolve to nothing, which under-approximates reachability but
never fabricates a deadlock or a dropped cancel token.

Reachability answers carry deterministic **witness paths**: each step is a
``(rel, line, text)`` triple suitable for showing a human exactly how the
analyzer got from "holds JobQueue._lock" to "acquires SolveCache._lock".
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .ir import ClassIR, FunctionIR, ProjectIR

__all__ = ["CallGraph", "WitnessStep", "build_callgraph"]

_CG_KEY = "analysis.callgraph"


@dataclass(frozen=True)
class WitnessStep:
    """One hop of an interprocedural witness path."""

    rel: str
    line: int
    text: str

    def format(self) -> str:
        return f"{self.rel}:{self.line} {self.text}"


@dataclass
class CallGraph:
    """Resolved call edges plus memoized reachability queries."""

    ir: ProjectIR
    #: caller qualname -> ((callee qualname, call node), ...) in AST order
    edges: dict[str, tuple[tuple[str, ast.Call], ...]] = field(default_factory=dict)
    _lock_reach: dict[str, dict[str, tuple[WitnessStep, ...]]] = field(default_factory=dict)
    _loop_reach: dict[str, bool] = field(default_factory=dict)

    def callees(self, qualname: str) -> tuple[tuple[str, ast.Call], ...]:
        return self.edges.get(qualname, ())

    # -- reachability ----------------------------------------------------
    def lock_reach(self, qualname: str) -> dict[str, tuple[WitnessStep, ...]]:
        """canonical lock id -> witness path for every lock *qualname* can
        acquire, in its own frame or transitively through resolved calls."""
        memo = self._lock_reach
        cached = memo.get(qualname)
        if cached is not None:
            return cached
        memo[qualname] = {}  # cycle guard: recursion sees the empty map
        fn = self.ir.functions.get(qualname)
        out: dict[str, tuple[WitnessStep, ...]] = {}
        if fn is not None:
            for acq in fn.acquisitions:
                canonical = self.ir.canonical_lock(acq.lock_id)
                step = WitnessStep(
                    rel=fn.rel,
                    line=getattr(acq.node, "lineno", fn.node.lineno),
                    text=f"{fn.name} acquires {canonical}"
                    + (f" (as {acq.lock_id})" if acq.lock_id != canonical else ""),
                )
                out.setdefault(canonical, (step,))
            for callee, call in self.callees(qualname):
                sub = self.lock_reach(callee)
                if not sub:
                    continue
                callee_fn = self.ir.functions[callee]
                hop = WitnessStep(
                    rel=fn.rel,
                    line=call.lineno,
                    text=f"{fn.name} calls {callee_fn.cls + '.' if callee_fn.cls else ''}{callee_fn.name}",
                )
                for lock_id, path in sub.items():
                    out.setdefault(lock_id, (hop,) + path)
        memo[qualname] = out
        return out

    def loop_reach(self, qualname: str) -> bool:
        """Whether *qualname* loops, in its own frame or transitively."""
        memo = self._loop_reach
        cached = memo.get(qualname)
        if cached is not None:
            return cached
        memo[qualname] = False  # cycle guard
        fn = self.ir.functions.get(qualname)
        result = False
        if fn is not None:
            if fn.has_loop:
                result = True
            else:
                result = any(self.loop_reach(callee) for callee, _ in self.callees(qualname))
        memo[qualname] = result
        return result


def resolve_call(chain: tuple[str, ...], fn: FunctionIR, ir: ProjectIR) -> FunctionIR | None:
    """The project function a dotted call chain targets, or ``None``."""
    mod = ir.modules.get(fn.rel)
    if mod is None:
        return None
    owner: ClassIR | None = ir.classes.get(fn.cls) if fn.cls else None
    if len(chain) == 1:
        name = chain[0]
        local = mod.functions.get(name)
        if local is not None:
            return local
        if name in mod.classes:
            return mod.classes[name].methods.get("__init__")
        target = mod.imports.get(name)
        if target is not None and target[1] is not None:
            resolved = ir.resolve_symbol(target[0], target[1])
            if isinstance(resolved, FunctionIR):
                return resolved
            if isinstance(resolved, ClassIR):
                return resolved.methods.get("__init__")
        return None
    if len(chain) == 2:
        head, member = chain
        if head == "self" and owner is not None:
            return owner.methods.get(member)
        target = mod.imports.get(head)
        if target is not None and target[1] is None:
            resolved = ir.resolve_symbol(target[0], member)
            if isinstance(resolved, FunctionIR):
                return resolved
            if isinstance(resolved, ClassIR):
                return resolved.methods.get("__init__")
        if head in mod.classes:  # Cls.method / Cls.classmethod references
            return mod.classes[head].methods.get(member)
        return None
    if len(chain) == 3 and chain[0] == "self" and owner is not None:
        attr_cls = ir.classes.get(owner.attr_types.get(chain[1], ""))
        if attr_cls is not None:
            return attr_cls.methods.get(chain[2])
    return None


def build_callgraph(ir: ProjectIR, *, shared: dict[str, object] | None = None) -> CallGraph:
    """Build (or fetch the cached) call graph for *ir*."""
    if shared is not None:
        cached = shared.get(_CG_KEY)
        if isinstance(cached, CallGraph) and cached.ir is ir:
            return cached
    graph = CallGraph(ir=ir)
    for qual in sorted(ir.functions):
        fn = ir.functions[qual]
        resolved: list[tuple[str, ast.Call]] = []
        for call in fn.calls:
            callee = resolve_call(call.chain, fn, ir)
            if callee is not None and callee.qualname != qual:
                resolved.append((callee.qualname, call.node))
        if resolved:
            graph.edges[qual] = tuple(resolved)
    if shared is not None:
        shared[_CG_KEY] = graph
    return graph
