"""Small AST helpers shared by the rule implementations."""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = [
    "attr_chain",
    "call_name",
    "iter_functions",
    "parent_map",
    "self_attr",
    "walk_with_parents",
]


def attr_chain(node: ast.AST) -> tuple[str, ...] | None:
    """The dotted-name chain of a Name/Attribute expression.

    ``np.random.default_rng`` -> ``("np", "random", "default_rng")``;
    returns ``None`` when the expression is not a plain dotted name
    (e.g. a call result or a subscript in the chain).
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def call_name(call: ast.Call) -> tuple[str, ...] | None:
    """The dotted name a call targets, or ``None`` for computed callees."""
    return attr_chain(call.func)


def self_attr(node: ast.AST) -> str | None:
    """The attribute name when *node* is exactly ``self.<attr>``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def iter_functions(tree: ast.AST) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def parent_map(tree: ast.AST) -> dict[ast.AST, ast.AST]:
    """child -> parent for every node in *tree*."""
    out: dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            out[child] = parent
    return out


def walk_with_parents(tree: ast.AST) -> Iterator[tuple[ast.AST, list[ast.AST]]]:
    """Depth-first walk yielding each node with its ancestor stack
    (outermost first)."""
    stack: list[tuple[ast.AST, list[ast.AST]]] = [(tree, [])]
    while stack:
        node, ancestors = stack.pop()
        yield node, ancestors
        child_anc = ancestors + [node]
        for child in reversed(list(ast.iter_child_nodes(node))):
            stack.append((child, child_anc))
