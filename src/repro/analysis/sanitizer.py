"""Runtime lock-order sanitizer: the dynamic counterpart of CNC204.

CNC204 proves the *statically resolvable* lock nestings acyclic; this
module closes the loop at runtime.  When ``REPRO_LOCK_SANITIZER=1`` is
set (the tier-1 suite enables it via ``tests/conftest.py``),
:func:`new_lock` returns a :class:`SanitizedLock` — a thin lock proxy
that maintains a per-thread held-lock stack and a process-wide observed
lock-ordering graph.  Acquiring lock ``B`` while holding ``A`` records
the edge ``A -> B``; an acquisition that would close a cycle in the
combined (observed + statically seeded) graph raises
:class:`LockOrderViolation` *before* blocking, so the test fails with
both orders named instead of deadlocking.

With the sanitizer disabled (the default, and production), ``new_lock``
returns a plain ``threading.Lock`` — zero overhead, zero behavior change.

The static lock-order graph (``repro lint --lock-graph``) can be
installed with :func:`install_static_order` so a runtime acquisition that
*inverts* a statically witnessed order is caught even when the other half
of the cycle never executes in the test run.
"""

from __future__ import annotations

import os
import threading
from typing import Iterable, Union

__all__ = [
    "SANITIZER_ENV_VAR",
    "LockLike",
    "LockOrderViolation",
    "SanitizedLock",
    "install_static_order",
    "new_lock",
    "observed_order",
    "reset_order",
    "sanitizer_enabled",
]

#: Environment variable that switches :func:`new_lock` to sanitized locks.
SANITIZER_ENV_VAR = "REPRO_LOCK_SANITIZER"


class LockOrderViolation(AssertionError):
    """Acquiring this lock here contradicts an established lock order."""


# Process-wide sanitizer state.  The ordering graph is shared across
# threads (guarded by a plain internal lock that never participates in
# the checked ordering); the held-lock stack is per-thread.
_STATE_LOCK = threading.Lock()
_ORDER: dict[str, set[str]] = {}  # edge: held name -> {acquired names}
_HELD = threading.local()


def sanitizer_enabled() -> bool:
    """Whether ``REPRO_LOCK_SANITIZER`` asks for order-checked locks."""
    return os.environ.get(SANITIZER_ENV_VAR, "").strip() not in ("", "0", "false", "no")


def _held_stack() -> list[str]:
    stack = getattr(_HELD, "stack", None)
    if stack is None:
        stack = []
        _HELD.stack = stack
    return stack


def reset_order() -> None:
    """Drop every recorded edge (test isolation)."""
    with _STATE_LOCK:
        _ORDER.clear()


def observed_order() -> dict[str, tuple[str, ...]]:
    """Snapshot of the current ordering graph (sorted, for assertions)."""
    with _STATE_LOCK:
        return {frm: tuple(sorted(tos)) for frm, tos in sorted(_ORDER.items())}


def install_static_order(edges: Iterable[tuple[str, str]]) -> int:
    """Seed the graph with statically derived edges; returns edges added.

    Feed it the ``edges`` of a ``repro.lockgraph/v1`` document so runtime
    acquisitions are checked against the *whole-program* order, not just
    the nestings this process happened to execute first.
    """
    count = 0
    with _STATE_LOCK:
        for frm, to in edges:
            if to not in _ORDER.setdefault(frm, set()):
                _ORDER[frm].add(to)
                count += 1
    return count


def _path_exists_locked(src: str, dst: str) -> list[str] | None:
    """A path ``src -> ... -> dst`` in the edge graph, if one exists.

    Caller holds ``_STATE_LOCK``.  Deterministic DFS (sorted successors).
    """
    if src == dst:
        return [src]
    seen: set[str] = {src}
    stack: list[list[str]] = [[src]]
    while stack:
        path = stack.pop()
        for nxt in sorted(_ORDER.get(path[-1], ())):
            if nxt == dst:
                return path + [nxt]
            if nxt not in seen:
                seen.add(nxt)
                stack.append(path + [nxt])
    return None


def _note_acquire(name: str) -> None:
    """Record/check ordering edges for acquiring *name* with current holds."""
    held = _held_stack()
    for h in held:
        if h == name:
            continue  # reentrant probe (Condition._is_owned); not an edge
        with _STATE_LOCK:
            inverse = _path_exists_locked(name, h)
            if inverse is not None:
                raise LockOrderViolation(
                    f"lock-order inversion: acquiring {name!r} while holding {h!r}, "
                    f"but the established order is {' -> '.join(inverse)} "
                    f"(i.e. {name!r} before {h!r}); two threads interleaving these "
                    "paths can deadlock"
                )
            _ORDER.setdefault(h, set()).add(name)


class SanitizedLock:
    """A named ``threading.Lock`` proxy that asserts lock ordering.

    Supports the full lock protocol (``acquire``/``release``/context
    manager/``locked``) so it can back a ``threading.Condition``.  The
    ordering check runs *before* the underlying acquire, so an inversion
    raises instead of deadlocking the test run.
    """

    def __init__(self, name: str, lock: Union[threading.Lock, None] = None) -> None:
        self.name = name
        self._inner = lock if lock is not None else threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        _note_acquire(self.name)
        got = self._inner.acquire(blocking, timeout)
        if got:
            _held_stack().append(self.name)
        return got

    def release(self) -> None:
        self._inner.release()
        stack = _held_stack()
        # Remove the most recent hold of this name (Condition.wait releases
        # out of strict stack order).
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] == self.name:
                del stack[i]
                break

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"SanitizedLock({self.name!r})"


#: What lock-taking call sites actually hold: a plain lock in production,
#: the checking proxy under the sanitizer.
LockLike = Union[threading.Lock, SanitizedLock]


def new_lock(name: str) -> LockLike:
    """A mutex for *name* (``"Class.attr"``), sanitized when enabled.

    This is the project's lock factory seam: the serve tier and the reuse
    cache create their locks through it, so setting
    ``REPRO_LOCK_SANITIZER=1`` turns every lock in the process into an
    order-checked one without touching call sites.  The analyzer treats
    ``new_lock(...)`` exactly like ``threading.Lock()`` (it is registered
    in the lock-constructor tables of CNC201/CNC202/CNC204).
    """
    if sanitizer_enabled():
        return SanitizedLock(name)
    return threading.Lock()
