"""Whole-program IR for the interprocedural rules.

The module-local rules (CNC201/CNC202, DET1xx, ...) each re-derive just
enough structure from a single AST.  The interprocedural rules — lock-order
cycles (CNC204), transitive cancel propagation (CNC205), ContextVar scope
hygiene (CTX901) — need one shared, resolved view of the whole tree:

* a **module table** with package-relative dotted names and resolved
  imports (including relative imports and re-export chasing through
  ``__init__`` modules);
* a **class table** with per-attribute types (``self.queue = JobQueue(...)``)
  and per-attribute *lock sites*, including the two sharing patterns the
  serve tier uses: ``Condition(self._lock)`` and the ``lock=`` constructor
  parameter (``self._lock = lock if lock is not None else Lock()``);
* a **function table** (module functions + methods) with parameters,
  same-frame call sites, same-frame lock acquisitions, and loop structure;
* a **lock identity model**: every lock gets a stable id
  (``Class.attr`` / ``module.NAME``), and aliasing through
  ``Condition(self._lock)`` or ``SomeClass(..., lock=self._lock)`` is
  resolved with a union-find so "the same mutex under two names" is one
  node in the lock-ordering graph.

Everything here is deterministic: modules are visited in sorted ``rel``
order and all outputs are plain sorted structures, which is what makes the
``repro.lockgraph/v1`` artifact byte-stable across runs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from .astutil import attr_chain, self_attr
from .engine import ModuleContext, Project

__all__ = [
    "LOCK_CTOR_NAMES",
    "Acquisition",
    "CallSite",
    "ClassIR",
    "FunctionIR",
    "ModuleIR",
    "ProjectIR",
    "build_project_ir",
    "module_name",
    "walk_same_frame",
]

_IR_KEY = "analysis.project_ir"

#: Constructor names whose result is a mutual-exclusion primitive.  The
#: ``new_lock`` factory is the sanitizer seam (``analysis/sanitizer.py``):
#: it returns a plain or order-checked lock depending on
#: ``REPRO_LOCK_SANITIZER``, and the analyzer must see through it.
LOCK_CTOR_NAMES = frozenset({"Lock", "RLock", "Condition", "new_lock"})


def module_name(rel: str) -> str:
    """Dotted package-relative module name of a display path.

    ``serve/api.py`` -> ``serve.api``; ``backend/__init__.py`` -> ``backend``;
    ``cli.py`` -> ``cli``.
    """
    parts = [p for p in rel.replace("\\", "/").split("/") if p]
    if parts and parts[-1].endswith(".py"):
        last = parts[-1][: -len(".py")]
        parts = parts[:-1] if last == "__init__" else parts[:-1] + [last]
    return ".".join(parts)


def walk_same_frame(root: ast.AST) -> Iterator[ast.AST]:
    """Walk *root* without descending into nested defs/lambdas/classes.

    Nested functions run later (or never), so their bodies do not belong
    to the enclosing frame's lock scope, call set, or loop structure.
    """
    stack: list[ast.AST] = list(ast.iter_child_nodes(root))
    yield root
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function's own frame."""

    node: ast.Call
    chain: tuple[str, ...]


@dataclass(frozen=True)
class Acquisition:
    """One same-frame lock acquisition: a ``with`` item or ``.acquire()``."""

    lock_id: str  # raw (pre-aliasing) id, e.g. "JobQueue._lock"
    node: ast.AST
    kind: str  # "with" | "acquire"


@dataclass
class FunctionIR:
    """One module-level function or method."""

    qualname: str  # "serve.api:SolveService._solve" / "cli:main"
    modname: str
    rel: str
    name: str
    cls: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    params: tuple[str, ...]
    decorators: tuple[tuple[str, ...], ...]
    has_loop: bool = False
    calls: list[CallSite] = field(default_factory=list)
    acquisitions: list[Acquisition] = field(default_factory=list)

    def is_contextmanager(self) -> bool:
        return any(d and d[-1] in ("contextmanager", "asynccontextmanager") for d in self.decorators)


@dataclass
class ClassIR:
    """Per-class attribute and lock structure."""

    name: str
    modname: str
    rel: str
    node: ast.ClassDef
    #: self attribute -> simple constructor name assigned in the class body
    attr_types: dict[str, str] = field(default_factory=dict)
    #: self attributes holding a mutual-exclusion primitive
    lock_attrs: set[str] = field(default_factory=set)
    #: lock attr -> ctor parameter name it may alias
    #: (``self._lock = lock if lock is not None else Lock()``)
    lock_param_attrs: dict[str, str] = field(default_factory=dict)
    #: (lock attr, other lock attr) pairs sharing one mutex
    #: (``self._not_empty = Condition(self._lock)``)
    lock_shares: list[tuple[str, str]] = field(default_factory=list)
    methods: dict[str, "FunctionIR"] = field(default_factory=dict)


@dataclass
class ModuleIR:
    """One parsed module with resolved local names."""

    ctx: ModuleContext
    modname: str
    #: local name -> (module dotted name, symbol or None for module imports)
    imports: dict[str, tuple[str, str | None]] = field(default_factory=dict)
    functions: dict[str, FunctionIR] = field(default_factory=dict)
    classes: dict[str, ClassIR] = field(default_factory=dict)
    #: top-level ``NAME = Lock()``-style module locks
    module_locks: set[str] = field(default_factory=set)
    #: top-level ``NAME = ContextVar(...)`` variables
    contextvars: set[str] = field(default_factory=set)


@dataclass
class ProjectIR:
    """The resolved whole-program view, cached on ``Project.shared``."""

    modules: dict[str, ModuleIR]  # rel -> module
    by_modname: dict[str, ModuleIR]
    classes: dict[str, ClassIR]  # simple class name, first definition wins
    functions: dict[str, FunctionIR]  # qualname -> function
    #: union-find parent pointers over lock ids
    lock_parent: dict[str, str] = field(default_factory=dict)
    #: lock ids created from a ctor parameter (aliasing candidates lose
    #: representative elections to concretely-constructed locks)
    lock_from_param: set[str] = field(default_factory=set)

    # -- lock identity ---------------------------------------------------
    def _find(self, lock_id: str) -> str:
        parent = self.lock_parent
        root = lock_id
        while parent.get(root, root) != root:
            root = parent[root]
        while parent.get(lock_id, lock_id) != root:  # path compression
            lock_id, parent[lock_id] = parent[lock_id], root
        return root

    def union_locks(self, a: str, b: str) -> None:
        """Merge two lock ids; the concretely-constructed one represents."""
        ra, rb = self._find(a), self._find(b)
        if ra == rb:
            return
        # Prefer a non-parameter lock as representative; tie-break on name
        # so the choice is deterministic.
        ka = (ra in self.lock_from_param, ra)
        kb = (rb in self.lock_from_param, rb)
        winner, loser = (ra, rb) if ka <= kb else (rb, ra)
        self.lock_parent[loser] = winner

    def canonical_lock(self, lock_id: str) -> str:
        """The representative id of *lock_id*'s alias class."""
        return self._find(lock_id)

    def lock_aliases(self) -> dict[str, tuple[str, ...]]:
        """representative -> sorted alias ids (including the representative)."""
        groups: dict[str, set[str]] = {}
        for lock_id in self.lock_parent:
            groups.setdefault(self._find(lock_id), set()).add(lock_id)
        for root in list(groups):
            groups[root].add(root)
        return {root: tuple(sorted(ids)) for root, ids in sorted(groups.items())}

    # -- symbol resolution -----------------------------------------------
    def resolve_symbol(self, modname: str, symbol: str, *, _depth: int = 0) -> FunctionIR | ClassIR | None:
        """Find *symbol* in *modname*, chasing re-export import chains."""
        if _depth > 8:
            return None
        mod = self.by_modname.get(modname)
        if mod is None:
            return None
        if symbol in mod.functions:
            return mod.functions[symbol]
        if symbol in mod.classes:
            return mod.classes[symbol]
        target = mod.imports.get(symbol)
        if target is None:
            return None
        t_mod, t_sym = target
        if t_sym is None:
            return None
        return self.resolve_symbol(t_mod, t_sym, _depth=_depth + 1)


def _ctor_call(value: ast.expr) -> ast.Call | None:
    """The constructor call of an attribute assignment value.

    Sees through the shared-lock pattern
    ``lock if lock is not None else threading.Lock()`` by picking the
    concrete branch of the ``IfExp``.
    """
    if isinstance(value, ast.IfExp):
        for branch in (value.body, value.orelse):
            call = _ctor_call(branch)
            if call is not None:
                return call
        return None
    if isinstance(value, ast.Call):
        return value
    return None


def _ctor_name(value: ast.expr) -> str | None:
    call = _ctor_call(value)
    if call is None:
        return None
    chain = attr_chain(call.func)
    return chain[-1] if chain else None


def _ifexp_param_name(value: ast.expr) -> str | None:
    """The parameter name of ``param if param is not None else Lock()``."""
    if not isinstance(value, ast.IfExp):
        return None
    for branch in (value.body, value.orelse):
        if isinstance(branch, ast.Name):
            return branch.id
    return None


def resolve_relative(modname: str, *, is_package: bool, level: int, target: str | None) -> str:
    """Resolve a relative import against a package-relative module name."""
    parts = modname.split(".") if modname else []
    if not is_package and parts:
        parts = parts[:-1]
    if level > 1:
        parts = parts[: max(0, len(parts) - (level - 1))]
    if target:
        parts = parts + target.split(".")
    return ".".join(parts)


def _collect_imports(mod: ModuleIR, known_modnames: set[str]) -> None:
    is_package = mod.ctx.rel.replace("\\", "/").endswith("__init__.py")
    for node in ast.walk(mod.ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.name
                if name.startswith("repro."):
                    name = name[len("repro."):]
                if name in known_modnames:
                    mod.imports[alias.asname or name.split(".")[0]] = (name, None)
        elif isinstance(node, ast.ImportFrom):
            if node.level > 0:
                target = resolve_relative(
                    mod.modname, is_package=is_package, level=node.level, target=node.module
                )
            else:
                target = node.module or ""
                if target.startswith("repro."):
                    target = target[len("repro."):]
            if target not in known_modnames:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                mod.imports[alias.asname or alias.name] = (target, alias.name)


def _function_ir(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    *,
    mod: ModuleIR,
    cls: ClassIR | None,
) -> FunctionIR:
    args = node.args
    params = tuple(
        a.arg for a in (args.posonlyargs + args.args + args.kwonlyargs)
    )
    decorators: list[tuple[str, ...]] = []
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        chain = attr_chain(target)
        if chain:
            decorators.append(chain)
    qual = f"{mod.modname}:{cls.name + '.' if cls else ''}{node.name}"
    return FunctionIR(
        qualname=qual,
        modname=mod.modname,
        rel=mod.ctx.rel,
        name=node.name,
        cls=cls.name if cls else None,
        node=node,
        params=params,
        decorators=tuple(decorators),
    )


def _scan_class(node: ast.ClassDef, mod: ModuleIR) -> ClassIR:
    cls = ClassIR(name=node.name, modname=mod.modname, rel=mod.ctx.rel, node=node)
    for sub in ast.walk(node):
        target: ast.expr | None = None
        value: ast.expr | None = None
        if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
            target, value = sub.targets[0], sub.value
        elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
            target, value = sub.target, sub.value
        if target is None or value is None:
            continue
        attr = self_attr(target)
        if attr is None:
            continue
        ctor = _ctor_name(value)
        if ctor in LOCK_CTOR_NAMES:
            cls.lock_attrs.add(attr)
            param = _ifexp_param_name(value)
            if param is not None:
                cls.lock_param_attrs[attr] = param
            call = _ctor_call(value)
            if call is not None and ctor == "Condition":
                for arg in call.args:
                    shared = self_attr(arg)
                    if shared is not None:
                        cls.lock_shares.append((attr, shared))
        elif ctor is not None:
            cls.attr_types[attr] = ctor
    return cls


def _scan_function_body(fn: FunctionIR, cls: ClassIR | None, mod: ModuleIR) -> None:
    lock_attrs = cls.lock_attrs if cls is not None else set()
    cls_name = cls.name if cls is not None else ""
    for node in walk_same_frame(fn.node):
        if node is fn.node:
            continue
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            fn.has_loop = True
        elif isinstance(node, ast.With):
            for item in node.items:
                attr = self_attr(item.context_expr)
                if attr is not None and attr in lock_attrs:
                    fn.acquisitions.append(Acquisition(f"{cls_name}.{attr}", node, "with"))
                    continue
                if isinstance(item.context_expr, ast.Name) and item.context_expr.id in mod.module_locks:
                    fn.acquisitions.append(
                        Acquisition(f"{mod.modname}.{item.context_expr.id}", node, "with")
                    )
        elif isinstance(node, ast.Call):
            chain = attr_chain(node.func)
            if chain is None:
                continue
            fn.calls.append(CallSite(node=node, chain=chain))
            if len(chain) == 3 and chain[0] == "self" and chain[1] in lock_attrs and chain[2] == "acquire":
                fn.acquisitions.append(Acquisition(f"{cls_name}.{chain[1]}", node, "acquire"))
            elif len(chain) == 2 and chain[0] in mod.module_locks and chain[1] == "acquire":
                fn.acquisitions.append(Acquisition(f"{mod.modname}.{chain[0]}", node, "acquire"))


def _collect_toplevel_names(mod: ModuleIR) -> None:
    for stmt in mod.ctx.tree.body:
        target: ast.expr | None = None
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            target, value = stmt.target, stmt.value
        if not isinstance(target, ast.Name) or value is None:
            continue
        ctor = _ctor_name(value)
        if ctor in LOCK_CTOR_NAMES:
            mod.module_locks.add(target.id)
        elif ctor == "ContextVar":
            mod.contextvars.add(target.id)


def _register_lock_nodes(ir: ProjectIR) -> None:
    for rel in sorted(ir.modules):
        mod = ir.modules[rel]
        for name in sorted(mod.module_locks):
            lock_id = f"{mod.modname}.{name}"
            ir.lock_parent.setdefault(lock_id, lock_id)
        for cls_name in sorted(mod.classes):
            cls = mod.classes[cls_name]
            if ir.classes.get(cls_name) is not cls:
                continue  # shadowed duplicate class name: first wins
            for attr in sorted(cls.lock_attrs):
                lock_id = f"{cls.name}.{attr}"
                ir.lock_parent.setdefault(lock_id, lock_id)
                if attr in cls.lock_param_attrs:
                    ir.lock_from_param.add(lock_id)
            for attr, shared in cls.lock_shares:
                if shared in cls.lock_attrs:
                    ir.union_locks(f"{cls.name}.{attr}", f"{cls.name}.{shared}")


def _alias_ctor_lock_params(ir: ProjectIR) -> None:
    """Union lock ids across ``SomeClass(..., lock=self._lock)`` sites."""
    for qual in sorted(ir.functions):
        fn = ir.functions[qual]
        owner = ir.classes.get(fn.cls) if fn.cls else None
        for call in fn.calls:
            target_cls = _resolve_class(call.chain, fn, ir)
            if target_cls is None or not target_cls.lock_param_attrs:
                continue
            for kw in call.node.keywords:
                if kw.arg is None:
                    continue
                bound = [
                    attr for attr, param in target_cls.lock_param_attrs.items() if param == kw.arg
                ]
                if not bound:
                    continue
                passed = self_attr(kw.value)
                if passed is None or owner is None or passed not in owner.lock_attrs:
                    continue
                for attr in bound:
                    ir.union_locks(f"{target_cls.name}.{attr}", f"{owner.name}.{passed}")


def _resolve_class(chain: tuple[str, ...], fn: FunctionIR, ir: ProjectIR) -> ClassIR | None:
    """The class a ``Cls(...)`` / ``mod.Cls(...)`` call constructs, if any."""
    mod = ir.modules.get(fn.rel)
    if mod is None:
        return None
    if len(chain) == 1:
        name = chain[0]
        if name in mod.classes:
            return mod.classes[name]
        target = mod.imports.get(name)
        if target is not None and target[1] is not None:
            resolved = ir.resolve_symbol(target[0], target[1])
            if isinstance(resolved, ClassIR):
                return resolved
        return ir.classes.get(name)
    if len(chain) == 2:
        target = mod.imports.get(chain[0])
        if target is not None and target[1] is None:
            resolved = ir.resolve_symbol(target[0], chain[1])
            if isinstance(resolved, ClassIR):
                return resolved
    return None


def build_project_ir(project: Project) -> ProjectIR:
    """Build (or fetch the cached) whole-program IR for *project*."""
    cached = project.shared.get(_IR_KEY)
    if isinstance(cached, ProjectIR):
        return cached

    modules: dict[str, ModuleIR] = {}
    for ctx in sorted(project.modules, key=lambda c: c.rel):
        modules[ctx.rel] = ModuleIR(ctx=ctx, modname=module_name(ctx.rel))
    by_modname = {mod.modname: mod for mod in modules.values()}
    known_modnames = set(by_modname)

    ir = ProjectIR(modules=modules, by_modname=by_modname, classes={}, functions={})

    for rel in sorted(modules):
        mod = modules[rel]
        _collect_imports(mod, known_modnames)
        _collect_toplevel_names(mod)
        for stmt in mod.ctx.tree.body:
            if isinstance(stmt, ast.ClassDef):
                cls = _scan_class(stmt, mod)
                mod.classes[cls.name] = cls
                ir.classes.setdefault(cls.name, cls)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = _function_ir(stmt, mod=mod, cls=None)
                mod.functions[fn.name] = fn
                ir.functions[fn.qualname] = fn

    # Methods second: their acquisition scan needs the class lock tables.
    for rel in sorted(modules):
        mod = modules[rel]
        for cls_name in sorted(mod.classes):
            cls = mod.classes[cls_name]
            for stmt in cls.node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    fn = _function_ir(stmt, mod=mod, cls=cls)
                    cls.methods[fn.name] = fn
                    ir.functions[fn.qualname] = fn
        for fn in mod.functions.values():
            _scan_function_body(fn, None, mod)
        for cls in mod.classes.values():
            for fn in cls.methods.values():
                _scan_function_body(fn, cls, mod)

    _register_lock_nodes(ir)
    _alias_ctor_lock_params(ir)
    project.shared[_IR_KEY] = ir
    return ir
