"""Project static analyzer: AST rules for the repro invariants.

Run as ``python -m repro.analysis [paths...]`` or ``repro lint``.  See
``docs/static-analysis.md`` for the rule catalog and suppression syntax.
"""

from __future__ import annotations

from .engine import (
    LINT_SCHEMA,
    UNUSED_SUPPRESSION_ID,
    AnalysisError,
    AnalysisResult,
    ModuleContext,
    Project,
    Rule,
    Violation,
    default_source_root,
    lint_summary,
    main,
    run_analysis,
)
from .rules import default_rules

__all__ = [
    "AnalysisError",
    "AnalysisResult",
    "LINT_SCHEMA",
    "ModuleContext",
    "Project",
    "Rule",
    "UNUSED_SUPPRESSION_ID",
    "Violation",
    "default_rules",
    "default_source_root",
    "lint_summary",
    "main",
    "run_analysis",
]
