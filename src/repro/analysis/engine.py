"""Rule engine for the project static analyzer (``repro.analysis``).

The analyzer enforces, by AST inspection, the project invariants that the
test suite cannot economically cover: determinism of the numeric core
(seeded RNG, no wall-clock in solver paths, no hash-order iteration),
lock discipline in the threaded serve layer, cooperative-cancellation
plumbing, float-comparison hygiene in the geometry kernels, and the
strict-typing gate for the annotated packages.

Architecture
------------

* A :class:`Rule` declares an ``rule_id``, a ``severity`` (``error`` or
  ``warning``), an optional path ``scope`` (directory components the rule
  applies to — empty means everywhere) and a ``check`` generator yielding
  :class:`Violation` objects for one :class:`ModuleContext`.
* A :class:`Project` holds every parsed module; rules with cross-module
  concerns (e.g. which classes own locks) implement ``prepare(project)``
  which runs before any ``check``.
* Suppressions: a ``# repro: noqa[RULE-ID]`` comment on the flagged line
  silences that rule there (several ids comma-separated; a justification
  may follow after ``--``).  Suppressions that silence nothing are
  themselves reported as :data:`UNUSED_SUPPRESSION_ID` warnings, so stale
  noqa comments cannot accumulate.

Exit-code contract (also documented in docs/api.md):

* ``0`` — no violations, or warnings only (without ``--strict``)
* ``1`` — at least one error, or any violation with ``--strict``
* ``2`` — usage or internal failure (unreadable path, syntax error)
"""

from __future__ import annotations

import argparse
import ast
import io
import json
import re
import sys
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

__all__ = [
    "AnalysisError",
    "AnalysisResult",
    "ModuleContext",
    "Project",
    "Rule",
    "Violation",
    "UNUSED_SUPPRESSION_ID",
    "LINT_SCHEMA",
    "main",
    "run_analysis",
]

LINT_SCHEMA = "repro.lint/v1"

#: Rule id reported for ``# repro: noqa[...]`` comments that suppress nothing.
UNUSED_SUPPRESSION_ID = "SUP001"

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa\[([A-Za-z0-9_,\s-]+)\]")


class AnalysisError(RuntimeError):
    """The analyzer itself failed (unreadable path, unparsable file)."""


@dataclass(frozen=True)
class Violation:
    """One finding: a rule fired at a source location."""

    rule_id: str
    severity: str  # "error" | "warning"
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} [{self.severity}] {self.message}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule_id,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class Suppression:
    """One ``# repro: noqa[...]`` entry on one line."""

    path: str
    line: int
    rule_ids: tuple[str, ...]
    used: set[str] = field(default_factory=set)


@dataclass
class ModuleContext:
    """One parsed source file plus the metadata rules key off."""

    path: Path
    rel: str  # path relative to the scanned root (display + scoping)
    components: tuple[str, ...]  # path components of ``rel`` (dirs + stem)
    tree: ast.Module
    lines: list[str]
    suppressions: dict[int, Suppression]

    def in_scope(self, scope: tuple[str, ...]) -> bool:
        """Whether this module falls under any of *scope*'s components.

        An empty scope matches everything.  A scope entry matches either a
        directory component (``"core"`` matches ``core/placement.py``) or a
        module filename (``"placement.py"``).
        """
        if not scope:
            return True
        parts = set(self.components)
        return any(s.removesuffix(".py") in parts for s in scope)


class Rule:
    """Base class: subclasses override the class attributes and ``check``."""

    rule_id: str = ""
    severity: str = "error"
    scope: tuple[str, ...] = ()
    summary: str = ""

    def prepare(self, project: "Project") -> None:
        """Cross-module pass run once before any ``check`` call."""

    def check(self, ctx: ModuleContext, project: "Project") -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, ctx: ModuleContext, node: ast.AST, message: str) -> Violation:
        return Violation(
            rule_id=self.rule_id,
            severity=self.severity,
            path=ctx.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


@dataclass
class Project:
    """All modules under analysis plus shared cross-module state."""

    modules: list[ModuleContext]
    #: Free-form per-rule shared state (populated by ``Rule.prepare``).
    shared: dict[str, Any] = field(default_factory=dict)


@dataclass
class AnalysisResult:
    """Outcome of one analyzer run."""

    violations: list[Violation]
    files: int
    rules_run: tuple[str, ...]
    rules_registered: int

    @property
    def errors(self) -> int:
        return sum(1 for v in self.violations if v.severity == "error")

    @property
    def warnings(self) -> int:
        return sum(1 for v in self.violations if v.severity == "warning")

    def exit_code(self, *, strict: bool = False) -> int:
        if self.errors or (strict and self.violations):
            return 1
        return 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": LINT_SCHEMA,
            "files": self.files,
            "rules_registered": self.rules_registered,
            "rules_run": list(self.rules_run),
            "counts": {"error": self.errors, "warning": self.warnings},
            "violations": [v.to_dict() for v in self.violations],
        }


def _parse_suppressions(path_rel: str, source: str) -> dict[int, Suppression]:
    """Suppressions from actual ``#`` comments (tokenized, so noqa syntax
    quoted inside docstrings or string literals is not a suppression)."""
    out: dict[int, Suppression] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _NOQA_RE.search(tok.string)
            if m is None:
                continue
            ids = tuple(p.strip().upper() for p in m.group(1).split(",") if p.strip())
            if ids:
                lineno = tok.start[0]
                out[lineno] = Suppression(path_rel, lineno, ids)
    except tokenize.TokenError:
        pass  # ast.parse already succeeded; be permissive about the tail
    return out


def collect_files(paths: Sequence[str | Path]) -> list[tuple[Path, Path]]:
    """Expand *paths* into ``(root, file)`` pairs of python sources.

    Directories are walked recursively (sorted, skipping ``__pycache__``);
    the root a file was found under anchors its display-relative path.
    """
    out: list[tuple[Path, Path]] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                if "__pycache__" in f.parts:
                    continue
                out.append((p, f))
        elif p.is_file():
            out.append((p.parent, p))
        else:
            raise AnalysisError(f"no such file or directory: {p}")
    return out


def load_module(root: Path, path: Path) -> ModuleContext:
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise AnalysisError(f"cannot read {path}: {exc}") from exc
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        raise AnalysisError(f"cannot parse {path}: {exc}") from exc
    try:
        rel = str(path.relative_to(root))
    except ValueError:
        rel = str(path)
    rel_parts = Path(rel).parts
    # The scan root's own name participates in scoping, so linting
    # `benchmarks/` or a single `src/repro/core/<file>.py` applies the
    # same directory-scoped rules as linting the parent tree would.
    components = (root.name,) + tuple(rel_parts[:-1]) + (Path(rel).stem, Path(rel).name)
    lines = source.splitlines()
    return ModuleContext(
        path=path,
        rel=rel,
        components=components,
        tree=tree,
        lines=lines,
        suppressions=_parse_suppressions(rel, source),
    )


def _select_rules(
    rules: Sequence[Rule],
    select: Sequence[str] | None,
    ignore: Sequence[str] | None,
) -> list[Rule]:
    """Filter by id prefix: ``--select DET`` keeps the DET family."""

    def matches(rule_id: str, prefixes: Sequence[str]) -> bool:
        return any(rule_id.upper().startswith(p.strip().upper()) for p in prefixes if p.strip())

    out = list(rules)
    if select:
        out = [r for r in out if matches(r.rule_id, select)]
    if ignore:
        out = [r for r in out if not matches(r.rule_id, ignore)]
    return out


def _validate_rule_ids(
    rules: Sequence[Rule], select: Sequence[str] | None, ignore: Sequence[str] | None
) -> None:
    """Reject ``--select``/``--ignore`` prefixes matching no registered rule.

    A typo like ``--select DET10X`` silently running *zero* rules is a CI
    gate that passes while checking nothing; make it a usage error (exit 2).
    """
    known = sorted({r.rule_id for r in rules} | {UNUSED_SUPPRESSION_ID})
    for flag, prefixes in (("--select", select), ("--ignore", ignore)):
        for raw in prefixes or []:
            token = raw.strip().upper()
            if token and not any(rid.startswith(token) for rid in known):
                raise AnalysisError(
                    f"unknown rule id {raw.strip()!r} in {flag} "
                    f"(known: {', '.join(known)})"
                )


def run_analysis(
    paths: Sequence[str | Path],
    *,
    rules: Sequence[Rule] | None = None,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> AnalysisResult:
    """Run the (optionally filtered) rule set over *paths*.

    Returns every unsuppressed violation, sorted by location, plus one
    :data:`UNUSED_SUPPRESSION_ID` warning per noqa comment that matched
    nothing (unless SUP001 itself is deselected).
    """
    from .rules import default_rules

    all_rules: Sequence[Rule] = rules if rules is not None else default_rules()
    _validate_rule_ids(all_rules, select, ignore)
    active = _select_rules(all_rules, select, ignore)
    project = Project(modules=[load_module(root, f) for root, f in collect_files(paths)])
    for rule in active:
        rule.prepare(project)

    raw: list[Violation] = []
    for ctx in project.modules:
        for rule in active:
            if not ctx.in_scope(rule.scope):
                continue
            raw.extend(rule.check(ctx, project))

    kept: list[Violation] = []
    by_module = {ctx.rel: ctx for ctx in project.modules}
    for v in raw:
        ctx = by_module.get(v.path)
        sup = ctx.suppressions.get(v.line) if ctx is not None else None
        if sup is not None and v.rule_id in sup.rule_ids:
            sup.used.add(v.rule_id)
            continue
        kept.append(v)

    def _matches(rule_id: str, prefixes: Sequence[str] | None) -> bool:
        return bool(prefixes) and any(
            rule_id.upper().startswith(p.strip().upper()) for p in prefixes if p.strip()
        )

    sup_active = (select is None or _matches(UNUSED_SUPPRESSION_ID, select)) and not _matches(
        UNUSED_SUPPRESSION_ID, ignore
    )
    if sup_active:
        for ctx in project.modules:
            for sup in ctx.suppressions.values():
                for rid in sup.rule_ids:
                    if rid not in sup.used:
                        kept.append(
                            Violation(
                                rule_id=UNUSED_SUPPRESSION_ID,
                                severity="warning",
                                path=sup.path,
                                line=sup.line,
                                col=1,
                                message=f"suppression of {rid} matches no violation; remove it",
                            )
                        )

    kept.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return AnalysisResult(
        violations=kept,
        files=len(project.modules),
        rules_run=tuple(r.rule_id for r in active),
        rules_registered=len(all_rules),
    )


def default_source_root() -> Path:
    """The installed ``repro`` package directory (default lint target)."""
    return Path(__file__).resolve().parents[1]


def lint_summary(paths: Sequence[str | Path] | None = None) -> dict[str, Any]:
    """Compact lint stats stamped into benchmark provenance blocks."""
    result = run_analysis(paths if paths is not None else [default_source_root()])
    families: dict[str, int] = {}
    for rule_id in result.rules_run:
        m = re.match(r"[A-Z]+", rule_id)
        family = m.group(0) if m is not None else rule_id
        families[family] = families.get(family, 0) + 1
    return {
        "rules": result.rules_registered,
        "families": dict(sorted(families.items())),
        "violations": len(result.violations),
        "errors": result.errors,
        "warnings": result.warnings,
    }


def build_arg_parser(prog: str = "repro.analysis") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description="Project static analyzer: determinism, lock discipline, "
        "numeric/trace hygiene, strict typing (docs/static-analysis.md).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to analyze (default: the repro package)",
    )
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--select", type=str, default=None, metavar="IDS",
                        help="comma-separated rule-id prefixes to run (e.g. DET,CNC201)")
    parser.add_argument("--ignore", type=str, default=None, metavar="IDS",
                        help="comma-separated rule-id prefixes to skip")
    parser.add_argument("--strict", action="store_true",
                        help="treat warnings as errors (exit 1 on any violation)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the registered rules and exit")
    parser.add_argument("--lock-graph", type=str, default=None, metavar="OUT.json",
                        help="also write the repro.lockgraph/v1 lock-ordering "
                        "artifact (deterministic JSON) to this path")
    return parser


def _split(arg: str | None) -> list[str] | None:
    if arg is None:
        return None
    return [p for p in arg.split(",") if p.strip()]


def main(argv: Sequence[str] | None = None, *, prog: str = "repro.analysis") -> int:
    """CLI entry point shared by ``python -m repro.analysis`` and ``repro lint``."""
    args = build_arg_parser(prog).parse_args(argv)
    if args.list_rules:
        from .rules import default_rules

        for rule in default_rules():
            scope = ",".join(rule.scope) if rule.scope else "*"
            print(f"{rule.rule_id}  [{rule.severity:<7}]  scope={scope:<30}  {rule.summary}")
        return 0
    paths = args.paths if args.paths else [default_source_root()]
    try:
        result = run_analysis(paths, select=_split(args.select), ignore=_split(args.ignore))
        if args.lock_graph:
            from .lockgraph import build_lock_graph, write_lock_graph

            write_lock_graph(build_lock_graph(paths), args.lock_graph)
    except AnalysisError as exc:
        print(f"repro.analysis: error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(result.to_dict(), indent=2))
    else:
        for v in result.violations:
            print(v.format())
        print(
            f"{result.files} files, {len(result.rules_run)} rules: "
            f"{result.errors} errors, {result.warnings} warnings"
        )
    return result.exit_code(strict=args.strict)
