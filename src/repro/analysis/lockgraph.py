"""The global lock-ordering graph and the ``repro.lockgraph/v1`` artifact.

Nodes are canonical lock ids from the project IR (aliasing through
``Condition(self._lock)`` and ``lock=`` constructor sharing already
collapsed).  A directed edge ``A -> B`` means *somewhere in the project a
frame acquires B while holding A* — either a nested ``with`` in one
function, or a call made under ``A`` that transitively reaches an
acquisition of ``B`` (resolved through the call graph, with the full
witness path retained).

A cycle in this graph is a potential deadlock: two threads entering the
cycle from different edges can block each other forever.  CNC204 reports
every cycle with the witness acquisition path of each edge; the same graph
serializes to a deterministic JSON artifact (``repro lint --lock-graph``,
``make lint-graph``) whose schema is documented in
``docs/static-analysis.md`` and validated by :func:`validate_lock_graph`.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from .astutil import attr_chain, self_attr
from .callgraph import CallGraph, WitnessStep, build_callgraph, resolve_call
from .engine import Project, collect_files, load_module
from .ir import FunctionIR, ProjectIR, build_project_ir

__all__ = [
    "LOCKGRAPH_SCHEMA",
    "LockOrderGraph",
    "build_lock_graph",
    "build_lock_order",
    "lock_graph_document",
    "validate_lock_graph",
    "write_lock_graph",
]

LOCKGRAPH_SCHEMA = "repro.lockgraph/v1"

_GRAPH_KEY = "analysis.lockorder"

EdgeKey = tuple[str, str]


@dataclass
class LockOrderGraph:
    """The project-wide lock-ordering graph."""

    ir: ProjectIR
    #: every canonical lock id, including isolated ones
    nodes: tuple[str, ...] = ()
    #: (held, acquired) -> witness path (first deterministic witness wins)
    edges: dict[EdgeKey, tuple[WitnessStep, ...]] = field(default_factory=dict)
    #: each cycle as its edge sequence, e.g. [(A, B), (B, A)]
    cycles: list[tuple[EdgeKey, ...]] = field(default_factory=list)


def _with_lock_ids(node: ast.With, fn: FunctionIR, ir: ProjectIR) -> list[str]:
    """Raw lock ids acquired by one ``with`` statement in *fn*'s frame."""
    mod = ir.modules.get(fn.rel)
    cls = ir.classes.get(fn.cls) if fn.cls else None
    out: list[str] = []
    for item in node.items:
        attr = self_attr(item.context_expr)
        if attr is not None and cls is not None and attr in cls.lock_attrs:
            out.append(f"{cls.name}.{attr}")
        elif (
            isinstance(item.context_expr, ast.Name)
            and mod is not None
            and item.context_expr.id in mod.module_locks
        ):
            out.append(f"{mod.modname}.{item.context_expr.id}")
    return out


def _add_edge(
    graph: LockOrderGraph, frm: str, to: str, witness: tuple[WitnessStep, ...]
) -> None:
    graph.edges.setdefault((frm, to), witness)


Held = tuple[tuple[str, WitnessStep], ...]


def _scan_frame(
    node: ast.AST, held: Held, fn: FunctionIR, graph: LockOrderGraph, cg: CallGraph
) -> None:
    ir = graph.ir
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)):
        return
    if isinstance(node, ast.With):
        acquired: Held = ()
        for lock_id in _with_lock_ids(node, fn, ir):
            canonical = ir.canonical_lock(lock_id)
            step = WitnessStep(
                rel=fn.rel,
                line=node.lineno,
                text=f"{fn.name} acquires {canonical}"
                + (f" (as {lock_id})" if lock_id != canonical else ""),
            )
            for h, h_step in held:
                if h != canonical:
                    _add_edge(graph, h, canonical, (h_step, step))
            acquired = acquired + ((canonical, step),)
        inner = held + acquired
        for child in ast.iter_child_nodes(node):
            _scan_frame(child, inner, fn, graph, cg)
        return
    if held and isinstance(node, ast.Call):
        chain = attr_chain(node.func)
        if chain is not None:
            _edges_for_target(chain, node.lineno, held, fn, graph, cg)
    elif held and isinstance(node, ast.Attribute):
        # Property reads can acquire locks too (`self.queue.depth`); edges
        # are deduplicated so the enclosing-call case is not double-counted.
        chain = attr_chain(node)
        if chain is not None and len(chain) == 3 and chain[0] == "self":
            _edges_for_target(chain, node.lineno, held, fn, graph, cg)
    for child in ast.iter_child_nodes(node):
        _scan_frame(child, held, fn, graph, cg)


def _edges_for_target(
    chain: tuple[str, ...],
    line: int,
    held: Held,
    fn: FunctionIR,
    graph: LockOrderGraph,
    cg: CallGraph,
) -> None:
    ir = graph.ir
    cls = ir.classes.get(fn.cls) if fn.cls else None
    # Direct `.acquire()` on an own or module lock while holding another.
    direct: str | None = None
    if len(chain) == 3 and chain[0] == "self" and chain[2] == "acquire":
        if cls is not None and chain[1] in cls.lock_attrs:
            direct = f"{cls.name}.{chain[1]}"
    elif len(chain) == 2 and chain[1] == "acquire":
        mod = ir.modules.get(fn.rel)
        if mod is not None and chain[0] in mod.module_locks:
            direct = f"{mod.modname}.{chain[0]}"
    if direct is not None:
        canonical = ir.canonical_lock(direct)
        step = WitnessStep(rel=fn.rel, line=line, text=f"{fn.name} acquires {canonical}")
        for h, h_step in held:
            if h != canonical:
                _add_edge(graph, h, canonical, (h_step, step))
        return
    callee = resolve_call(chain, fn, ir)
    if callee is None:
        return
    reach = cg.lock_reach(callee.qualname)
    if not reach:
        return
    hop = WitnessStep(
        rel=fn.rel,
        line=line,
        text=f"{fn.name} calls {callee.cls + '.' if callee.cls else ''}{callee.name} "
        f"while holding a lock",
    )
    for lock_id in sorted(reach):
        for h, h_step in held:
            if lock_id != h:
                _add_edge(graph, h, lock_id, (h_step, hop) + reach[lock_id])


def _find_cycles(graph: LockOrderGraph) -> list[tuple[EdgeKey, ...]]:
    """Deterministic cycle enumeration: one representative cycle per SCC."""
    succ: dict[str, list[str]] = {}
    for frm, to in sorted(graph.edges):
        succ.setdefault(frm, []).append(to)

    # Tarjan's SCC, iterative, deterministic visit order.
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = [0]

    def strongconnect(root: str) -> None:
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, i = work.pop()
            if i == 0:
                index[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            recurse = False
            children = succ.get(node, [])
            for j in range(i, len(children)):
                child = children[j]
                if child not in index:
                    work.append((node, j + 1))
                    work.append((child, 0))
                    recurse = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index[child])
            if recurse:
                continue
            if low[node] == index[node]:
                scc: list[str] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == node:
                        break
                sccs.append(sorted(scc))
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])

    for node in sorted(set(succ) | {to for tos in succ.values() for to in tos}):
        if node not in index:
            strongconnect(node)

    cycles: list[tuple[EdgeKey, ...]] = []
    for scc in sccs:
        members = set(scc)
        if len(scc) == 1:
            node = scc[0]
            if (node, node) in graph.edges:
                cycles.append(((node, node),))
            continue
        # Shortest cycle through the smallest member, BFS inside the SCC.
        start = scc[0]
        parent: dict[str, EdgeKey] = {}
        frontier = [start]
        found: list[EdgeKey] | None = None
        while frontier and found is None:
            nxt: list[str] = []
            for node in frontier:
                for child in succ.get(node, []):
                    if child not in members:
                        continue
                    if child == start:
                        path = [(node, child)]
                        cur = node
                        while cur != start:
                            edge = parent[cur]
                            path.append(edge)
                            cur = edge[0]
                        found = list(reversed(path))
                        break
                    if child not in parent:
                        parent[child] = (node, child)
                        nxt.append(child)
                if found is not None:
                    break
            frontier = nxt
        if found is not None:
            cycles.append(tuple(found))
    return sorted(cycles)


def build_lock_order(project: Project) -> LockOrderGraph:
    """Build (or fetch the cached) lock-ordering graph for *project*."""
    cached = project.shared.get(_GRAPH_KEY)
    if isinstance(cached, LockOrderGraph):
        return cached
    ir = build_project_ir(project)
    cg = build_callgraph(ir, shared=project.shared)
    graph = LockOrderGraph(ir=ir)

    order = sorted(ir.functions.values(), key=lambda f: (f.rel, f.node.lineno, f.qualname))
    for fn in order:
        for child in ast.iter_child_nodes(fn.node):
            _scan_frame(child, (), fn, graph, cg)

    graph.nodes = tuple(sorted({ir.canonical_lock(l) for l in ir.lock_parent}))
    graph.cycles = _find_cycles(graph)
    project.shared[_GRAPH_KEY] = graph
    return graph


def _witness_json(witness: tuple[WitnessStep, ...]) -> list[dict[str, Any]]:
    return [{"path": s.rel, "line": s.line, "text": s.text} for s in witness]


def lock_graph_document(graph: LockOrderGraph) -> dict[str, Any]:
    """The deterministic ``repro.lockgraph/v1`` JSON document."""
    aliases = graph.ir.lock_aliases()
    locks = [
        {"id": node, "aliases": list(aliases.get(node, (node,)))}
        for node in graph.nodes
    ]
    edges = [
        {"from": frm, "to": to, "witness": _witness_json(graph.edges[(frm, to)])}
        for frm, to in sorted(graph.edges)
    ]
    cycles = [
        {
            "locks": sorted({node for edge in cycle for node in edge}),
            "edges": [{"from": frm, "to": to} for frm, to in cycle],
        }
        for cycle in graph.cycles
    ]
    return {
        "schema": LOCKGRAPH_SCHEMA,
        "locks": locks,
        "edges": edges,
        "cycles": cycles,
    }


def build_lock_graph(paths: Sequence[str | Path]) -> dict[str, Any]:
    """Analyze *paths* and return the ``repro.lockgraph/v1`` document."""
    project = Project(modules=[load_module(root, f) for root, f in collect_files(paths)])
    return lock_graph_document(build_lock_order(project))


def validate_lock_graph(doc: dict[str, Any]) -> None:
    """Raise ``ValueError`` unless *doc* is a well-formed lock graph."""
    problems: list[str] = []
    if doc.get("schema") != LOCKGRAPH_SCHEMA:
        problems.append(f"schema must be {LOCKGRAPH_SCHEMA!r}, got {doc.get('schema')!r}")
    locks = doc.get("locks")
    edges = doc.get("edges")
    cycles = doc.get("cycles")
    if not isinstance(locks, list) or not isinstance(edges, list) or not isinstance(cycles, list):
        raise ValueError("locks/edges/cycles must all be lists; " + "; ".join(problems))
    known: set[str] = set()
    for lock in locks:
        if not isinstance(lock, dict) or not isinstance(lock.get("id"), str):
            problems.append(f"malformed lock entry {lock!r}")
            continue
        known.add(lock["id"])
        aliases = lock.get("aliases")
        if not isinstance(aliases, list) or lock["id"] not in aliases:
            problems.append(f"lock {lock['id']}: aliases must be a list containing the id")
    edge_keys: set[tuple[str, str]] = set()
    for edge in edges:
        if not isinstance(edge, dict):
            problems.append(f"malformed edge entry {edge!r}")
            continue
        frm, to, witness = edge.get("from"), edge.get("to"), edge.get("witness")
        if frm not in known or to not in known:
            problems.append(f"edge {frm!r}->{to!r} references an unknown lock")
        if not isinstance(witness, list) or not witness:
            problems.append(f"edge {frm!r}->{to!r} has no witness path")
        else:
            for step in witness:
                if (
                    not isinstance(step, dict)
                    or not isinstance(step.get("path"), str)
                    or not isinstance(step.get("line"), int)
                    or not isinstance(step.get("text"), str)
                ):
                    problems.append(f"edge {frm!r}->{to!r} has a malformed witness step {step!r}")
                    break
        if isinstance(frm, str) and isinstance(to, str):
            edge_keys.add((frm, to))
    for cycle in cycles:
        if not isinstance(cycle, dict) or not isinstance(cycle.get("edges"), list):
            problems.append(f"malformed cycle entry {cycle!r}")
            continue
        for edge in cycle["edges"]:
            key = (edge.get("from"), edge.get("to")) if isinstance(edge, dict) else None
            if key not in edge_keys:
                problems.append(f"cycle edge {edge!r} not present in the edge list")
    if problems:
        raise ValueError("invalid lock graph: " + "; ".join(problems))


def write_lock_graph(doc: dict[str, Any], path: str | Path) -> Path:
    """Serialize *doc* byte-deterministically (sorted keys, trailing NL)."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return out
