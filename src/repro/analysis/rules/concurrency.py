"""Concurrency rules (CNC2xx) for the threaded serve layer and the core.

``repro.serve`` is a classic shared-state threading design: a bounded
priority queue, a worker pool, an LRU cache and one metrics registry, all
mutated from HTTP handler threads and solver workers at once.  Its safety
rests on two conventions — every guarded attribute is only mutated inside
``with <lock>:``, and nothing slow (or lock-acquiring) runs while a lock
is held.  The third convention lives in ``repro.core``: long-running
functions accept a cooperative ``cancel`` token and must actually poll or
forward it, otherwise serve-layer timeouts/cancellation silently rot.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from ..astutil import attr_chain, self_attr
from ..engine import ModuleContext, Project, Rule, Violation

__all__ = ["LockGuardRule", "LockHazardRule", "CancelPollRule", "collect_lock_info"]

_LOCK_INFO_KEY = "concurrency.lock_info"

#: Constructors whose result is a mutual-exclusion primitive.  ``new_lock``
#: is the sanitizer factory (``analysis/sanitizer.py``): it returns a plain
#: or order-checked lock depending on REPRO_LOCK_SANITIZER, and the
#: analyzer must see through it or go blind on the whole serve tier.
_LOCK_CTORS = {"Lock", "RLock", "Condition", "new_lock"}

#: Constructors whose instances are safe to mutate without a lock
#: (GIL-atomic mutations or dedicated synchronization primitives).
_ATOMIC_CTORS = {"deque", "Event", "Queue", "SimpleQueue", "LifoQueue", "PriorityQueue", "count"}

#: Method names that mutate their receiver in place.
_MUTATORS = {
    "append", "extend", "insert", "remove", "discard", "clear", "pop",
    "popitem", "update", "add", "setdefault", "sort", "reverse",
    "appendleft", "extendleft", "popleft", "move_to_end",
}

#: ``heapq`` functions that mutate their first argument.
_HEAP_MUTATORS = {"heappush", "heappop", "heapify", "heappushpop", "heapreplace"}


@dataclass
class ClassLockInfo:
    """What the analyzer knows about one class's locking structure."""

    name: str
    module: str
    lock_attrs: set[str] = field(default_factory=set)
    atomic_attrs: set[str] = field(default_factory=set)
    #: methods/properties whose body acquires one of ``lock_attrs``
    acquiring_members: set[str] = field(default_factory=set)
    #: self attribute -> simple class name assigned in ``__init__``
    attr_types: dict[str, str] = field(default_factory=dict)


def _ctor_name(value: ast.expr) -> str | None:
    """The simple constructor name of ``X(...)`` / ``mod.X(...)`` values.

    Sees through the shared-lock constructor pattern
    ``self._lock = lock if lock is not None else threading.Lock()`` by
    resolving the concrete branch of the ``IfExp`` — the attribute holds a
    mutex either way, so lock-owning classes using the pattern must not
    escape CNC201/CNC202.
    """
    if isinstance(value, ast.IfExp):
        return _ctor_name(value.body) or _ctor_name(value.orelse)
    if isinstance(value, ast.Call):
        chain = attr_chain(value.func)
        if chain:
            return chain[-1]
    return None


def _with_lock_attrs(node: ast.With, lock_attrs: set[str]) -> set[str]:
    """Lock attributes of ``self`` acquired by this ``with`` statement."""
    out: set[str] = set()
    for item in node.items:
        attr = self_attr(item.context_expr)
        if attr is not None and attr in lock_attrs:
            out.add(attr)
    return out


def collect_lock_info(project: Project) -> dict[str, ClassLockInfo]:
    """Pass 1: per-class lock structure, keyed by simple class name.

    Name collisions across modules keep the first definition seen — fine
    for a project linter where class names are unique in practice.
    """
    cached = project.shared.get(_LOCK_INFO_KEY)
    if cached is not None:
        return cached
    out: dict[str, ClassLockInfo] = {}
    for ctx in project.modules:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            info = ClassLockInfo(name=node.name, module=ctx.rel)
            for sub in ast.walk(node):
                target: ast.expr | None = None
                value: ast.expr | None = None
                if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                    target, value = sub.targets[0], sub.value
                elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                    target, value = sub.target, sub.value
                if target is not None and value is not None:
                    attr = self_attr(target)
                    if attr is None:
                        continue
                    ctor = _ctor_name(value)
                    if ctor in _LOCK_CTORS:
                        info.lock_attrs.add(attr)
                    elif ctor in _ATOMIC_CTORS:
                        info.atomic_attrs.add(attr)
                    elif ctor is not None:
                        info.attr_types[attr] = ctor
            if not info.lock_attrs:
                continue
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    for sub in ast.walk(item):
                        if isinstance(sub, ast.With) and _with_lock_attrs(sub, info.lock_attrs):
                            info.acquiring_members.add(item.name)
                            break
                        if isinstance(sub, ast.Call):
                            chain = attr_chain(sub.func)
                            if (
                                chain
                                and len(chain) == 3
                                and chain[0] == "self"
                                and chain[1] in info.lock_attrs
                                and chain[2] == "acquire"
                            ):
                                info.acquiring_members.add(item.name)
                                break
            out.setdefault(node.name, info)
    project.shared[_LOCK_INFO_KEY] = out
    return out


class LockGuardRule(Rule):
    """CNC201: in a lock-owning class, mutate shared attributes under a lock.

    A class that constructs a ``threading.Lock``/``RLock``/``Condition``
    declares that its state is shared across threads; every mutation of a
    ``self`` attribute outside ``__init__``/``__post_init__`` must then sit
    inside a ``with self.<lock>:`` block.  Attributes holding documented
    GIL-atomic containers (``deque``, ``queue.Queue``) or synchronization
    primitives (``Event``) are exempt, as are helpers named ``*_locked``
    (the project convention for "caller holds the lock").
    """

    rule_id = "CNC201"
    severity = "error"
    scope = ()
    summary = "lock-owning classes must mutate self attributes under their lock"

    def prepare(self, project: Project) -> None:
        collect_lock_info(project)

    def check(self, ctx: ModuleContext, project: Project) -> Iterator[Violation]:
        lock_info = collect_lock_info(project)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            info = lock_info.get(node.name)
            if info is None or info.module != ctx.rel or not info.lock_attrs:
                continue
            for item in node.body:
                if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if item.name in ("__init__", "__post_init__", "__new__"):
                    continue
                # ``*_locked`` names are the project convention for helpers
                # whose contract is "caller holds the lock" (depth_locked,
                # _evict_history_locked); the call sites are checked instead.
                if item.name.endswith("_locked"):
                    continue
                yield from self._check_body(ctx, info, item.body, guarded=False)

    def _check_body(
        self, ctx: ModuleContext, info: ClassLockInfo, body: list[ast.stmt], *, guarded: bool
    ) -> Iterator[Violation]:
        for stmt in body:
            yield from self._check_stmt(ctx, info, stmt, guarded=guarded)

    _SIMPLE_STMTS = (
        ast.Assign,
        ast.AugAssign,
        ast.AnnAssign,
        ast.Delete,
        ast.Expr,
        ast.Return,
        ast.Raise,
        ast.Assert,
    )

    def _check_stmt(
        self, ctx: ModuleContext, info: ClassLockInfo, stmt: ast.stmt, *, guarded: bool
    ) -> Iterator[Violation]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # A nested def runs later, outside this lock scope; treat its
            # body as unguarded.
            for sub in ast.iter_child_nodes(stmt):
                if isinstance(sub, ast.stmt):
                    yield from self._check_stmt(ctx, info, sub, guarded=False)
            return
        if isinstance(stmt, ast.With):
            inner_guarded = guarded or bool(_with_lock_attrs(stmt, info.lock_attrs))
            yield from self._check_body(ctx, info, stmt.body, guarded=inner_guarded)
            return
        if isinstance(stmt, self._SIMPLE_STMTS):
            if not guarded:
                yield from self._check_mutations(ctx, info, stmt)
            return
        # Compound statement (if/for/while/try/match): its own expressions
        # (test, iter, ...) may hide mutator calls; its nested statements
        # are checked recursively with the current guard state.
        if not guarded:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    yield from self._flag_mutator_calls(ctx, info, child)
        for child in self._stmt_children(stmt):
            yield from self._check_stmt(ctx, info, child, guarded=guarded)

    @staticmethod
    def _stmt_children(stmt: ast.stmt) -> Iterator[ast.stmt]:
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                yield child
            elif isinstance(child, (ast.ExceptHandler, ast.match_case)):
                for sub in ast.iter_child_nodes(child):
                    if isinstance(sub, ast.stmt):
                        yield sub

    def _check_mutations(
        self, ctx: ModuleContext, info: ClassLockInfo, stmt: ast.stmt
    ) -> Iterator[Violation]:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets.extend(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets.append(stmt.target)
        elif isinstance(stmt, ast.Delete):
            targets.extend(stmt.targets)
        for target in targets:
            for leaf in ast.walk(target):
                attr = self_attr(leaf)
                if isinstance(leaf, ast.Subscript):
                    attr = self_attr(leaf.value)
                if attr is not None and attr not in info.atomic_attrs:
                    yield self.violation(
                        ctx,
                        stmt,
                        f"mutation of self.{attr} outside `with "
                        f"self.{sorted(info.lock_attrs)[0]}:` in lock-owning class "
                        f"{info.name}; guard it or mark the attribute single-threaded",
                    )
                    break
            else:
                continue
            break
        # Mutator method calls can hide anywhere in an expression statement.
        yield from self._flag_mutator_calls(ctx, info, stmt)

    def _flag_mutator_calls(
        self, ctx: ModuleContext, info: ClassLockInfo, node: ast.AST
    ) -> Iterator[Violation]:
        for sub in ast.walk(node):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if not isinstance(sub, ast.Call):
                continue
            chain = attr_chain(sub.func)
            if chain is None:
                continue
            if (
                len(chain) == 3
                and chain[0] == "self"
                and chain[2] in _MUTATORS
                and chain[1] not in info.atomic_attrs
                and chain[1] not in info.lock_attrs
            ):
                yield self.violation(
                    ctx,
                    sub,
                    f"in-place mutation self.{chain[1]}.{chain[2]}() outside a "
                    f"`with` on one of {sorted(info.lock_attrs)} in lock-owning "
                    f"class {info.name}",
                )
            elif len(chain) == 2 and chain[0] == "heapq" and chain[1] in _HEAP_MUTATORS:
                if sub.args:
                    attr = self_attr(sub.args[0])
                    if attr is not None and attr not in info.atomic_attrs:
                        yield self.violation(
                            ctx,
                            sub,
                            f"heapq.{chain[1]}(self.{attr}, ...) mutates shared state "
                            f"outside a lock in lock-owning class {info.name}",
                        )


class LockHazardRule(Rule):
    """CNC202: nothing blocking or lock-acquiring runs while holding a lock.

    Flags, inside ``with self.<lock>:`` blocks of a lock-owning class:
    nested acquisition of a *different* own lock (lock-ordering hazard),
    calls/property reads on attributes typed as other lock-owning classes
    whose member acquires *their* internal lock (cross-object deadlock
    ordering), and known blocking calls (``time.sleep``, ``subprocess.*``,
    thread ``join``, HTTP, ``.result()``, pool ``map``).  ``wait``/
    ``notify`` on the held condition itself is the sanctioned pattern and
    exempt.
    """

    rule_id = "CNC202"
    severity = "error"
    scope = ()
    summary = "no blocking or lock-acquiring calls while holding a lock"

    _BLOCKING_CHAINS = {
        ("time", "sleep"),
        ("socket", "create_connection"),
    }
    _BLOCKING_PREFIXES = (("subprocess",), ("requests",))
    _POOLISH = ("pool", "executor")

    def prepare(self, project: Project) -> None:
        collect_lock_info(project)

    def check(self, ctx: ModuleContext, project: Project) -> Iterator[Violation]:
        lock_info = collect_lock_info(project)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            info = lock_info.get(node.name)
            if info is None or info.module != ctx.rel or not info.lock_attrs:
                continue
            for sub in ast.walk(node):
                if isinstance(sub, ast.With):
                    held = _with_lock_attrs(sub, info.lock_attrs)
                    if held:
                        yield from self._check_held_body(
                            ctx, info, lock_info, sub.body, held
                        )

    def _check_held_body(
        self,
        ctx: ModuleContext,
        info: ClassLockInfo,
        lock_info: dict[str, ClassLockInfo],
        body: list[ast.stmt],
        held: set[str],
    ) -> Iterator[Violation]:
        held_name = sorted(held)[0]
        for stmt in body:
            for node in self._walk_same_frame(stmt):
                if isinstance(node, ast.With):
                    other = _with_lock_attrs(node, info.lock_attrs) - held
                    for attr in sorted(other):
                        yield self.violation(
                            ctx,
                            node,
                            f"acquires self.{attr} while already holding "
                            f"self.{held_name} (lock-ordering hazard); restructure to "
                            "hold one lock at a time",
                        )
                if isinstance(node, ast.Call):
                    yield from self._check_call(ctx, info, lock_info, node, held, held_name)
                elif isinstance(node, ast.Attribute):
                    yield from self._check_property(
                        ctx, info, lock_info, node, held_name
                    )

    @staticmethod
    def _walk_same_frame(root: ast.stmt) -> Iterator[ast.AST]:
        """Walk without descending into nested defs (they run later)."""
        stack: list[ast.AST] = [root]
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)):
                continue
            stack.extend(ast.iter_child_nodes(node))

    def _check_call(
        self,
        ctx: ModuleContext,
        info: ClassLockInfo,
        lock_info: dict[str, ClassLockInfo],
        node: ast.Call,
        held: set[str],
        held_name: str,
    ) -> Iterator[Violation]:
        chain = attr_chain(node.func)
        if chain is None:
            # ``"sep".join(...)`` and other computed callees: only the
            # str-constant join case arises in practice; skip.
            return
        if chain in self._BLOCKING_CHAINS or any(
            chain[: len(p)] == p for p in self._BLOCKING_PREFIXES
        ):
            yield self.violation(
                ctx,
                node,
                f"blocking call {'.'.join(chain)} while holding self.{held_name}",
            )
            return
        if chain[-1] == "urlopen":
            yield self.violation(
                ctx, node, f"HTTP call {'.'.join(chain)} while holding self.{held_name}"
            )
            return
        if chain[-1] == "result" and not node.args and not node.keywords:
            yield self.violation(
                ctx,
                node,
                f"future.result() may block indefinitely while holding self.{held_name}",
            )
            return
        if chain[-1] == "join" and self._is_thread_join(node, chain):
            yield self.violation(
                ctx,
                node,
                f"thread/process join {'.'.join(chain)}() while holding self.{held_name}",
            )
            return
        if (
            chain[-1] in ("map", "imap", "imap_unordered", "starmap", "submit")
            and len(chain) >= 2
            and any(p in chain[-2].lower() for p in self._POOLISH)
        ):
            yield self.violation(
                ctx,
                node,
                f"pool dispatch {'.'.join(chain)}(...) while holding self.{held_name}",
            )
            return
        if chain[-1] in ("wait", "wait_for"):
            # Waiting on the held condition releases it — sanctioned.
            if len(chain) == 3 and chain[0] == "self" and chain[1] in held:
                return
            yield self.violation(
                ctx,
                node,
                f"{'.'.join(chain)}() blocks while holding self.{held_name} "
                "(only the held condition itself may wait)",
            )
            return
        # Cross-object lock acquisition: self.<attr>.<member>() where
        # <attr> is an instance of another lock-owning class and <member>
        # takes that class's internal lock.
        if len(chain) == 3 and chain[0] == "self":
            target = lock_info.get(info.attr_types.get(chain[1], ""))
            if target is not None and chain[2] in target.acquiring_members:
                yield self.violation(
                    ctx,
                    node,
                    f"self.{chain[1]}.{chain[2]}() acquires {target.name}'s internal "
                    f"lock while holding self.{held_name}; move it outside the locked "
                    "region (lock-ordering hazard)",
                )

    def _check_property(
        self,
        ctx: ModuleContext,
        info: ClassLockInfo,
        lock_info: dict[str, ClassLockInfo],
        node: ast.Attribute,
        held_name: str,
    ) -> Iterator[Violation]:
        chain = attr_chain(node)
        if chain is None or len(chain) != 3 or chain[0] != "self":
            return
        target = lock_info.get(info.attr_types.get(chain[1], ""))
        if target is not None and chain[2] in target.acquiring_members:
            yield self.violation(
                ctx,
                node,
                f"self.{chain[1]}.{chain[2]} acquires {target.name}'s internal lock "
                f"while holding self.{held_name}; read it before taking the lock",
            )

    @staticmethod
    def _is_thread_join(node: ast.Call, chain: tuple[str, ...]) -> bool:
        """Distinguish ``thread.join(timeout?)`` from ``str.join(iterable)``."""
        if node.keywords:
            return any(kw.arg == "timeout" for kw in node.keywords)
        if not node.args:
            return True
        if len(node.args) == 1:
            arg = node.args[0]
            return isinstance(arg, ast.Constant) and (
                arg.value is None or isinstance(arg.value, (int, float))
            )
        return False


class CancelPollRule(Rule):
    """CNC203: a ``cancel`` token accepted must be polled or forwarded.

    ``repro.serve`` job timeouts and ``DELETE /v1/jobs/<id>`` rely on every
    long-running ``core`` function cooperating: a function that accepts a
    ``cancel`` parameter but neither calls ``check_cancel``/``is_set`` nor
    passes the token to a callee silently breaks cancellation for every
    caller above it.
    """

    rule_id = "CNC203"
    severity = "error"
    scope = ("core",)
    summary = "core functions accepting `cancel` must poll or forward it"

    def check(self, ctx: ModuleContext, project: Project) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            params = [a.arg for a in node.args.args + node.args.kwonlyargs]
            if "cancel" not in params:
                continue
            if self._uses_cancel(node):
                continue
            yield self.violation(
                ctx,
                node,
                f"function {node.name} accepts `cancel` but never polls "
                "(check_cancel / cancel.is_set()) or forwards it; cooperative "
                "cancellation silently breaks here",
            )

    @staticmethod
    def _uses_cancel(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if chain is not None and chain[-1] == "check_cancel":
                return True
            if chain is not None and chain == ("cancel", "is_set"):
                return True
            for arg in node.args:
                if isinstance(arg, ast.Name) and arg.id == "cancel":
                    return True
            for kw in node.keywords:
                if kw.arg == "cancel" or (
                    isinstance(kw.value, ast.Name) and kw.value.id == "cancel"
                ):
                    return True
        return False
