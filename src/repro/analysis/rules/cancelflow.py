"""CNC205: interprocedural cancel-token propagation.

CNC203 is a single-hop heuristic: a function accepting ``cancel`` must
poll it *or pass the token to any callee*.  That lets a token die two
calls deep — ``f(cancel)`` forwards to ``g(cancel)``, but ``g`` calls the
actual candidate loop ``h`` without it, and serve-layer timeouts /
``DELETE /v1/jobs/<id>`` silently stop interrupting the solve.

This rule walks the resolved call graph instead: for every function that
accepts a ``cancel`` parameter, every same-frame call to a project
function that *also accepts cancel* and *transitively loops over work*
must forward the token.  A loopy callee that cooperates (accepts
``cancel``) but is invoked without it is exactly the place cancellation
rots; a callee that does not accept the token at all is CNC203's
problem at its own definition site, not the caller's.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..callgraph import build_callgraph, resolve_call
from ..engine import ModuleContext, Project, Rule, Violation
from ..ir import build_project_ir, module_name

__all__ = ["CancelFlowRule"]

_TOKEN_PARAMS = ("cancel", "check_cancel")


def _forwards_token(call: ast.Call) -> bool:
    """Whether *call* passes a cancel token through (by name or keyword)."""
    for arg in call.args:
        if isinstance(arg, ast.Name) and arg.id in _TOKEN_PARAMS:
            return True
    for kw in call.keywords:
        if kw.arg in _TOKEN_PARAMS:
            return True
        if isinstance(kw.value, ast.Name) and kw.value.id in _TOKEN_PARAMS:
            return True
    return False


class CancelFlowRule(Rule):
    """CNC205: forward ``cancel`` into every loopy callee that accepts it."""

    rule_id = "CNC205"
    severity = "error"
    scope = ("core",)
    summary = "cancel tokens must reach every transitive callee that loops over work"

    def prepare(self, project: Project) -> None:
        build_callgraph(build_project_ir(project), shared=project.shared)

    def check(self, ctx: ModuleContext, project: Project) -> Iterator[Violation]:
        ir = build_project_ir(project)
        cg = build_callgraph(ir, shared=project.shared)
        mod = ir.modules.get(ctx.rel)
        if mod is None:
            return
        functions = list(mod.functions.values()) + [
            m for cls in mod.classes.values() for m in cls.methods.values()
        ]
        for fn in sorted(functions, key=lambda f: f.node.lineno):
            if not any(p in _TOKEN_PARAMS for p in fn.params):
                continue
            for site in fn.calls:
                callee = resolve_call(site.chain, fn, ir)
                if callee is None or callee.qualname == fn.qualname:
                    continue
                if not any(p in _TOKEN_PARAMS for p in callee.params):
                    continue
                if not cg.loop_reach(callee.qualname):
                    continue
                if _forwards_token(site.node):
                    continue
                label = f"{callee.cls}.{callee.name}" if callee.cls else callee.name
                yield self.violation(
                    ctx,
                    site.node,
                    f"{fn.name} holds a cancel token but calls {label} "
                    f"({module_name(callee.rel)}) — which loops over work and accepts "
                    "cancel — without forwarding it; timeouts and DELETE "
                    "/v1/jobs/<id> cannot interrupt that call",
                )
