"""Strict-typing rules (TYP6xx).

These mirror the load-bearing half of ``mypy --strict``
(``disallow_untyped_defs`` and ``disallow_any_generics``) as AST checks,
so the typing gate is enforceable in environments where mypy itself is
not installed (``scripts/typecheck.sh`` skips gracefully there).  Scope
matches the mypy config in ``pyproject.toml``: ``model``, ``geometry``,
``obs``, ``serve``, plus this package.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import ModuleContext, Project, Rule, Violation

__all__ = ["AnnotationsRequiredRule", "BareGenericRule"]

_TYPED_SCOPE = ("model", "geometry", "obs", "serve", "analysis")

#: Builtin/typing containers that must be parameterized in annotations.
_GENERIC_NAMES = {
    "dict", "list", "set", "frozenset", "tuple", "type",
    "Dict", "List", "Set", "FrozenSet", "Tuple", "Type",
    "Callable", "Iterator", "Iterable", "Sequence", "Mapping",
    "MutableMapping", "Optional", "deque",
}


class AnnotationsRequiredRule(Rule):
    """TYP601: every function in the typed packages is fully annotated.

    This is mypy-strict's ``disallow_untyped_defs``/``disallow_incomplete_defs``:
    every parameter (except ``self``/``cls``) and every return type must be
    annotated, including ``-> None`` on procedures and ``__init__``.
    """

    rule_id = "TYP601"
    severity = "error"
    scope = _TYPED_SCOPE
    summary = "all functions must annotate every parameter and the return type"

    def check(self, ctx: ModuleContext, project: Project) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            missing: list[str] = []
            args = node.args
            positional = args.posonlyargs + args.args
            for i, arg in enumerate(positional):
                if i == 0 and arg.arg in ("self", "cls"):
                    continue
                if arg.annotation is None:
                    missing.append(arg.arg)
            missing.extend(a.arg for a in args.kwonlyargs if a.annotation is None)
            if args.vararg is not None and args.vararg.annotation is None:
                missing.append("*" + args.vararg.arg)
            if args.kwarg is not None and args.kwarg.annotation is None:
                missing.append("**" + args.kwarg.arg)
            if node.returns is None:
                missing.append("return")
            if missing:
                yield self.violation(
                    ctx,
                    node,
                    f"function {node.name!r} is missing annotations for: "
                    + ", ".join(missing),
                )


class BareGenericRule(Rule):
    """TYP602: no bare generic types in annotations.

    mypy-strict's ``disallow_any_generics``: ``-> dict`` is really
    ``-> dict[Any, Any]`` and silently turns every downstream access into
    ``Any``.  Spell the parameters (``dict[str, Any]`` is fine — the point
    is that widening to ``Any`` is visible and deliberate).
    """

    rule_id = "TYP602"
    severity = "error"
    scope = _TYPED_SCOPE
    summary = "generic types in annotations must be parameterized"

    def check(self, ctx: ModuleContext, project: Project) -> Iterator[Violation]:
        for ann in self._annotations(ctx.tree):
            for loc, name in self._bare_generics(ann):
                yield self.violation(
                    ctx,
                    loc,
                    f"bare generic {name!r} in annotation; spell the type "
                    "parameters (Any is allowed but must be explicit)",
                )

    @staticmethod
    def _annotations(tree: ast.Module) -> Iterator[ast.expr]:
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                for arg in args.posonlyargs + args.args + args.kwonlyargs:
                    if arg.annotation is not None:
                        yield arg.annotation
                for vararg in (args.vararg, args.kwarg):
                    if vararg is not None and vararg.annotation is not None:
                        yield vararg.annotation
                if node.returns is not None:
                    yield node.returns
            elif isinstance(node, ast.AnnAssign):
                yield node.annotation

    @classmethod
    def _bare_generics(cls, ann: ast.expr) -> Iterator[tuple[ast.expr, str]]:
        """``(location_node, name)`` for each unsubscripted generic in *ann*.

        A string annotation (``"dict"``/forward ref) is parsed and scanned
        the same way, with the violation anchored at the original string
        node (parsed nodes carry line numbers relative to the string);
        unparsable strings are ignored.
        """
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            try:
                parsed = ast.parse(ann.value, mode="eval")
            except SyntaxError:
                return
            for _, name in cls._bare_generics(parsed.body):
                yield ann, name
            return
        subscript_values: set[int] = set()
        for node in ast.walk(ann):
            if isinstance(node, ast.Subscript):
                subscript_values.add(id(node.value))
        for node in ast.walk(ann):
            name = cls._name_of(node)
            if name in _GENERIC_NAMES and id(node) not in subscript_values:
                yield node, name

    @staticmethod
    def _name_of(node: ast.AST) -> str | None:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        return None
