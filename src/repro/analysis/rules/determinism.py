"""Determinism rules (DET1xx).

The (1+ε)-approximation argument of the paper is only reproducible if a
solve is a pure function of ``(scenario, params, seed)``: the discretized
candidate set, the greedy tie-breaks, and hence the reported utilities must
be bit-stable across runs and across ``workers=N``.  These rules keep the
three classic leaks out of the numeric core (``core/``, ``model/``,
``geometry/``): global/unseeded RNG state, wall-clock reads, and
hash-order iteration.  The published entry points — ``benchmarks/`` and
``examples/`` — are held to the same bar: a paper figure regenerated from
a benchmark script must not drift with the date or ``PYTHONHASHSEED`` any
more than the solver itself may.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import call_name
from ..engine import ModuleContext, Project, Rule, Violation

__all__ = ["UnseededRandomRule", "WallClockRule", "SetIterationRule"]

_NUMERIC_SCOPE = ("core", "model", "geometry", "benchmarks", "examples")

#: np.random members that construct *seedable* RNG state (allowed).
_SEEDABLE = {"default_rng", "Generator", "SeedSequence", "PCG64", "Philox", "MT19937"}


class UnseededRandomRule(Rule):
    """DET101: no global/unseeded RNG in the numeric core.

    ``random.*`` and ``np.random.<fn>()`` (the legacy global generator)
    draw from interpreter-global state, so results depend on import order
    and prior calls.  Core code must accept an explicit
    ``np.random.Generator`` (seeded by the caller) instead.
    """

    rule_id = "DET101"
    severity = "error"
    # The numeric core plus the workload generators: every registered
    # scenario generator must take its randomness explicitly too.
    scope = _NUMERIC_SCOPE + ("generators.py",)
    summary = "no global/unseeded random or np.random calls in the numeric core"

    def check(self, ctx: ModuleContext, project: Project) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = call_name(node)
            if chain is None:
                continue
            if chain[0] == "random" and len(chain) == 2:
                yield self.violation(
                    ctx,
                    node,
                    f"call to global-state RNG random.{chain[1]}; take an explicit "
                    "np.random.Generator parameter instead",
                )
            elif (
                len(chain) == 3
                and chain[0] in ("np", "numpy")
                and chain[1] == "random"
                and chain[2] not in _SEEDABLE
            ):
                yield self.violation(
                    ctx,
                    node,
                    f"call to legacy global RNG np.random.{chain[2]}; use an explicit "
                    "np.random.default_rng(seed) Generator",
                )


class WallClockRule(Rule):
    """DET102: no wall-clock reads in the numeric core.

    ``time.time`` / ``datetime.now`` leak the current date into whatever
    consumes them, making solver outputs (or cache keys derived from them)
    run-dependent.  Duration measurement via ``time.perf_counter`` /
    ``time.monotonic`` / ``time.process_time`` is explicitly fine.
    """

    rule_id = "DET102"
    severity = "error"
    scope = _NUMERIC_SCOPE
    summary = "no wall-clock reads (time.time, datetime.now) in the numeric core"

    _TIME_FNS = {"time", "time_ns", "localtime", "gmtime", "ctime", "asctime"}
    _DATE_FNS = {"now", "utcnow", "today"}

    def check(self, ctx: ModuleContext, project: Project) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = call_name(node)
            if chain is None or len(chain) < 2:
                continue
            if chain[0] == "time" and chain[-1] in self._TIME_FNS:
                yield self.violation(
                    ctx,
                    node,
                    f"wall-clock read time.{chain[-1]}; solver code may only measure "
                    "durations (perf_counter/monotonic/process_time)",
                )
            elif chain[-1] in self._DATE_FNS and any(
                part in ("datetime", "date") for part in chain[:-1]
            ):
                yield self.violation(
                    ctx,
                    node,
                    f"wall-clock read {'.'.join(chain)}; solver results must not "
                    "depend on the current date",
                )


class SetIterationRule(Rule):
    """DET103: no iteration over set expressions in the numeric core.

    Set iteration order follows hash order, which for str/bytes keys varies
    with ``PYTHONHASHSEED`` — feeding such an order into float accumulation
    or candidate emission silently breaks bit-stability across runs.  Wrap
    the expression in ``sorted(...)`` to pin the order.
    """

    rule_id = "DET103"
    severity = "error"
    scope = _NUMERIC_SCOPE
    summary = "no hash-ordered iteration (for x in set(...)) in the numeric core"

    def check(self, ctx: ModuleContext, project: Project) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if self._is_set_expr(it):
                    yield self.violation(
                        ctx,
                        it,
                        "iterating a set has PYTHONHASHSEED-dependent order; wrap the "
                        "expression in sorted(...) before iterating",
                    )

    @staticmethod
    def _is_set_expr(node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            chain = call_name(node)
            if chain is not None and chain[-1] in ("set", "frozenset"):
                return True
            # set arithmetic like a | b is untypeable statically; stop here.
        return False
