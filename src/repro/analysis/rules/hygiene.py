"""Numeric and observability hygiene rules (NUM3xx, OBS4xx, PCK5xx).

The geometry kernels implement Lemma 4.1's distance-level discretization
and the Algorithm-1 rotational sweep, where every boundary case (device on
a cone edge, position on a ring) is decided by floating-point predicates.
Exact ``==`` on computed floats makes those decisions platform- and
optimization-level-dependent; the project convention is epsilon helpers
(``repro.geometry.primitives.EPS``, ``math.isclose``).  The observability
and pool rules keep traces well-formed (spans must close exception-safely,
which only the context-manager form guarantees) and worker payloads
picklable by construction.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import attr_chain
from ..engine import ModuleContext, Project, Rule, Violation

__all__ = ["FloatEqualityRule", "SpanContextRule", "PicklableTaskRule"]

_MATH_FLOAT_FNS = {
    "sqrt", "hypot", "atan2", "cos", "sin", "tan", "acos", "asin", "atan",
    "exp", "log", "log2", "log10", "fabs", "fmod", "dist", "degrees", "radians",
}


class FloatEqualityRule(Rule):
    """NUM301: no bare ``==``/``!=`` on float expressions in numeric code.

    Flags equality comparisons where an operand is a float literal, a
    ``float(...)`` cast, a ``math.<fn>`` result, or an arithmetic
    expression involving true division — all poster children for exact
    comparisons that hold on one platform and fail on another.  Use
    ``math.isclose`` or ``abs(a - b) <= EPS``
    (``repro.geometry.primitives.EPS``) instead.
    """

    rule_id = "NUM301"
    severity = "error"
    scope = ("geometry", "core", "model", "opt", "experiments", "extensions", "baselines")
    summary = "no bare ==/!= on float expressions; use epsilon helpers"

    def check(self, ctx: ModuleContext, project: Project) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                floaty = next(
                    (o for o in (left, right) if self._is_floaty(o)), None
                )
                if floaty is not None:
                    yield self.violation(
                        ctx,
                        node,
                        "exact ==/!= on a float expression; use math.isclose or "
                        "abs(a - b) <= EPS (repro.geometry.primitives.EPS)",
                    )
                    break

    @classmethod
    def _is_floaty(cls, node: ast.expr) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.UnaryOp):
            return cls._is_floaty(node.operand)
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Div):
                return True
            return cls._is_floaty(node.left) or cls._is_floaty(node.right)
        if isinstance(node, ast.Call):
            chain = attr_chain(node.func)
            if chain is None:
                return False
            if chain == ("float",):
                return True
            if len(chain) == 2 and chain[0] in ("math", "np", "numpy") and chain[1] in _MATH_FLOAT_FNS:
                return True
        return False


class SpanContextRule(Rule):
    """OBS401: tracer spans must be opened as context managers.

    ``Tracer.span`` is a ``@contextmanager``; calling it without ``with``
    either never opens the span or — worse — opens a generator that is
    finalized at GC time, producing traces whose parent intervals do not
    contain their children (the ``repro.trace/v1`` validator rejects
    those).  The ``with`` form is also what guarantees the
    ``status="error"`` close on exceptions.
    """

    rule_id = "OBS401"
    severity = "error"
    scope = ()
    summary = "Tracer.span(...) must be used as `with tracer.span(...):`"

    def check(self, ctx: ModuleContext, project: Project) -> Iterator[Violation]:
        with_calls: set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if isinstance(item.context_expr, ast.Call):
                        with_calls.add(id(item.context_expr))
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if chain is None or chain[-1] != "span" or len(chain) < 2:
                continue
            if id(node) not in with_calls:
                yield self.violation(
                    ctx,
                    node,
                    f"{'.'.join(chain)}(...) outside a `with` block; spans must use "
                    "the context-manager form to close exception-safely",
                )


class PicklableTaskRule(Rule):
    """PCK501: pool task payloads must be picklable by construction.

    ``ProcessPoolExecutor``/``multiprocessing`` pickle the callable and its
    arguments; lambdas and functions nested inside another function are not
    picklable and fail only at runtime, inside the pool, with an opaque
    error.  Task callables shipped to ``pool.map``-style APIs must be
    module-level functions.
    """

    rule_id = "PCK501"
    severity = "error"
    scope = ()
    summary = "no lambdas or nested functions shipped to pool.map/submit"

    _DISPATCH = {"map", "imap", "imap_unordered", "starmap", "apply_async", "submit"}
    _POOLISH = ("pool", "executor")

    def check(self, ctx: ModuleContext, project: Project) -> Iterator[Violation]:
        nested_defs = self._nested_function_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if (
                chain is None
                or len(chain) < 2
                or chain[-1] not in self._DISPATCH
                or not any(p in chain[-2].lower() for p in self._POOLISH)
            ):
                continue
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(arg, ast.Lambda):
                    yield self.violation(
                        ctx,
                        arg,
                        f"lambda passed to {'.'.join(chain)}(); lambdas are not "
                        "picklable — use a module-level function",
                    )
                elif isinstance(arg, ast.Name) and arg.id in nested_defs:
                    yield self.violation(
                        ctx,
                        arg,
                        f"nested function {arg.id!r} passed to {'.'.join(chain)}(); "
                        "closures are not picklable — hoist it to module level",
                    )

    @staticmethod
    def _nested_function_names(tree: ast.Module) -> set[str]:
        """Names of functions defined inside another function."""
        nested: set[str] = set()

        def visit(node: ast.AST, inside_function: bool) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if inside_function:
                        nested.add(child.name)
                    visit(child, True)
                elif isinstance(child, ast.ClassDef):
                    # Methods are attribute accesses, not bare names.
                    visit(child, False)
                else:
                    visit(child, inside_function)

        visit(tree, False)
        return nested
