"""Variation-purity rule (VAR8xx).

The replayability contract of :mod:`repro.variation` is that every
generated scenario — and every reported violation — is a pure function of
its ``(family, params, seed)`` stamp.  One impure read (wall clock,
global RNG, ambient environment) silently breaks bit-replay of repro
files, the worst kind of differential-testing bug: the harness that is
supposed to catch nondeterminism becomes nondeterministic itself.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import call_name
from ..engine import ModuleContext, Project, Rule, Violation

__all__ = ["PureVariationRule"]

#: np.random members that construct *seedable* RNG state (allowed).
_SEEDABLE = {"default_rng", "Generator", "SeedSequence", "PCG64", "Philox", "MT19937"}


class PureVariationRule(Rule):
    """VAR801: variation code must be pure in ``(params, seed)``.

    Flags, anywhere under ``src/repro/variation/``:

    * wall-clock reads (``time.time``/``time_ns``/``localtime``/…,
      ``datetime.now``/``utcnow``/``today``) — duration probes like
      ``perf_counter`` are equally banned here: even *timing* must not
      leak into reports, which are asserted bit-reproducible;
    * global/unseeded RNG (``random.*``, legacy ``np.random.<fn>()``) —
      all randomness must flow from the stamped seed;
    * ambient environment reads (``os.environ[...]``,
      ``os.environ.get``, ``os.getenv``) — configuration must arrive as
      explicit parameters so a repro file alone pins the behavior.
    """

    rule_id = "VAR801"
    severity = "error"
    scope = ("variation",)
    summary = "variation families/harness must be pure functions of (params, seed)"

    _TIME_FNS = {
        "time",
        "time_ns",
        "localtime",
        "gmtime",
        "ctime",
        "asctime",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
    }
    _DATE_FNS = {"now", "utcnow", "today"}

    def check(self, ctx: ModuleContext, project: Project) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Subscript):
                chain = self._attr_chain(node.value)
                if chain == ("os", "environ"):
                    yield self.violation(
                        ctx,
                        node,
                        "ambient os.environ read; variation code must take explicit "
                        "parameters so (family, params, seed) replays bit-for-bit",
                    )
                continue
            if not isinstance(node, ast.Call):
                continue
            chain = call_name(node)
            if chain is None:
                continue
            if chain[0] == "time" and chain[-1] in self._TIME_FNS:
                yield self.violation(
                    ctx,
                    node,
                    f"clock read time.{chain[-1]}; variation output (including "
                    "reports) is asserted bit-reproducible, so no timing may leak in",
                )
            elif chain[-1] in self._DATE_FNS and any(
                part in ("datetime", "date") for part in chain[:-1]
            ):
                yield self.violation(
                    ctx,
                    node,
                    f"wall-clock read {'.'.join(chain)}; scenario generation must "
                    "not depend on the current date",
                )
            elif chain[0] == "random" and len(chain) == 2:
                yield self.violation(
                    ctx,
                    node,
                    f"global-state RNG random.{chain[1]}; derive all randomness "
                    "from the stamped seed via np.random.SeedSequence",
                )
            elif (
                len(chain) == 3
                and chain[0] in ("np", "numpy")
                and chain[1] == "random"
                and chain[2] not in _SEEDABLE
            ):
                yield self.violation(
                    ctx,
                    node,
                    f"legacy global RNG np.random.{chain[2]}; derive all randomness "
                    "from the stamped seed via np.random.SeedSequence",
                )
            elif chain in (("os", "environ", "get"), ("os", "getenv")):
                yield self.violation(
                    ctx,
                    node,
                    "ambient environment read; variation code must take explicit "
                    "parameters so (family, params, seed) replays bit-for-bit",
                )

    @staticmethod
    def _attr_chain(node: ast.expr) -> tuple[str, ...] | None:
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return tuple(reversed(parts))
        return None
