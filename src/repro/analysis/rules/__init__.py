"""Rule registry for ``repro.analysis``.

``default_rules()`` is the canonical rule set; the engine, the CLI, and
``lint_summary`` all go through it.  New rules register by being added to
``_RULE_CLASSES`` — keep the list sorted by rule ID so ``--list-rules``
output is stable.
"""

from __future__ import annotations

from ..engine import Rule
from .backend import BackendPurityRule, LazyAcceleratorImportRule
from .cancelflow import CancelFlowRule
from .concurrency import CancelPollRule, LockGuardRule, LockHazardRule
from .contextvars import ContextVarScopeRule
from .determinism import SetIterationRule, UnseededRandomRule, WallClockRule
from .hygiene import FloatEqualityRule, PicklableTaskRule, SpanContextRule
from .lockorder import LockOrderRule
from .typing_rules import AnnotationsRequiredRule, BareGenericRule
from .variation import PureVariationRule

__all__ = ["default_rules"]

_RULE_CLASSES: tuple[type[Rule], ...] = (
    LazyAcceleratorImportRule,  # BKD701
    BackendPurityRule,       # BKD702
    UnseededRandomRule,      # DET101
    WallClockRule,           # DET102
    SetIterationRule,        # DET103
    LockGuardRule,           # CNC201
    LockHazardRule,          # CNC202
    CancelPollRule,          # CNC203
    LockOrderRule,           # CNC204
    CancelFlowRule,          # CNC205
    ContextVarScopeRule,     # CTX901
    FloatEqualityRule,       # NUM301
    SpanContextRule,         # OBS401
    PicklableTaskRule,       # PCK501
    AnnotationsRequiredRule, # TYP601
    BareGenericRule,         # TYP602
    PureVariationRule,       # VAR801
)


def default_rules() -> list[Rule]:
    """Fresh instances of every registered rule, sorted by rule ID."""
    return sorted((cls() for cls in _RULE_CLASSES), key=lambda r: r.rule_id)
