"""CTX901: ContextVar scope hygiene.

The project's two ambient states — the active compute backend
(``repro.backend._ACTIVE``) and the ambient candidate cache
(``repro.core.reuse._ACTIVE_CACHE``) — are ContextVars scoped by
``use_backend()`` / ``use_candidate_cache()``.  A leaked scope is a
cross-request contamination bug in the threaded serve tier: one request's
backend choice or cache bleeds into the next request on the same thread.

The contract, enforced here:

* ``ContextVar.set()`` happens only inside a *scope helper* (a
  ``@contextmanager`` function) or a ``activate_*`` function (the
  documented pool-worker process-initializer convention, which installs
  ambient state for a worker's whole lifetime on purpose).
* Inside a scope helper the token is kept (``token = VAR.set(...)``) and
  reset in a ``finally`` block, so the scope unwinds on *every* path —
  including exceptions thrown by the body the helper wraps.
* A scope helper's call result is never discarded: a bare
  ``use_backend("numpy")`` statement silently does nothing (the generator
  is never entered).  It must be used as ``with use_backend(...):`` (or
  stored/passed to ``enter_context``, which the rule allows).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import attr_chain, walk_with_parents
from ..engine import ModuleContext, Project, Rule, Violation
from ..ir import build_project_ir

__all__ = ["ContextVarScopeRule"]

_HELPERS_KEY = "contextvars.scope_helpers"


def _is_contextmanager(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for dec in fn.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        chain = attr_chain(target)
        if chain and chain[-1] in ("contextmanager", "asynccontextmanager"):
            return True
    return False


def _enclosing_function(
    ancestors: list[ast.AST],
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    for node in reversed(ancestors):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return node
    return None


def _collect_scope_helpers(project: Project) -> set[str]:
    """Simple names of every ``@contextmanager`` helper that sets a
    module ContextVar anywhere in the project."""
    cached = project.shared.get(_HELPERS_KEY)
    if isinstance(cached, set):
        return cached
    ir = build_project_ir(project)
    helpers: set[str] = set()
    for rel in sorted(ir.modules):
        mod = ir.modules[rel]
        if not mod.contextvars:
            continue
        for node in ast.walk(mod.ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _is_contextmanager(node):
                continue
            for sub in ast.walk(node):
                if isinstance(sub, ast.Call):
                    chain = attr_chain(sub.func)
                    if (
                        chain is not None
                        and len(chain) == 2
                        and chain[0] in mod.contextvars
                        and chain[1] == "set"
                    ):
                        helpers.add(node.name)
                        break
    project.shared[_HELPERS_KEY] = helpers
    return helpers


class ContextVarScopeRule(Rule):
    """CTX901: ContextVars are set only in scope helpers; tokens always reset."""

    rule_id = "CTX901"
    severity = "error"
    scope = ()
    summary = "ContextVar.set only in scope helpers; tokens reset in finally; with-managed"

    def prepare(self, project: Project) -> None:
        _collect_scope_helpers(project)

    def check(self, ctx: ModuleContext, project: Project) -> Iterator[Violation]:
        ir = build_project_ir(project)
        mod = ir.modules.get(ctx.rel)
        contextvars = mod.contextvars if mod is not None else set()
        helpers = _collect_scope_helpers(project)

        for node, ancestors in walk_with_parents(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if chain is None:
                continue
            parent = ancestors[-1] if ancestors else None
            # 1. `.set()` discipline on this module's ContextVars.
            if len(chain) == 2 and chain[0] in contextvars and chain[1] == "set":
                fn = _enclosing_function(ancestors)
                if fn is None:
                    yield self.violation(
                        ctx,
                        node,
                        f"{chain[0]}.set(...) at module scope installs ambient state "
                        "for the whole process; wrap it in a @contextmanager scope helper",
                    )
                elif fn.name.startswith("activate_"):
                    pass  # sanctioned process-initializer convention
                elif not _is_contextmanager(fn):
                    yield self.violation(
                        ctx,
                        node,
                        f"{chain[0]}.set(...) in {fn.name} leaks ambient state past "
                        "this call; only @contextmanager scope helpers (or an "
                        "activate_* process initializer) may set a ContextVar",
                    )
                else:
                    yield from self._check_helper_shape(ctx, fn, node, parent, chain[0])
            # 2. Scope-helper calls must not be discarded.
            if (
                chain[-1] in helpers
                and len(chain) <= 2
                and isinstance(parent, ast.Expr)
            ):
                yield self.violation(
                    ctx,
                    node,
                    f"result of scope helper {chain[-1]}(...) is discarded — the "
                    "scope is never entered; use `with " + chain[-1] + "(...):`",
                )

    def _check_helper_shape(
        self,
        ctx: ModuleContext,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        set_call: ast.Call,
        parent: ast.AST | None,
        var: str,
    ) -> Iterator[Violation]:
        """Inside a scope helper: token kept and reset in a finally block."""
        token: str | None = None
        if (
            isinstance(parent, ast.Assign)
            and len(parent.targets) == 1
            and isinstance(parent.targets[0], ast.Name)
        ):
            token = parent.targets[0].id
        if token is None:
            yield self.violation(
                ctx,
                set_call,
                f"scope helper {fn.name} discards the token from {var}.set(...); "
                "keep it (`token = ...`) and reset it in a finally block",
            )
            return
        if not self._reset_in_finally(fn, var, token):
            yield self.violation(
                ctx,
                set_call,
                f"scope helper {fn.name} does not reset {var} on all paths; "
                f"call {var}.reset({token}) inside a finally block so the scope "
                "unwinds even when the body raises",
            )

    @staticmethod
    def _reset_in_finally(
        fn: ast.FunctionDef | ast.AsyncFunctionDef, var: str, token: str
    ) -> bool:
        for node in ast.walk(fn):
            if not isinstance(node, ast.Try) or not node.finalbody:
                continue
            for stmt in node.finalbody:
                for sub in ast.walk(stmt):
                    if not isinstance(sub, ast.Call):
                        continue
                    chain = attr_chain(sub.func)
                    if chain != (var, "reset"):
                        continue
                    if any(isinstance(a, ast.Name) and a.id == token for a in sub.args):
                        return True
        return False
