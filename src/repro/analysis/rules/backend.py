"""Backend import-hygiene rule (BKD7xx).

The compute-backend seam (:mod:`repro.backend`) promises that *importing*
the package is free: accelerator toolchains (numba, cupy) may take
hundreds of milliseconds to import, may not be installed at all, and may
crash on import in broken CUDA environments.  A module-top-level
``import numba`` in a backend implementation breaks all three guarantees
at once — every ``repro`` import would pay for (and possibly die on) an
optional dependency.  The contract is that accelerators are imported only
inside a function body, i.e. the backend's ``load()`` hook, where
failures are caught and auto-selection falls back.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import walk_with_parents
from ..engine import ModuleContext, Project, Rule, Violation

__all__ = ["BackendPurityRule", "LazyAcceleratorImportRule"]

#: Module roots whose import is expensive/optional and must stay lazy.
_ACCELERATORS = {"numba", "cupy", "cupyx", "llvmlite", "pycuda", "torch", "jax"}


class LazyAcceleratorImportRule(Rule):
    """BKD701: accelerator imports in ``repro.backend`` must be lazy.

    Flags ``import numba`` / ``from cupy import ...`` (and the other
    accelerator roots) at module top level in backend code — including
    inside top-level ``if``/``try`` blocks, which still execute at import
    time.  ``if TYPE_CHECKING:`` blocks are exempt (they never run), as
    are imports inside function bodies (that is exactly where they
    belong: the backend's ``load()``).
    """

    rule_id = "BKD701"
    severity = "error"
    scope = ("backend",)
    summary = "accelerator imports (numba/cupy/...) only inside load(), never top level"

    def check(self, ctx: ModuleContext, project: Project) -> Iterator[Violation]:
        yield from self._scan_body(ctx, ctx.tree.body)

    def _scan_body(self, ctx: ModuleContext, body: list[ast.stmt]) -> Iterator[Violation]:
        for stmt in body:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    root = alias.name.split(".")[0]
                    if root in _ACCELERATORS:
                        yield self._flag(ctx, stmt, root)
            elif isinstance(stmt, ast.ImportFrom):
                if stmt.level == 0 and stmt.module:
                    root = stmt.module.split(".")[0]
                    if root in _ACCELERATORS:
                        yield self._flag(ctx, stmt, root)
            elif isinstance(stmt, ast.If):
                if not self._is_type_checking(stmt.test):
                    yield from self._scan_body(ctx, stmt.body)
                yield from self._scan_body(ctx, stmt.orelse)
            elif isinstance(stmt, ast.Try):
                # try/except at module level still imports eagerly (and the
                # except arm hides the cost, not the import).
                yield from self._scan_body(ctx, stmt.body)
                for handler in stmt.handlers:
                    yield from self._scan_body(ctx, handler.body)
                yield from self._scan_body(ctx, stmt.orelse)
                yield from self._scan_body(ctx, stmt.finalbody)
            elif isinstance(stmt, ast.With):
                yield from self._scan_body(ctx, stmt.body)
            # Function and class bodies are exempt: imports there run on
            # call, which is the sanctioned lazy pattern.

    def _flag(self, ctx: ModuleContext, stmt: ast.stmt, root: str) -> Violation:
        return self.violation(
            ctx,
            stmt,
            f"top-level import of accelerator {root!r}; backend implementations "
            "must import accelerators lazily inside load() so importing "
            "repro.backend never pays for (or fails on) an optional toolchain",
        )

    @staticmethod
    def _is_type_checking(test: ast.expr) -> bool:
        """``if TYPE_CHECKING:`` / ``if typing.TYPE_CHECKING:`` guards."""
        if isinstance(test, ast.Name):
            return test.id == "TYPE_CHECKING"
        if isinstance(test, ast.Attribute):
            return test.attr == "TYPE_CHECKING"
        return False


#: Orchestration packages kernel backends must never reach back into.
_ORCHESTRATION = {"core", "serve"}


class BackendPurityRule(Rule):
    """BKD702: kernel backends never call back into ``core``/``serve``.

    The byte-identity contract (every backend returns bit-identical arrays
    for identical inputs, so cache keys and solutions are
    backend-independent) only holds while backends are *pure compute*: a
    backend that imports ``repro.core`` or ``repro.serve`` — at module
    scope or lazily inside a kernel body — can observe or mutate
    orchestration state (caches, metrics, ambient scopes), making kernel
    output depend on which backend ran and when.  Shared numeric helpers
    live in ``geometry``/``model``; those imports are fine.  Unlike
    BKD701, laziness is no excuse here: the import is flagged wherever it
    appears, except under ``if TYPE_CHECKING:`` (annotations never run).
    """

    rule_id = "BKD702"
    severity = "error"
    scope = ("backend",)
    summary = "backend kernels must not import repro.core / repro.serve orchestration"

    def check(self, ctx: ModuleContext, project: Project) -> Iterator[Violation]:
        # Package path of this module relative to the lint root, for
        # resolving `from ..core import ...` style relative imports.
        parts = [p for p in ctx.rel.replace("\\", "/").split("/") if p][:-1]
        for node, ancestors in walk_with_parents(ctx.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            if any(
                isinstance(a, ast.If) and LazyAcceleratorImportRule._is_type_checking(a.test)
                for a in ancestors
            ):
                continue
            for target in self._import_targets(node, parts):
                top = self._top_package(target)
                if top in _ORCHESTRATION:
                    yield self.violation(
                        ctx,
                        node,
                        f"backend code imports {target!r}: kernel backends must stay "
                        "pure compute — calling into core/serve orchestration breaks "
                        "the cross-backend byte-identity contract",
                    )

    @staticmethod
    def _import_targets(node: ast.Import | ast.ImportFrom, pkg_parts: list[str]) -> list[str]:
        if isinstance(node, ast.Import):
            return [alias.name for alias in node.names]
        if node.level == 0:
            return [node.module] if node.module else []
        # Relative import: ascend `level` packages from this module's package.
        base = pkg_parts[: max(0, len(pkg_parts) - (node.level - 1))]
        suffix = node.module.split(".") if node.module else []
        return [".".join(base + suffix)]

    @staticmethod
    def _top_package(target: str) -> str:
        parts = [p for p in target.split(".") if p]
        if parts and parts[0] == "repro":
            parts = parts[1:]
        return parts[0] if parts else ""
