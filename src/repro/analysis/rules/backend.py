"""Backend import-hygiene rule (BKD7xx).

The compute-backend seam (:mod:`repro.backend`) promises that *importing*
the package is free: accelerator toolchains (numba, cupy) may take
hundreds of milliseconds to import, may not be installed at all, and may
crash on import in broken CUDA environments.  A module-top-level
``import numba`` in a backend implementation breaks all three guarantees
at once — every ``repro`` import would pay for (and possibly die on) an
optional dependency.  The contract is that accelerators are imported only
inside a function body, i.e. the backend's ``load()`` hook, where
failures are caught and auto-selection falls back.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import ModuleContext, Project, Rule, Violation

__all__ = ["LazyAcceleratorImportRule"]

#: Module roots whose import is expensive/optional and must stay lazy.
_ACCELERATORS = {"numba", "cupy", "cupyx", "llvmlite", "pycuda", "torch", "jax"}


class LazyAcceleratorImportRule(Rule):
    """BKD701: accelerator imports in ``repro.backend`` must be lazy.

    Flags ``import numba`` / ``from cupy import ...`` (and the other
    accelerator roots) at module top level in backend code — including
    inside top-level ``if``/``try`` blocks, which still execute at import
    time.  ``if TYPE_CHECKING:`` blocks are exempt (they never run), as
    are imports inside function bodies (that is exactly where they
    belong: the backend's ``load()``).
    """

    rule_id = "BKD701"
    severity = "error"
    scope = ("backend",)
    summary = "accelerator imports (numba/cupy/...) only inside load(), never top level"

    def check(self, ctx: ModuleContext, project: Project) -> Iterator[Violation]:
        yield from self._scan_body(ctx, ctx.tree.body)

    def _scan_body(self, ctx: ModuleContext, body: list[ast.stmt]) -> Iterator[Violation]:
        for stmt in body:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    root = alias.name.split(".")[0]
                    if root in _ACCELERATORS:
                        yield self._flag(ctx, stmt, root)
            elif isinstance(stmt, ast.ImportFrom):
                if stmt.level == 0 and stmt.module:
                    root = stmt.module.split(".")[0]
                    if root in _ACCELERATORS:
                        yield self._flag(ctx, stmt, root)
            elif isinstance(stmt, ast.If):
                if not self._is_type_checking(stmt.test):
                    yield from self._scan_body(ctx, stmt.body)
                yield from self._scan_body(ctx, stmt.orelse)
            elif isinstance(stmt, ast.Try):
                # try/except at module level still imports eagerly (and the
                # except arm hides the cost, not the import).
                yield from self._scan_body(ctx, stmt.body)
                for handler in stmt.handlers:
                    yield from self._scan_body(ctx, handler.body)
                yield from self._scan_body(ctx, stmt.orelse)
                yield from self._scan_body(ctx, stmt.finalbody)
            elif isinstance(stmt, ast.With):
                yield from self._scan_body(ctx, stmt.body)
            # Function and class bodies are exempt: imports there run on
            # call, which is the sanctioned lazy pattern.

    def _flag(self, ctx: ModuleContext, stmt: ast.stmt, root: str) -> Violation:
        return self.violation(
            ctx,
            stmt,
            f"top-level import of accelerator {root!r}; backend implementations "
            "must import accelerators lazily inside load() so importing "
            "repro.backend never pays for (or fails on) an optional toolchain",
        )

    @staticmethod
    def _is_type_checking(test: ast.expr) -> bool:
        """``if TYPE_CHECKING:`` / ``if typing.TYPE_CHECKING:`` guards."""
        if isinstance(test, ast.Name):
            return test.id == "TYPE_CHECKING"
        if isinstance(test, ast.Attribute):
            return test.attr == "TYPE_CHECKING"
        return False
