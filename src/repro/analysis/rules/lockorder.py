"""CNC204: project-wide lock-order inversion / deadlock-cycle detection.

CNC202 flags nested acquisition *inside one class*.  This rule closes the
cross-module gap: it builds the global lock-ordering graph (every lock in
the project a node, aliasing through ``Condition(self._lock)`` and the
shared ``lock=`` constructor parameter collapsed, edges discovered both
intra-frame and through the resolved call graph) and reports every cycle.
A cycle ``A -> B -> A`` means one code path acquires B while holding A and
another acquires A while holding B — two threads interleaving those paths
deadlock.  The report names **both witness acquisition paths** so the fix
(a single lock-order, or lock sharing) is mechanical.

The same graph is exported as the ``repro.lockgraph/v1`` artifact and
seeds the runtime sanitizer (``analysis/sanitizer.py``).
"""

from __future__ import annotations

from typing import Iterator

from ..engine import ModuleContext, Project, Rule, Violation
from ..lockgraph import LockOrderGraph, build_lock_order

__all__ = ["LockOrderRule"]


class LockOrderRule(Rule):
    """CNC204: no cycles in the global lock-ordering graph."""

    rule_id = "CNC204"
    severity = "error"
    scope = ()
    summary = "no lock-order cycles across the project (global deadlock detection)"

    def prepare(self, project: Project) -> None:
        build_lock_order(project)

    def check(self, ctx: ModuleContext, project: Project) -> Iterator[Violation]:
        graph = build_lock_order(project)
        for cycle in graph.cycles:
            first_witness = graph.edges[cycle[0]]
            # Each cycle fires exactly once, anchored at its first witness.
            if first_witness[0].rel != ctx.rel:
                continue
            yield self._cycle_violation(ctx, graph, cycle)

    def _cycle_violation(
        self, ctx: ModuleContext, graph: LockOrderGraph, cycle: tuple[tuple[str, str], ...]
    ) -> Violation:
        order = " -> ".join([cycle[0][0]] + [edge[1] for edge in cycle])
        parts: list[str] = [f"lock-order cycle {order} (potential deadlock)."]
        for frm, to in cycle:
            witness = graph.edges[(frm, to)]
            path = "; ".join(step.format() for step in witness)
            parts.append(f"[{frm} then {to}]: {path}")
        anchor = graph.edges[cycle[0]][0]
        return Violation(
            rule_id=self.rule_id,
            severity=self.severity,
            path=ctx.rel,
            line=anchor.line,
            col=1,
            message=" ".join(parts),
        )
