"""Name → algorithm registry for the nine algorithms compared in §6.

Every entry has signature ``(scenario, rng) -> list[Strategy]``.  ``"HIPO"``
wraps :func:`repro.core.solve_hipo` (the rng is unused — HIPO is
deterministic); the eight baselines follow the paper's naming.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..core.placement import solve_hipo
from ..model.entities import Strategy
from ..model.network import Scenario
from .grid_placement import grid_placement
from .random_placement import rpad, rpar

__all__ = ["ALGORITHMS", "BASELINES", "run_algorithm"]

Algorithm = Callable[[Scenario, np.random.Generator], list[Strategy]]


def _hipo(scenario: Scenario, rng: np.random.Generator) -> list[Strategy]:
    return solve_hipo(scenario).strategies


ALGORITHMS: dict[str, Algorithm] = {
    "HIPO": _hipo,
    "GPPDCS Triangle": lambda sc, rng: grid_placement(sc, rng, kind="triangle", orientation="pdcs"),
    "GPPDCS Square": lambda sc, rng: grid_placement(sc, rng, kind="square", orientation="pdcs"),
    "GPAD Triangle": lambda sc, rng: grid_placement(sc, rng, kind="triangle", orientation="discrete"),
    "GPAD Square": lambda sc, rng: grid_placement(sc, rng, kind="square", orientation="discrete"),
    "GPAR Triangle": lambda sc, rng: grid_placement(sc, rng, kind="triangle", orientation="random"),
    "GPAR Square": lambda sc, rng: grid_placement(sc, rng, kind="square", orientation="random"),
    "RPAD": rpad,
    "RPAR": rpar,
}

#: The eight comparison algorithms (everything except HIPO), paper order.
BASELINES: list[str] = [name for name in ALGORITHMS if name != "HIPO"]


def run_algorithm(name: str, scenario: Scenario, rng: np.random.Generator) -> list[Strategy]:
    """Run one named algorithm and return its placement."""
    try:
        algo = ALGORITHMS[name]
    except KeyError:
        raise KeyError(f"unknown algorithm {name!r}; choose from {sorted(ALGORITHMS)}") from None
    return algo(scenario, rng)
