"""Shared machinery for the comparison algorithms of §6.

All eight baselines produce a list of :class:`~repro.model.Strategy` with
exactly the budgeted number of chargers per type.  Whenever a baseline has a
pool of candidate strategies larger than the budget (the grid-based family),
selection uses the same greedy submodular machinery as HIPO but with *exact*
powers — the baselines differ from HIPO only in how their candidate pools are
constructed, which is precisely the comparison the paper draws.
"""

from __future__ import annotations

import numpy as np

from ..model.entities import Strategy
from ..model.network import Scenario
from ..opt.matroid import PartitionMatroid
from ..opt.submodular import ChargingUtilityObjective, greedy_matroid

__all__ = ["greedy_select", "free_grid_points"]


def greedy_select(scenario: Scenario, pools: dict[str, list[Strategy]]) -> list[Strategy]:
    """Greedy budgeted selection from per-type candidate pools (exact power)."""
    ev = scenario.evaluator()
    strategies: list[Strategy] = []
    part_of: list[int] = []
    capacities: list[int] = []
    for q, ct in enumerate(scenario.charger_types):
        capacities.append(int(scenario.budgets.get(ct.name, 0)))
        for s in pools.get(ct.name, []):
            strategies.append(s)
            part_of.append(q)
    if not strategies:
        return []
    P = ev.power_matrix(strategies)
    objective = ChargingUtilityObjective(P, ev.thresholds)
    result = greedy_matroid(objective, PartitionMatroid(part_of, capacities))
    chosen = [strategies[k] for k in result.indices]
    # Greedy stops early when no candidate adds positive gain; budgets must
    # still be spent (the baselines always deploy all chargers), so pad with
    # arbitrary remaining pool members.
    chosen_set = set(result.indices)
    for q, ct in enumerate(scenario.charger_types):
        want = capacities[q]
        have = sum(1 for k in result.indices if part_of[k] == q)
        if have < want:
            extras = [k for k in range(len(strategies)) if part_of[k] == q and k not in chosen_set]
            for k in extras[: want - have]:
                chosen.append(strategies[k])
                chosen_set.add(k)
    return chosen


def free_grid_points(scenario: Scenario, points: np.ndarray) -> np.ndarray:
    """Filter lattice points to feasible charger positions."""
    pts = np.asarray(points, dtype=float)
    if len(pts) == 0:
        return pts
    xmin, ymin, xmax, ymax = scenario.bounds
    ok = (
        (pts[:, 0] >= xmin) & (pts[:, 0] <= xmax) & (pts[:, 1] >= ymin) & (pts[:, 1] <= ymax)
    )
    for h in scenario.obstacles:
        if not ok.any():
            break
        ok &= ~h.contains_many(pts, include_boundary=False)
    return pts[ok]
