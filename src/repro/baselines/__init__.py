"""The eight comparison algorithms of §6 plus a registry including HIPO."""

from .common import free_grid_points, greedy_select
from .grid_placement import grid_placement, grid_points_for_type
from .random_placement import discretized_orientations, rpad, rpar
from .registry import ALGORITHMS, BASELINES, run_algorithm

__all__ = [
    "ALGORITHMS",
    "BASELINES",
    "discretized_orientations",
    "free_grid_points",
    "greedy_select",
    "grid_placement",
    "grid_points_for_type",
    "rpad",
    "rpar",
    "run_algorithm",
]
