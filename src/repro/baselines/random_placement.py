"""Randomized baselines: RPAR and RPAD (§6).

* **RPAR** (Randomized Position with Angular Randomization): positions and
  orientations both uniform at random — the weakest baseline.
* **RPAD** (Randomized Position with Angular Discretization): random
  positions, but each charger's orientation is chosen among the discretized
  set ``{0, αs, 2αs, …, (⌈2π/αs⌉−1)·αs}`` to maximize the marginal utility
  given the chargers placed so far.
"""

from __future__ import annotations

import math

import numpy as np

from ..geometry import TWO_PI
from ..model.entities import Strategy
from ..model.network import Scenario
from ..model.utility import total_utility

__all__ = ["rpar", "rpad", "discretized_orientations"]


def discretized_orientations(charging_angle: float) -> np.ndarray:
    """The paper's orientation grid: multiples of ``αs`` covering the circle."""
    k = max(1, math.ceil(TWO_PI / charging_angle))
    return np.arange(k) * charging_angle


def rpar(scenario: Scenario, rng: np.random.Generator) -> list[Strategy]:
    """Uniformly random positions and orientations, per type budget."""
    out: list[Strategy] = []
    for ct in scenario.charger_types:
        for _ in range(scenario.budgets.get(ct.name, 0)):
            p = scenario.random_free_point(rng)
            out.append(Strategy((p[0], p[1]), rng.uniform(0.0, TWO_PI), ct))
    return out


def rpad(scenario: Scenario, rng: np.random.Generator) -> list[Strategy]:
    """Random positions; per position the best discretized orientation.

    Orientations are chosen sequentially: each charger picks the orientation
    maximizing total utility given all previously oriented chargers.
    """
    ev = scenario.evaluator()
    placed: list[Strategy] = []
    current = np.zeros(ev.num_devices)
    for ct in scenario.charger_types:
        for _ in range(scenario.budgets.get(ct.name, 0)):
            p = scenario.random_free_point(rng)
            best = None
            best_val = -1.0
            for theta in discretized_orientations(ct.charging_angle):
                s = Strategy((p[0], p[1]), float(theta), ct)
                val = total_utility(current + ev.power_vector(s), ev.thresholds)
                if val > best_val:
                    best, best_val = s, val
            assert best is not None
            placed.append(best)
            current += ev.power_vector(best)
    return placed
