"""Grid-based baselines: GPAR, GPAD, GPPDCS on square or triangular lattices.

All three restrict charger positions to lattice points with pitch
``sqrt(2)/2 · dmax`` per charger type (§6) and differ in how orientations are
proposed:

* **GPAR** — one uniformly random orientation per grid point,
* **GPAD** — the discretized orientation set ``{0, αs, 2αs, …}``,
* **GPPDCS** — the orientations extracted by the PDCS point-case sweep
  (Algorithm 1) at each grid point.

Selection from each pool is the same budgeted greedy as HIPO's Algorithm 3.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from ..core.pdcs import extract_pdcs_at_point
from ..geometry import TWO_PI, grid_length_for_radius, square_grid, triangular_grid
from ..model.entities import Strategy
from ..model.network import Scenario
from .common import free_grid_points, greedy_select
from .random_placement import discretized_orientations

__all__ = ["grid_points_for_type", "grid_placement"]

GridKind = Literal["square", "triangle"]
OrientationRule = Literal["random", "discrete", "pdcs"]


def grid_points_for_type(scenario: Scenario, ctype, kind: GridKind) -> np.ndarray:
    """Feasible lattice points for one charger type."""
    pitch = grid_length_for_radius(ctype.dmax)
    xmin, ymin, xmax, ymax = scenario.bounds
    if kind == "square":
        pts = square_grid(xmin, ymin, xmax, ymax, pitch)
    elif kind == "triangle":
        pts = triangular_grid(xmin, ymin, xmax, ymax, pitch)
    else:
        raise ValueError(f"unknown grid kind {kind!r}")
    return free_grid_points(scenario, pts)


def grid_placement(
    scenario: Scenario,
    rng: np.random.Generator,
    *,
    kind: GridKind = "square",
    orientation: OrientationRule = "random",
) -> list[Strategy]:
    """GPAR / GPAD / GPPDCS placement, depending on *orientation*."""
    ev = scenario.evaluator()
    pools: dict[str, list[Strategy]] = {}
    for ct in scenario.charger_types:
        if scenario.budgets.get(ct.name, 0) == 0:
            continue
        pts = grid_points_for_type(scenario, ct, kind)
        pool: list[Strategy] = []
        for p in pts:
            pos = (float(p[0]), float(p[1]))
            if orientation == "random":
                pool.append(Strategy(pos, rng.uniform(0.0, TWO_PI), ct))
            elif orientation == "discrete":
                pool.extend(
                    Strategy(pos, float(theta), ct)
                    for theta in discretized_orientations(ct.charging_angle)
                )
            elif orientation == "pdcs":
                point_strats = extract_pdcs_at_point(ev, ct, p)
                if point_strats:
                    pool.extend(Strategy(pos, ps.orientation, ct) for ps in point_strats)
                else:
                    # Keep the point available so budgets can always be spent.
                    pool.append(Strategy(pos, 0.0, ct))
            else:
                raise ValueError(f"unknown orientation rule {orientation!r}")
        pools[ct.name] = pool
    return greedy_select(scenario, pools)
