"""repro — reproduction of *Heterogeneous Wireless Charger Placement with
Obstacles* (HIPO; Wang et al., ICPP 2018 / IEEE TMC 2019).

Quick start::

    import numpy as np
    from repro import solve_hipo
    from repro.experiments import random_scenario

    scenario = random_scenario(np.random.default_rng(0))
    solution = solve_hipo(scenario)
    print(solution.utility, len(solution.strategies))

Package layout
--------------
``repro.geometry``
    Planar geometry substrate (polygons, sector rings, intersections, LOS).
``repro.model``
    The practical directional charging model with obstacles (Eq. 1–4).
``repro.core``
    The paper's algorithm: piecewise-constant power approximation
    (Lemma 4.1), candidate/PDCS extraction (Algorithms 1, 2, 4), the
    submodular greedy placement (Algorithm 3, ratio 1/2 − ε) and the
    distributed extractor (§5).
``repro.opt``
    Generic optimization substrate (submodular greedy, matroids,
    Hungarian / Hopcroft–Karp matching, LPT scheduling, TSP, metaheuristics).
``repro.baselines``
    The eight comparison algorithms of §6.
``repro.extensions``
    §8: redeployment, deployment budgets, fairness.
``repro.experiments``
    Scenario defaults (Tables 2–4), the §7 field testbed, and one
    reproduction function per evaluation figure.
``repro.obs``
    Observability: hierarchical span tracing (JSONL export, schema
    ``repro.trace/v1``), a metrics registry whose snapshots merge across
    process-pool workers, run reports, and provenance-stamped benchmark
    artifacts.
``repro.serve``
    The solve service: bounded priority job queue, solver worker pool with
    cooperative cancellation/timeouts, content-addressed result cache, and
    a stdlib HTTP API (``repro serve --port 8080``).
"""

from .core import HIPOSolution, build_candidate_set, solve_hipo, solve_hipo_hardened
from .model import (
    ChargerType,
    CoefficientTable,
    Device,
    DeviceType,
    PairCoefficients,
    Scenario,
    Strategy,
)

__version__ = "1.0.0"

__all__ = [
    "ChargerType",
    "CoefficientTable",
    "Device",
    "DeviceType",
    "HIPOSolution",
    "PairCoefficients",
    "Scenario",
    "Strategy",
    "__version__",
    "build_candidate_set",
    "solve_hipo",
    "solve_hipo_hardened",
]
