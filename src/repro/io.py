"""JSON (de)serialization of scenarios and placements.

Makes instances portable: save a scenario (devices, obstacles, hardware
tables, budgets) and a solved placement, reload them in another process or
ship them between the CLI and the benchmarks.  Round-trips are exact up to
float formatting (tested in ``tests/test_io.py``).

Format (version 1)::

    {
      "version": 1,
      "bounds": [xmin, ymin, xmax, ymax],
      "charger_types": [{"name", "charging_angle", "dmin", "dmax"}, ...],
      "device_types":  [{"name", "receiving_angle"}, ...],
      "coefficients":  [{"charger", "device", "a", "b"}, ...],
      "budgets":       {"type name": count, ...},
      "devices":       [{"position", "orientation", "type", "threshold"}, ...],
      "obstacles":     [[[x, y], ...], ...],
      "strategies":    [{"position", "orientation", "type"}, ...]   # optional
    }
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Sequence

from .geometry import Polygon
from .model import (
    ChargerType,
    CoefficientTable,
    Device,
    DeviceType,
    PairCoefficients,
    Scenario,
    Strategy,
)

__all__ = [
    "canonical_json",
    "canonical_extraction_hash",
    "canonical_scenario_hash",
    "scenario_to_dict",
    "scenario_from_dict",
    "strategies_to_list",
    "strategies_from_list",
    "save_scenario",
    "load_scenario",
]

FORMAT_VERSION = 1


def _canonicalize(obj, path: str):
    """Normalize *obj* to plain JSON types with deterministic numbers.

    Floats with an exact integer value collapse to ints (``5.0`` and ``5``
    hash identically), ``-0.0`` collapses to ``0``, and non-finite numbers
    are rejected — JSON round-trips must not change the key.
    """
    if isinstance(obj, bool) or obj is None or isinstance(obj, (int, str)):
        return obj
    if isinstance(obj, float):
        if not math.isfinite(obj):
            raise ValueError(f"non-finite number at {path}: {obj!r}")
        if obj.is_integer():
            return int(obj)
        return obj
    if isinstance(obj, dict):
        out = {}
        for key in sorted(obj):
            if not isinstance(key, str):
                raise ValueError(f"non-string key at {path}: {key!r}")
            out[key] = _canonicalize(obj[key], f"{path}.{key}")
        return out
    if isinstance(obj, (list, tuple)):
        return [_canonicalize(v, f"{path}[{i}]") for i, v in enumerate(obj)]
    # numpy scalars and similar: anything exposing item() collapses to a
    # python number, then re-canonicalizes.
    if hasattr(obj, "item"):
        return _canonicalize(obj.item(), path)
    raise ValueError(f"unhashable value at {path}: {type(obj).__name__}")


def canonical_json(obj) -> str:
    """Deterministic JSON text: sorted keys, no whitespace, normalized
    numbers (see :func:`canonical_scenario_hash`)."""
    return json.dumps(_canonicalize(obj, "$"), sort_keys=True, separators=(",", ":"))


def canonical_scenario_hash(scenario: Scenario | dict, params: dict | None = None) -> str:
    """Content address of a solve request: SHA-256 over the canonical JSON
    of the scenario plus solver params.

    *scenario* may be a :class:`~repro.model.Scenario` (serialized via
    :func:`scenario_to_dict`) or an already-serialized scenario dict.  A
    stored ``"strategies"`` key is excluded — a prior placement riding along
    in the file does not change what a solver would compute.  Keys are
    sorted recursively and floats normalized (integral floats become ints,
    ``-0.0`` becomes ``0``), so semantically identical requests hash
    identically regardless of key order or float spelling.
    """
    data = scenario_to_dict(scenario) if isinstance(scenario, Scenario) else dict(scenario)
    data.pop("strategies", None)
    payload = {"scenario": data, "params": params or {}}
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def canonical_extraction_hash(
    scenario: Scenario | dict, *, eps: float, params: dict | None = None
) -> str:
    """Content address of the *extraction-relevant* slice of a solve.

    Candidate extraction (positions + PDCS sweeps, Algorithms 1/4) is a pure
    function of the geometry (bounds, devices, obstacles), the hardware
    tables (charger/device types, power coefficients), the approximation
    parameter ``eps`` — and of *which* charger types are active (budget > 0;
    zero-budget types are skipped entirely).  It does **not** depend on

    * budget magnitudes (they only bound the matroid the greedy runs under),
    * device power thresholds (they only shape the selection objective), or
    * selection flags (``lazy``, ``refine``, ``algorithm3_order``, ...).

    Those are therefore excluded, so a budget or threshold sweep over one
    topology maps every point to the same key — the contract behind the
    candidate-reuse tier (:mod:`repro.core.reuse`).  *params* carries any
    extra extraction-affecting knobs (e.g. a generator's ``max_positions``).
    """
    data = scenario_to_dict(scenario) if isinstance(scenario, Scenario) else dict(scenario)
    devices = [
        {
            "position": _field(d, "position", f"devices[{i}]"),
            "orientation": _field(d, "orientation", f"devices[{i}]"),
            "type": _field(d, "type", f"devices[{i}]"),
        }
        for i, d in enumerate(data.get("devices", []))
    ]
    budgets = data.get("budgets", {})
    payload = {
        "slice": {
            "bounds": data.get("bounds"),
            "charger_types": data.get("charger_types"),
            "device_types": data.get("device_types"),
            "coefficients": data.get("coefficients"),
            "devices": devices,
            "obstacles": data.get("obstacles"),
            "active_types": sorted(name for name, n in budgets.items() if int(n) > 0),
        },
        "eps": eps,
        "params": params or {},
    }
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def scenario_to_dict(scenario: Scenario, strategies: Sequence[Strategy] = ()) -> dict:
    """Serialize a scenario (and optional placement) to plain JSON types."""
    dtypes: dict[str, DeviceType] = {}
    for d in scenario.devices:
        dtypes[d.dtype.name] = d.dtype
    coeffs = [
        {"charger": c, "device": d, "a": pc.a, "b": pc.b}
        for (c, d), pc in sorted(scenario.table.entries.items())
    ]
    out = {
        "version": FORMAT_VERSION,
        "bounds": list(scenario.bounds),
        "charger_types": [
            {
                "name": ct.name,
                "charging_angle": ct.charging_angle,
                "dmin": ct.dmin,
                "dmax": ct.dmax,
            }
            for ct in scenario.charger_types
        ],
        "device_types": [
            {"name": dt.name, "receiving_angle": dt.receiving_angle}
            for dt in sorted(dtypes.values(), key=lambda t: t.name)
        ],
        "coefficients": coeffs,
        "budgets": dict(scenario.budgets),
        "devices": [
            {
                "position": list(d.position),
                "orientation": d.orientation,
                "type": d.dtype.name,
                "threshold": d.threshold,
            }
            for d in scenario.devices
        ],
        "obstacles": [[list(map(float, v)) for v in h.vertices] for h in scenario.obstacles],
    }
    if strategies:
        out["strategies"] = strategies_to_list(strategies)
    return out


def _field(obj: dict, key: str, where: str):
    """``obj[key]`` with an error that names the missing field and its
    location instead of a bare ``KeyError``."""
    if not isinstance(obj, dict):
        raise ValueError(f"{where}: expected an object, got {type(obj).__name__}")
    try:
        return obj[key]
    except KeyError:
        raise ValueError(f"{where}: missing required field {key!r}") from None


def scenario_from_dict(data: dict) -> tuple[Scenario, list[Strategy]]:
    """Rebuild a scenario (and any stored placement) from JSON data.

    Malformed input raises :class:`ValueError` naming the offending field
    (e.g. ``devices[2]: missing required field 'threshold'``) rather than a
    bare ``KeyError``, so CLI and HTTP callers get an actionable message.
    """
    if not isinstance(data, dict):
        raise ValueError(f"scenario: expected a JSON object, got {type(data).__name__}")
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported scenario format version {version!r}")
    for key in ("bounds", "charger_types", "device_types", "coefficients", "budgets", "devices", "obstacles"):
        if key not in data:
            raise ValueError(f"scenario: missing required field {key!r}")
    ctypes = {}
    for i, c in enumerate(data["charger_types"]):
        where = f"charger_types[{i}]"
        ctypes[_field(c, "name", where)] = ChargerType(
            c["name"],
            _field(c, "charging_angle", where),
            _field(c, "dmin", where),
            _field(c, "dmax", where),
        )
    dtypes = {}
    for i, d in enumerate(data["device_types"]):
        where = f"device_types[{i}]"
        dtypes[_field(d, "name", where)] = DeviceType(
            d["name"], _field(d, "receiving_angle", where)
        )
    entries = {}
    for i, c in enumerate(data["coefficients"]):
        where = f"coefficients[{i}]"
        entries[(_field(c, "charger", where), _field(c, "device", where))] = PairCoefficients(
            _field(c, "a", where), _field(c, "b", where)
        )
    table = CoefficientTable(entries)
    devices = []
    for i, d in enumerate(data["devices"]):
        where = f"devices[{i}]"
        type_name = _field(d, "type", where)
        if type_name not in dtypes:
            raise ValueError(f"{where}: unknown device type {type_name!r}")
        devices.append(
            Device(
                tuple(_field(d, "position", where)),
                _field(d, "orientation", where),
                dtypes[type_name],
                _field(d, "threshold", where),
            )
        )
    obstacles = tuple(Polygon(vs) for vs in data["obstacles"])
    bounds = tuple(data["bounds"])
    if len(bounds) != 4:
        raise ValueError(f"bounds: expected [xmin, ymin, xmax, ymax], got {len(bounds)} values")
    if not isinstance(data["budgets"], dict):
        raise ValueError("budgets: expected an object mapping charger type -> count")
    scenario = Scenario(
        bounds=bounds,
        devices=tuple(devices),
        obstacles=obstacles,
        charger_types=tuple(ctypes.values()),
        budgets={k: int(v) for k, v in data["budgets"].items()},
        table=table,
    )
    strategies = strategies_from_list(data.get("strategies", []), ctypes)
    return scenario, strategies


def strategies_to_list(strategies: Sequence[Strategy]) -> list[dict]:
    """Serialize a placement."""
    return [
        {"position": list(s.position), "orientation": s.orientation, "type": s.ctype.name}
        for s in strategies
    ]


def strategies_from_list(items: Sequence[dict], ctypes: dict[str, ChargerType]) -> list[Strategy]:
    """Rebuild a placement against a charger-type catalogue."""
    out = []
    for item in items:
        try:
            ct = ctypes[item["type"]]
        except KeyError:
            raise ValueError(f"strategy references unknown charger type {item['type']!r}") from None
        out.append(Strategy(tuple(item["position"]), item["orientation"], ct))
    return out


def save_scenario(path: str, scenario: Scenario, strategies: Sequence[Strategy] = ()) -> None:
    """Write a scenario (and optional placement) to a JSON file."""
    with open(path, "w") as f:
        json.dump(scenario_to_dict(scenario, strategies), f, indent=2)


def load_scenario(path: str) -> tuple[Scenario, list[Strategy]]:
    """Read a scenario (and any stored placement) from a JSON file."""
    with open(path) as f:
        return scenario_from_dict(json.load(f))
