"""JSON (de)serialization of scenarios and placements.

Makes instances portable: save a scenario (devices, obstacles, hardware
tables, budgets) and a solved placement, reload them in another process or
ship them between the CLI and the benchmarks.  Round-trips are exact up to
float formatting (tested in ``tests/test_io.py``).

Format (version 1)::

    {
      "version": 1,
      "bounds": [xmin, ymin, xmax, ymax],
      "charger_types": [{"name", "charging_angle", "dmin", "dmax"}, ...],
      "device_types":  [{"name", "receiving_angle"}, ...],
      "coefficients":  [{"charger", "device", "a", "b"}, ...],
      "budgets":       {"type name": count, ...},
      "devices":       [{"position", "orientation", "type", "threshold"}, ...],
      "obstacles":     [[[x, y], ...], ...],
      "strategies":    [{"position", "orientation", "type"}, ...]   # optional
    }
"""

from __future__ import annotations

import json
from typing import Sequence

from .geometry import Polygon
from .model import (
    ChargerType,
    CoefficientTable,
    Device,
    DeviceType,
    PairCoefficients,
    Scenario,
    Strategy,
)

__all__ = [
    "scenario_to_dict",
    "scenario_from_dict",
    "strategies_to_list",
    "strategies_from_list",
    "save_scenario",
    "load_scenario",
]

FORMAT_VERSION = 1


def scenario_to_dict(scenario: Scenario, strategies: Sequence[Strategy] = ()) -> dict:
    """Serialize a scenario (and optional placement) to plain JSON types."""
    dtypes: dict[str, DeviceType] = {}
    for d in scenario.devices:
        dtypes[d.dtype.name] = d.dtype
    coeffs = [
        {"charger": c, "device": d, "a": pc.a, "b": pc.b}
        for (c, d), pc in sorted(scenario.table.entries.items())
    ]
    out = {
        "version": FORMAT_VERSION,
        "bounds": list(scenario.bounds),
        "charger_types": [
            {
                "name": ct.name,
                "charging_angle": ct.charging_angle,
                "dmin": ct.dmin,
                "dmax": ct.dmax,
            }
            for ct in scenario.charger_types
        ],
        "device_types": [
            {"name": dt.name, "receiving_angle": dt.receiving_angle}
            for dt in sorted(dtypes.values(), key=lambda t: t.name)
        ],
        "coefficients": coeffs,
        "budgets": dict(scenario.budgets),
        "devices": [
            {
                "position": list(d.position),
                "orientation": d.orientation,
                "type": d.dtype.name,
                "threshold": d.threshold,
            }
            for d in scenario.devices
        ],
        "obstacles": [[list(map(float, v)) for v in h.vertices] for h in scenario.obstacles],
    }
    if strategies:
        out["strategies"] = strategies_to_list(strategies)
    return out


def scenario_from_dict(data: dict) -> tuple[Scenario, list[Strategy]]:
    """Rebuild a scenario (and any stored placement) from JSON data."""
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported scenario format version {version!r}")
    ctypes = {
        c["name"]: ChargerType(c["name"], c["charging_angle"], c["dmin"], c["dmax"])
        for c in data["charger_types"]
    }
    dtypes = {
        d["name"]: DeviceType(d["name"], d["receiving_angle"]) for d in data["device_types"]
    }
    table = CoefficientTable(
        {
            (c["charger"], c["device"]): PairCoefficients(c["a"], c["b"])
            for c in data["coefficients"]
        }
    )
    devices = tuple(
        Device(tuple(d["position"]), d["orientation"], dtypes[d["type"]], d["threshold"])
        for d in data["devices"]
    )
    obstacles = tuple(Polygon(vs) for vs in data["obstacles"])
    scenario = Scenario(
        bounds=tuple(data["bounds"]),
        devices=devices,
        obstacles=obstacles,
        charger_types=tuple(ctypes.values()),
        budgets={k: int(v) for k, v in data["budgets"].items()},
        table=table,
    )
    strategies = strategies_from_list(data.get("strategies", []), ctypes)
    return scenario, strategies


def strategies_to_list(strategies: Sequence[Strategy]) -> list[dict]:
    """Serialize a placement."""
    return [
        {"position": list(s.position), "orientation": s.orientation, "type": s.ctype.name}
        for s in strategies
    ]


def strategies_from_list(items: Sequence[dict], ctypes: dict[str, ChargerType]) -> list[Strategy]:
    """Rebuild a placement against a charger-type catalogue."""
    out = []
    for item in items:
        try:
            ct = ctypes[item["type"]]
        except KeyError:
            raise ValueError(f"strategy references unknown charger type {item['type']!r}") from None
        out.append(Strategy(tuple(item["position"]), item["orientation"], ct))
    return out


def save_scenario(path: str, scenario: Scenario, strategies: Sequence[Strategy] = ()) -> None:
    """Write a scenario (and optional placement) to a JSON file."""
    with open(path, "w") as f:
        json.dump(scenario_to_dict(scenario, strategies), f, indent=2)


def load_scenario(path: str) -> tuple[Scenario, list[Strategy]]:
    """Read a scenario (and any stored placement) from a JSON file."""
    with open(path) as f:
        return scenario_from_dict(json.load(f))
