"""Candidate-set reuse: byte-stable serialization + content-addressed cache.

Extraction (candidate positions + PDCS sweeps, Algorithms 1/4) dominates
solve wall-clock, yet its output — the :class:`~repro.core.placement.CandidateSet`
— depends only on the geometry, the hardware tables, which charger types are
active and ``eps``.  Budgets, thresholds and greedy flags only shape the
(millisecond) selection that follows.  This module lets repeated and swept
workloads pay the expensive phase once:

* :func:`serialize_candidate_set` / :func:`deserialize_candidate_set` — a
  byte-stable, npz-style binary codec for candidate sets (canonical JSON
  header + raw C-order array payload; equal sets always serialize to equal
  bytes, unlike ``np.savez`` whose zip members embed timestamps).
* :class:`CandidateSetCache` — a thread-safe, bytes-bounded LRU over the
  serialized blobs, keyed by :func:`repro.io.canonical_extraction_hash`
  (via :func:`extraction_cache_key`), with optional on-disk persistence.
* :func:`use_candidate_cache` — an ambient (context-local) default cache
  that :func:`~repro.core.placement.solve_hipo` consults when no explicit
  ``candidate_cache`` is passed, so sweep engines can warm-start every
  solve in a block without threading the cache through each call site.

On a hit the deserialized set is *re-bound* to the requesting scenario:
strategies point at the scenario's own :class:`~repro.model.ChargerType`
objects and the matroid capacities are re-derived from its budgets — the
two pieces of a candidate set that legitimately vary under the shared key.
Solutions from a warm start are byte-identical to cold ones (tested).
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
import threading
from collections import OrderedDict
from contextvars import ContextVar
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator

import numpy as np

from ..analysis.sanitizer import LockLike, new_lock
from ..io import canonical_extraction_hash, canonical_json
from ..model.entities import Strategy
from ..model.network import Scenario
from ..model.types import ChargerType
from ..obs import MetricsRegistry
from .candidates import CandidateGenerator

if TYPE_CHECKING:
    from .placement import CandidateSet

__all__ = [
    "CANDIDATE_BLOB_MAGIC",
    "CandidateSetCache",
    "active_candidate_cache",
    "deserialize_candidate_set",
    "extraction_cache_key",
    "serialize_candidate_set",
    "use_candidate_cache",
]

#: Leading bytes of every serialized candidate set (format version 1).
CANDIDATE_BLOB_MAGIC = b"repro.candidates/v1\n"

#: Array fields of the codec, in payload order: name -> (dtype, rank).
_ARRAY_FIELDS: tuple[tuple[str, str], ...] = (
    ("approx_power", "<f8"),
    ("exact_power", "<f8"),
    ("part_of", "<i8"),
    ("positions", "<f8"),
    ("orientations", "<f8"),
    ("ctype_index", "<i8"),
)


def extraction_cache_key(
    scenario: Scenario,
    *,
    eps: float = 0.15,
    generator: CandidateGenerator | None = None,
) -> str:
    """The content-address under which this scenario's extraction is cached.

    Wraps :func:`repro.io.canonical_extraction_hash`, folding in the
    extraction-affecting generator parameters: a custom generator's ``eps``
    overrides the argument (matching :func:`build_candidate_set`), its
    ``max_positions`` cap changes the candidate set, and a *subclassed*
    generator keys on its qualified class name so exotic extractors never
    collide with the stock one.

    The compute backend (:mod:`repro.backend`) is deliberately *not* part
    of the key: backends are bit-identical by contract (enforced by the
    ``tests/backend`` equivalence suite), so a candidate set extracted on
    one backend is a valid warm-start for any other — folding the backend
    in would only fragment the cache.
    """
    params: dict[str, Any] = {"max_positions": None}
    if generator is not None:
        eps = generator.eps
        params["max_positions"] = generator.max_positions
        if type(generator) is not CandidateGenerator:
            cls = type(generator)
            params["generator"] = f"{cls.__module__}.{cls.__qualname__}"
    return canonical_extraction_hash(scenario, eps=eps, params=params)


def serialize_candidate_set(candidates: "CandidateSet") -> bytes:
    """Encode a candidate set as deterministic bytes.

    Layout: :data:`CANDIDATE_BLOB_MAGIC`, a 16-digit ASCII header length,
    the canonical-JSON header (array manifest + charger-type catalogue +
    capacities + per-type position counts), then the raw C-order array
    bytes concatenated in manifest order.  Two equal candidate sets always
    produce identical bytes (the property the content-addressed cache and
    the byte-identical warm-start guarantee rest on).
    """
    ctype_names: list[str] = []
    ctype_defs: list[dict[str, Any]] = []
    index_of: dict[str, int] = {}
    for s in candidates.strategies:
        if s.ctype.name not in index_of:
            index_of[s.ctype.name] = len(ctype_names)
            ctype_names.append(s.ctype.name)
            ctype_defs.append(
                {
                    "name": s.ctype.name,
                    "charging_angle": s.ctype.charging_angle,
                    "dmin": s.ctype.dmin,
                    "dmax": s.ctype.dmax,
                }
            )
    n = candidates.num_candidates
    arrays: dict[str, np.ndarray] = {
        "approx_power": np.ascontiguousarray(candidates.approx_power, dtype="<f8"),
        "exact_power": np.ascontiguousarray(candidates.exact_power, dtype="<f8"),
        "part_of": np.asarray(candidates.part_of, dtype="<i8").reshape(n),
        "positions": np.ascontiguousarray(
            [[s.position[0], s.position[1]] for s in candidates.strategies], dtype="<f8"
        ).reshape(n, 2),
        "orientations": np.asarray(
            [s.orientation for s in candidates.strategies], dtype="<f8"
        ).reshape(n),
        "ctype_index": np.asarray(
            [index_of[s.ctype.name] for s in candidates.strategies], dtype="<i8"
        ).reshape(n),
    }
    manifest = [
        {"name": name, "dtype": dtype, "shape": list(arrays[name].shape)}
        for name, dtype in _ARRAY_FIELDS
    ]
    header = canonical_json(
        {
            "arrays": manifest,
            "capacities": [int(c) for c in candidates.capacities],
            "ctypes": ctype_defs,
            "num_devices": int(candidates.approx_power.shape[1]),
            "positions_per_type": {
                k: int(v) for k, v in candidates.positions_per_type.items()
            },
        }
    ).encode("utf-8")
    parts = [CANDIDATE_BLOB_MAGIC, b"%016d" % len(header), header]
    for name, _dtype in _ARRAY_FIELDS:
        parts.append(arrays[name].tobytes(order="C"))
    return b"".join(parts)


def deserialize_candidate_set(
    blob: bytes, scenario: Scenario | None = None
) -> "CandidateSet":
    """Rebuild a candidate set from :func:`serialize_candidate_set` bytes.

    With *scenario* given, the set is re-bound to it: strategies reference
    the scenario's own charger-type objects and the matroid capacities are
    re-derived from the scenario's *current* budgets (the one part of a
    candidate set that varies under the shared extraction key).  Without a
    scenario the stored catalogue and capacities are used verbatim.
    """
    from .placement import CandidateSet

    if not blob.startswith(CANDIDATE_BLOB_MAGIC):
        raise ValueError("not a serialized candidate set (bad magic)")
    off = len(CANDIDATE_BLOB_MAGIC)
    header_len = int(blob[off : off + 16])
    off += 16
    header = json.loads(blob[off : off + header_len].decode("utf-8"))
    off += header_len
    arrays: dict[str, np.ndarray] = {}
    for spec in header["arrays"]:
        dtype = np.dtype(spec["dtype"])
        shape = tuple(int(x) for x in spec["shape"])
        nbytes = dtype.itemsize * int(np.prod(shape)) if shape else dtype.itemsize
        arrays[spec["name"]] = (
            np.frombuffer(blob, dtype=dtype, count=int(np.prod(shape)), offset=off)
            .reshape(shape)
            .copy()
        )
        off += nbytes
    stored_types = [
        ChargerType(d["name"], d["charging_angle"], d["dmin"], d["dmax"])
        for d in header["ctypes"]
    ]
    if scenario is not None:
        catalogue = {ct.name: ct for ct in scenario.charger_types}
        try:
            ctypes = [catalogue[ct.name] for ct in stored_types]
        except KeyError as exc:
            raise ValueError(
                f"cached candidate set references unknown charger type {exc.args[0]!r}"
            ) from None
        capacities = [int(scenario.budgets.get(ct.name, 0)) for ct in scenario.charger_types]
    else:
        ctypes = stored_types
        capacities = [int(c) for c in header["capacities"]]
    strategies = [
        Strategy(
            (float(arrays["positions"][k, 0]), float(arrays["positions"][k, 1])),
            float(arrays["orientations"][k]),
            ctypes[int(arrays["ctype_index"][k])],
        )
        for k in range(len(arrays["orientations"]))
    ]
    return CandidateSet(
        strategies=strategies,
        approx_power=arrays["approx_power"],
        exact_power=arrays["exact_power"],
        part_of=[int(q) for q in arrays["part_of"]],
        capacities=capacities,
        positions_per_type={
            str(k): int(v) for k, v in header["positions_per_type"].items()
        },
        timings=None,
    )


class CandidateSetCache:
    """Bounded LRU of serialized candidate sets, optionally disk-backed.

    Values are the deterministic bytes of :func:`serialize_candidate_set`,
    so the byte size bounding ``max_bytes`` is exact and a hit reconstructs
    the identical candidate set the miss stored.  With *directory* given,
    every store is also persisted as ``<key>.candidates`` (written to a
    temp file, then atomically renamed) and memory misses fall back to
    disk, so warm starts survive process restarts; LRU eviction only trims
    memory, never the directory.

    Counters land on *metrics* under ``cache.candidates.*`` (``hits`` /
    ``misses`` / ``evictions`` / ``stores`` / ``oversize`` /
    ``disk_loads``) plus peak gauges ``cache.candidates.entries`` /
    ``bytes``.  The registry is not thread-safe: callers sharing *metrics*
    with other components must pass the lock guarding it as *lock* (the
    serve layer shares its service-wide registry lock), mirroring
    :class:`repro.serve.cache.SolveCache`.  All map/registry mutations run
    under that one lock; serialization and disk I/O happen outside it.
    """

    def __init__(
        self,
        max_entries: int = 64,
        max_bytes: int = 256 * 1024 * 1024,
        *,
        directory: str | os.PathLike[str] | None = None,
        metrics: MetricsRegistry | None = None,
        lock: LockLike | None = None,
    ) -> None:
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Guards ``_entries``/``_bytes`` *and* the registry (one lock per
        #: registry; see the class docstring).
        self._lock = lock if lock is not None else new_lock("CandidateSetCache._lock")
        self._entries: "OrderedDict[str, bytes]" = OrderedDict()
        self._bytes = 0

    # -- core ------------------------------------------------------------
    def get_bytes(self, key: str) -> bytes | None:
        """The serialized candidate set for *key*, or ``None`` on miss.

        A memory hit moves the entry to most-recently-used; with a
        persistence directory, memory misses are re-loaded from disk (and
        re-inserted) before counting as a miss.
        """
        with self._lock:
            blob = self._entries.get(key)
            if blob is not None:
                self._entries.move_to_end(key)
                self.metrics.inc("cache.candidates.hits")
                return blob
        disk = self._read_disk(key)
        if disk is None:
            with self._lock:
                self.metrics.inc("cache.candidates.misses")
            return None
        with self._lock:
            self._insert_locked(key, disk)
            self.metrics.inc("cache.candidates.hits")
            self.metrics.inc("cache.candidates.disk_loads")
        return disk

    def put_bytes(self, key: str, blob: bytes) -> bool:
        """Store serialized bytes under *key*; returns whether it cached."""
        if len(blob) > self.max_bytes:
            with self._lock:
                self.metrics.inc("cache.candidates.oversize")
            return False
        self._write_disk(key, blob)
        with self._lock:
            self._insert_locked(key, blob)
            self.metrics.inc("cache.candidates.stores")
        return True

    def get(self, key: str, scenario: Scenario | None = None) -> "CandidateSet | None":
        """Deserialized candidate set for *key* (re-bound to *scenario*)."""
        blob = self.get_bytes(key)
        if blob is None:
            return None
        return deserialize_candidate_set(blob, scenario)

    def put(self, key: str, candidates: "CandidateSet") -> bool:
        """Serialize and store one candidate set."""
        return self.put_bytes(key, serialize_candidate_set(candidates))

    def _insert_locked(self, key: str, blob: bytes) -> None:
        """Insert + LRU-evict; caller holds ``self._lock``."""
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= len(old)
        while self._entries and (
            len(self._entries) >= self.max_entries
            or self._bytes + len(blob) > self.max_bytes
        ):
            _, victim = self._entries.popitem(last=False)
            self._bytes -= len(victim)
            self.metrics.inc("cache.candidates.evictions")
        self._entries[key] = blob
        self._bytes += len(blob)
        self.metrics.gauge("cache.candidates.entries", float(len(self._entries)))
        self.metrics.gauge("cache.candidates.bytes", float(self._bytes))

    # -- disk persistence ------------------------------------------------
    def _path_for(self, key: str) -> Path | None:
        if self.directory is None:
            return None
        safe = "".join(c for c in key if c.isalnum() or c in "-_")
        return self.directory / f"{safe}.candidates"

    def _read_disk(self, key: str) -> bytes | None:
        path = self._path_for(key)
        if path is None:
            return None
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        if not blob.startswith(CANDIDATE_BLOB_MAGIC):
            return None
        return blob

    def _write_disk(self, key: str, blob: bytes) -> None:
        path = self._path_for(key)
        if path is None:
            return
        try:
            fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as f:
                    f.write(blob)
                os.replace(tmp, path)
            except OSError:
                with contextlib.suppress(OSError):
                    os.unlink(tmp)
                raise
        except OSError:
            # Persistence is best-effort; the in-memory tier still works.
            pass

    # -- introspection ---------------------------------------------------
    def __contains__(self, key: str) -> bool:
        """Whether *key* would hit (memory, or the persistence directory)."""
        with self._lock:
            if key in self._entries:
                return True
        return self._read_disk(key) is not None

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def size_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def stats(self) -> dict[str, Any]:
        """Live view (counters cumulative; entries/bytes current)."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
                "persistent": self.directory is not None,
                "hits": self.metrics.counter("cache.candidates.hits"),
                "misses": self.metrics.counter("cache.candidates.misses"),
                "evictions": self.metrics.counter("cache.candidates.evictions"),
            }

    def clear(self) -> None:
        """Drop the in-memory tier (the persistence directory is kept)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0


#: Ambient default cache consulted by ``solve_hipo`` when no explicit
#: ``candidate_cache`` is passed (context-local, so concurrent service
#: threads and nested scopes stay independent).
_ACTIVE_CACHE: ContextVar[CandidateSetCache | None] = ContextVar(
    "repro_candidate_cache", default=None
)


def active_candidate_cache() -> CandidateSetCache | None:
    """The ambient candidate cache of the current context, if any."""
    return _ACTIVE_CACHE.get()


@contextlib.contextmanager
def use_candidate_cache(cache: CandidateSetCache) -> Iterator[CandidateSetCache]:
    """Make *cache* the ambient candidate cache for the enclosed block.

    Every :func:`~repro.core.placement.solve_hipo` call inside the block
    (that does not pass its own ``candidate_cache``) warm-starts from it —
    how the sweep engines share one extraction across many solves without
    changing every call signature::

        with use_candidate_cache(CandidateSetCache()) as cache:
            for budgets in sweep:
                solve_hipo(scenario.with_budgets(budgets))
    """
    token = _ACTIVE_CACHE.set(cache)
    try:
        yield cache
    finally:
        _ACTIVE_CACHE.reset(token)
