"""Piecewise-constant approximation of the charging power (Lemma 4.1).

For a (charger type, device type) pair with coefficients ``(a, b)`` and
radial extent ``[dmin, dmax]``, the distance levels

.. math:: l(k) = b\\big((1+\\varepsilon_1)^{k/2} - 1\\big),\\qquad l(K) = d_{max}

with ``k0 = ⌈2 ln(dmin/b + 1) / ln(1+ε1)⌉`` and
``K = ⌈2 ln(dmax/b + 1) / ln(1+ε1)⌉`` induce the approximated power
``P̃(d) = P(l(k))`` for ``d ∈ (l(k-1), l(k)]``.  Lemma 4.1 guarantees

.. math:: 1 \\le P(d)/\\tilde P(d) \\le 1 + \\varepsilon_1
          \\quad (d_{min} \\le d \\le d_{max}).

The level circles around each device are the concentric boundaries of the
geometric areas of §4.1.2; :meth:`PairApproximation.boundary_radii` feeds the
candidate extraction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..model.power import PowerEvaluator
from ..model.types import ChargerType, DeviceType, PairCoefficients

__all__ = ["epsilon1_for", "PairApproximation", "ApproxPowerCalculator"]


def epsilon1_for(eps: float) -> float:
    """The paper's parameter coupling (Theorem 4.2): ``ε1 = 2ε / (1 − 2ε)``.

    This makes the end-to-end greedy ratio ``1/(2(1+ε1)) = 1/2 − ε``.
    """
    if not (0.0 < eps < 0.5):
        raise ValueError("eps must be in (0, 0.5)")
    return 2.0 * eps / (1.0 - 2.0 * eps)


@dataclass(frozen=True)
class PairApproximation:
    """Distance levels for one (charger type, device type) pair."""

    coeff: PairCoefficients
    dmin: float
    dmax: float
    eps1: float
    levels: np.ndarray  # ascending radii l(k0), ..., l(K) with l(K) == dmax
    powers: np.ndarray  # approximated power per level: P(l(k))

    @classmethod
    def build(cls, coeff: PairCoefficients, ctype: ChargerType, eps1: float) -> "PairApproximation":
        """Construct the Lemma 4.1 level set for one (charger, device) pair."""
        if eps1 <= 0.0:
            raise ValueError("eps1 must be positive")
        a, b = coeff.a, coeff.b
        dmin, dmax = ctype.dmin, ctype.dmax
        if b <= 0.0:
            # Degenerate power law 1/d^2: a single level at dmax still gives a
            # valid (coarse) underestimate; not used by the paper's tables.
            levels = np.array([dmax])
        else:
            log1p = math.log1p(eps1)
            k0 = max(1, math.ceil(2.0 * math.log(dmin / b + 1.0) / log1p - 1e-12))
            K = math.ceil(2.0 * math.log(dmax / b + 1.0) / log1p - 1e-12)
            K = max(K, k0)
            ks = np.arange(k0, K + 1, dtype=float)
            levels = b * ((1.0 + eps1) ** (ks / 2.0) - 1.0)
            levels[-1] = dmax  # l(K) = dmax by definition
            # Guard against a penultimate level that overshoots dmax due to the
            # ceiling: keep levels strictly increasing and capped at dmax.
            levels = np.minimum(levels, dmax)
            # Always keep the last level (== dmax) so the outermost bin is
            # anchored at the true boundary.
            keep = np.concatenate([np.diff(levels) > 1e-12, [True]])
            levels = levels[keep]
        powers = coeff.a / (levels + coeff.b) ** 2
        return cls(coeff, dmin, dmax, eps1, levels, powers)

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    def boundary_radii(self) -> np.ndarray:
        """Radii of the geometric-area boundary circles: ``dmin`` plus every
        level radius (the outermost being ``dmax``)."""
        if self.dmin > 1e-12 and (self.levels.size == 0 or self.dmin < self.levels[0] - 1e-12):
            return np.concatenate([[self.dmin], self.levels])
        return self.levels.copy()

    def approx_power(self, d: np.ndarray | float) -> np.ndarray | float:
        """Approximated power ``P̃(d)`` (0 outside ``[dmin, dmax]``)."""
        scalar = np.isscalar(d)
        dd = np.atleast_1d(np.asarray(d, dtype=float))
        idx = np.searchsorted(self.levels, dd - 1e-12, side="left")
        idx = np.clip(idx, 0, self.num_levels - 1)
        out = self.powers[idx]
        out = np.where((dd < self.dmin - 1e-12) | (dd > self.dmax + 1e-12), 0.0, out)
        return float(out[0]) if scalar else out

    def exact_power(self, d: np.ndarray | float) -> np.ndarray | float:
        """Exact in-range power law (0 outside ``[dmin, dmax]``)."""
        scalar = np.isscalar(d)
        dd = np.atleast_1d(np.asarray(d, dtype=float))
        out = self.coeff.a / (dd + self.coeff.b) ** 2
        out = np.where((dd < self.dmin - 1e-12) | (dd > self.dmax + 1e-12), 0.0, out)
        return float(out[0]) if scalar else out


class ApproxPowerCalculator:
    """Per-scenario quantizer: approximated power vectors for all devices.

    Groups devices by device type so that one ``searchsorted`` per
    (charger type, device type) pair quantizes every device distance at once.
    """

    def __init__(self, evaluator: PowerEvaluator, charger_types, eps1: float):
        self.evaluator = evaluator
        self.eps1 = eps1
        self._pairs: dict[tuple[str, str], PairApproximation] = {}
        self._groups: dict[str, np.ndarray] = {}
        dtypes: dict[str, DeviceType] = {}
        for j, dev in enumerate(evaluator.devices):
            dtypes[dev.dtype.name] = dev.dtype
        for name in dtypes:
            self._groups[name] = np.array(
                [j for j, dev in enumerate(evaluator.devices) if dev.dtype.name == name], dtype=int
            )
        for ct in charger_types:
            for name, dt in dtypes.items():
                coeff = evaluator.table.get(ct, dt)
                self._pairs[(ct.name, name)] = PairApproximation.build(coeff, ct, eps1)

    def pair(self, ctype: ChargerType, dtype: DeviceType) -> PairApproximation:
        """The (cached) level set for one charger/device type pair."""
        key = (ctype.name, dtype.name)
        if key not in self._pairs:
            self._pairs[key] = PairApproximation.build(
                self.evaluator.table.get(ctype, dtype), ctype, self.eps1
            )
        return self._pairs[key]

    def approx_powers(self, ctype: ChargerType, dists: np.ndarray) -> np.ndarray:
        """Approximated power from a *ctype* charger at per-device distances
        *dists*; geometry/LOS masking is the caller's job.

        Accepts either a length-``No`` vector (one charger position) or any
        ``(..., No)`` batch — the device axis must be last; quantization is
        one ``searchsorted`` per device-type group either way.
        """
        dd = np.asarray(dists, dtype=float)
        out = np.zeros_like(dd)
        for name, idx in self._groups.items():
            if idx.size == 0:
                continue
            pa = self._pairs[(ctype.name, name)]
            d = dd[..., idx]
            # Inlined quantization (hot path; see PairApproximation.approx_power).
            k = np.searchsorted(pa.levels, d - 1e-12, side="left")
            np.minimum(k, pa.num_levels - 1, out=k)
            vals = pa.powers[k]
            vals[(d < pa.dmin - 1e-12) | (d > pa.dmax + 1e-12)] = 0.0
            out[..., idx] = vals
        return out

    def boundary_radii(self, ctype: ChargerType, device_index: int) -> np.ndarray:
        """Boundary circle radii around one device for *ctype*."""
        dt = self.evaluator.devices[device_index].dtype
        return self.pair(ctype, dt).boundary_radii()
