"""Practical Dominating Coverage Set (PDCS) extraction — Algorithm 1.

At a fixed charger position, the only orientation-dependent condition of
Eq. (1) is the charger-cone test.  Algorithm 1 rotates the charger a full
turn and records, each time a device is about to fall out across the
clockwise boundary, the covered device set.  Maximal coverage always occurs
at orientations where some device sits exactly on the clockwise boundary
(``θ = bearing + αs/2``), so enumerating those orientations and keeping the
non-dominated covered sets yields every PDCS at that point (Definition 4.2).

The sweep is vectorized: the full ``m × m`` (orientation × device) coverage
matrix is one broadcast.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..backend import active_backend
from ..geometry import EPS, TWO_PI
from ..model.entities import Strategy
from ..model.power import PowerEvaluator
from ..model.types import ChargerType

__all__ = [
    "PointStrategy",
    "SweptCandidate",
    "extract_pdcs_at_point",
    "filter_dominated_sets",
    "strategies_at_point",
    "sweep_orientations",
    "sweep_position_batch",
]

#: Tolerance for the cone-membership decision during the sweep.  A device
#: sitting exactly on the clockwise boundary must count as covered.
ANG_TOL = 1e-9


@dataclass(frozen=True)
class PointStrategy:
    """One extracted PDCS at a point: an orientation and its covered set."""

    orientation: float
    covered: tuple[int, ...]  # device indices, ascending


def filter_dominated_sets(items: Sequence[tuple[float, frozenset[int]]]) -> list[tuple[float, frozenset[int]]]:
    """Keep only entries whose covered set is not a strict subset of another's.

    Duplicates (equal sets) keep the first representative.  Quadratic in the
    number of entries, which is at most the number of coverable devices.
    """
    uniq: dict[frozenset[int], float] = {}
    for theta, s in items:
        if s not in uniq:
            uniq[s] = theta
    sets = list(uniq.items())
    keep: list[tuple[float, frozenset[int]]] = []
    for i, (s, theta) in enumerate(sets):
        dominated = False
        for k, (other, _) in enumerate(sets):
            if k != i and s < other:
                dominated = True
                break
        if not dominated:
            keep.append((theta, s))
    return keep


def sweep_orientations(ctype: ChargerType, mask: np.ndarray, bearings: np.ndarray) -> list[PointStrategy]:
    """The rotational sweep given precomputed coverability.

    *mask* marks devices satisfying every orientation-independent condition
    of Eq. (1); *bearings* are charger→device bearings.  Returns the PDCSs.
    """
    idx = np.nonzero(mask)[0]
    if idx.size == 0:
        return []
    half = ctype.half_angle
    if ctype.charging_angle >= TWO_PI - EPS:
        # Omnidirectional charger: a single strategy covers everything coverable.
        return [PointStrategy(0.0, tuple(int(j) for j in idx))]
    b = bearings[idx]
    # Candidate orientations (each coverable device on the clockwise
    # boundary) and the orientation × device coverage matrix, via the
    # active compute backend.
    thetas, coverage = active_backend().sweep_coverage(b, half, ANG_TOL)
    items = [
        (float(thetas[t]), frozenset(int(idx[d]) for d in np.nonzero(coverage[t])[0]))
        for t in range(len(thetas))
    ]
    kept = filter_dominated_sets(items)
    return [PointStrategy(theta, tuple(sorted(s))) for theta, s in kept]


@dataclass(frozen=True)
class SweptCandidate:
    """One candidate strategy extracted by a batched sweep: position,
    orientation, covered set and the power values on the covered devices.

    The power vectors are restricted to ``covered`` (in ascending index
    order) so the records stay compact when shipped across process
    boundaries; callers scatter them back into full device rows.
    """

    position: tuple[float, float]
    orientation: float
    covered: tuple[int, ...]
    approx_powers: np.ndarray  # approximated power on the covered devices
    exact_powers: np.ndarray  # exact power on the covered devices


def sweep_position_batch(
    evaluator: PowerEvaluator,
    approx,
    ctype: ChargerType,
    positions: np.ndarray,
    *,
    los_chunk_size: int | None = None,
    metrics=None,
) -> tuple[list[SweptCandidate], float]:
    """Batched candidate extraction at many positions for one charger type.

    Runs the orientation-independent coverability tests for the whole batch
    in one broadcast (:meth:`PowerEvaluator.coverable_many`), quantizes the
    approximated powers for every coverable row at once, then applies the
    Algorithm-1 rotational sweep per position.  *approx* is an
    :class:`~repro.core.approximation.ApproxPowerCalculator`.

    Returns ``(records, sweep_seconds)`` where *records* lists every swept
    candidate in position order (duplicates not yet removed — the caller
    dedupes, so serial and distributed extraction agree) and *sweep_seconds*
    is the time spent in the rotational sweeps alone.

    *metrics*, when given, is a :class:`~repro.obs.MetricsRegistry` fed the
    per-chunk kernel counters (``extraction.chunks``,
    ``extraction.positions_swept``, ``extraction.candidates_raw``) and the
    ``extraction.sweep_chunk_seconds`` histogram.  Pool workers pass a
    task-local registry and ship its snapshot back with the records, so the
    counter totals match the serial path exactly.
    """
    pts = np.asarray(positions, dtype=float).reshape(-1, 2)
    records: list[SweptCandidate] = []
    if metrics is not None:
        metrics.inc("extraction.chunks")
        metrics.inc("extraction.positions_swept", len(pts))
    if len(pts) == 0:
        return records, 0.0
    mask_b, dists_b, bearings_b = evaluator.coverable_many(
        ctype, pts, los_chunk_size=los_chunk_size
    )
    rows = np.nonzero(mask_b.any(axis=1))[0]
    if rows.size == 0:
        return records, 0.0
    a_vec, b_vec = evaluator.coefficients(ctype)
    approx_b = approx.approx_powers(ctype, dists_b[rows])  # (rows, No)
    exact_b = active_backend().power_fill(a_vec, b_vec, dists_b[rows])
    sweep_seconds = 0.0
    for r, i in enumerate(rows):
        t0 = time.perf_counter()
        point_strats = sweep_orientations(ctype, mask_b[i], bearings_b[i])
        sweep_seconds += time.perf_counter() - t0
        if not point_strats:
            continue
        pos = (float(pts[i, 0]), float(pts[i, 1]))
        for ps in point_strats:
            covered = np.asarray(ps.covered, dtype=int)
            records.append(
                SweptCandidate(
                    pos, ps.orientation, ps.covered, approx_b[r, covered], exact_b[r, covered]
                )
            )
    if metrics is not None:
        metrics.inc("extraction.candidates_raw", len(records))
        metrics.observe("extraction.sweep_chunk_seconds", sweep_seconds)
    return records, sweep_seconds


def extract_pdcs_at_point(
    evaluator: PowerEvaluator,
    ctype: ChargerType,
    position: Sequence[float],
) -> list[PointStrategy]:
    """Algorithm 1: all PDCSs (and witness orientations) at *position*.

    Returns an empty list when no device is coverable from here.
    """
    mask, _dists, bearings = evaluator.coverable(ctype, position)
    return sweep_orientations(ctype, mask, bearings)


def strategies_at_point(
    evaluator: PowerEvaluator,
    ctype: ChargerType,
    position: Sequence[float],
) -> list[Strategy]:
    """Convenience: the PDCS orientations at *position* as :class:`Strategy`."""
    pos = (float(position[0]), float(position[1]))
    return [Strategy(pos, ps.orientation, ctype) for ps in extract_pdcs_at_point(evaluator, ctype, position)]
