"""Practical Dominating Coverage Set (PDCS) extraction — Algorithm 1.

At a fixed charger position, the only orientation-dependent condition of
Eq. (1) is the charger-cone test.  Algorithm 1 rotates the charger a full
turn and records, each time a device is about to fall out across the
clockwise boundary, the covered device set.  Maximal coverage always occurs
at orientations where some device sits exactly on the clockwise boundary
(``θ = bearing + αs/2``), so enumerating those orientations and keeping the
non-dominated covered sets yields every PDCS at that point (Definition 4.2).

The sweep is vectorized: the full ``m × m`` (orientation × device) coverage
matrix is one broadcast.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..geometry import EPS, TWO_PI
from ..model.entities import Strategy
from ..model.power import PowerEvaluator
from ..model.types import ChargerType

__all__ = [
    "PointStrategy",
    "extract_pdcs_at_point",
    "filter_dominated_sets",
    "strategies_at_point",
    "sweep_orientations",
]

#: Tolerance for the cone-membership decision during the sweep.  A device
#: sitting exactly on the clockwise boundary must count as covered.
ANG_TOL = 1e-9


@dataclass(frozen=True)
class PointStrategy:
    """One extracted PDCS at a point: an orientation and its covered set."""

    orientation: float
    covered: tuple[int, ...]  # device indices, ascending


def filter_dominated_sets(items: Sequence[tuple[float, frozenset[int]]]) -> list[tuple[float, frozenset[int]]]:
    """Keep only entries whose covered set is not a strict subset of another's.

    Duplicates (equal sets) keep the first representative.  Quadratic in the
    number of entries, which is at most the number of coverable devices.
    """
    uniq: dict[frozenset[int], float] = {}
    for theta, s in items:
        if s not in uniq:
            uniq[s] = theta
    sets = list(uniq.items())
    keep: list[tuple[float, frozenset[int]]] = []
    for i, (s, theta) in enumerate(sets):
        dominated = False
        for k, (other, _) in enumerate(sets):
            if k != i and s < other:
                dominated = True
                break
        if not dominated:
            keep.append((theta, s))
    return keep


def sweep_orientations(ctype: ChargerType, mask: np.ndarray, bearings: np.ndarray) -> list[PointStrategy]:
    """The rotational sweep given precomputed coverability.

    *mask* marks devices satisfying every orientation-independent condition
    of Eq. (1); *bearings* are charger→device bearings.  Returns the PDCSs.
    """
    idx = np.nonzero(mask)[0]
    if idx.size == 0:
        return []
    half = ctype.half_angle
    if ctype.charging_angle >= TWO_PI - EPS:
        # Omnidirectional charger: a single strategy covers everything coverable.
        return [PointStrategy(0.0, tuple(int(j) for j in idx))]
    b = bearings[idx]
    # Candidate orientations: each coverable device on the clockwise boundary.
    thetas = np.mod(b + half, TWO_PI)
    # coverage[t, d]: device d inside cone oriented at thetas[t]
    diff = np.abs(np.mod(b[None, :] - thetas[:, None] + math.pi, TWO_PI) - math.pi)
    coverage = diff <= half + ANG_TOL
    items = [
        (float(thetas[t]), frozenset(int(idx[d]) for d in np.nonzero(coverage[t])[0]))
        for t in range(len(thetas))
    ]
    kept = filter_dominated_sets(items)
    return [PointStrategy(theta, tuple(sorted(s))) for theta, s in kept]


def extract_pdcs_at_point(
    evaluator: PowerEvaluator,
    ctype: ChargerType,
    position: Sequence[float],
) -> list[PointStrategy]:
    """Algorithm 1: all PDCSs (and witness orientations) at *position*.

    Returns an empty list when no device is coverable from here.
    """
    mask, _dists, bearings = evaluator.coverable(ctype, position)
    return sweep_orientations(ctype, mask, bearings)


def strategies_at_point(
    evaluator: PowerEvaluator,
    ctype: ChargerType,
    position: Sequence[float],
) -> list[Strategy]:
    """Convenience: the PDCS orientations at *position* as :class:`Strategy`."""
    pos = (float(position[0]), float(position[1]))
    return [Strategy(pos, ps.orientation, ctype) for ps in extract_pdcs_at_point(evaluator, ctype, position)]
