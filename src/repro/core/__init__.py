"""The paper's contribution: approximation, PDCS extraction, HIPO solver."""

from .areas import INFEASIBLE, AreaCount, FeasibleAreaIndex
from .approximation import ApproxPowerCalculator, PairApproximation, epsilon1_for
from .candidates import BoundaryCurves, CandidateGenerator
from .distributed import (
    SolveCancelled,
    TaskMeasurement,
    assign_tasks,
    check_cancel,
    extraction_pool,
    measure_task_costs,
    parallel_positions_by_type,
    positions_by_type_pooled,
    simulate_distributed_times,
)
from .pdcs import (
    PointStrategy,
    SweptCandidate,
    extract_pdcs_at_point,
    filter_dominated_sets,
    strategies_at_point,
    sweep_position_batch,
)
from .placement import (
    CandidateSet,
    HIPOSolution,
    PhaseTimings,
    build_candidate_set,
    select_strategies,
    solve_hipo,
    solve_hipo_hardened,
)
from .reuse import (
    CandidateSetCache,
    active_candidate_cache,
    deserialize_candidate_set,
    extraction_cache_key,
    serialize_candidate_set,
    use_candidate_cache,
)

__all__ = [
    "ApproxPowerCalculator",
    "AreaCount",
    "FeasibleAreaIndex",
    "INFEASIBLE",
    "BoundaryCurves",
    "CandidateGenerator",
    "CandidateSet",
    "CandidateSetCache",
    "HIPOSolution",
    "PairApproximation",
    "PhaseTimings",
    "PointStrategy",
    "SolveCancelled",
    "SweptCandidate",
    "TaskMeasurement",
    "active_candidate_cache",
    "assign_tasks",
    "build_candidate_set",
    "check_cancel",
    "deserialize_candidate_set",
    "epsilon1_for",
    "extract_pdcs_at_point",
    "extraction_cache_key",
    "extraction_pool",
    "filter_dominated_sets",
    "measure_task_costs",
    "parallel_positions_by_type",
    "positions_by_type_pooled",
    "select_strategies",
    "serialize_candidate_set",
    "simulate_distributed_times",
    "solve_hipo",
    "solve_hipo_hardened",
    "strategies_at_point",
    "sweep_position_batch",
    "use_candidate_cache",
]
