"""Candidate strategy positions — the geometric core of Algorithms 2 and 4.

The feasible-geometric-area boundaries for a charger type consist of

* the concentric *level circles* around every device (radii ``dmin`` and the
  approximation levels ``l(k0)..l(K) = dmax`` of Lemma 4.1),
* the two straight *receiving-cone edges* of every device,
* the *obstacle edges*, and
* the *hole rays* (device → obstacle-vertex lines extended to ``dmax``).

Algorithm 2/4 places candidate chargers at the intersections of these curves
with the per-device-pair loci — the straight line through the pair and the
inscribed-angle arcs on which the pair subtends the charging aperture
``αs`` — plus the boundary×boundary intersection points handled by the
point-case sweep.  Theorem 4.1 shows the strategies extracted at these points
dominate (or tie) every strategy in the continuous plane.

Following §5 the generation is organized as independent per-device *tasks*
over neighbour sets of radius ``2·dmax``, which both bounds the pairwise work
and gives the unit of distribution for :mod:`repro.core.distributed`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..geometry import (
    EPS,
    circle_circle_intersections,
    circle_segment_intersections,
    dedupe_points,
    distance,
    inscribed_angle_arc_centers,
    polar_offset,
    segment_intersection,
    shadow_rays,
)
from ..model.network import Scenario
from ..model.types import ChargerType
from .approximation import ApproxPowerCalculator, epsilon1_for

__all__ = ["BoundaryCurves", "CandidateGenerator"]

#: Bearing offsets (as fractions of the receiving half-angle) at which the
#: point-case fallback samples each level circle inside the receiving cone —
#: the deterministic replacement for Algorithm 2's "select a point on the
#: boundary randomly".
_CONE_SAMPLE_FRACTIONS = (-0.999, -0.5, 0.0, 0.5, 0.999)


@dataclass
class BoundaryCurves:
    """Boundary curves attached to one device for one charger type."""

    circles: list[tuple[np.ndarray, float]] = field(default_factory=list)
    segments: list[tuple[np.ndarray, np.ndarray]] = field(default_factory=list)

    def extend(self, other: "BoundaryCurves") -> None:
        self.circles.extend(other.circles)
        self.segments.extend(other.segments)


class CandidateGenerator:
    """Generates candidate charger positions for a scenario.

    Parameters
    ----------
    scenario:
        The HIPO instance.
    eps:
        The end-to-end approximation parameter ``ε`` (Theorem 4.2); the level
        construction uses ``ε1 = 2ε/(1−2ε)``.
    max_positions:
        Optional cap per charger type; when exceeded, a deterministic
        stratified subsample is kept (every ``ceil(n/cap)``-th point of the
        deduplicated set).  The paper's guarantee assumes no cap; the cap is
        an engineering guard for very dense scenes.
    """

    def __init__(self, scenario: Scenario, *, eps: float = 0.15, max_positions: int | None = None):
        self.scenario = scenario
        self.eps = eps
        self.eps1 = epsilon1_for(eps)
        self.evaluator = scenario.evaluator()
        self.approx = ApproxPowerCalculator(self.evaluator, scenario.charger_types, self.eps1)
        self.max_positions = max_positions
        self._device_curves: dict[tuple[str, int], BoundaryCurves] = {}
        self._obstacle_segments: list[tuple[np.ndarray, np.ndarray]] = [
            (a, b) for h in scenario.obstacles for a, b in h.edges()
        ]

    # -- boundary curves ---------------------------------------------------

    def device_curves(self, ctype: ChargerType, i: int) -> BoundaryCurves:
        """Level circles, cone edges and hole rays of device *i* for *ctype*."""
        key = (ctype.name, i)
        cached = self._device_curves.get(key)
        if cached is not None:
            return cached
        dev = self.scenario.devices[i]
        center = np.asarray(dev.position, dtype=float)
        curves = BoundaryCurves()
        for r in self.approx.boundary_radii(ctype, i):
            curves.circles.append((center, float(r)))
        ring = dev.receiving_ring(ctype)
        curves.segments.extend(ring.radial_edges())
        for h in self.scenario.obstacles:
            curves.segments.extend(shadow_rays(dev.position, h, ctype.dmax))
        self._device_curves[key] = curves
        return curves

    # -- neighbourhood structure (Algorithm 4) -------------------------------

    def neighbor_indices(self, ctype: ChargerType, i: int) -> np.ndarray:
        """Devices within ``2·dmax`` of device *i* (excluding *i*)."""
        pos = self.evaluator.positions
        d = pos - pos[i]
        dist = np.hypot(d[:, 0], d[:, 1])
        mask = dist <= 2.0 * ctype.dmax + EPS
        mask[i] = False
        return np.nonzero(mask)[0]

    # -- per-device (point-case) candidates ----------------------------------

    def positions_for_device(self, ctype: ChargerType, i: int) -> list[np.ndarray]:
        """Candidates from device *i* alone: its boundary curves intersected
        with each other, with obstacle edges, and deterministic samples on
        each level circle inside the receiving cone (Algorithm 2, step 8 and
        Algorithm 4, step 10)."""
        dev = self.scenario.devices[i]
        center = np.asarray(dev.position, dtype=float)
        curves = self.device_curves(ctype, i)
        pts: list[np.ndarray] = []
        segments = curves.segments + self._obstacle_segments
        for c, r in curves.circles:
            for a, b in segments:
                pts.extend(circle_segment_intersections(c, r, a, b))
            half = dev.dtype.half_angle
            for frac in _CONE_SAMPLE_FRACTIONS:
                pts.append(polar_offset(center, dev.orientation + frac * half, r))
        return pts

    # -- per-pair candidates (Algorithm 2 steps 1-7 / Algorithm 4 steps 2-9) --

    def positions_for_pair(self, ctype: ChargerType, i: int, j: int) -> list[np.ndarray]:
        """Candidates targeting joint coverage of devices *i* and *j*."""
        oi = np.asarray(self.scenario.devices[i].position, dtype=float)
        oj = np.asarray(self.scenario.devices[j].position, dtype=float)
        dij = distance(oi, oj)
        dmax = ctype.dmax
        if dij < EPS or dij > 2.0 * dmax + EPS:
            return []
        curves = BoundaryCurves()
        curves.extend(self.device_curves(ctype, i))
        curves.extend(self.device_curves(ctype, j))
        segments = curves.segments + self._obstacle_segments
        pts: list[np.ndarray] = []

        # Locus 1: the straight line through the pair, clipped to the reach of
        # the farther device (a charger farther than dmax from either cannot
        # cover both).
        u = (oj - oi) / dij
        a_end = oi - dmax * u
        b_end = oj + dmax * u
        for c, r in curves.circles:
            pts.extend(circle_segment_intersections(c, r, a_end, b_end))
        for a, b in segments:
            p = segment_intersection(a_end, b_end, a, b)
            if p is not None:
                pts.append(p)

        # Locus 2: inscribed-angle arcs — points where the pair subtends the
        # charging aperture αs (degenerate for αs >= pi: the locus collapses
        # onto the segment between the devices, already on locus 1).
        if ctype.charging_angle < math.pi - EPS:
            centers, radius = inscribed_angle_arc_centers(oi, oj, ctype.charging_angle)
            for ac in centers:
                for c, r in curves.circles:
                    pts.extend(circle_circle_intersections(ac, radius, c, r))
                for a, b in segments:
                    pts.extend(circle_segment_intersections(ac, radius, a, b))

        # Step 9: intersections of the two devices' approximated receiving
        # boundaries with each other (circle x circle across the pair).
        ci = self.device_curves(ctype, i).circles
        cj = self.device_curves(ctype, j).circles
        for c1, r1 in ci:
            for c2, r2 in cj:
                pts.extend(circle_circle_intersections(c1, r1, c2, r2))

        # Only positions that can reach both devices matter for this pair —
        # one numpy mask over the whole point list (bbox test, then radii).
        if not pts:
            return []
        arr = np.asarray(pts, dtype=float)
        bound = dmax + EPS
        keep = (np.abs(arr - oi) <= bound).all(axis=1)
        keep &= np.hypot(arr[:, 0] - oi[0], arr[:, 1] - oi[1]) <= bound
        keep &= np.hypot(arr[:, 0] - oj[0], arr[:, 1] - oj[1]) <= bound
        return list(arr[keep])

    # -- per-task and per-type aggregation ------------------------------------

    def positions_for_task(self, ctype: ChargerType, i: int) -> np.ndarray:
        """Algorithm 4: all candidates of the task owned by device *i* —
        its point-case candidates plus pair candidates with every neighbour
        of larger index (avoiding duplicate pair work across tasks)."""
        pts = self.positions_for_device(ctype, i)
        for j in self.neighbor_indices(ctype, i):
            if j > i:
                pts.extend(self.positions_for_pair(ctype, i, int(j)))
        if not pts:
            return np.zeros((0, 2))
        return self._feasible(np.asarray(pts, dtype=float))

    def positions(self, ctype: ChargerType) -> np.ndarray:
        """All candidate positions for *ctype*, deduplicated and feasible."""
        chunks = [self.positions_for_task(ctype, i) for i in range(self.scenario.num_devices)]
        chunks = [c for c in chunks if len(c)]
        if not chunks:
            return np.zeros((0, 2))
        return self.apply_position_cap(dedupe_points(np.vstack(chunks)))

    def apply_position_cap(self, pts: np.ndarray) -> np.ndarray:
        """The ``max_positions`` stratified subsample (no-op without a cap).

        Factored out so the pooled extraction path can gather per-task
        chunks in the parent and then apply *exactly* the serial cap —
        per-worker subsampling would not commute with the global one.
        """
        if self.max_positions is not None and len(pts) > self.max_positions:
            step = int(math.ceil(len(pts) / self.max_positions))
            return pts[::step]
        return pts

    # -- helpers ---------------------------------------------------------------

    def _feasible(self, pts: np.ndarray) -> np.ndarray:
        """Dedupe and keep only points inside the region and outside obstacles."""
        pts = dedupe_points(pts)
        if len(pts) == 0:
            return pts
        xmin, ymin, xmax, ymax = self.scenario.bounds
        ok = (
            (pts[:, 0] >= xmin - EPS)
            & (pts[:, 0] <= xmax + EPS)
            & (pts[:, 1] >= ymin - EPS)
            & (pts[:, 1] <= ymax + EPS)
        )
        for h in self.scenario.obstacles:
            if not ok.any():
                break
            ok &= ~h.contains_many(pts, include_boundary=False)
        return pts[ok]
