"""Feasible geometric areas (§4.1.2) as signature functions.

The paper divides the plane, per charger type, into *feasible geometric
areas*: maximal regions where the approximated power to every device is
constant (including "zero because infeasible" — out of ring, out of cone, or
shadowed).  Materializing the planar arrangement is exactly what §5 calls
"hard to obtain ... for programming"; what the algorithms actually need is
the *signature* of the area containing a point: for every device, either the
approximation level index or "infeasible".

:class:`FeasibleAreaIndex` computes these signatures, counts distinct
signatures over a sampling grid (an empirical lower bound on the number of
feasible geometric areas), and evaluates Lemma 4.4's
``O(No² ε1⁻² Nh² c²)`` bound for comparison
(``bench_lemma44_area_count``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..model.network import Scenario
from ..model.types import ChargerType
from .approximation import ApproxPowerCalculator, epsilon1_for

__all__ = ["AreaCount", "FeasibleAreaIndex"]

#: Signature entry for "this device is not chargeable from here".
INFEASIBLE = -1


@dataclass
class AreaCount:
    """Empirical vs theoretical feasible-area counts for one charger type."""

    distinct_signatures: int
    samples: int
    lemma44_bound: float


class FeasibleAreaIndex:
    """Signature queries for the multi-feasible geometric areas."""

    def __init__(self, scenario: Scenario, *, eps: float = 0.15):
        self.scenario = scenario
        self.eps = eps
        self.eps1 = epsilon1_for(eps)
        self.evaluator = scenario.evaluator()
        self.approx = ApproxPowerCalculator(self.evaluator, scenario.charger_types, self.eps1)

    def signature(self, ctype: ChargerType, point) -> tuple[int, ...]:
        """Per-device level indices of the area containing *point*.

        Entry *j* is the index into the (ctype, dtype_j) level array of the
        bin containing the charger–device distance, or :data:`INFEASIBLE`
        when a charger at *point* cannot charge device *j* at all (out of
        ring, device cone misses the point, or line of sight blocked).
        Orientation is not part of the signature — the feasible-area notion
        is orientation-free (Algorithm 1 handles orientation separately).
        """
        ev = self.evaluator
        mask, dists, _bearings = ev.coverable(ctype, point)
        sig = np.full(ev.num_devices, INFEASIBLE, dtype=int)
        if mask.any():
            for j in np.nonzero(mask)[0]:
                pa = self.approx.pair(ctype, ev.devices[j].dtype)
                k = int(np.searchsorted(pa.levels, dists[j] - 1e-12, side="left"))
                sig[j] = min(k, pa.num_levels - 1)
        return tuple(int(v) for v in sig)

    def constant_power_within_signature(self, ctype: ChargerType, p1, p2) -> bool:
        """Whether two points share a signature — and therefore identical
        approximated power vectors (the defining property of a feasible
        geometric area)."""
        return self.signature(ctype, p1) == self.signature(ctype, p2)

    def approx_power_of_signature(self, ctype: ChargerType, sig: tuple[int, ...]) -> np.ndarray:
        """The constant approximated power vector of a signature (ignoring
        the charger-cone condition, as the signature does)."""
        ev = self.evaluator
        out = np.zeros(ev.num_devices)
        for j, k in enumerate(sig):
            if k == INFEASIBLE:
                continue
            pa = self.approx.pair(ctype, ev.devices[j].dtype)
            out[j] = float(pa.powers[k])
        return out

    def count_areas(self, ctype: ChargerType, *, resolution: int = 64) -> AreaCount:
        """Empirical distinct-signature count over a sampling lattice,
        against the Lemma 4.4 bound ``No² ε1⁻² Nh² c²`` (constants dropped;
        obstacle-free scenes use ``Nh c = 1`` so the bound stays finite)."""
        xmin, ymin, xmax, ymax = self.scenario.bounds
        xs = np.linspace(xmin, xmax, resolution)
        ys = np.linspace(ymin, ymax, resolution)
        seen: set[tuple[int, ...]] = set()
        samples = 0
        for x in xs:
            for y in ys:
                if not self.scenario.is_free((float(x), float(y))):
                    continue
                samples += 1
                seen.add(self.signature(ctype, (float(x), float(y))))
        no = self.scenario.num_devices
        nh = len(self.scenario.obstacles)
        c = max((h.num_edges for h in self.scenario.obstacles), default=0)
        bound = (no**2) * (self.eps1**-2) * max(nh * c, 1) ** 2
        return AreaCount(len(seen), samples, float(bound))
