"""End-to-end HIPO solver (Theorem 4.2).

Pipeline:

1. :class:`~repro.core.candidates.CandidateGenerator` reduces the continuous
   strategy space to finitely many candidate *positions* per charger type;
2. the Algorithm-1 rotational sweep at every position extracts the PDCS
   orientations, each becoming a candidate :class:`~repro.model.Strategy`
   with an approximated and an exact power row;
3. Algorithm 3 — greedy maximization of the monotone submodular utility under
   the partition matroid of per-type budgets — selects the placement, with
   approximation ratio ``1/2 − ε`` for the approximated objective.

The greedy optimizes the piecewise-constant *approximated* powers (that is
what the guarantee covers, Lemmas 4.2/4.3); reported utilities are computed
with the exact power law.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Literal, Sequence

import numpy as np

from ..backend import use_backend
from ..model.entities import Strategy
from ..model.network import Scenario
from ..model.utility import total_utility
from ..obs import MetricsRegistry, MetricsSnapshot, Tracer, render_run_report
from ..opt.matroid import PartitionMatroid
from ..opt.submodular import (
    ChargingUtilityObjective,
    GreedyResult,
    greedy_matroid,
    lazy_greedy_matroid,
)
from .candidates import CandidateGenerator
from .distributed import (
    _sweep_task,
    check_cancel,
    extraction_pool,
    positions_by_type_pooled,
)
from .pdcs import SweptCandidate, sweep_orientations, sweep_position_batch
from .reuse import CandidateSetCache, active_candidate_cache, extraction_cache_key

__all__ = [
    "CandidateSet",
    "HIPOSolution",
    "PhaseTimings",
    "build_candidate_set",
    "select_strategies",
    "solve_hipo",
    "solve_hipo_hardened",
]


@dataclass
class PhaseTimings:
    """Wall-clock breakdown of a solve — a thin view derived from the trace.

    Since the `repro.obs` tracer became the source of truth, this dataclass
    is computed by :meth:`from_trace` from the ``extraction`` / ``selection``
    span tree (it is kept as a stable, flat API for callers that predate the
    tracer).  ``extraction_seconds`` covers candidate-position generation
    plus the batched coverability/power kernels; ``sweep_seconds`` the
    Algorithm-1 rotational sweeps; ``dedupe_seconds`` candidate
    deduplication and row assembly; ``selection_seconds`` the greedy.  With
    ``workers > 1`` the sweeps run inside pool workers, so
    ``sweep_seconds`` is CPU-seconds summed across workers (it overlaps
    ``extraction_seconds``, which stays wall-clock).
    """

    extraction_seconds: float = 0.0
    sweep_seconds: float = 0.0
    dedupe_seconds: float = 0.0
    selection_seconds: float = 0.0
    num_positions: int = 0
    num_candidates: int = 0
    workers: int = 1

    @classmethod
    def from_trace(cls, trace: Tracer) -> "PhaseTimings":
        """Derive the flat breakdown from a trace's span tree.

        Uses the most recent ``extraction`` span (wall clock plus its
        accumulated ``sweep_seconds`` / ``dedupe_seconds`` attributes) and
        the most recent ``selection`` span, matching the pre-tracer
        semantics: in-process sweep time is carved out of extraction,
        pooled sweep time overlaps it.
        """
        t = cls()
        ext_spans = trace.find_all("extraction")
        if ext_spans:
            ext = ext_spans[-1]
            t.workers = int(ext.attrs.get("workers", 1))
            t.sweep_seconds = float(ext.attrs.get("sweep_seconds", 0.0))
            t.dedupe_seconds = float(ext.attrs.get("dedupe_seconds", 0.0))
            t.num_positions = int(ext.attrs.get("positions", 0))
            t.num_candidates = int(ext.attrs.get("candidates", 0))
            in_process_sweep = 0.0 if t.workers > 1 else t.sweep_seconds
            t.extraction_seconds = max(0.0, ext.wall_s - t.dedupe_seconds - in_process_sweep)
        sel_spans = trace.find_all("selection")
        if sel_spans:
            t.selection_seconds = sel_spans[-1].wall_s
        return t

    def as_dict(self) -> dict:
        """Machine-readable form (``repro solve --timings --json``)."""
        return {
            "extraction_seconds": self.extraction_seconds,
            "sweep_seconds": self.sweep_seconds,
            "dedupe_seconds": self.dedupe_seconds,
            "selection_seconds": self.selection_seconds,
            "num_positions": self.num_positions,
            "num_candidates": self.num_candidates,
            "workers": self.workers,
        }

    def format(self) -> str:
        """One-line summary (printed by ``repro solve --timings``)."""
        return (
            f"extraction={self.extraction_seconds:.3f}s "
            f"sweep={self.sweep_seconds:.3f}s "
            f"dedupe={self.dedupe_seconds:.3f}s "
            f"selection={self.selection_seconds:.3f}s "
            f"positions={self.num_positions} "
            f"candidates={self.num_candidates} "
            f"workers={self.workers}"
        )


@dataclass
class CandidateSet:
    """The discrete reformulation (problem P2): candidate strategies with
    their power rows and matroid structure."""

    strategies: list[Strategy]
    approx_power: np.ndarray  # (candidates, devices) — P̃, what the greedy sees
    exact_power: np.ndarray  # (candidates, devices) — P, what gets reported
    part_of: list[int]  # candidate -> charger type index
    capacities: list[int]  # per charger type index
    positions_per_type: dict[str, int] = field(default_factory=dict)
    timings: PhaseTimings | None = None

    @property
    def num_candidates(self) -> int:
        return len(self.strategies)

    def matroid(self) -> PartitionMatroid:
        return PartitionMatroid(self.part_of, self.capacities)


@dataclass
class HIPOSolution:
    """A solved placement."""

    strategies: list[Strategy]
    utility: float  # exact objective (Eq. 4)
    approx_utility: float  # objective under P̃ (what the greedy maximized)
    candidate_set: CandidateSet | None
    greedy: GreedyResult | None
    extraction_seconds: float = 0.0
    selection_seconds: float = 0.0
    timings: PhaseTimings | None = None
    trace: Tracer | None = None
    metrics: MetricsSnapshot | None = None

    def report(self) -> str:
        """Human-readable run report: per-phase span tree plus metrics.

        Rendered from the trace and merged metric snapshot of the solve
        (``repro solve --metrics`` prints exactly this).
        """
        return render_run_report(self.trace, self.metrics)


#: Positions per batched-sweep task; bounds both worker payload size and the
#: peak (positions × devices) intermediates of the batched kernels.  The
#: default comes from sweeping chunk sizes on the BENCH_1 scenario
#: (``benchmarks/bench_backends.py --chunk-sweep``; the
#: ``extraction.sweep_chunk_seconds`` histogram makes per-chunk cost
#: observable): 128–512 are within run-to-run noise of each other, with 128
#: showing the best mean across repeated sweeps (``chunk_sweep`` in
#: ``BENCH_3.json``); 64 pays too much per-chunk batch setup, and ≥1024
#: trends slower as the ``(positions × devices)`` intermediates outgrow
#: cache.
DEFAULT_EXTRACTION_CHUNK = 128

#: Environment override for the extraction sweep chunk size; an explicit
#: ``extraction_chunk_size`` argument wins over the environment.
EXTRACTION_CHUNK_ENV = "REPRO_EXTRACTION_CHUNK"


def _resolve_extraction_chunk(value: int | None) -> int:
    """The sweep chunk size to use: explicit arg > env var > default.

    Chunking only bounds memory and task granularity — record order is
    preserved — so any positive value yields byte-identical candidates.
    """
    if value is None:
        raw = os.environ.get(EXTRACTION_CHUNK_ENV, "").strip()
        if not raw:
            return DEFAULT_EXTRACTION_CHUNK
        try:
            value = int(raw)
        except ValueError as exc:
            raise ValueError(
                f"{EXTRACTION_CHUNK_ENV} must be a positive integer, got {raw!r}"
            ) from exc
    chunk = int(value)
    if chunk < 1:
        raise ValueError(f"extraction chunk size must be positive, got {chunk}")
    return chunk


def build_candidate_set(
    scenario: Scenario,
    *,
    eps: float = 0.15,
    generator: CandidateGenerator | None = None,
    positions_by_type: dict[str, np.ndarray] | None = None,
    workers: int | None = None,
    batched: bool = True,
    extraction_chunk_size: int | None = None,
    los_chunk_size: int | None = None,
    backend: str | None = None,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    cancel=None,
) -> CandidateSet:
    """Run candidate extraction + PDCS sweeps and assemble the power matrices.

    *backend* names the compute backend for the hot kernels (``"numpy"``,
    ``"numba"``, ``None``/``"auto"`` — see :mod:`repro.backend`); pool
    workers inherit the resolved choice, and all backends produce
    byte-identical candidate sets.  *extraction_chunk_size* tunes the
    positions-per-sweep-task granularity (falling back to the
    ``REPRO_EXTRACTION_CHUNK`` environment variable, then
    :data:`DEFAULT_EXTRACTION_CHUNK`); the resolved value is recorded on
    the ``sweeps`` span as ``chunk_size``.

    *cancel* is a cooperative cancellation token (``is_set() -> bool``,
    e.g. ``threading.Event``) polled between per-device position tasks and
    between sweep chunks; when it fires the build raises
    :class:`~repro.core.distributed.SolveCancelled`.

    *positions_by_type* overrides the geometric candidate positions (used by
    the grid baselines, the distributed extractor and the ablation benches) —
    the PDCS orientation sweep is still applied at each given position.

    ``workers > 1`` fans the work out over a :func:`extraction_pool` whose
    workers receive the scenario once (pool initializer): the per-device
    position tasks of Algorithm 4 and the chunked PDCS sweeps both run in the
    pool.  The pool ships the generator's approximation parameters (``eps``,
    ``max_positions``), so a plain :class:`CandidateGenerator` with custom
    parameters pools correctly; a *subclassed* generator cannot be rebuilt in
    workers, so both pooled phases fall back to the in-process path for it
    (correctness over parallelism).  ``batched=False`` keeps the legacy
    one-position-at-a-time kernels (benchmark reference).  Serial, batched
    and multi-worker paths produce identical candidate sets in identical
    order.

    Observability: the phases run inside ``extraction`` → ``positions`` /
    ``sweeps`` spans on *tracer* (a private tracer is created when none is
    given, so :class:`PhaseTimings` is always derivable), and *metrics*
    accumulates the extraction counters (see DESIGN.md §"Observability");
    pool workers ship per-task snapshots back, so counter totals are
    identical to a serial run.
    """
    trace = tracer if tracer is not None else Tracer()
    mreg = metrics if metrics is not None else MetricsRegistry()
    gen = generator if generator is not None else CandidateGenerator(scenario, eps=eps)
    plain_generator = generator is None or type(generator) is CandidateGenerator
    ev = scenario.evaluator()
    approx = gen.approx
    strategies: list[Strategy] = []
    covered_idx: list[np.ndarray] = []
    approx_vals: list[np.ndarray] = []
    exact_vals: list[np.ndarray] = []
    part_of: list[int] = []
    seen: set[bytes] = set()
    positions_per_type: dict[str, int] = {}
    capacities = [int(scenario.budgets.get(ct.name, 0)) for ct in scenario.charger_types]
    nworkers = max(1, int(workers or 1))
    use_pool = nworkers > 1
    chunk = _resolve_extraction_chunk(extraction_chunk_size)
    sweep_s = 0.0  # CPU-seconds inside Algorithm-1 sweeps (worker-side when pooled)
    dedupe_s = 0.0  # wall-clock inside absorb()

    def absorb(q: int, ct, records: list[SweptCandidate]) -> None:
        """Dedupe swept candidates and stash their compact rows (timed).

        The dedupe key is a single bytes object (type index, covered
        indices, rounded approx powers) hashed once on set insertion —
        unambiguous because the two arrays always have equal length.  Full
        power rows are NOT materialized here; the compact (indices, values)
        pairs are scattered into two preallocated matrices once, after all
        sweeps (cheaper than two fresh full-width zero rows per candidate
        plus a final vstack).
        """
        nonlocal dedupe_s
        t0 = time.perf_counter()
        kept = 0
        qb = q.to_bytes(4, "little")
        for rec in records:
            covered = np.asarray(rec.covered, dtype=np.int64)
            key = b"".join((qb, covered.tobytes(), rec.approx_powers.round(12).tobytes()))
            if key in seen:
                continue
            seen.add(key)
            strategies.append(Strategy(rec.position, rec.orientation, ct))
            covered_idx.append(covered)
            approx_vals.append(rec.approx_powers)
            exact_vals.append(rec.exact_powers)
            part_of.append(q)
            kept += 1
        dedupe_s += time.perf_counter() - t0
        mreg.inc("extraction.candidates", kept)
        mreg.inc("extraction.duplicates", len(records) - kept)

    active = [(q, ct) for q, ct in enumerate(scenario.charger_types) if capacities[q] > 0]
    with use_backend(backend) as bk, trace.span(
        "extraction", workers=nworkers, backend=bk.name
    ) as ext_sp:
        pool = None
        try:
            # Phase 1: candidate positions per charger type.
            pos_map: dict[str, np.ndarray] = {}
            with trace.span("positions") as pos_sp:
                if positions_by_type is not None:
                    for q, ct in active:
                        pos_map[ct.name] = np.asarray(
                            positions_by_type.get(ct.name, np.zeros((0, 2))), dtype=float
                        )
                elif use_pool and plain_generator and active:
                    pool = extraction_pool(
                        scenario,
                        gen.eps,
                        nworkers,
                        max_positions=gen.max_positions,
                        backend=bk.name,
                    )
                    pooled = positions_by_type_pooled(pool, scenario, cancel=cancel)
                    for q, ct in active:
                        pos_map[ct.name] = gen.apply_position_cap(
                            pooled.get(ct.name, np.zeros((0, 2)))
                        )
                else:
                    for q, ct in active:
                        check_cancel(cancel)
                        pos_map[ct.name] = gen.positions(ct)
                for q, ct in active:
                    positions_per_type[ct.name] = len(pos_map[ct.name])
                    mreg.inc("extraction.positions", len(pos_map[ct.name]))
                pos_sp.set(positions=sum(positions_per_type.values()))

            # Phase 2: PDCS sweeps (batched / pooled / legacy) + dedupe.
            with trace.span(
                "sweeps", batched=batched, pooled=use_pool, chunk_size=chunk
            ) as sw_sp:
                if not batched:
                    for q, ct in active:
                        positions = pos_map[ct.name]
                        a_vec, b_vec = ev.coefficients(ct)
                        mreg.inc("extraction.positions_swept", len(positions))
                        for pos in positions:
                            check_cancel(cancel)
                            mask, dists, bearings = ev.coverable(ct, pos)
                            t0 = time.perf_counter()
                            point_strats = sweep_orientations(ct, mask, bearings)
                            sweep_s += time.perf_counter() - t0
                            if not point_strats:
                                continue
                            approx_full = approx.approx_powers(ct, dists)
                            exact_full = bk.power_fill(a_vec, b_vec, dists)
                            records = [
                                SweptCandidate(
                                    (float(pos[0]), float(pos[1])),
                                    ps.orientation,
                                    ps.covered,
                                    approx_full[np.asarray(ps.covered, dtype=int)],
                                    exact_full[np.asarray(ps.covered, dtype=int)],
                                )
                                for ps in point_strats
                            ]
                            mreg.inc("extraction.candidates_raw", len(records))
                            absorb(q, ct, records)
                else:
                    tasks: list[tuple[str, np.ndarray, int | None]] = []
                    task_meta: list[tuple[int, object]] = []
                    for q, ct in active:
                        positions = pos_map[ct.name]
                        for lo in range(0, len(positions), chunk):
                            tasks.append(
                                (ct.name, positions[lo : lo + chunk], los_chunk_size)
                            )
                            task_meta.append((q, ct))
                    if use_pool and plain_generator and tasks:
                        if pool is None:
                            pool = extraction_pool(
                                scenario,
                                gen.eps,
                                nworkers,
                                max_positions=gen.max_positions,
                                backend=bk.name,
                            )
                        for (q, ct), (records, task_sweep_s, snap) in zip(
                            task_meta, pool.map(_sweep_task, tasks)
                        ):
                            check_cancel(cancel)
                            sweep_s += task_sweep_s
                            mreg.merge(snap)
                            absorb(q, ct, records)
                    else:
                        for (q, ct), task in zip(task_meta, tasks):
                            check_cancel(cancel)
                            records, task_sweep_s = sweep_position_batch(
                                ev,
                                approx,
                                ct,
                                task[1],
                                los_chunk_size=los_chunk_size,
                                metrics=mreg,
                            )
                            sweep_s += task_sweep_s
                            absorb(q, ct, records)
                sw_sp.set(
                    sweep_seconds=round(sweep_s, 6),
                    dedupe_seconds=round(dedupe_s, 6),
                    candidates=len(strategies),
                )
        finally:
            if pool is not None:
                pool.shutdown()
        ext_sp.set(
            sweep_seconds=sweep_s,
            dedupe_seconds=dedupe_s,
            positions=sum(positions_per_type.values()),
            candidates=len(strategies),
        )

    timings = PhaseTimings.from_trace(trace)

    approx_power = np.zeros((len(strategies), ev.num_devices))
    exact_power = np.zeros((len(strategies), ev.num_devices))
    for k, covered in enumerate(covered_idx):
        approx_power[k, covered] = approx_vals[k]
        exact_power[k, covered] = exact_vals[k]
    return CandidateSet(
        strategies, approx_power, exact_power, part_of, capacities, positions_per_type, timings
    )


def select_strategies(
    scenario: Scenario,
    candidates: CandidateSet,
    *,
    objective_power: Literal["approx", "exact"] = "approx",
    lazy: bool = False,
    algorithm3_order: bool = False,
    refine: bool = False,
    metrics: MetricsRegistry | None = None,
) -> tuple[list[Strategy], GreedyResult]:
    """Algorithm 3: greedy strategy selection for heterogeneous chargers.

    ``algorithm3_order=True`` reproduces the paper's per-type loop order;
    the default picks the globally best extendable candidate each round
    (both carry the ``1/2`` guarantee).  ``lazy=True`` uses CELF.
    ``refine=True`` post-processes the greedy output with matroid-preserving
    swap local search (value never decreases; guarantee unchanged).

    *metrics*, when given, records the greedy convergence: the
    ``greedy.marginal_gain`` histogram (one observation per iteration),
    iteration/evaluation counters, and — for ``lazy=True`` — the
    evaluations CELF saved versus a full scan every round.
    """
    ev = scenario.evaluator()
    P = candidates.approx_power if objective_power == "approx" else candidates.exact_power
    if candidates.num_candidates == 0:
        return [], GreedyResult([], 0.0)
    objective = ChargingUtilityObjective(P, ev.thresholds)
    matroid = candidates.matroid()
    if lazy:
        result = lazy_greedy_matroid(objective, matroid)
    elif algorithm3_order:
        result = greedy_matroid(objective, matroid, part_order=list(range(len(candidates.capacities))))
    else:
        result = greedy_matroid(objective, matroid)
    if refine and result.indices:
        from ..opt.local_search import local_search_refine

        refined = local_search_refine(objective, matroid, result.indices)
        if refined.value > result.value:
            result = refined
    if metrics is not None:
        metrics.inc("greedy.iterations", len(result.gains))
        metrics.inc("greedy.evaluations", result.evaluations)
        for gain in result.gains:
            metrics.observe("greedy.marginal_gain", gain)
        if lazy:
            full_scan = candidates.num_candidates * max(1, len(result.gains))
            metrics.inc("greedy.lazy_evaluations_saved", max(0, full_scan - result.evaluations))
    return [candidates.strategies[k] for k in result.indices], result


def solve_hipo(
    scenario: Scenario,
    *,
    eps: float = 0.15,
    lazy: bool = False,
    algorithm3_order: bool = False,
    refine: bool = False,
    objective_power: Literal["approx", "exact"] = "approx",
    generator: CandidateGenerator | None = None,
    positions_by_type: dict[str, np.ndarray] | None = None,
    keep_candidates: bool = False,
    workers: int | None = None,
    batched: bool = True,
    extraction_chunk_size: int | None = None,
    backend: str | None = None,
    candidate_cache: CandidateSetCache | None = None,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    cancel=None,
) -> HIPOSolution:
    """Solve a HIPO instance end to end (the paper's full algorithm).

    *backend* selects the compute backend for the extraction hot path
    (``"numpy"``, ``"numba"``, ``None``/``"auto"``; see
    :mod:`repro.backend`).  Backends are bit-identical by contract, so the
    choice affects wall-clock only — never the placement, the utilities or
    the candidate-cache keys.  The resolved name is stamped on the
    ``solve`` and ``extraction`` trace spans.  *extraction_chunk_size*
    tunes sweep-task granularity (see :func:`build_candidate_set`).

    Returns a :class:`HIPOSolution`; ``utility`` is the exact objective of
    Eq. (4) for the selected strategies.  ``workers > 1`` runs the candidate
    extraction on a process pool (identical result, see
    :func:`build_candidate_set`).  *cancel* is a cooperative cancellation
    token polled throughout extraction and before selection
    (:class:`~repro.core.distributed.SolveCancelled` on fire) — the
    mechanism behind ``repro.serve`` job timeouts and cancellation.

    *candidate_cache* (or, when omitted, the ambient cache installed by
    :func:`~repro.core.reuse.use_candidate_cache`) warm-starts the solve:
    when the extraction-relevant slice of *scenario* (geometry, hardware
    tables, active types, ``eps`` — see
    :func:`repro.io.canonical_extraction_hash`) hits the cache, the whole
    extraction phase is skipped and only the millisecond greedy selection
    runs.  Results are byte-identical to a cold solve (tested); the
    ``extraction`` span then carries ``cached=True`` and cache traffic
    lands on the cache's ``cache.candidates.*`` counters.  The cache is
    bypassed when *positions_by_type* overrides extraction.

    Every solve is traced: a ``solve`` root span contains the
    ``extraction`` and ``selection`` phase spans, and the returned
    solution carries the :class:`~repro.obs.Tracer` plus a merged
    :class:`~repro.obs.MetricsSnapshot` (``HIPOSolution.report()`` renders
    both; ``repro solve --trace out.jsonl`` exports the JSONL).  Pass
    *tracer* / *metrics* to aggregate several solves into one view.
    """
    trace = tracer if tracer is not None else Tracer()
    mreg = metrics if metrics is not None else MetricsRegistry()
    with use_backend(backend) as bk, trace.span(
        "solve",
        devices=scenario.num_devices,
        chargers=scenario.num_chargers,
        eps=eps,
        workers=max(1, int(workers or 1)),
        backend=bk.name,
    ) as root_sp:
        t0 = time.perf_counter()
        cache = candidate_cache if candidate_cache is not None else active_candidate_cache()
        cache_key: str | None = None
        candidates = None
        if cache is not None and positions_by_type is None:
            cache_key = extraction_cache_key(scenario, eps=eps, generator=generator)
            candidates = cache.get(cache_key, scenario)
        if candidates is not None:
            with trace.span(
                "extraction", workers=max(1, int(workers or 1)), cached=True, backend=bk.name
            ) as ext_sp:
                ext_sp.set(
                    positions=sum(candidates.positions_per_type.values()),
                    candidates=candidates.num_candidates,
                )
            candidates.timings = PhaseTimings.from_trace(trace)
        else:
            candidates = build_candidate_set(
                scenario,
                eps=eps,
                generator=generator,
                positions_by_type=positions_by_type,
                workers=workers,
                batched=batched,
                extraction_chunk_size=extraction_chunk_size,
                tracer=trace,
                metrics=mreg,
                cancel=cancel,
            )
            if cache is not None and cache_key is not None:
                cache.put(cache_key, candidates)
        t1 = time.perf_counter()
        check_cancel(cancel)
        with trace.span("selection", candidates=candidates.num_candidates, lazy=lazy) as sel_sp:
            strategies, greedy = select_strategies(
                scenario,
                candidates,
                objective_power=objective_power,
                lazy=lazy,
                algorithm3_order=algorithm3_order,
                refine=refine,
                metrics=mreg,
            )
            sel_sp.set(selected=len(strategies), evaluations=greedy.evaluations)
        t2 = time.perf_counter()
        ev = scenario.evaluator()
        if greedy.indices:
            exact_total = candidates.exact_power[greedy.indices].sum(axis=0)
            approx_total = candidates.approx_power[greedy.indices].sum(axis=0)
        else:
            exact_total = np.zeros(ev.num_devices)
            approx_total = np.zeros(ev.num_devices)
        utility = total_utility(exact_total, ev.thresholds)
        root_sp.set(utility=round(float(utility), 6), selected=len(strategies))
    mreg.record_peak_rss()
    timings = candidates.timings
    if timings is not None:
        timings.selection_seconds = sel_sp.wall_s
    return HIPOSolution(
        strategies=strategies,
        utility=utility,
        approx_utility=total_utility(approx_total, ev.thresholds),
        candidate_set=candidates if keep_candidates else None,
        greedy=greedy,
        extraction_seconds=t1 - t0,
        selection_seconds=t2 - t1,
        timings=timings,
        trace=trace,
        metrics=mreg.snapshot(),
    )


def solve_hipo_hardened(
    scenario: Scenario,
    *,
    angle_margin: float = 0.05,
    radial_margin: float = 0.5,
    eps: float = 0.15,
    **solve_kwargs,
) -> HIPOSolution:
    """HIPO with a deployment-tolerance safety margin.

    The plain solver places devices *exactly* on coverage boundaries (the
    PDCS orientations put a device on the clockwise cone edge; many
    candidate positions sit on ring boundaries), so centimetre-level
    installation noise can drop boundary devices out of coverage (see
    ``bench_robustness``).  This variant optimizes under *shrunk* charger
    footprints — aperture reduced by ``2·angle_margin`` radians, ring
    tightened by ``radial_margin`` on both ends — and evaluates/reports the
    resulting strategies under the true hardware.  Every covered device then
    retains at least the margin of slack in every condition of Eq. (1).

    The utility guarantee degrades to ``(1/2 − ε)`` of the optimum of the
    *shrunk* instance; the pay-off is robustness (the margin is a knob).
    """
    from ..model.types import ChargerType

    if angle_margin < 0.0 or radial_margin < 0.0:
        raise ValueError("margins must be non-negative")
    hardened_types = []
    for ct in scenario.charger_types:
        angle = max(ct.charging_angle - 2.0 * angle_margin, 1e-3)
        dmin = ct.dmin + radial_margin
        dmax = max(ct.dmax - radial_margin, dmin + 1e-3)
        hardened_types.append(ChargerType(ct.name, angle, dmin, dmax))
    hardened = scenario.with_charger_types(tuple(hardened_types), scenario.budgets)
    inner = solve_hipo(hardened, eps=eps, **solve_kwargs)
    # Map strategies back onto the true hardware for evaluation.
    true_types = {ct.name: ct for ct in scenario.charger_types}
    strategies = [
        Strategy(s.position, s.orientation, true_types[s.ctype.name]) for s in inner.strategies
    ]
    return HIPOSolution(
        strategies=strategies,
        utility=scenario.utility_of(strategies),
        approx_utility=inner.approx_utility,
        candidate_set=inner.candidate_set,
        greedy=inner.greedy,
        extraction_seconds=inner.extraction_seconds,
        selection_seconds=inner.selection_seconds,
        timings=inner.timings,
        trace=inner.trace,
        metrics=inner.metrics,
    )
