"""End-to-end HIPO solver (Theorem 4.2).

Pipeline:

1. :class:`~repro.core.candidates.CandidateGenerator` reduces the continuous
   strategy space to finitely many candidate *positions* per charger type;
2. the Algorithm-1 rotational sweep at every position extracts the PDCS
   orientations, each becoming a candidate :class:`~repro.model.Strategy`
   with an approximated and an exact power row;
3. Algorithm 3 — greedy maximization of the monotone submodular utility under
   the partition matroid of per-type budgets — selects the placement, with
   approximation ratio ``1/2 − ε`` for the approximated objective.

The greedy optimizes the piecewise-constant *approximated* powers (that is
what the guarantee covers, Lemmas 4.2/4.3); reported utilities are computed
with the exact power law.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Literal, Sequence

import numpy as np

from ..model.entities import Strategy
from ..model.network import Scenario
from ..model.utility import total_utility
from ..opt.matroid import PartitionMatroid
from ..opt.submodular import (
    ChargingUtilityObjective,
    GreedyResult,
    greedy_matroid,
    lazy_greedy_matroid,
)
from .candidates import CandidateGenerator
from .pdcs import sweep_orientations

__all__ = [
    "CandidateSet",
    "HIPOSolution",
    "build_candidate_set",
    "select_strategies",
    "solve_hipo",
    "solve_hipo_hardened",
]


@dataclass
class CandidateSet:
    """The discrete reformulation (problem P2): candidate strategies with
    their power rows and matroid structure."""

    strategies: list[Strategy]
    approx_power: np.ndarray  # (candidates, devices) — P̃, what the greedy sees
    exact_power: np.ndarray  # (candidates, devices) — P, what gets reported
    part_of: list[int]  # candidate -> charger type index
    capacities: list[int]  # per charger type index
    positions_per_type: dict[str, int] = field(default_factory=dict)

    @property
    def num_candidates(self) -> int:
        return len(self.strategies)

    def matroid(self) -> PartitionMatroid:
        return PartitionMatroid(self.part_of, self.capacities)


@dataclass
class HIPOSolution:
    """A solved placement."""

    strategies: list[Strategy]
    utility: float  # exact objective (Eq. 4)
    approx_utility: float  # objective under P̃ (what the greedy maximized)
    candidate_set: CandidateSet | None
    greedy: GreedyResult | None
    extraction_seconds: float = 0.0
    selection_seconds: float = 0.0


def build_candidate_set(
    scenario: Scenario,
    *,
    eps: float = 0.15,
    generator: CandidateGenerator | None = None,
    positions_by_type: dict[str, np.ndarray] | None = None,
) -> CandidateSet:
    """Run candidate extraction + PDCS sweeps and assemble the power matrices.

    *positions_by_type* overrides the geometric candidate positions (used by
    the grid baselines, the distributed extractor and the ablation benches) —
    the PDCS orientation sweep is still applied at each given position.
    """
    gen = generator if generator is not None else CandidateGenerator(scenario, eps=eps)
    ev = scenario.evaluator()
    approx = gen.approx
    strategies: list[Strategy] = []
    approx_rows: list[np.ndarray] = []
    exact_rows: list[np.ndarray] = []
    part_of: list[int] = []
    seen: dict = {}
    positions_per_type: dict[str, int] = {}
    capacities = [int(scenario.budgets.get(ct.name, 0)) for ct in scenario.charger_types]

    for q, ct in enumerate(scenario.charger_types):
        if capacities[q] == 0:
            continue
        if positions_by_type is not None:
            positions = np.asarray(positions_by_type.get(ct.name, np.zeros((0, 2))), dtype=float)
        else:
            positions = gen.positions(ct)
        positions_per_type[ct.name] = len(positions)
        a_vec, b_vec = ev.coefficients(ct)
        for pos in positions:
            mask, dists, bearings = ev.coverable(ct, pos)
            point_strats = sweep_orientations(ct, mask, bearings)
            if not point_strats:
                continue
            approx_full = approx.approx_powers(ct, dists)
            exact_full = a_vec / (dists + b_vec) ** 2
            for ps in point_strats:
                covered = np.asarray(ps.covered, dtype=int)
                key = (
                    q,
                    ps.covered,
                    approx_full[covered].round(12).tobytes(),
                )
                if key in seen:
                    continue
                seen[key] = True
                row_a = np.zeros(ev.num_devices)
                row_e = np.zeros(ev.num_devices)
                row_a[covered] = approx_full[covered]
                row_e[covered] = exact_full[covered]
                strategies.append(Strategy((float(pos[0]), float(pos[1])), ps.orientation, ct))
                approx_rows.append(row_a)
                exact_rows.append(row_e)
                part_of.append(q)

    if strategies:
        approx_power = np.vstack(approx_rows)
        exact_power = np.vstack(exact_rows)
    else:
        approx_power = np.zeros((0, ev.num_devices))
        exact_power = np.zeros((0, ev.num_devices))
    return CandidateSet(strategies, approx_power, exact_power, part_of, capacities, positions_per_type)


def select_strategies(
    scenario: Scenario,
    candidates: CandidateSet,
    *,
    objective_power: Literal["approx", "exact"] = "approx",
    lazy: bool = False,
    algorithm3_order: bool = False,
    refine: bool = False,
) -> tuple[list[Strategy], GreedyResult]:
    """Algorithm 3: greedy strategy selection for heterogeneous chargers.

    ``algorithm3_order=True`` reproduces the paper's per-type loop order;
    the default picks the globally best extendable candidate each round
    (both carry the ``1/2`` guarantee).  ``lazy=True`` uses CELF.
    ``refine=True`` post-processes the greedy output with matroid-preserving
    swap local search (value never decreases; guarantee unchanged).
    """
    ev = scenario.evaluator()
    P = candidates.approx_power if objective_power == "approx" else candidates.exact_power
    if candidates.num_candidates == 0:
        return [], GreedyResult([], 0.0)
    objective = ChargingUtilityObjective(P, ev.thresholds)
    matroid = candidates.matroid()
    if lazy:
        result = lazy_greedy_matroid(objective, matroid)
    elif algorithm3_order:
        result = greedy_matroid(objective, matroid, part_order=list(range(len(candidates.capacities))))
    else:
        result = greedy_matroid(objective, matroid)
    if refine and result.indices:
        from ..opt.local_search import local_search_refine

        refined = local_search_refine(objective, matroid, result.indices)
        if refined.value > result.value:
            result = refined
    return [candidates.strategies[k] for k in result.indices], result


def solve_hipo(
    scenario: Scenario,
    *,
    eps: float = 0.15,
    lazy: bool = False,
    algorithm3_order: bool = False,
    refine: bool = False,
    objective_power: Literal["approx", "exact"] = "approx",
    generator: CandidateGenerator | None = None,
    positions_by_type: dict[str, np.ndarray] | None = None,
    keep_candidates: bool = False,
) -> HIPOSolution:
    """Solve a HIPO instance end to end (the paper's full algorithm).

    Returns a :class:`HIPOSolution`; ``utility`` is the exact objective of
    Eq. (4) for the selected strategies.
    """
    t0 = time.perf_counter()
    candidates = build_candidate_set(
        scenario, eps=eps, generator=generator, positions_by_type=positions_by_type
    )
    t1 = time.perf_counter()
    strategies, greedy = select_strategies(
        scenario,
        candidates,
        objective_power=objective_power,
        lazy=lazy,
        algorithm3_order=algorithm3_order,
        refine=refine,
    )
    t2 = time.perf_counter()
    ev = scenario.evaluator()
    if greedy.indices:
        exact_total = candidates.exact_power[greedy.indices].sum(axis=0)
        approx_total = candidates.approx_power[greedy.indices].sum(axis=0)
    else:
        exact_total = np.zeros(ev.num_devices)
        approx_total = np.zeros(ev.num_devices)
    return HIPOSolution(
        strategies=strategies,
        utility=total_utility(exact_total, ev.thresholds),
        approx_utility=total_utility(approx_total, ev.thresholds),
        candidate_set=candidates if keep_candidates else None,
        greedy=greedy,
        extraction_seconds=t1 - t0,
        selection_seconds=t2 - t1,
    )


def solve_hipo_hardened(
    scenario: Scenario,
    *,
    angle_margin: float = 0.05,
    radial_margin: float = 0.5,
    eps: float = 0.15,
    **solve_kwargs,
) -> HIPOSolution:
    """HIPO with a deployment-tolerance safety margin.

    The plain solver places devices *exactly* on coverage boundaries (the
    PDCS orientations put a device on the clockwise cone edge; many
    candidate positions sit on ring boundaries), so centimetre-level
    installation noise can drop boundary devices out of coverage (see
    ``bench_robustness``).  This variant optimizes under *shrunk* charger
    footprints — aperture reduced by ``2·angle_margin`` radians, ring
    tightened by ``radial_margin`` on both ends — and evaluates/reports the
    resulting strategies under the true hardware.  Every covered device then
    retains at least the margin of slack in every condition of Eq. (1).

    The utility guarantee degrades to ``(1/2 − ε)`` of the optimum of the
    *shrunk* instance; the pay-off is robustness (the margin is a knob).
    """
    from ..model.types import ChargerType

    if angle_margin < 0.0 or radial_margin < 0.0:
        raise ValueError("margins must be non-negative")
    hardened_types = []
    for ct in scenario.charger_types:
        angle = max(ct.charging_angle - 2.0 * angle_margin, 1e-3)
        dmin = ct.dmin + radial_margin
        dmax = max(ct.dmax - radial_margin, dmin + 1e-3)
        hardened_types.append(ChargerType(ct.name, angle, dmin, dmax))
    hardened = scenario.with_charger_types(tuple(hardened_types), scenario.budgets)
    inner = solve_hipo(hardened, eps=eps, **solve_kwargs)
    # Map strategies back onto the true hardware for evaluation.
    true_types = {ct.name: ct for ct in scenario.charger_types}
    strategies = [
        Strategy(s.position, s.orientation, true_types[s.ctype.name]) for s in inner.strategies
    ]
    return HIPOSolution(
        strategies=strategies,
        utility=scenario.utility_of(strategies),
        approx_utility=inner.approx_utility,
        candidate_set=inner.candidate_set,
        greedy=inner.greedy,
        extraction_seconds=inner.extraction_seconds,
        selection_seconds=inner.selection_seconds,
    )
