"""Distributed PDCS extraction (§5, Algorithms 4 and 5).

The candidate extraction decomposes into independent per-device tasks:
task *i* generates the candidates of device *i*'s neighbour set (devices
within ``2·dmax``), pairing *i* only with larger-indexed neighbours to avoid
duplicate work.  Tasks are assigned to ``m`` parallel machines with the LPT
rule [40] (4/3-approximate makespan); with ``m ≥ No`` each task gets its own
machine (Algorithm 5's first branch).

Two backends are provided:

* :func:`simulate_distributed_times` — measures each task's serial cost once
  and reports the LPT makespan for each machine count.  This is the
  deterministic substitute for the paper's machine cluster (Fig. 12 plots
  time *ratios*, which is exactly makespan / serial-total).
* :func:`parallel_positions_by_type` — a real ``ProcessPoolExecutor``
  execution of the tasks for wall-clock speedup on multi-core hosts.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from ..geometry import dedupe_points
from ..model.network import Scenario
from ..opt.scheduling import Schedule, lpt_schedule
from .candidates import CandidateGenerator

__all__ = [
    "TaskMeasurement",
    "measure_task_costs",
    "simulate_distributed_times",
    "assign_tasks",
    "parallel_positions_by_type",
]


@dataclass
class TaskMeasurement:
    """Serial cost measurement of the per-device extraction tasks."""

    durations: np.ndarray  # seconds per task (device), summed over charger types
    positions_by_type: dict[str, np.ndarray]

    @property
    def serial_total(self) -> float:
        """Non-distributed extraction time (Σ task durations)."""
        return float(self.durations.sum())


def measure_task_costs(scenario: Scenario, *, eps: float = 0.15) -> TaskMeasurement:
    """Run every per-device task serially, timing each (Algorithm 4 unit).

    The per-task duration covers all charger types, matching Algorithm 5
    which hands "the task with device index i and all the charger types" to
    one machine.
    """
    gen = CandidateGenerator(scenario, eps=eps)
    n = scenario.num_devices
    durations = np.zeros(n)
    chunks: dict[str, list[np.ndarray]] = {ct.name: [] for ct in scenario.charger_types}
    for i in range(n):
        t0 = time.perf_counter()
        for ct in scenario.charger_types:
            if scenario.budgets.get(ct.name, 0) == 0:
                continue
            pts = gen.positions_for_task(ct, i)
            if len(pts):
                chunks[ct.name].append(pts)
        durations[i] = time.perf_counter() - t0
    positions = {
        name: dedupe_points(np.vstack(parts)) if parts else np.zeros((0, 2))
        for name, parts in chunks.items()
    }
    return TaskMeasurement(durations, positions)


def assign_tasks(durations: np.ndarray, machines: int) -> Schedule:
    """Algorithm 5: one task per machine when ``m >= No``, else LPT."""
    n = len(durations)
    if machines >= n:
        return Schedule(tuple(range(n)), tuple(float(d) for d in durations))
    return lpt_schedule(durations, machines)


def simulate_distributed_times(
    scenario: Scenario, machine_counts: list[int], *, eps: float = 0.15
) -> dict[int | str, float]:
    """Fig. 12 harness: serial total plus LPT makespan per machine count.

    Keys: ``"serial"`` and each entry of *machine_counts*.
    """
    m = measure_task_costs(scenario, eps=eps)
    out: dict[int | str, float] = {"serial": m.serial_total}
    for k in machine_counts:
        out[k] = assign_tasks(m.durations, k).makespan
    return out


def _run_task(args: tuple[Scenario, float, int]) -> dict[str, np.ndarray]:
    scenario, eps, i = args
    gen = CandidateGenerator(scenario, eps=eps)
    out: dict[str, np.ndarray] = {}
    for ct in scenario.charger_types:
        if scenario.budgets.get(ct.name, 0) == 0:
            continue
        pts = gen.positions_for_task(ct, i)
        if len(pts):
            out[ct.name] = pts
    return out


def parallel_positions_by_type(
    scenario: Scenario, *, eps: float = 0.15, workers: int | None = None
) -> dict[str, np.ndarray]:
    """Real multi-process extraction of all candidate positions.

    The result equals the serial :meth:`CandidateGenerator.positions` per
    type (up to deduplication order).  Worker count defaults to the CPU
    count capped by the number of tasks.
    """
    n = scenario.num_devices
    if n == 0:
        return {ct.name: np.zeros((0, 2)) for ct in scenario.charger_types}
    workers = workers or min(n, os.cpu_count() or 1)
    chunks: dict[str, list[np.ndarray]] = {ct.name: [] for ct in scenario.charger_types}
    if workers <= 1:
        results = [_run_task((scenario, eps, i)) for i in range(n)]
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(_run_task, [(scenario, eps, i) for i in range(n)]))
    for res in results:
        for name, pts in res.items():
            chunks[name].append(pts)
    return {
        name: dedupe_points(np.vstack(parts)) if parts else np.zeros((0, 2))
        for name, parts in chunks.items()
    }
