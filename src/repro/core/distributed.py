"""Distributed PDCS extraction (§5, Algorithms 4 and 5).

The candidate extraction decomposes into independent per-device tasks:
task *i* generates the candidates of device *i*'s neighbour set (devices
within ``2·dmax``), pairing *i* only with larger-indexed neighbours to avoid
duplicate work.  Tasks are assigned to ``m`` parallel machines with the LPT
rule [40] (4/3-approximate makespan); with ``m ≥ No`` each task gets its own
machine (Algorithm 5's first branch).

Two backends are provided:

* :func:`simulate_distributed_times` — measures each task's serial cost once
  and reports the LPT makespan for each machine count.  This is the
  deterministic substitute for the paper's machine cluster (Fig. 12 plots
  time *ratios*, which is exactly makespan / serial-total).
* :func:`parallel_positions_by_type` — a real ``ProcessPoolExecutor``
  execution of the tasks for wall-clock speedup on multi-core hosts.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from ..backend import activate_backend
from ..geometry import dedupe_points
from ..model.network import Scenario
from ..obs import NULL_TRACER, MetricsRegistry, Tracer
from ..opt.scheduling import Schedule, lpt_schedule
from .candidates import CandidateGenerator

__all__ = [
    "SolveCancelled",
    "TaskMeasurement",
    "check_cancel",
    "extraction_pool",
    "measure_task_costs",
    "simulate_distributed_times",
    "assign_tasks",
    "parallel_positions_by_type",
    "positions_by_type_pooled",
]


class SolveCancelled(RuntimeError):
    """A cooperative cancellation fired mid-solve.

    The extraction pipeline polls a caller-supplied *cancel* token (anything
    with an ``is_set() -> bool``, e.g. a ``threading.Event``) between
    per-device tasks and between sweep chunks.  Long solves therefore stop
    within one task of the token being set — this is how ``repro.serve``
    implements job cancellation and per-job timeouts without killing worker
    processes.
    """


def check_cancel(cancel) -> None:
    """Raise :class:`SolveCancelled` when the *cancel* token is set.

    ``None`` (the default everywhere) is a no-op, so the hook costs one
    attribute check on the hot paths that poll it.
    """
    if cancel is not None and cancel.is_set():
        raise SolveCancelled("solve cancelled by caller")


@dataclass
class TaskMeasurement:
    """Serial cost measurement of the per-device extraction tasks."""

    durations: np.ndarray  # seconds per task (device), summed over charger types
    positions_by_type: dict[str, np.ndarray]

    @property
    def serial_total(self) -> float:
        """Non-distributed extraction time (Σ task durations)."""
        return float(self.durations.sum())


def measure_task_costs(
    scenario: Scenario,
    *,
    eps: float = 0.15,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    cancel=None,
) -> TaskMeasurement:
    """Run every per-device task serially, timing each (Algorithm 4 unit).

    The per-task duration covers all charger types, matching Algorithm 5
    which hands "the task with device index i and all the charger types" to
    one machine.

    With *tracer* given, each task becomes a ``task`` span (attribute
    ``device``) under a ``measure_tasks`` parent; *metrics* receives the
    ``distributed.tasks`` counter and the ``distributed.task_seconds``
    histogram, so per-task costs are no longer dropped from the user view.
    """
    trace = tracer if tracer is not None else NULL_TRACER
    gen = CandidateGenerator(scenario, eps=eps)
    n = scenario.num_devices
    durations = np.zeros(n)
    chunks: dict[str, list[np.ndarray]] = {ct.name: [] for ct in scenario.charger_types}
    with trace.span("measure_tasks", devices=n) as msp:
        for i in range(n):
            check_cancel(cancel)
            with trace.span("task", device=i) as tsp:
                t0 = time.perf_counter()
                for ct in scenario.charger_types:
                    if scenario.budgets.get(ct.name, 0) == 0:
                        continue
                    pts = gen.positions_for_task(ct, i)
                    if len(pts):
                        chunks[ct.name].append(pts)
                durations[i] = time.perf_counter() - t0
                tsp.set(seconds=round(float(durations[i]), 6))
            if metrics is not None:
                metrics.inc("distributed.tasks")
                metrics.observe("distributed.task_seconds", float(durations[i]))
        msp.set(serial_total=round(float(durations.sum()), 6))
    positions = {
        name: dedupe_points(np.vstack(parts)) if parts else np.zeros((0, 2))
        for name, parts in chunks.items()
    }
    return TaskMeasurement(durations, positions)


def assign_tasks(durations: np.ndarray, machines: int) -> Schedule:
    """Algorithm 5: one task per machine when ``m >= No``, else LPT."""
    n = len(durations)
    if machines >= n:
        return Schedule(tuple(range(n)), tuple(float(d) for d in durations))
    return lpt_schedule(durations, machines)


def simulate_distributed_times(
    scenario: Scenario,
    machine_counts: list[int],
    *,
    eps: float = 0.15,
    include_tasks: bool = False,
    tracer: Tracer | None = None,
) -> dict:
    """Fig. 12 harness: serial total plus LPT makespan per machine count.

    Keys: ``"serial"`` and each entry of *machine_counts*.  With
    ``include_tasks=True`` the per-device task durations measured by
    :func:`measure_task_costs` are surfaced under a ``"tasks"`` key instead
    of being dropped; *tracer* additionally records one span per task plus
    a ``schedule`` span per machine count.
    """
    trace = tracer if tracer is not None else NULL_TRACER
    with trace.span("simulate_distributed", machines=list(machine_counts)):
        m = measure_task_costs(scenario, eps=eps, tracer=tracer)
        out: dict = {"serial": m.serial_total}
        for k in machine_counts:
            with trace.span("schedule", machines=k) as sp:
                out[k] = assign_tasks(m.durations, k).makespan
                sp.set(makespan=round(float(out[k]), 6))
        if include_tasks:
            out["tasks"] = [float(d) for d in m.durations]
    return out


#: Per-worker extraction state: one :class:`CandidateGenerator` built from the
#: scenario shipped once via the pool initializer.  Tasks then carry only
#: small payloads (a device index, or a charger name plus a position chunk)
#: instead of re-pickling the whole scenario per task.
_WORKER_GEN: CandidateGenerator | None = None


def _pool_init(
    scenario: Scenario,
    eps: float,
    max_positions: int | None = None,
    backend: str | None = None,
) -> None:
    global _WORKER_GEN
    # Workers compute on the same backend the parent solve resolved, so
    # pooled and serial extraction stay byte-identical by construction.
    activate_backend(backend)
    _WORKER_GEN = CandidateGenerator(scenario, eps=eps, max_positions=max_positions)


def extraction_pool(
    scenario: Scenario,
    eps: float,
    workers: int,
    *,
    max_positions: int | None = None,
    backend: str | None = None,
) -> ProcessPoolExecutor:
    """A process pool whose workers hold the scenario-bound extraction state.

    The scenario is pickled once per worker (pool initializer), not once per
    task; the same pool serves both the per-device position tasks
    (:func:`positions_by_type_pooled`) and the batched PDCS sweep tasks used
    by :func:`~repro.core.placement.build_candidate_set`.  The generator's
    approximation parameters (``eps``, ``max_positions``) are shipped so the
    worker-side state matches the caller's generator; note the
    ``max_positions`` cap itself is applied by the *parent* after gathering
    (per-task subsampling would not equal the serial global subsample).
    Custom :class:`CandidateGenerator` *subclasses* cannot be reproduced in
    workers and must not be pooled — ``build_candidate_set`` guards this by
    falling back to the in-process path.
    """
    return ProcessPoolExecutor(
        max_workers=workers,
        initializer=_pool_init,
        initargs=(scenario, eps, max_positions, backend),
    )


def _positions_task(i: int) -> dict[str, np.ndarray]:
    gen = _WORKER_GEN
    out: dict[str, np.ndarray] = {}
    for ct in gen.scenario.charger_types:
        if gen.scenario.budgets.get(ct.name, 0) == 0:
            continue
        pts = gen.positions_for_task(ct, i)
        if len(pts):
            out[ct.name] = pts
    return out


def _sweep_task(args: tuple[str, np.ndarray, int | None]):
    """One chunked PDCS sweep in a pool worker.

    Returns ``(records, sweep_seconds, metrics_snapshot)``: the worker
    accumulates kernel counters into a task-local registry and ships the
    picklable snapshot back for the parent to merge, so serial and
    multi-worker runs report identical counter totals.
    """
    from .pdcs import sweep_position_batch

    ct_name, positions, los_chunk_size = args
    gen = _WORKER_GEN
    ct = gen.scenario.charger_type(ct_name)
    task_metrics = MetricsRegistry()
    records, sweep_s = sweep_position_batch(
        gen.evaluator,
        gen.approx,
        ct,
        positions,
        los_chunk_size=los_chunk_size,
        metrics=task_metrics,
    )
    return records, sweep_s, task_metrics.snapshot()


def _gather_positions(results, scenario: Scenario) -> dict[str, np.ndarray]:
    chunks: dict[str, list[np.ndarray]] = {ct.name: [] for ct in scenario.charger_types}
    for res in results:
        for name, pts in res.items():
            chunks[name].append(pts)
    return {
        name: dedupe_points(np.vstack(parts)) if parts else np.zeros((0, 2))
        for name, parts in chunks.items()
    }


def positions_by_type_pooled(
    pool: ProcessPoolExecutor, scenario: Scenario, *, cancel=None
) -> dict[str, np.ndarray]:
    """All candidate positions per type, using an :func:`extraction_pool`.

    Task order (device index ascending) matches the serial
    :meth:`CandidateGenerator.positions` chunk order, so the deduplicated
    result is *identical* to the serial one, not just set-equal.  The
    *cancel* token is polled as task results stream back.
    """
    n = scenario.num_devices
    if n == 0:
        return {ct.name: np.zeros((0, 2)) for ct in scenario.charger_types}
    results = []
    for res in pool.map(_positions_task, range(n)):
        check_cancel(cancel)
        results.append(res)
    return _gather_positions(results, scenario)


def parallel_positions_by_type(
    scenario: Scenario, *, eps: float = 0.15, workers: int | None = None, cancel=None
) -> dict[str, np.ndarray]:
    """Real multi-process extraction of all candidate positions.

    The result equals the serial :meth:`CandidateGenerator.positions` per
    type.  Worker count defaults to the CPU count capped by the number of
    tasks.  With ``workers <= 1`` the tasks run in-process against a single
    generator (no pickling at all).
    """
    n = scenario.num_devices
    if n == 0:
        return {ct.name: np.zeros((0, 2)) for ct in scenario.charger_types}
    workers = workers or min(n, os.cpu_count() or 1)
    if workers <= 1:
        gen = CandidateGenerator(scenario, eps=eps)
        results = []
        for i in range(n):
            check_cancel(cancel)
            out: dict[str, np.ndarray] = {}
            for ct in scenario.charger_types:
                if scenario.budgets.get(ct.name, 0) == 0:
                    continue
                pts = gen.positions_for_task(ct, i)
                if len(pts):
                    out[ct.name] = pts
            results.append(out)
        return _gather_positions(results, scenario)
    with extraction_pool(scenario, eps, workers) as pool:
        return positions_by_type_pooled(pool, scenario, cancel=cancel)
