"""The practical directional charging model with obstacles (Eq. 1 and 2).

A charger executing strategy ``⟨s, φs⟩`` delivers to device ``o`` (with
orientation ``φo``) the power

.. math::

    P_w = \\frac{a}{(\\lVert so \\rVert + b)^2}

iff all four conditions hold: the distance lies in ``[dmin, dmax]``, the
device is inside the charger's cone (aperture ``αs``), the charger is inside
the device's receiving cone (aperture ``αo``), and the segment ``so`` misses
every obstacle.  Power from multiple chargers is additive (Eq. 2).

:class:`PowerEvaluator` binds a scenario once and exposes vectorized kernels;
this is the hot path of both the PDCS extraction and the greedy placement, so
per-device constants are hoisted into flat numpy arrays and line-of-sight
results are cached per charger position.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from ..backend import active_backend
from ..geometry import EPS, TWO_PI, Polygon, visible_mask, visible_mask_many
from .entities import Device, Strategy
from .types import ChargerType, CoefficientTable

__all__ = ["pair_power", "PowerEvaluator"]


def pair_power(
    strategy: Strategy,
    device: Device,
    obstacles: Sequence[Polygon],
    table: CoefficientTable,
) -> float:
    """Exact charging power from one strategy to one device (Eq. 1).

    Scalar reference implementation; the evaluator below is the fast path.
    Kept deliberately simple so tests can cross-check the vectorized kernel
    against it.
    """
    ct = strategy.ctype
    sx, sy = strategy.position
    ox, oy = device.position
    d = math.hypot(ox - sx, oy - sy)
    if d < ct.dmin - EPS or d > ct.dmax + EPS:
        return 0.0
    if d < EPS:
        return 0.0
    # Device inside charger cone.
    bearing_so = math.atan2(oy - sy, ox - sx)
    if _angdiff(bearing_so, strategy.orientation) > ct.half_angle + EPS:
        return 0.0
    # Charger inside device receiving cone.
    bearing_os = math.atan2(sy - oy, sx - ox)
    if _angdiff(bearing_os, device.orientation) > device.dtype.half_angle + EPS:
        return 0.0
    for h in obstacles:
        if h.blocks_segment(strategy.position, device.position):
            return 0.0
    coeff = table.get(ct, device.dtype)
    return coeff.a / (d + coeff.b) ** 2


def _angdiff(a: float, b: float) -> float:
    d = math.fmod(a - b, TWO_PI)
    if d > math.pi:
        d -= TWO_PI
    elif d < -math.pi:
        d += TWO_PI
    return abs(d)


class PowerEvaluator:
    """Vectorized power computation bound to a fixed device/obstacle layout.

    Parameters
    ----------
    devices:
        The rechargeable devices ``o_1..o_No``.
    obstacles:
        Polygonal obstacles.
    table:
        Pairwise ``(a, b)`` coefficients.
    charger_types:
        Charger types that will be queried; per-type coefficient vectors are
        precomputed for these.
    """

    def __init__(
        self,
        devices: Sequence[Device],
        obstacles: Sequence[Polygon],
        table: CoefficientTable,
        charger_types: Iterable[ChargerType],
    ) -> None:
        self.devices = list(devices)
        self.obstacles = list(obstacles)
        self.table = table
        n = len(self.devices)
        self.positions = np.array([d.position for d in self.devices], dtype=float).reshape(n, 2)
        self.orientations = np.array([d.orientation for d in self.devices], dtype=float)
        self.half_angles = np.array([d.dtype.half_angle for d in self.devices], dtype=float)
        self.thresholds = np.array([d.threshold for d in self.devices], dtype=float)
        self._per_type: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        for ct in charger_types:
            a = np.array([table.get(ct, d.dtype).a for d in self.devices], dtype=float)
            b = np.array([table.get(ct, d.dtype).b for d in self.devices], dtype=float)
            self._per_type[ct.name] = (a, b)
        self._types = {ct.name: ct for ct in charger_types}
        self._los_cache: dict[tuple[float, float], np.ndarray] = {}

    @property
    def num_devices(self) -> int:
        return len(self.devices)

    def coefficients(self, ctype: ChargerType) -> tuple[np.ndarray, np.ndarray]:
        """Per-device ``(a, b)`` coefficient vectors for *ctype*."""
        if ctype.name not in self._per_type:
            a = np.array([self.table.get(ctype, d.dtype).a for d in self.devices], dtype=float)
            b = np.array([self.table.get(ctype, d.dtype).b for d in self.devices], dtype=float)
            self._per_type[ctype.name] = (a, b)
            self._types[ctype.name] = ctype
        return self._per_type[ctype.name]

    def los_mask(self, position: Sequence[float]) -> np.ndarray:
        """Line-of-sight mask from *position* to every device (cached)."""
        key = (round(float(position[0]), 9), round(float(position[1]), 9))
        mask = self._los_cache.get(key)
        if mask is None:
            mask = visible_mask(position, self.positions, self.obstacles)
            self._los_cache[key] = mask
        return mask

    def clear_cache(self) -> None:
        """Drop the line-of-sight cache (e.g. between sweep repetitions)."""
        self._los_cache.clear()

    def los_mask_many(self, positions: np.ndarray, *, chunk_size: int | None = None) -> np.ndarray:
        """Batched :meth:`los_mask`: ``(positions × devices)`` in one broadcast.

        Positions already in the cache are reused; fresh rows are computed
        with :func:`~repro.geometry.visible_mask_many` and cached for the
        per-position calls that follow (e.g. exact re-evaluation).
        """
        pos = np.asarray(positions, dtype=float).reshape(-1, 2)
        out = np.ones((len(pos), self.num_devices), dtype=bool)
        if not self.obstacles or len(pos) == 0:
            return out
        keys = [(round(float(p[0]), 9), round(float(p[1]), 9)) for p in pos]
        missing = [i for i, k in enumerate(keys) if k not in self._los_cache]
        if missing:
            kwargs = {} if chunk_size is None else {"chunk_size": chunk_size}
            fresh = visible_mask_many(pos[missing], self.positions, self.obstacles, **kwargs)
            for row, i in enumerate(missing):
                self._los_cache[keys[i]] = fresh[row]
        for i, k in enumerate(keys):
            out[i] = self._los_cache[k]
        return out

    def coverable(self, ctype: ChargerType, position: Sequence[float]) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Orientation-independent coverability from *position* for *ctype*.

        Returns ``(mask, dists, bearings)`` where ``mask[j]`` is True iff
        device *j* satisfies every condition of Eq. (1) except the charger
        cone test (ring distance, device receiving cone, line of sight), and
        ``bearings[j]`` is the charger→device bearing.  Algorithm 1's
        rotational sweep then only has to intersect ``bearings`` with the
        charger cone.
        """
        pos = np.asarray(position, dtype=float)
        delta = self.positions - pos
        dists = np.hypot(delta[:, 0], delta[:, 1])
        bearings = np.mod(np.arctan2(delta[:, 1], delta[:, 0]), TWO_PI)
        mask = (dists >= ctype.dmin - EPS) & (dists <= ctype.dmax + EPS) & (dists >= EPS)
        if mask.any():
            # charger inside the device receiving cone: bearing device→charger
            rev = np.mod(bearings + math.pi, TWO_PI)
            diff = np.abs(np.mod(rev - self.orientations + math.pi, TWO_PI) - math.pi)
            mask &= diff <= self.half_angles + EPS
        if mask.any() and self.obstacles:
            mask &= self.los_mask(pos)
        return mask, dists, bearings

    def coverable_many(
        self,
        ctype: ChargerType,
        positions: np.ndarray,
        *,
        los_chunk_size: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched :meth:`coverable` over many candidate positions.

        Returns ``(mask, dists, bearings)`` with shape
        ``(positions × devices)`` each; row *i* equals the serial
        ``coverable(ctype, positions[i])`` result.  The distance, ring and
        receiving-cone tests are one broadcast over the whole batch; the
        line-of-sight masks come from :meth:`los_mask_many` (chunked so
        memory stays bounded, see *los_chunk_size*).
        """
        pos = np.asarray(positions, dtype=float).reshape(-1, 2)
        delta = self.positions[None, :, :] - pos[:, None, :]  # (P, No, 2)
        dists = np.hypot(delta[..., 0], delta[..., 1])
        bearings = np.mod(np.arctan2(delta[..., 1], delta[..., 0]), TWO_PI)
        mask = (dists >= ctype.dmin - EPS) & (dists <= ctype.dmax + EPS) & (dists >= EPS)
        if mask.any():
            # charger inside the device receiving cone: bearing device→charger
            rev = np.mod(bearings + math.pi, TWO_PI)
            diff = np.abs(np.mod(rev - self.orientations[None, :] + math.pi, TWO_PI) - math.pi)
            mask &= diff <= self.half_angles[None, :] + EPS
        if mask.any() and self.obstacles:
            rows = np.nonzero(mask.any(axis=1))[0]
            mask[rows] &= self.los_mask_many(pos[rows], chunk_size=los_chunk_size)
        return mask, dists, bearings

    def power_vector(self, strategy: Strategy, *, distances: np.ndarray | None = None) -> np.ndarray:
        """Exact power delivered by *strategy* to every device (length ``No``)."""
        mask, dists, bearings = self.coverable(strategy.ctype, strategy.position)
        if mask.any():
            diff = np.abs(np.mod(bearings - strategy.orientation + math.pi, TWO_PI) - math.pi)
            mask = mask & (diff <= strategy.ctype.half_angle + EPS)
        out = np.zeros(self.num_devices)
        if mask.any():
            a, b = self.coefficients(strategy.ctype)
            d = dists if distances is None else distances
            out[mask] = active_backend().power_fill(a[mask], b[mask], d[mask])
        return out

    def power_matrix(self, strategies: Sequence[Strategy]) -> np.ndarray:
        """Exact power matrix ``P[i, j]`` = power of strategy *i* to device *j*."""
        out = np.zeros((len(strategies), self.num_devices))
        for i, s in enumerate(strategies):
            out[i] = self.power_vector(s)
        return out

    def total_power(self, strategies: Sequence[Strategy]) -> np.ndarray:
        """Additive received power per device (Eq. 2)."""
        total = np.zeros(self.num_devices)
        for s in strategies:
            total += self.power_vector(s)
        return total
