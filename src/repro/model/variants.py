"""Charging-model variants from the related-work taxonomy (§2).

The paper positions its *practical sector-ring* model against two simpler
models used by prior work:

* the **omnidirectional** model — charging and receiving areas are disks
  (e.g. [5]–[15]),
* the **classical directional (sector)** model — sectors with no near-field
  keep-out, i.e. ``dmin = 0`` (Dai et al. [2], [3]).

These reductions let us quantify the paper's motivation: a placement
optimized under a simpler model and *evaluated* under the practical model
loses utility (``bench_ablation_model``), because devices inside the
keep-out or behind obstacles receive nothing in reality.
"""

from __future__ import annotations

import math
from dataclasses import replace

from .network import Scenario
from .types import ChargerType, DeviceType

__all__ = ["omnidirectional_variant", "classical_sector_variant", "obstacle_free_variant"]

TWO_PI = 2.0 * math.pi


def classical_sector_variant(scenario: Scenario) -> Scenario:
    """The traditional directional model: same sectors, no keep-out ring."""
    new_types = tuple(
        ChargerType(ct.name, ct.charging_angle, 0.0, ct.dmax) for ct in scenario.charger_types
    )
    return scenario.with_charger_types(new_types, scenario.budgets)


def omnidirectional_variant(scenario: Scenario) -> Scenario:
    """The omnidirectional model: disk charging and receiving areas.

    Charger apertures and device receiving apertures become full circles;
    radial extents (and obstacles) are kept so the comparison isolates the
    directionality assumption.
    """
    new_ctypes = tuple(
        ChargerType(ct.name, TWO_PI, ct.dmin, ct.dmax) for ct in scenario.charger_types
    )
    dtype_cache: dict[str, DeviceType] = {}
    new_devices = []
    for d in scenario.devices:
        dt = dtype_cache.setdefault(d.dtype.name, DeviceType(d.dtype.name, TWO_PI))
        new_devices.append(replace(d, dtype=dt))
    sc = scenario.with_charger_types(new_ctypes, scenario.budgets)
    return sc.with_devices(new_devices)


def obstacle_free_variant(scenario: Scenario) -> Scenario:
    """The same instance with obstacles removed (prior placement work
    assumes free space)."""
    return replace(scenario, obstacles=(), _evaluator_cache=[])
