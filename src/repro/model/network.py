"""Scenario container: the full HIPO problem instance.

A :class:`Scenario` bundles everything the placement algorithms need — the
rectangular region, the devices with their heterogeneity, the obstacles, the
charger types with per-type budgets, and the coefficient table — plus
convenience constructors for random topologies (used by every simulation
sweep in §6).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from ..geometry import Polygon
from .entities import Device, Strategy
from .power import PowerEvaluator
from .types import ChargerType, CoefficientTable, DeviceType
from .utility import total_utility

__all__ = ["Scenario"]


@dataclass(frozen=True)
class Scenario:
    """One HIPO problem instance.

    Attributes
    ----------
    bounds:
        The deployment region ``(xmin, ymin, xmax, ymax)`` — the plane γ.
    devices:
        Devices with fixed positions/orientations.
    obstacles:
        Polygonal obstacles (chargers may not be placed inside; power is
        blocked by them).
    charger_types:
        The heterogeneous charger catalogue.
    budgets:
        ``type name → N_q_s``, the number of chargers of each type to place.
    table:
        Pairwise power-law coefficients.
    """

    bounds: tuple[float, float, float, float]
    devices: tuple[Device, ...]
    obstacles: tuple[Polygon, ...]
    charger_types: tuple[ChargerType, ...]
    budgets: dict[str, int]
    table: CoefficientTable
    _evaluator_cache: list[PowerEvaluator] = field(default_factory=list, compare=False, repr=False)

    def __post_init__(self) -> None:
        xmin, ymin, xmax, ymax = self.bounds
        if xmax <= xmin or ymax <= ymin:
            raise ValueError("empty region")
        names = {ct.name for ct in self.charger_types}
        for name in self.budgets:
            if name not in names:
                raise ValueError(f"budget for unknown charger type {name!r}")
        object.__setattr__(self, "devices", tuple(self.devices))
        object.__setattr__(self, "obstacles", tuple(self.obstacles))
        object.__setattr__(self, "charger_types", tuple(self.charger_types))

    # -- derived ----------------------------------------------------------

    @property
    def num_devices(self) -> int:
        return len(self.devices)

    @property
    def num_chargers(self) -> int:
        return sum(self.budgets.values())

    def charger_type(self, name: str) -> ChargerType:
        """Look up a charger type by name (KeyError if absent)."""
        for ct in self.charger_types:
            if ct.name == name:
                return ct
        raise KeyError(name)

    def evaluator(self) -> PowerEvaluator:
        """A (cached) vectorized power evaluator for this scenario."""
        if not self._evaluator_cache:
            self._evaluator_cache.append(
                PowerEvaluator(self.devices, self.obstacles, self.table, self.charger_types)
            )
        return self._evaluator_cache[0]

    def utility_of(self, strategies: Sequence[Strategy]) -> float:
        """Exact objective value (Eq. 4) of a placement."""
        ev = self.evaluator()
        return total_utility(ev.total_power(strategies), ev.thresholds)

    # -- geometry helpers --------------------------------------------------

    def in_region(self, p: Sequence[float]) -> bool:
        """Whether *p* lies inside the rectangular plane γ."""
        xmin, ymin, xmax, ymax = self.bounds
        return xmin <= p[0] <= xmax and ymin <= p[1] <= ymax

    def is_free(self, p: Sequence[float]) -> bool:
        """Whether *p* is inside the region and not strictly inside any
        obstacle — i.e. a feasible charger position (the paper forbids
        placement *inside* obstacles; boundaries are allowed)."""
        if not self.in_region(p):
            return False
        return not any(h.contains(p, include_boundary=False) for h in self.obstacles)

    def random_free_point(self, rng: np.random.Generator) -> np.ndarray:
        """Uniform point in the region, rejection-sampled outside obstacles."""
        xmin, ymin, xmax, ymax = self.bounds
        for _ in range(10_000):
            p = np.array(
                [rng.uniform(xmin, xmax), rng.uniform(ymin, ymax)]
            )
            if self.is_free(p):
                return p
        raise RuntimeError("could not sample a free point; obstacles fill the region?")

    # -- derived scenarios ---------------------------------------------------

    def with_budgets(self, budgets: dict[str, int]) -> "Scenario":
        """A copy with different per-type charger budgets."""
        return replace(self, budgets=dict(budgets), _evaluator_cache=[])

    def with_devices(self, devices: Sequence[Device]) -> "Scenario":
        """A copy with the device population replaced."""
        return replace(self, devices=tuple(devices), _evaluator_cache=[])

    def with_charger_types(self, charger_types: Sequence[ChargerType], budgets: dict[str, int]) -> "Scenario":
        """A copy with the charger catalogue (and budgets) replaced."""
        return replace(
            self, charger_types=tuple(charger_types), budgets=dict(budgets), _evaluator_cache=[]
        )

    def with_thresholds(self, threshold_by_type: dict[str, float]) -> "Scenario":
        """Scenario with per-device-type power thresholds replaced (Fig. 13)."""
        new_devices = tuple(
            replace(d, threshold=threshold_by_type.get(d.dtype.name, d.threshold)) for d in self.devices
        )
        return replace(self, devices=new_devices, _evaluator_cache=[])

    def scale_device_angles(self, factor: float) -> "Scenario":
        """Scenario with all receiving apertures scaled (Fig. 11(d))."""
        cache: dict[str, DeviceType] = {}
        new_devices = []
        for d in self.devices:
            dt = cache.setdefault(d.dtype.name, d.dtype.scaled(angle=factor))
            new_devices.append(replace(d, dtype=dt))
        return replace(self, devices=tuple(new_devices), _evaluator_cache=[])

    def scale_charger_types(self, *, angle: float = 1.0, dmin: float = 1.0, dmax: float = 1.0) -> "Scenario":
        """Scenario with all charger apertures / radii scaled (Fig. 11(c)/(f), Fig. 14)."""
        new_types = tuple(ct.scaled(angle=angle, dmin=dmin, dmax=dmax) for ct in self.charger_types)
        return replace(self, charger_types=new_types, _evaluator_cache=[])
