"""Charging utility model (Eq. 3 and the objective of Eq. 4).

Each device saturates at its power threshold ``Pth``:

.. math:: U_j(x) = \\min(1, x / Pth_j)

and the HIPO objective is the uniformly weighted average utility
``(1/No) Σ_j U_j(P_j)``.  ``U_j`` is concave and non-decreasing, which is what
makes the discretized objective a monotone submodular set function
(Lemma 4.6).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # imported lazily: power.py is a heavier module
    from .entities import Strategy
    from .power import PowerEvaluator

__all__ = ["utility", "utilities", "total_utility", "utility_from_strategies"]


def utility(power: float, threshold: float) -> float:
    """Single-device charging utility ``min(1, power / threshold)``."""
    if threshold <= 0.0:
        raise ValueError("threshold must be positive")
    if power <= 0.0:
        return 0.0
    return min(1.0, power / threshold)


def utilities(powers: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
    """Vectorized per-device utilities."""
    p = np.asarray(powers, dtype=float)
    t = np.asarray(thresholds, dtype=float)
    return np.minimum(1.0, np.maximum(p, 0.0) / t)


def total_utility(powers: np.ndarray, thresholds: np.ndarray) -> float:
    """Normalized total utility ``(1/No) Σ_j min(1, P_j / Pth_j)``."""
    u = utilities(powers, thresholds)
    return float(u.mean()) if u.size else 0.0


def utility_from_strategies(
    evaluator: "PowerEvaluator", strategies: Sequence["Strategy"]
) -> float:
    """Objective value of a strategy set under *evaluator* (exact powers)."""
    powers = evaluator.total_power(strategies)
    return total_utility(powers, evaluator.thresholds)
