"""Concrete entities on the plane: devices, strategies, placed chargers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry import SectorRing, normalize_angle, unit_vector
from .types import ChargerType, DeviceType

__all__ = ["Device", "Strategy", "PlacedCharger"]


@dataclass(frozen=True)
class Device:
    """A rechargeable device ``o_j`` with fixed position and orientation.

    ``threshold`` is the saturation power ``Pth_j`` of the charging utility
    model (Eq. 3).
    """

    position: tuple[float, float]
    orientation: float
    dtype: DeviceType
    threshold: float

    def __post_init__(self) -> None:
        if self.threshold <= 0.0:
            raise ValueError("power threshold must be positive")
        object.__setattr__(self, "orientation", normalize_angle(self.orientation))
        object.__setattr__(self, "position", (float(self.position[0]), float(self.position[1])))

    def receiving_ring(self, charger_type: ChargerType) -> SectorRing:
        """The device's power receiving area w.r.t. *charger_type*.

        By the geometric symmetry argument of §3.1 the receiving area shares
        the charger type's radial extent ``[dmin, dmax]`` and uses the
        device's own aperture ``αo``.
        """
        return SectorRing(
            self.position,
            self.orientation,
            self.dtype.half_angle,
            charger_type.dmin,
            charger_type.dmax,
        )

    def direction(self) -> np.ndarray:
        """Unit orientation vector ``r_o``."""
        return unit_vector(self.orientation)


@dataclass(frozen=True)
class Strategy:
    """A charger placement decision: position + orientation for one type.

    The paper calls the (position, orientation) combination a *strategy*
    ``⟨s_i, φ_i⟩``.
    """

    position: tuple[float, float]
    orientation: float
    ctype: ChargerType

    def __post_init__(self) -> None:
        object.__setattr__(self, "orientation", normalize_angle(self.orientation))
        object.__setattr__(self, "position", (float(self.position[0]), float(self.position[1])))

    def charging_ring(self) -> SectorRing:
        """The charging area produced by executing this strategy."""
        return SectorRing(
            self.position,
            self.orientation,
            self.ctype.half_angle,
            self.ctype.dmin,
            self.ctype.dmax,
        )

    def direction(self) -> np.ndarray:
        """Unit orientation vector ``r_s``."""
        return unit_vector(self.orientation)


#: A charger, once placed, is fully described by its strategy.
PlacedCharger = Strategy
