"""Hardware type descriptions for heterogeneous chargers and devices.

The paper's heterogeneity enters through three tables (Tables 2–4):

* each **charger type** has an aperture ``αs`` and a radial charging extent
  ``[dmin, dmax]``,
* each **device type** has a receiving aperture ``αo``,
* each *(charger type, device type)* **pair** has empirical coefficients
  ``(a, b)`` of the power law ``P(d) = a / (d + b)^2``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

__all__ = ["ChargerType", "DeviceType", "PairCoefficients", "CoefficientTable"]


@dataclass(frozen=True)
class ChargerType:
    """A class of wireless chargers (Table 2 row).

    Parameters
    ----------
    name:
        Human-readable identifier, e.g. ``"type-1"``.
    charging_angle:
        Full aperture ``αs`` of the charging sector ring, radians.
    dmin, dmax:
        Nearest / farthest charging distances of the sector-ring model.
    """

    name: str
    charging_angle: float
    dmin: float
    dmax: float

    def __post_init__(self) -> None:
        if not (0.0 < self.charging_angle <= 2.0 * math.pi + 1e-12):
            raise ValueError(f"charging angle must be in (0, 2*pi], got {self.charging_angle}")
        if self.dmin < 0.0 or self.dmax <= self.dmin:
            raise ValueError(f"need 0 <= dmin < dmax, got [{self.dmin}, {self.dmax}]")

    @property
    def half_angle(self) -> float:
        """Half aperture ``αs / 2``."""
        return self.charging_angle / 2.0

    def scaled(self, *, angle: float = 1.0, dmin: float = 1.0, dmax: float = 1.0) -> "ChargerType":
        """A copy with aperture / radii multiplied by the given factors.

        Used by the Fig. 11(c)/(f) and Fig. 14 sensitivity sweeps.  Scaled
        apertures are clamped to ``2*pi``; ``dmin`` is clamped below ``dmax``.
        """
        new_dmax = self.dmax * dmax
        new_dmin = min(self.dmin * dmin, new_dmax * 0.999)
        return replace(
            self,
            charging_angle=min(self.charging_angle * angle, 2.0 * math.pi),
            dmin=new_dmin,
            dmax=new_dmax,
        )


@dataclass(frozen=True)
class DeviceType:
    """A class of rechargeable devices (Table 3 row)."""

    name: str
    receiving_angle: float

    def __post_init__(self) -> None:
        if not (0.0 < self.receiving_angle <= 2.0 * math.pi + 1e-12):
            raise ValueError(f"receiving angle must be in (0, 2*pi], got {self.receiving_angle}")

    @property
    def half_angle(self) -> float:
        """Half aperture ``αo / 2``."""
        return self.receiving_angle / 2.0

    def scaled(self, *, angle: float = 1.0) -> "DeviceType":
        """A copy with the receiving aperture multiplied by *angle* (clamped to ``2*pi``)."""
        return replace(self, receiving_angle=min(self.receiving_angle * angle, 2.0 * math.pi))


@dataclass(frozen=True)
class PairCoefficients:
    """Empirical power-law coefficients for one (charger type, device type) pair."""

    a: float
    b: float

    def __post_init__(self) -> None:
        if self.a <= 0.0 or self.b < 0.0:
            raise ValueError(f"need a > 0 and b >= 0, got a={self.a}, b={self.b}")

    def power_at(self, d: float) -> float:
        """Unconstrained power law ``a / (d + b)^2`` at distance *d*."""
        return self.a / (d + self.b) ** 2


@dataclass(frozen=True)
class CoefficientTable:
    """The full (charger type × device type) coefficient matrix (Table 4)."""

    entries: dict[tuple[str, str], PairCoefficients] = field(default_factory=dict)

    def get(self, charger: ChargerType | str, device: DeviceType | str) -> PairCoefficients:
        """Look up the ``(a, b)`` pair for a charger/device type combination."""
        cname = charger if isinstance(charger, str) else charger.name
        dname = device if isinstance(device, str) else device.name
        try:
            return self.entries[(cname, dname)]
        except KeyError:
            raise KeyError(f"no coefficients for charger {cname!r} x device {dname!r}") from None

    def with_entry(
        self, charger: ChargerType | str, device: DeviceType | str, coeff: PairCoefficients
    ) -> "CoefficientTable":
        """A copy of the table with one entry replaced (functional update)."""
        cname = charger if isinstance(charger, str) else charger.name
        dname = device if isinstance(device, str) else device.name
        entries = dict(self.entries)
        entries[(cname, dname)] = coeff
        return CoefficientTable(entries)
