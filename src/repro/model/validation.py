"""Scenario diagnostics: catch ill-posed instances before solving.

``validate_scenario`` inspects an instance for the conditions that make the
HIPO pipeline degenerate or trivially wasteful and returns a structured
issue list: devices inside obstacles, zero charger budgets, unreachable
devices (no feasible charger position can deliver non-zero power — e.g. a
device boxed in by obstacles or whose receiving cone points into a wall),
and obstacles that leave no free placement area.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Literal

import numpy as np

from ..geometry import polar_offset
from .network import Scenario

__all__ = ["Issue", "ValidationReport", "validate_scenario", "unreachable_devices"]

Severity = Literal["error", "warning"]


@dataclass(frozen=True)
class Issue:
    """One diagnostic finding (severity, machine-readable code, message)."""

    severity: Severity
    code: str
    message: str


@dataclass
class ValidationReport:
    """All findings for one scenario; ``ok`` when no errors are present."""

    issues: list[Issue]

    @property
    def ok(self) -> bool:
        """No errors (warnings allowed)."""
        return not any(i.severity == "error" for i in self.issues)

    def errors(self) -> list[Issue]:
        return [i for i in self.issues if i.severity == "error"]

    def warnings(self) -> list[Issue]:
        return [i for i in self.issues if i.severity == "warning"]

    def format(self) -> str:
        if not self.issues:
            return "scenario OK"
        return "\n".join(f"[{i.severity}] {i.code}: {i.message}" for i in self.issues)


def unreachable_devices(
    scenario: Scenario, *, radial_samples: int = 6, angular_samples: int = 24
) -> list[int]:
    """Device indices no sampled feasible charger position can charge.

    For each device and charger type, the receiving sector ring is sampled
    on a polar lattice; a device is *reachable* if some free sample point
    passes every orientation-independent condition of Eq. (1).  Sampling is
    sound-but-incomplete (a reported-unreachable device might still be
    reachable through a sliver); it is a diagnostic, not a proof.
    """
    ev = scenario.evaluator()
    out = []
    for j, dev in enumerate(scenario.devices):
        reachable = False
        for ct in scenario.charger_types:
            if scenario.budgets.get(ct.name, 0) == 0:
                continue
            half = dev.dtype.half_angle
            radii = np.linspace(ct.dmin, ct.dmax, radial_samples)
            offsets = np.linspace(-half * 0.98, half * 0.98, angular_samples)
            for r in radii:
                if r <= 0:
                    continue
                for off in offsets:
                    p = polar_offset(dev.position, dev.orientation + off, float(r))
                    if not scenario.is_free(p):
                        continue
                    mask, _d, _b = ev.coverable(ct, p)
                    if mask[j]:
                        reachable = True
                        break
                if reachable:
                    break
            if reachable:
                break
        if not reachable:
            out.append(j)
    return out


def validate_scenario(scenario: Scenario, *, check_reachability: bool = True) -> ValidationReport:
    """Run all diagnostics and return a :class:`ValidationReport`."""
    issues: list[Issue] = []

    for j, dev in enumerate(scenario.devices):
        if not scenario.in_region(dev.position):
            issues.append(
                Issue("error", "device-outside-region", f"device {j} at {dev.position} is outside the plane")
            )
        for k, h in enumerate(scenario.obstacles):
            if h.contains(dev.position, include_boundary=False):
                issues.append(
                    Issue(
                        "error",
                        "device-in-obstacle",
                        f"device {j} at {dev.position} lies inside obstacle {k}",
                    )
                )

    if scenario.num_chargers == 0:
        issues.append(Issue("error", "no-chargers", "all charger budgets are zero"))
    for name, count in scenario.budgets.items():
        if count == 0:
            issues.append(Issue("warning", "zero-budget-type", f"charger type {name!r} has budget 0"))

    xmin, ymin, xmax, ymax = scenario.bounds
    region_area = (xmax - xmin) * (ymax - ymin)
    obstacle_area = sum(h.area for h in scenario.obstacles)
    if obstacle_area >= region_area:
        issues.append(
            Issue("error", "obstacles-fill-region", "obstacle area is at least the region area")
        )
    elif obstacle_area > 0.5 * region_area:
        issues.append(
            Issue(
                "warning",
                "obstacles-dominate-region",
                f"obstacles cover {obstacle_area / region_area:.0%} of the region",
            )
        )

    max_reach = max((ct.dmax for ct in scenario.charger_types), default=0.0)
    diag = math.hypot(xmax - xmin, ymax - ymin)
    if max_reach > 0 and max_reach < 0.01 * diag:
        issues.append(
            Issue(
                "warning",
                "tiny-charging-range",
                f"largest dmax ({max_reach:g}) is under 1% of the region diagonal ({diag:g})",
            )
        )

    if check_reachability and scenario.num_devices and scenario.num_chargers:
        for j in unreachable_devices(scenario):
            issues.append(
                Issue(
                    "warning",
                    "unreachable-device",
                    f"device {j} at {scenario.devices[j].position} appears unreachable "
                    "by any feasible charger position",
                )
            )
    return ValidationReport(issues)
