"""Charging model substrate: types, entities, power law, utility, scenarios."""

from .entities import Device, PlacedCharger, Strategy
from .network import Scenario
from .power import PowerEvaluator, pair_power
from .types import ChargerType, CoefficientTable, DeviceType, PairCoefficients
from .validation import Issue, ValidationReport, unreachable_devices, validate_scenario
from .variants import classical_sector_variant, obstacle_free_variant, omnidirectional_variant
from .utility import total_utility, utilities, utility, utility_from_strategies

__all__ = [
    "ChargerType",
    "CoefficientTable",
    "Device",
    "Issue",
    "DeviceType",
    "PairCoefficients",
    "PlacedCharger",
    "PowerEvaluator",
    "Scenario",
    "Strategy",
    "ValidationReport",
    "classical_sector_variant",
    "obstacle_free_variant",
    "omnidirectional_variant",
    "pair_power",
    "total_utility",
    "utilities",
    "unreachable_devices",
    "utility",
    "utility_from_strategies",
    "validate_scenario",
]
