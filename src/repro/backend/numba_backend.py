"""Numba-compiled backend: njit + cached compilation, parallel where safe.

The kernels below are plain Python functions written in the scalar-loop
style numba compiles well (early exit per segment instead of the numpy
``(m, E)`` broadcast).  They live at module top level so

* ``njit(cache=True)`` can persist compiled code across processes (the
  on-disk cache sits in ``__pycache__`` next to this file, or
  ``NUMBA_CACHE_DIR`` when set), and
* the test suite can exercise the *uncompiled* bodies against the numpy
  backend even on machines without numba.

``numba`` itself is imported only inside :meth:`NumbaBackend.load`
(rule BKD701): importing this module costs nothing, and auto-selection
falls back to numpy when the import or compilation fails.

Bit-identity notes — the contract is *exact* equality with the numpy
backend, which constrains the arithmetic:

* no ``fastmath`` anywhere: numba's default strict IEEE mode performs the
  same correctly-rounded operations as numpy, while fastmath licenses
  FMA contraction and reassociation that change low bits;
* the power law is written ``t = d + b; a / (t * t)`` because numpy's
  ``x ** 2.0`` takes the integer-exponent fast path (a multiply), and the
  kernel must do the identical multiply rather than call ``pow``;
* parallel loops only ever write disjoint output rows (one row per
  ``prange`` index, no reductions), so scheduling cannot reorder any
  floating-point accumulation.
"""

from __future__ import annotations

import math
from typing import Any, Callable

import numpy as np

from ..geometry.primitives import EPS, TWO_PI
from . import KernelBackend, _module_importable

__all__ = ["NumbaBackend"]

#: Rebound to ``numba.prange`` by :meth:`NumbaBackend.load` *before* the
#: kernels are compiled; as plain Python the loops just run serially.
prange: Callable[[int], Any] = range


def _blocked_segments_py(
    starts: np.ndarray,
    ends: np.ndarray,
    c: np.ndarray,
    d: np.ndarray,
    s: np.ndarray,
) -> np.ndarray:
    """Scalar-loop twin of ``numpy_backend._blocked_segments``.

    Per segment: proper-crossing test against each edge with early exit,
    then the even-odd midpoint parity fallback for grazing segments.
    """
    m = starts.shape[0]
    n_edges = c.shape[0]
    out = np.zeros(m, dtype=np.bool_)
    for k in prange(m):
        sx = starts[k, 0]
        sy = starts[k, 1]
        rx = ends[k, 0] - sx
        ry = ends[k, 1] - sy
        blocked = False
        for e in range(n_edges):
            csx = c[e, 0] - sx
            csy = c[e, 1] - sy
            dsx = d[e, 0] - sx
            dsy = d[e, 1] - sy
            d1 = rx * csy - ry * csx
            d2 = rx * dsy - ry * dsx
            if not ((d1 > EPS and d2 < -EPS) or (d1 < -EPS and d2 > EPS)):
                continue
            d3 = s[e, 0] * (sy - c[e, 1]) - s[e, 1] * (sx - c[e, 0])
            d4 = s[e, 0] * (ends[k, 1] - c[e, 1]) - s[e, 1] * (ends[k, 0] - c[e, 0])
            if (d3 > EPS and d4 < -EPS) or (d3 < -EPS and d4 > EPS):
                blocked = True
                break
        if not blocked:
            # Grazing segment: blocked iff the midpoint is inside (parity).
            mx = (sx + ends[k, 0]) / 2.0
            my = (sy + ends[k, 1]) / 2.0
            crossings = 0
            for e in range(n_edges):
                if (c[e, 1] > my) != (d[e, 1] > my):
                    x_cross = (d[e, 0] - c[e, 0]) * (my - c[e, 1]) / (
                        d[e, 1] - c[e, 1]
                    ) + c[e, 0]
                    if mx < x_cross:
                        crossings += 1
            blocked = crossings % 2 == 1
        out[k] = blocked
    return out


def _parity_inside_py(c: np.ndarray, d: np.ndarray, pts: np.ndarray) -> np.ndarray:
    """Scalar-loop twin of ``numpy_backend._parity_inside``."""
    n = pts.shape[0]
    n_edges = c.shape[0]
    out = np.zeros(n, dtype=np.bool_)
    for k in prange(n):
        x = pts[k, 0]
        y = pts[k, 1]
        crossings = 0
        for e in range(n_edges):
            if (c[e, 1] > y) != (d[e, 1] > y):
                x_cross = (d[e, 0] - c[e, 0]) * (y - c[e, 1]) / (d[e, 1] - c[e, 1]) + c[
                    e, 0
                ]
                if x < x_cross:
                    crossings += 1
        out[k] = crossings % 2 == 1
    return out


def _power_fill_1d_py(a: np.ndarray, b: np.ndarray, dists: np.ndarray) -> np.ndarray:
    out = np.empty(dists.shape[0], dtype=np.float64)
    for k in prange(dists.shape[0]):
        t = dists[k] + b[k]
        out[k] = a[k] / (t * t)
    return out


def _power_fill_2d_py(a: np.ndarray, b: np.ndarray, dists: np.ndarray) -> np.ndarray:
    rows, cols = dists.shape
    out = np.empty((rows, cols), dtype=np.float64)
    for r in prange(rows):
        for j in range(cols):
            t = dists[r, j] + b[j]
            out[r, j] = a[j] / (t * t)
    return out


def _sweep_coverage_py(
    bearings: np.ndarray, half_angle: float, tol: float
) -> tuple[np.ndarray, np.ndarray]:
    m = bearings.shape[0]
    thetas = np.empty(m, dtype=np.float64)
    for t in range(m):
        thetas[t] = np.mod(bearings[t] + half_angle, TWO_PI)
    coverage = np.empty((m, m), dtype=np.bool_)
    limit = half_angle + tol
    for t in prange(m):
        th = thetas[t]
        for j in range(m):
            diff = abs(np.mod(bearings[j] - th + math.pi, TWO_PI) - math.pi)
            coverage[t, j] = diff <= limit
    return thetas, coverage


class NumbaBackend(KernelBackend):
    """Compiled kernels, auto-selected whenever numba imports and compiles."""

    name = "numba"
    priority = 20
    selectable = True

    def __init__(self) -> None:
        super().__init__()
        self._blocked = _blocked_segments_py
        self._parity = _parity_inside_py
        self._fill_1d = _power_fill_1d_py
        self._fill_2d = _power_fill_2d_py
        self._sweep = _sweep_coverage_py

    def available(self) -> bool:
        return _module_importable("numba")

    def load(self) -> None:
        global prange
        import numba

        prange = numba.prange
        jit = numba.njit(cache=True, parallel=True, nogil=True)
        self._blocked = jit(_blocked_segments_py)
        self._parity = jit(_parity_inside_py)
        self._fill_1d = jit(_power_fill_1d_py)
        self._fill_2d = jit(_power_fill_2d_py)
        self._sweep = jit(_sweep_coverage_py)
        # Warm the dispatcher so first-solve latency is compile-free when the
        # on-disk cache is hot (and pays compilation up front when it is not).
        pt = np.zeros((1, 2), dtype=np.float64)
        edge = np.array([[0.0, 0.0]], dtype=np.float64)
        one = np.zeros(1, dtype=np.float64)
        self._blocked(pt, pt, edge, edge, edge)
        self._parity(edge, edge, pt)
        self._fill_1d(one, one + 1.0, one + 1.0)
        self._fill_2d(one, one + 1.0, np.ones((1, 1), dtype=np.float64))
        self._sweep(one, 0.5, 1e-9)

    def blocked_segments(
        self,
        starts: np.ndarray,
        ends: np.ndarray,
        edge_starts: np.ndarray,
        edge_ends: np.ndarray,
        edge_dirs: np.ndarray,
    ) -> np.ndarray:
        return self._blocked(
            np.ascontiguousarray(starts),
            np.ascontiguousarray(ends),
            np.ascontiguousarray(edge_starts),
            np.ascontiguousarray(edge_ends),
            np.ascontiguousarray(edge_dirs),
        )

    def parity_inside(
        self, edge_starts: np.ndarray, edge_ends: np.ndarray, points: np.ndarray
    ) -> np.ndarray:
        return self._parity(
            np.ascontiguousarray(edge_starts),
            np.ascontiguousarray(edge_ends),
            np.ascontiguousarray(points),
        )

    def power_fill(self, a: np.ndarray, b: np.ndarray, dists: np.ndarray) -> np.ndarray:
        d = np.ascontiguousarray(dists, dtype=np.float64)
        a_c = np.ascontiguousarray(a, dtype=np.float64)
        b_c = np.ascontiguousarray(b, dtype=np.float64)
        if d.ndim == 1:
            return self._fill_1d(a_c, b_c, d)
        return self._fill_2d(a_c, b_c, d)

    def sweep_coverage(
        self, bearings: np.ndarray, half_angle: float, tol: float
    ) -> tuple[np.ndarray, np.ndarray]:
        thetas, coverage = self._sweep(
            np.ascontiguousarray(bearings, dtype=np.float64),
            float(half_angle),
            float(tol),
        )
        return thetas, coverage
