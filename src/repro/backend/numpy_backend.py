"""Reference numpy backend: the original broadcast kernels, behind the seam.

These bodies are the exact array expressions that previously lived inline
in :mod:`repro.geometry.visibility` (proper-crossing + parity tests),
:mod:`repro.model.power` (the power-law fill) and :mod:`repro.core.pdcs`
(the sweep coverage matrix).  They were moved here verbatim — same
operations in the same order on the same dtypes — so every other backend
has a bit-exact oracle to match and the seam itself cannot change results.
"""

from __future__ import annotations

import math

import numpy as np

from ..geometry.primitives import EPS, TWO_PI
from . import KernelBackend

__all__ = ["NumpyBackend"]


def _parity_inside(c: np.ndarray, d: np.ndarray, pts: np.ndarray) -> np.ndarray:
    """Vectorized even-odd point-in-polygon over edges ``(c[k], d[k])``
    (no boundary refinement)."""
    x, y = pts[:, 0], pts[:, 1]
    cond = (c[None, :, 1] > y[:, None]) != (d[None, :, 1] > y[:, None])
    with np.errstate(divide="ignore", invalid="ignore"):
        x_cross = (d[:, 0] - c[:, 0])[None, :] * (y[:, None] - c[None, :, 1]) / (
            d[:, 1] - c[:, 1]
        )[None, :] + c[None, :, 0]
    crossing = cond & (x[:, None] < x_cross)
    return crossing.sum(axis=1) % 2 == 1


def _blocked_segments(
    starts: np.ndarray,
    ends: np.ndarray,
    c: np.ndarray,
    d: np.ndarray,
    s: np.ndarray,
) -> np.ndarray:
    """Proper-crossing test of every sight segment against every edge, with
    the parity (midpoint-inside) fallback for grazing segments."""
    r = ends - starts  # (m, 2) segment directions
    cs = c[None, :, :] - starts[:, None, :]  # (m, E, 2)
    ds = d[None, :, :] - starts[:, None, :]
    # d1/d2: edge endpoints relative to each sight segment (m, E)
    d1 = r[:, None, 0] * cs[..., 1] - r[:, None, 1] * cs[..., 0]
    d2 = r[:, None, 0] * ds[..., 1] - r[:, None, 1] * ds[..., 0]
    # d3/d4: segment endpoints relative to each edge (m, E)
    sc = starts[:, None, :] - c[None, :, :]
    ec = ends[:, None, :] - c[None, :, :]
    d3 = s[None, :, 0] * sc[..., 1] - s[None, :, 1] * sc[..., 0]
    d4 = s[None, :, 0] * ec[..., 1] - s[None, :, 1] * ec[..., 0]
    proper = (((d1 > EPS) & (d2 < -EPS)) | ((d1 < -EPS) & (d2 > EPS))) & (
        ((d3 > EPS) & (d4 < -EPS)) | ((d3 < -EPS) & (d4 > EPS))
    )
    blocked = proper.any(axis=1)
    free = np.nonzero(~blocked)[0]
    if free.size:
        mids = (starts[free] + ends[free]) / 2.0
        blocked[free] = _parity_inside(c, d, mids)
    return blocked


class NumpyBackend(KernelBackend):
    """Pure-numpy kernels; always available, the auto-selection floor."""

    name = "numpy"
    priority = 10
    selectable = True

    def available(self) -> bool:
        return True

    def blocked_segments(
        self,
        starts: np.ndarray,
        ends: np.ndarray,
        edge_starts: np.ndarray,
        edge_ends: np.ndarray,
        edge_dirs: np.ndarray,
    ) -> np.ndarray:
        return _blocked_segments(starts, ends, edge_starts, edge_ends, edge_dirs)

    def parity_inside(
        self, edge_starts: np.ndarray, edge_ends: np.ndarray, points: np.ndarray
    ) -> np.ndarray:
        return _parity_inside(edge_starts, edge_ends, points)

    def power_fill(self, a: np.ndarray, b: np.ndarray, dists: np.ndarray) -> np.ndarray:
        return a / (dists + b) ** 2

    def sweep_coverage(
        self, bearings: np.ndarray, half_angle: float, tol: float
    ) -> tuple[np.ndarray, np.ndarray]:
        thetas = np.mod(bearings + half_angle, TWO_PI)
        # coverage[t, d]: device d inside cone oriented at thetas[t]
        diff = np.abs(np.mod(bearings[None, :] - thetas[:, None] + math.pi, TWO_PI) - math.pi)
        coverage = diff <= half_angle + tol
        return thetas, coverage
