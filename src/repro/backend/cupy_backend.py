"""CuPy backend registration stub — the hook for a future GPU path.

Registered so ``repro solve --backend cupy`` and ``backend_status()`` know
the name, but never auto-selected (``selectable = False``) and
:meth:`load` refuses until real device kernels exist: a GPU port must
prove bit-identical masks/powers against the numpy oracle (the
``tests/backend`` equivalence suite) before it may claim the name.

Implementation sketch for whoever picks this up: keep orchestration
(bbox prefilter, chunking, dedupe) host-side exactly as the other
backends do; implement the four :class:`~repro.backend.KernelBackend`
kernels as CuPy RawKernels or fused elementwise ops; import ``cupy``
only inside :meth:`load` (rule BKD701); and be careful that
``a / (d + b) ** 2`` on device matches numpy's multiply-based integer
power path bit-for-bit before enabling ``selectable``.
"""

from __future__ import annotations

import numpy as np

from . import BackendUnavailable, KernelBackend, _module_importable

__all__ = ["CuPyBackend"]


class CuPyBackend(KernelBackend):
    """Placeholder: reports availability, refuses to load."""

    name = "cupy"
    priority = 30
    selectable = False

    def available(self) -> bool:
        return _module_importable("cupy")

    def load(self) -> None:
        raise BackendUnavailable(
            "the 'cupy' backend is a registration stub: GPU kernels are not "
            "implemented yet (see src/repro/backend/cupy_backend.py for the "
            "porting notes); use --backend numba or numpy"
        )

    def blocked_segments(
        self,
        starts: np.ndarray,
        ends: np.ndarray,
        edge_starts: np.ndarray,
        edge_ends: np.ndarray,
        edge_dirs: np.ndarray,
    ) -> np.ndarray:
        raise NotImplementedError("cupy backend stub")

    def parity_inside(
        self, edge_starts: np.ndarray, edge_ends: np.ndarray, points: np.ndarray
    ) -> np.ndarray:
        raise NotImplementedError("cupy backend stub")

    def power_fill(self, a: np.ndarray, b: np.ndarray, dists: np.ndarray) -> np.ndarray:
        raise NotImplementedError("cupy backend stub")

    def sweep_coverage(
        self, bearings: np.ndarray, half_angle: float, tol: float
    ) -> tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError("cupy backend stub")
