"""Pluggable compute backends for the extraction hot path.

The candidate extraction spends nearly all of its time in four array
kernels: the segment-blocking test behind
:func:`~repro.geometry.visibility.visible_mask_many`, the even-odd
point-in-polygon parity fallback, the exact power-law fill
``a / (d + b)**2``, and the Algorithm-1 rotational-sweep coverage matrix.
This package puts a *seam* under exactly those kernels so the numpy
implementation can be swapped for a compiled one without touching any
call site:

* :class:`KernelBackend` — the stable kernel API every backend implements
  (``blocked_segments`` / ``parity_inside`` / ``power_fill`` /
  ``sweep_coverage``).
* ``numpy`` (:mod:`.numpy_backend`) — the reference implementation: the
  exact broadcast kernels that used to live inline in ``geometry/`` and
  ``core/``, moved behind the seam byte-for-byte.
* ``numba`` (:mod:`.numba_backend`) — njit-compiled, cached, parallel
  where safe.  Selected automatically when numba is importable; falls
  back to numpy otherwise.  The accelerator is imported lazily inside
  :meth:`KernelBackend.load` (rule BKD701 enforces this), so merely
  importing :mod:`repro.backend` never pays a compiler import.
* ``cupy`` (:mod:`.cupy_backend`) — a registration stub marking where a
  GPU path plugs in; never auto-selected.
* ``pyloop`` (:mod:`.pyloop_backend`) — the numba kernel bodies running
  as plain Python: always available, never auto-selected.  The
  independent second implementation behind the cross-backend
  byte-equality invariant of :mod:`repro.variation`.

Backends are **numerically interchangeable by contract**: every kernel
must return bit-identical arrays for identical inputs, so candidate sets,
cache keys and solutions do not depend on the backend (asserted by
``tests/backend/test_equivalence.py`` and ``benchmarks/bench_backends.py``).
Because of that contract the extraction-reuse cache key deliberately does
*not* fold the backend in.

Selection order (first match wins):

1. an explicit name (``solve_hipo(backend=...)``, ``repro solve
   --backend``, ``repro serve --backend``);
2. the ambient backend installed by :func:`use_backend` (how
   ``solve_hipo`` scopes its choice for nested kernels and pool workers);
3. the ``REPRO_BACKEND`` environment variable;
4. auto: the highest-priority backend that imports and loads, i.e.
   numba when present, else numpy.
"""

from __future__ import annotations

import contextlib
import importlib.util
import os
from abc import ABC, abstractmethod
from contextvars import ContextVar
from typing import Iterator

import numpy as np

__all__ = [
    "BackendUnavailable",
    "KernelBackend",
    "activate_backend",
    "active_backend",
    "available_backends",
    "backend_status",
    "default_backend",
    "get_backend",
    "registered_backends",
    "register_backend",
    "resolve_backend",
    "use_backend",
]

#: Name of the environment variable consulted when no backend is named
#: explicitly and no ambient backend is installed.
BACKEND_ENV_VAR = "REPRO_BACKEND"


class BackendUnavailable(RuntimeError):
    """A requested backend cannot be used (not installed, stub, or broken)."""


class KernelBackend(ABC):
    """The stable kernel API of the extraction hot path.

    Subclasses implement the four kernels below and may override
    :meth:`load` to import and compile their accelerator *lazily* — never
    at module import time (lint rule BKD701).  All kernels take and
    return plain ``numpy`` arrays; a GPU backend is expected to do its
    own host/device transfers behind this boundary.

    The contract is bit-identical output: for equal inputs every backend
    must return arrays equal under ``np.array_equal`` with identical
    dtypes.  That property is what keeps candidate sets, content-address
    cache keys and solved placements backend-independent.
    """

    #: Registry name (also the CLI / env-var spelling).
    name: str = ""
    #: Auto-selection rank; highest available wins.
    priority: int = 0
    #: Whether auto-selection may pick this backend (stubs say no).
    selectable: bool = True

    def __init__(self) -> None:
        self._loaded = False

    # -- lifecycle -------------------------------------------------------
    def available(self) -> bool:
        """Whether the backend's dependencies are importable (cheap probe)."""
        return True

    def load(self) -> None:
        """Import/compile the accelerator.  Idempotent; may raise."""

    def ensure_loaded(self) -> "KernelBackend":
        """Load once; translate failures into :class:`BackendUnavailable`."""
        if not self._loaded:
            try:
                self.load()
            except BackendUnavailable:
                raise
            except Exception as exc:
                raise BackendUnavailable(
                    f"backend {self.name!r} failed to load: {exc}"
                ) from exc
            self._loaded = True
        return self

    # -- kernels ---------------------------------------------------------
    @abstractmethod
    def blocked_segments(
        self,
        starts: np.ndarray,
        ends: np.ndarray,
        edge_starts: np.ndarray,
        edge_ends: np.ndarray,
        edge_dirs: np.ndarray,
    ) -> np.ndarray:
        """Which sight segments ``starts[k] → ends[k]`` one polygon blocks.

        *edge_starts* / *edge_ends* / *edge_dirs* are the polygon's
        ``(E, 2)`` edge arrays (:meth:`repro.geometry.Polygon.edge_arrays`).
        A segment is blocked when it properly crosses an edge, or — for
        grazing segments — when its midpoint lies strictly inside by the
        even-odd parity test.  Returns an ``(m,)`` bool array.
        """

    @abstractmethod
    def parity_inside(
        self, edge_starts: np.ndarray, edge_ends: np.ndarray, points: np.ndarray
    ) -> np.ndarray:
        """Even-odd point-in-polygon over edges ``(edge_starts[k],
        edge_ends[k])`` for each row of *points* (no boundary refinement).
        Returns an ``(n,)`` bool array."""

    @abstractmethod
    def power_fill(self, a: np.ndarray, b: np.ndarray, dists: np.ndarray) -> np.ndarray:
        """The exact power law ``a / (dists + b) ** 2`` (Eq. 1).

        *dists* is either ``(n,)`` with *a*/*b* of the same length, or
        ``(rows, devices)`` with *a*/*b* of length ``devices`` broadcast
        across rows.  Returns a float array shaped like *dists*.
        """

    @abstractmethod
    def sweep_coverage(
        self, bearings: np.ndarray, half_angle: float, tol: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Algorithm-1 sweep support: candidate orientations and coverage.

        Given the charger→device *bearings* of the coverable devices and
        the charger cone *half_angle*, returns ``(thetas, coverage)``
        where ``thetas[t] = mod(bearings[t] + half_angle, 2π)`` puts
        device *t* on the clockwise cone boundary and ``coverage[t, j]``
        is True iff device *j* lies inside the cone oriented at
        ``thetas[t]`` (within *tol*).
        """


# -- registry ------------------------------------------------------------

_REGISTRY: dict[str, KernelBackend] = {}

#: Ambient backend installed by :func:`use_backend` (context-local so
#: concurrent serve threads can run different backends independently).
_ACTIVE: ContextVar[KernelBackend | None] = ContextVar("repro_backend", default=None)

#: Auto/env resolution cache, keyed by the env-var value it was computed
#: under (the probe walks importlib; do it once per configuration).
_DEFAULT_CACHE: dict[str, KernelBackend] = {}


def register_backend(backend: KernelBackend) -> KernelBackend:
    """Add *backend* to the registry (replacing any same-named one)."""
    if not backend.name:
        raise ValueError("backend must declare a non-empty name")
    _REGISTRY[backend.name] = backend
    _DEFAULT_CACHE.clear()
    return backend


def registered_backends() -> dict[str, KernelBackend]:
    """Name → backend instance for every registered backend (copy)."""
    return dict(_REGISTRY)


def get_backend(name: str) -> KernelBackend:
    """The registered backend called *name*, loaded and ready.

    Raises :class:`BackendUnavailable` for unknown names and for backends
    whose dependencies are missing or broken — an *explicit* request never
    falls back silently.
    """
    key = name.strip().lower()
    backend = _REGISTRY.get(key)
    if backend is None:
        known = ", ".join(sorted(_REGISTRY))
        raise BackendUnavailable(f"unknown backend {name!r} (registered: {known})")
    if not backend.available():
        raise BackendUnavailable(
            f"backend {backend.name!r} is not available in this environment "
            f"(is its optional dependency installed? try `pip install repro[accel]`)"
        )
    return backend.ensure_loaded()


def available_backends() -> list[str]:
    """Names of registered backends whose dependencies are importable."""
    return [name for name, b in sorted(_REGISTRY.items()) if b.available()]


def backend_status() -> dict[str, bool]:
    """Name → availability for every registered backend (cheap probes only)."""
    return {name: b.available() for name, b in sorted(_REGISTRY.items())}


def _auto_backend() -> KernelBackend:
    """Highest-priority selectable backend that actually loads."""
    candidates = sorted(
        (b for b in _REGISTRY.values() if b.selectable),
        key=lambda b: b.priority,
        reverse=True,
    )
    for backend in candidates:
        if not backend.available():
            continue
        try:
            return backend.ensure_loaded()
        except BackendUnavailable:
            continue
    raise BackendUnavailable("no usable compute backend registered")


def default_backend() -> KernelBackend:
    """The backend auto/env resolution picks when nothing is explicit."""
    env = os.environ.get(BACKEND_ENV_VAR, "").strip().lower()
    cached = _DEFAULT_CACHE.get(env)
    if cached is None:
        cached = _auto_backend() if env in ("", "auto") else get_backend(env)
        _DEFAULT_CACHE[env] = cached
    return cached


def resolve_backend(name: str | None) -> KernelBackend:
    """Resolve *name* per the selection order documented in the module
    docstring.  ``None`` / ``"auto"`` defer to the ambient backend, then
    the ``REPRO_BACKEND`` environment variable, then auto-probing."""
    if name is not None and name.strip().lower() != "auto":
        return get_backend(name)
    ambient = _ACTIVE.get()
    if ambient is not None:
        return ambient
    return default_backend()


def active_backend() -> KernelBackend:
    """The backend the hot kernels must use *right now*.

    The ambient backend when one is installed (:func:`use_backend`),
    otherwise the env/auto default.  This is the only entry point the
    ``geometry`` / ``model`` / ``core`` kernels call, and it is cheap: a
    context-variable read plus, at worst, one cached dict lookup.
    """
    backend = _ACTIVE.get()
    if backend is not None:
        return backend
    return default_backend()


def activate_backend(name: str | None) -> KernelBackend:
    """Resolve *name* and install it as this context's ambient backend,
    unscoped.  This is the pool-worker entry point: the extraction pool
    initializer calls it once per worker process so chunked sweep tasks
    run on the same backend the parent solve resolved.  In-process callers
    should prefer the scoped :func:`use_backend`."""
    backend = resolve_backend(name).ensure_loaded()
    _ACTIVE.set(backend)
    return backend


@contextlib.contextmanager
def use_backend(backend: KernelBackend | str | None) -> Iterator[KernelBackend]:
    """Make *backend* (instance, name, or ``None`` for auto) the ambient
    backend for the enclosed block::

        with use_backend("numpy") as b:
            solve_hipo(scenario)   # every kernel inside runs on b
    """
    resolved = backend if isinstance(backend, KernelBackend) else resolve_backend(backend)
    resolved.ensure_loaded()
    token = _ACTIVE.set(resolved)
    try:
        yield resolved
    finally:
        _ACTIVE.reset(token)


def _module_importable(module: str) -> bool:
    """Whether *module* could be imported (without importing it)."""
    try:
        return importlib.util.find_spec(module) is not None
    except (ImportError, ValueError):
        return False


# Register the built-in backends.  Only lightweight module imports happen
# here — accelerators are imported inside each backend's load() (BKD701).
from .cupy_backend import CuPyBackend  # noqa: E402 - registry population
from .numba_backend import NumbaBackend  # noqa: E402
from .numpy_backend import NumpyBackend  # noqa: E402
from .pyloop_backend import PyLoopBackend  # noqa: E402

register_backend(NumpyBackend())
register_backend(NumbaBackend())
register_backend(CuPyBackend())
register_backend(PyLoopBackend())
