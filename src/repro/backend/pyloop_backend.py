"""Uncompiled scalar-loop backend (``pyloop``).

The numba kernel bodies (:mod:`.numba_backend`) running as plain Python —
a second, independently written implementation of every kernel that is
available on *every* machine, compiler or not.  Two consumers rely on it:

* the differential-testing harness (:mod:`repro.variation`) uses it as the
  always-on counterpart for the cross-backend byte-equality invariant
  (``numpy`` oracle vs ``pyloop`` loops) on machines without numba;
* the backend test suite exercises the numba kernel *logic* against the
  numpy oracle even where the compiler is absent.

Never auto-selected (``selectable=False``): plain-Python loops are orders
of magnitude slower than the vectorized oracle, so the backend must be
requested by name.  Output is bit-identical to every other backend by the
:class:`~repro.backend.KernelBackend` contract.
"""

from __future__ import annotations

from .numba_backend import NumbaBackend


class PyLoopBackend(NumbaBackend):
    """The numba kernels without compilation — always available, explicit-only."""

    name = "pyloop"
    priority = -100
    selectable = False

    def available(self) -> bool:
        return True

    def load(self) -> None:
        # Keep the plain-Python kernel bodies installed by __init__.
        pass
