"""Segment, ray and line intersection routines.

All routines treat inputs as numpy-compatible ``(x, y)`` pairs and return
plain numpy arrays.  Degenerate (collinear / parallel) configurations return
``None`` or empty lists rather than raising; callers in the PDCS extraction
only ever need *candidate* points, so dropping measure-zero degeneracies is
harmless for the algorithm's guarantees.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .primitives import EPS, cross2

__all__ = [
    "segment_intersection",
    "segments_intersect",
    "segments_properly_intersect",
    "line_intersection",
    "line_segment_intersection",
    "ray_segment_intersection",
    "point_on_segment",
    "point_segment_distance",
    "segment_segment_distance",
]


def point_on_segment(p: Sequence[float], a: Sequence[float], b: Sequence[float], *, tol: float = EPS) -> bool:
    """Whether *p* lies on the closed segment ``ab`` (within *tol*)."""
    ab = (b[0] - a[0], b[1] - a[1])
    ap = (p[0] - a[0], p[1] - a[1])
    # Both checks compare quantities linear in |ab| × displacement, so both
    # scale tol by the segment size; a raw tol on the dot product would
    # shrink the effective positional slack to tol/|ab| near the endpoints.
    scaled = tol * max(1.0, abs(ab[0]) + abs(ab[1]))
    if abs(cross2(ab, ap)) > scaled:
        return False
    t = ap[0] * ab[0] + ap[1] * ab[1]
    return -scaled <= t <= ab[0] * ab[0] + ab[1] * ab[1] + scaled


def segment_intersection(
    a: Sequence[float], b: Sequence[float], c: Sequence[float], d: Sequence[float]
) -> np.ndarray | None:
    """Intersection point of closed segments ``ab`` and ``cd``.

    Returns ``None`` when they do not intersect or are parallel/collinear
    (overlapping collinear segments are a measure-zero case the candidate
    extraction does not need an interior point for).
    """
    r = (b[0] - a[0], b[1] - a[1])
    s = (d[0] - c[0], d[1] - c[1])
    denom = cross2(r, s)
    if abs(denom) < EPS:
        return None
    ac = (c[0] - a[0], c[1] - a[1])
    t = cross2(ac, s) / denom
    u = cross2(ac, r) / denom
    if -EPS <= t <= 1.0 + EPS and -EPS <= u <= 1.0 + EPS:
        return np.array([a[0] + t * r[0], a[1] + t * r[1]])
    return None


def segments_intersect(
    a: Sequence[float], b: Sequence[float], c: Sequence[float], d: Sequence[float]
) -> bool:
    """Whether closed segments ``ab`` and ``cd`` share at least one point.

    Unlike :func:`segment_intersection`, collinear overlap is detected.
    """
    d1 = cross2((b[0] - a[0], b[1] - a[1]), (c[0] - a[0], c[1] - a[1]))
    d2 = cross2((b[0] - a[0], b[1] - a[1]), (d[0] - a[0], d[1] - a[1]))
    d3 = cross2((d[0] - c[0], d[1] - c[1]), (a[0] - c[0], a[1] - c[1]))
    d4 = cross2((d[0] - c[0], d[1] - c[1]), (b[0] - c[0], b[1] - c[1]))
    if ((d1 > EPS and d2 < -EPS) or (d1 < -EPS and d2 > EPS)) and (
        (d3 > EPS and d4 < -EPS) or (d3 < -EPS and d4 > EPS)
    ):
        return True
    if abs(d1) <= EPS and point_on_segment(c, a, b):
        return True
    if abs(d2) <= EPS and point_on_segment(d, a, b):
        return True
    if abs(d3) <= EPS and point_on_segment(a, c, d):
        return True
    if abs(d4) <= EPS and point_on_segment(b, c, d):
        return True
    return False


def segments_properly_intersect(
    a: Sequence[float], b: Sequence[float], c: Sequence[float], d: Sequence[float]
) -> bool:
    """Whether open segments ``ab`` and ``cd`` cross at a single interior point."""
    d1 = cross2((b[0] - a[0], b[1] - a[1]), (c[0] - a[0], c[1] - a[1]))
    d2 = cross2((b[0] - a[0], b[1] - a[1]), (d[0] - a[0], d[1] - a[1]))
    d3 = cross2((d[0] - c[0], d[1] - c[1]), (a[0] - c[0], a[1] - c[1]))
    d4 = cross2((d[0] - c[0], d[1] - c[1]), (b[0] - c[0], b[1] - c[1]))
    return ((d1 > EPS and d2 < -EPS) or (d1 < -EPS and d2 > EPS)) and (
        (d3 > EPS and d4 < -EPS) or (d3 < -EPS and d4 > EPS)
    )


def line_intersection(
    a: Sequence[float], b: Sequence[float], c: Sequence[float], d: Sequence[float]
) -> np.ndarray | None:
    """Intersection of the infinite lines through ``ab`` and ``cd``."""
    r = (b[0] - a[0], b[1] - a[1])
    s = (d[0] - c[0], d[1] - c[1])
    denom = cross2(r, s)
    if abs(denom) < EPS:
        return None
    ac = (c[0] - a[0], c[1] - a[1])
    t = cross2(ac, s) / denom
    return np.array([a[0] + t * r[0], a[1] + t * r[1]])


def line_segment_intersection(
    a: Sequence[float], b: Sequence[float], c: Sequence[float], d: Sequence[float]
) -> np.ndarray | None:
    """Intersection of the infinite line through ``ab`` with segment ``cd``."""
    r = (b[0] - a[0], b[1] - a[1])
    s = (d[0] - c[0], d[1] - c[1])
    denom = cross2(r, s)
    if abs(denom) < EPS:
        return None
    ac = (c[0] - a[0], c[1] - a[1])
    u = cross2(ac, r) / denom
    if -EPS <= u <= 1.0 + EPS:
        return np.array([c[0] + u * s[0], c[1] + u * s[1]])
    return None


def ray_segment_intersection(
    origin: Sequence[float], direction: Sequence[float], c: Sequence[float], d: Sequence[float]
) -> np.ndarray | None:
    """Intersection of the ray ``origin + t*direction (t >= 0)`` with segment ``cd``."""
    r = (direction[0], direction[1])
    s = (d[0] - c[0], d[1] - c[1])
    denom = cross2(r, s)
    if abs(denom) < EPS:
        return None
    ac = (c[0] - origin[0], c[1] - origin[1])
    t = cross2(ac, s) / denom
    u = cross2(ac, r) / denom
    if t >= -EPS and -EPS <= u <= 1.0 + EPS:
        return np.array([origin[0] + t * r[0], origin[1] + t * r[1]])
    return None


def point_segment_distance(p: Sequence[float], a: Sequence[float], b: Sequence[float]) -> float:
    """Distance from point *p* to closed segment ``ab``."""
    ab = (b[0] - a[0], b[1] - a[1])
    ap = (p[0] - a[0], p[1] - a[1])
    denom = ab[0] * ab[0] + ab[1] * ab[1]
    if denom < EPS * EPS:
        return float(np.hypot(ap[0], ap[1]))
    t = max(0.0, min(1.0, (ap[0] * ab[0] + ap[1] * ab[1]) / denom))
    dx = p[0] - (a[0] + t * ab[0])
    dy = p[1] - (a[1] + t * ab[1])
    return float(np.hypot(dx, dy))


def segment_segment_distance(
    a: Sequence[float], b: Sequence[float], c: Sequence[float], d: Sequence[float]
) -> float:
    """Distance between closed segments ``ab`` and ``cd`` (0 if they intersect)."""
    if segments_intersect(a, b, c, d):
        return 0.0
    return min(
        point_segment_distance(a, c, d),
        point_segment_distance(b, c, d),
        point_segment_distance(c, a, b),
        point_segment_distance(d, a, b),
    )
