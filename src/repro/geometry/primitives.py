"""Low-level planar geometry primitives.

Everything in :mod:`repro.geometry` works on plain ``(x, y)`` float pairs or
numpy arrays of shape ``(n, 2)``; there is deliberately no ``Point`` class so
that the hot paths (power-matrix construction, rotational sweeps) stay
vectorizable.

Angles are radians.  ``normalize_angle`` maps to ``[0, 2*pi)``;
``signed_angle_diff`` maps to ``(-pi, pi]``.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = [
    "EPS",
    "TWO_PI",
    "normalize_angle",
    "signed_angle_diff",
    "angle_within",
    "angle_of",
    "angles_of",
    "unit_vector",
    "distance",
    "distances",
    "rotate",
    "polar_offset",
    "cross2",
    "dot2",
    "is_close_point",
    "dedupe_points",
]

#: Geometric tolerance used across the library for degeneracy decisions.
EPS = 1e-9

TWO_PI = 2.0 * math.pi


def normalize_angle(theta: float) -> float:
    """Map *theta* into ``[0, 2*pi)``."""
    theta = math.fmod(theta, TWO_PI)
    if theta < 0.0:
        theta += TWO_PI
    # fmod of a value extremely close to 2*pi can round back onto 2*pi.
    if theta >= TWO_PI:
        theta -= TWO_PI
    return theta


def signed_angle_diff(a: float, b: float) -> float:
    """Smallest signed rotation taking direction *b* onto direction *a*.

    Returns a value in ``(-pi, pi]`` such that ``b + diff ≡ a (mod 2*pi)``.
    """
    d = math.fmod(a - b, TWO_PI)
    if d > math.pi:
        d -= TWO_PI
    elif d <= -math.pi:
        d += TWO_PI
    return d


def angle_within(theta: float, center: float, half_width: float, *, tol: float = EPS) -> bool:
    """Whether direction *theta* lies within ``half_width`` of *center*.

    This is the cone-membership test used by the charging model: a device at
    bearing *theta* is inside a charger cone oriented at *center* with
    aperture ``2 * half_width``.
    """
    return abs(signed_angle_diff(theta, center)) <= half_width + tol


def angle_of(p: Sequence[float], q: Sequence[float]) -> float:
    """Bearing of *q* as seen from *p*, in ``[0, 2*pi)``."""
    return normalize_angle(math.atan2(q[1] - p[1], q[0] - p[0]))


def angles_of(p: np.ndarray, qs: np.ndarray) -> np.ndarray:
    """Vectorized :func:`angle_of`: bearings of rows of *qs* seen from *p*."""
    d = np.asarray(qs, dtype=float) - np.asarray(p, dtype=float)
    a = np.mod(np.arctan2(d[:, 1], d[:, 0]), TWO_PI)
    # np.mod of a tiny negative angle rounds to exactly 2*pi; wrap it home.
    a[a >= TWO_PI] = 0.0
    return a


def unit_vector(theta: float) -> np.ndarray:
    """Unit vector pointing along direction *theta*."""
    return np.array([math.cos(theta), math.sin(theta)])


def distance(p: Sequence[float], q: Sequence[float]) -> float:
    """Euclidean distance between two points."""
    return math.hypot(q[0] - p[0], q[1] - p[1])


def distances(p: np.ndarray, qs: np.ndarray) -> np.ndarray:
    """Vectorized Euclidean distances from *p* to each row of *qs*."""
    d = np.asarray(qs, dtype=float) - np.asarray(p, dtype=float)
    return np.hypot(d[:, 0], d[:, 1])


def rotate(p: Sequence[float], theta: float, *, about: Sequence[float] = (0.0, 0.0)) -> np.ndarray:
    """Rotate point *p* by *theta* around *about*."""
    c, s = math.cos(theta), math.sin(theta)
    x, y = p[0] - about[0], p[1] - about[1]
    return np.array([about[0] + c * x - s * y, about[1] + s * x + c * y])


def polar_offset(p: Sequence[float], theta: float, r: float) -> np.ndarray:
    """Point at distance *r* from *p* along direction *theta*."""
    return np.array([p[0] + r * math.cos(theta), p[1] + r * math.sin(theta)])


def cross2(u: Sequence[float], v: Sequence[float]) -> float:
    """z-component of the 3D cross product of planar vectors *u* and *v*."""
    return u[0] * v[1] - u[1] * v[0]


def dot2(u: Sequence[float], v: Sequence[float]) -> float:
    """Dot product of planar vectors."""
    return u[0] * v[0] + u[1] * v[1]


def is_close_point(p: Sequence[float], q: Sequence[float], *, tol: float = 1e-7) -> bool:
    """Whether two points coincide up to *tol* (Chebyshev metric)."""
    return abs(p[0] - q[0]) <= tol and abs(p[1] - q[1]) <= tol


def dedupe_points(points: np.ndarray, *, tol: float = 1e-7) -> np.ndarray:
    """Remove near-duplicate rows from an ``(n, 2)`` point array.

    Points are snapped onto a grid of pitch *tol*; one representative per
    occupied cell is kept (the first).  Order of first occurrence is
    preserved.  O(n) — suitable for the large candidate sets produced by the
    PDCS extraction.
    """
    pts = np.asarray(points, dtype=float)
    if pts.size == 0:
        return pts.reshape(0, 2)
    keys = np.round(pts / tol).astype(np.int64)
    _, idx = np.unique(keys, axis=0, return_index=True)
    return pts[np.sort(idx)]
