"""Sector-ring regions — the charging / receiving areas of the HIPO model.

A :class:`SectorRing` is the set of points at distance ``[rmin, rmax]`` from
an apex whose bearing from the apex deviates from ``orientation`` by at most
``half_angle``.  With ``rmin = 0`` it degenerates to the classical sector of
the directional charging model [Dai et al.]; with ``half_angle = pi`` it is a
full annulus.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .primitives import (
    EPS,
    TWO_PI,
    angle_within,
    normalize_angle,
    polar_offset,
    unit_vector,
)

__all__ = ["SectorRing"]


@dataclass(frozen=True)
class SectorRing:
    """Sector ring with apex ``center``, bearing ``orientation`` (radians),
    aperture ``2 * half_angle`` and radial extent ``[rmin, rmax]``."""

    center: tuple[float, float]
    orientation: float
    half_angle: float
    rmin: float
    rmax: float

    def __post_init__(self) -> None:
        if self.rmin < 0.0 or self.rmax <= 0.0 or self.rmax < self.rmin:
            raise ValueError(f"invalid radial extent [{self.rmin}, {self.rmax}]")
        if not (0.0 < self.half_angle <= math.pi + EPS):
            raise ValueError(f"invalid half angle {self.half_angle}")
        object.__setattr__(self, "orientation", normalize_angle(self.orientation))

    # -- membership -----------------------------------------------------

    def contains(self, p: Sequence[float], *, tol: float = EPS) -> bool:
        """Whether point *p* lies in the closed sector ring."""
        dx = p[0] - self.center[0]
        dy = p[1] - self.center[1]
        d = math.hypot(dx, dy)
        if d < self.rmin - tol or d > self.rmax + tol:
            return False
        if d < EPS:
            # The apex itself: inside only when rmin == 0.
            return self.rmin <= tol
        theta = math.atan2(dy, dx)
        return angle_within(theta, self.orientation, self.half_angle, tol=tol)

    def contains_many(self, points: np.ndarray, *, tol: float = EPS) -> np.ndarray:
        """Vectorized :meth:`contains` over an ``(n, 2)`` array."""
        pts = np.asarray(points, dtype=float)
        if pts.size == 0:
            return np.zeros(0, dtype=bool)
        d = pts - np.asarray(self.center, dtype=float)
        r = np.hypot(d[:, 0], d[:, 1])
        theta = np.arctan2(d[:, 1], d[:, 0])
        diff = np.abs(np.mod(theta - self.orientation + math.pi, TWO_PI) - math.pi)
        ok_r = (r >= self.rmin - tol) & (r <= self.rmax + tol)
        ok_a = diff <= self.half_angle + tol
        ok_a |= r < EPS
        return ok_r & ok_a & ((r >= EPS) | (self.rmin <= tol))

    # -- boundary --------------------------------------------------------

    def radial_edges(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """The two straight boundary edges (absent for a full annulus)."""
        if self.half_angle >= math.pi - EPS:
            return []
        edges = []
        for sign in (-1.0, 1.0):
            theta = self.orientation + sign * self.half_angle
            a = polar_offset(self.center, theta, self.rmin)
            b = polar_offset(self.center, theta, self.rmax)
            edges.append((a, b))
        return edges

    def clockwise_boundary_angle(self) -> float:
        """Bearing of the clockwise straight boundary (as used by Algorithm 1:
        rotating the charger anticlockwise makes devices *fall out* across
        this boundary)."""
        return normalize_angle(self.orientation - self.half_angle)

    def anticlockwise_boundary_angle(self) -> float:
        """Bearing of the anticlockwise straight boundary."""
        return normalize_angle(self.orientation + self.half_angle)

    def boundary_points(self, *, arc_samples: int = 16) -> np.ndarray:
        """Sample points along the full boundary (both arcs + radial edges)."""
        thetas = self.orientation + np.linspace(-self.half_angle, self.half_angle, arc_samples)
        cx, cy = self.center
        outer = np.column_stack([cx + self.rmax * np.cos(thetas), cy + self.rmax * np.sin(thetas)])
        pieces = [outer]
        if self.rmin > EPS:
            inner = np.column_stack([cx + self.rmin * np.cos(thetas), cy + self.rmin * np.sin(thetas)])
            pieces.append(inner)
        for a, b in self.radial_edges():
            pieces.append(np.linspace(a, b, 4))
        return np.vstack(pieces)

    def area(self) -> float:
        """Area of the sector ring."""
        return self.half_angle * (self.rmax**2 - self.rmin**2)

    # -- transforms ------------------------------------------------------

    def rotated(self, dtheta: float) -> "SectorRing":
        """Same ring rotated about its apex by *dtheta*."""
        return SectorRing(self.center, self.orientation + dtheta, self.half_angle, self.rmin, self.rmax)

    def direction(self) -> np.ndarray:
        """Unit orientation vector (the paper's ``r_s`` / ``r_o``)."""
        return unit_vector(self.orientation)
