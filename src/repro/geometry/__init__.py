"""Planar geometry substrate for the HIPO reproduction.

Built from scratch (no shapely dependency): primitives, segment/circle
intersections, simple polygons (obstacles), sector rings (charging and
receiving areas), line-of-sight / hole computations, and grid generators.
"""

from .circles import (
    circle_circle_intersections,
    circle_line_intersections,
    circle_ray_intersections,
    circle_segment_intersections,
    inscribed_angle_arc_centers,
    inscribed_angle_arc_points,
    point_subtends_angle,
)
from .grid import grid_length_for_radius, square_grid, triangular_grid
from .polygon import Polygon, convex_hull, rectangle, regular_polygon
from .primitives import (
    EPS,
    TWO_PI,
    angle_of,
    angle_within,
    angles_of,
    cross2,
    dedupe_points,
    distance,
    distances,
    dot2,
    is_close_point,
    normalize_angle,
    polar_offset,
    rotate,
    signed_angle_diff,
    unit_vector,
)
from .sector import SectorRing
from .segments import (
    line_intersection,
    line_segment_intersection,
    point_on_segment,
    point_segment_distance,
    ray_segment_intersection,
    segment_intersection,
    segment_segment_distance,
    segments_intersect,
    segments_properly_intersect,
)
from .visibility import (
    line_of_sight,
    obstacle_boundary_segments,
    shadow_rays,
    visible_mask,
    visible_mask_many,
)

__all__ = [
    "EPS",
    "TWO_PI",
    "Polygon",
    "SectorRing",
    "angle_of",
    "angle_within",
    "angles_of",
    "circle_circle_intersections",
    "circle_line_intersections",
    "circle_ray_intersections",
    "circle_segment_intersections",
    "convex_hull",
    "cross2",
    "dedupe_points",
    "distance",
    "distances",
    "dot2",
    "grid_length_for_radius",
    "inscribed_angle_arc_centers",
    "inscribed_angle_arc_points",
    "is_close_point",
    "line_intersection",
    "line_of_sight",
    "line_segment_intersection",
    "normalize_angle",
    "obstacle_boundary_segments",
    "point_on_segment",
    "point_segment_distance",
    "point_subtends_angle",
    "polar_offset",
    "ray_segment_intersection",
    "rectangle",
    "regular_polygon",
    "rotate",
    "segment_intersection",
    "segment_segment_distance",
    "segments_intersect",
    "segments_properly_intersect",
    "shadow_rays",
    "signed_angle_diff",
    "square_grid",
    "triangular_grid",
    "unit_vector",
    "visible_mask",
    "visible_mask_many",
]
