"""Line-of-sight and obstacle-shadow ("hole") computations.

In the HIPO model an obstacle blocks charging power without reflection: a
charger can power a device only if the open segment between them misses every
obstacle (Eq. 1, condition ``s_i o_j ∩ h_k = ∅``).  The region of charger
positions blinded by an obstacle with respect to a device is the device's
*hole* (Fig. 2 of the paper).  Hole boundaries are rays from the device
through obstacle vertices — those rays are part of the feasible-geometric-area
boundary set used by the PDCS extraction.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from ..backend import active_backend
from .polygon import Polygon
from .primitives import EPS, distance

__all__ = [
    "line_of_sight",
    "visible_mask",
    "visible_mask_many",
    "shadow_rays",
    "obstacle_boundary_segments",
]

#: Default bound on the number of (position × target) sight segments
#: materialized per chunk by :func:`visible_mask_many`.  With ``E`` obstacle
#: edges the peak intermediate is ``O(chunk · E)`` floats.
DEFAULT_LOS_CHUNK = 262_144


def line_of_sight(p: Sequence[float], q: Sequence[float], obstacles: Iterable[Polygon]) -> bool:
    """Whether the segment ``pq`` avoids every obstacle."""
    for h in obstacles:
        if h.blocks_segment(p, q):
            return False
    return True


def visible_mask(p: Sequence[float], targets: np.ndarray, obstacles: Sequence[Polygon]) -> np.ndarray:
    """Boolean mask: which rows of *targets* have line of sight from *p*.

    This is the hottest geometric kernel of the candidate extraction (one
    call per candidate position), so the proper-crossing test against all
    obstacle edges is a single ``(targets × edges)`` numpy broadcast per
    obstacle, with a bounding-box prefilter.  Semantics match
    :meth:`Polygon.blocks_segment`: a segment is blocked if it properly
    crosses an edge or its midpoint lies strictly inside (degenerate
    boundary-grazing midpoints use parity only — a measure-zero difference).
    """
    pts = np.asarray(targets, dtype=float)
    n = len(pts)
    mask = np.ones(n, dtype=bool)
    if n == 0:
        return mask
    px, py = float(p[0]), float(p[1])
    p_arr = np.array([px, py])
    backend = active_backend()
    seg_xmin = np.minimum(pts[:, 0], px)
    seg_xmax = np.maximum(pts[:, 0], px)
    seg_ymin = np.minimum(pts[:, 1], py)
    seg_ymax = np.maximum(pts[:, 1], py)
    for h in obstacles:
        xmin, ymin, xmax, ymax = h.bbox
        near = (
            (seg_xmax >= xmin - EPS)
            & (seg_xmin <= xmax + EPS)
            & (seg_ymax >= ymin - EPS)
            & (seg_ymin <= ymax + EPS)
            & mask
        )
        idx = np.nonzero(near)[0]
        if idx.size == 0:
            continue
        sub = pts[idx]  # (m, 2)
        c, d, s = h.edge_arrays()  # (E, 2) edge starts / ends / directions
        origins = np.repeat(p_arr[None, :], idx.size, axis=0)
        blocked = backend.blocked_segments(origins, sub, c, d, s)
        mask[idx[blocked]] = False
    return mask


def _blocked_by_polygon(starts: np.ndarray, ends: np.ndarray, h: Polygon) -> np.ndarray:
    """Which of the sight segments ``starts[k] → ends[k]`` the polygon blocks.

    Generalizes the single-origin broadcast of :func:`visible_mask` to
    per-segment origins: proper-crossing test against every edge, with the
    parity (midpoint-inside) fallback for grazing segments.  Semantics match
    :meth:`Polygon.blocks_segment`.  The array work is delegated to the
    active compute backend (:func:`repro.backend.active_backend`); every
    backend returns bit-identical masks.
    """
    c, d, s = h.edge_arrays()  # (E, 2) edge starts / ends / directions
    return active_backend().blocked_segments(starts, ends, c, d, s)


def visible_mask_many(
    positions: np.ndarray,
    targets: np.ndarray,
    obstacles: Sequence[Polygon],
    *,
    chunk_size: int = DEFAULT_LOS_CHUNK,
) -> np.ndarray:
    """Batched :func:`visible_mask`: ``out[i, j]`` is True iff target *j* has
    line of sight from position *i*.

    One broadcast covers the full ``(positions × targets × edges)`` crossing
    test per obstacle; *chunk_size* caps how many (position, target) sight
    segments are materialized at once so memory stays bounded on large
    candidate sets.  Row ``out[i]`` equals ``visible_mask(positions[i], ...)``
    exactly (same bbox prefilter, proper-crossing test and parity fallback).
    """
    pos = np.asarray(positions, dtype=float).reshape(-1, 2)
    pts = np.asarray(targets, dtype=float).reshape(-1, 2)
    np_pos, n_tgt = len(pos), len(pts)
    out = np.ones((np_pos, n_tgt), dtype=bool)
    if np_pos == 0 or n_tgt == 0 or not obstacles:
        return out
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    rows_per_chunk = max(1, chunk_size // n_tgt)
    for lo in range(0, np_pos, rows_per_chunk):
        hi = min(np_pos, lo + rows_per_chunk)
        m = hi - lo
        starts = np.repeat(pos[lo:hi], n_tgt, axis=0)  # (m·T, 2)
        ends = np.tile(pts, (m, 1))
        mask = out[lo:hi].reshape(-1)  # view; updated in place
        seg_xmin = np.minimum(starts[:, 0], ends[:, 0])
        seg_xmax = np.maximum(starts[:, 0], ends[:, 0])
        seg_ymin = np.minimum(starts[:, 1], ends[:, 1])
        seg_ymax = np.maximum(starts[:, 1], ends[:, 1])
        for h in obstacles:
            xmin, ymin, xmax, ymax = h.bbox
            near = (
                (seg_xmax >= xmin - EPS)
                & (seg_xmin <= xmax + EPS)
                & (seg_ymax >= ymin - EPS)
                & (seg_ymin <= ymax + EPS)
                & mask
            )
            idx = np.nonzero(near)[0]
            if idx.size == 0:
                continue
            blocked = _blocked_by_polygon(starts[idx], ends[idx], h)
            mask[idx[blocked]] = False
    return out


def _parity_inside(c: np.ndarray, d: np.ndarray, pts: np.ndarray) -> np.ndarray:
    """Even-odd point-in-polygon over edges ``(c[k], d[k])`` (no boundary
    refinement), delegated to the active compute backend."""
    return active_backend().parity_inside(c, d, pts)


def shadow_rays(
    device_pos: Sequence[float], obstacle: Polygon, rmax: float
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Hole boundary segments of *obstacle* w.r.t. a device at *device_pos*.

    Following Lemma 4.4's construction, the device is connected with every
    obstacle vertex and the connecting line is extended beyond the vertex up
    to distance *rmax* from the device (the farthest boundary of the power
    receiving area).  Each returned segment runs from the vertex to the
    extension endpoint; together with the obstacle edges these bound the
    holes.  Vertices farther than *rmax* from the device produce no ray.
    """
    ox, oy = float(device_pos[0]), float(device_pos[1])
    rays: list[tuple[np.ndarray, np.ndarray]] = []
    for v in obstacle.vertices:
        d = distance(device_pos, v)
        if d < EPS or d >= rmax - EPS:
            continue
        ux, uy = (v[0] - ox) / d, (v[1] - oy) / d
        end = np.array([ox + rmax * ux, oy + rmax * uy])
        rays.append((np.array([v[0], v[1]]), end))
    return rays


def obstacle_boundary_segments(obstacles: Iterable[Polygon]) -> list[tuple[np.ndarray, np.ndarray]]:
    """All boundary edges of a collection of obstacles, flattened."""
    segs: list[tuple[np.ndarray, np.ndarray]] = []
    for h in obstacles:
        segs.extend(h.edges())
    return segs
