"""Line-of-sight and obstacle-shadow ("hole") computations.

In the HIPO model an obstacle blocks charging power without reflection: a
charger can power a device only if the open segment between them misses every
obstacle (Eq. 1, condition ``s_i o_j ∩ h_k = ∅``).  The region of charger
positions blinded by an obstacle with respect to a device is the device's
*hole* (Fig. 2 of the paper).  Hole boundaries are rays from the device
through obstacle vertices — those rays are part of the feasible-geometric-area
boundary set used by the PDCS extraction.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from .polygon import Polygon
from .primitives import EPS, distance

__all__ = [
    "line_of_sight",
    "visible_mask",
    "shadow_rays",
    "obstacle_boundary_segments",
]


def line_of_sight(p: Sequence[float], q: Sequence[float], obstacles: Iterable[Polygon]) -> bool:
    """Whether the segment ``pq`` avoids every obstacle."""
    for h in obstacles:
        if h.blocks_segment(p, q):
            return False
    return True


def visible_mask(p: Sequence[float], targets: np.ndarray, obstacles: Sequence[Polygon]) -> np.ndarray:
    """Boolean mask: which rows of *targets* have line of sight from *p*.

    This is the hottest geometric kernel of the candidate extraction (one
    call per candidate position), so the proper-crossing test against all
    obstacle edges is a single ``(targets × edges)`` numpy broadcast per
    obstacle, with a bounding-box prefilter.  Semantics match
    :meth:`Polygon.blocks_segment`: a segment is blocked if it properly
    crosses an edge or its midpoint lies strictly inside (degenerate
    boundary-grazing midpoints use parity only — a measure-zero difference).
    """
    pts = np.asarray(targets, dtype=float)
    n = len(pts)
    mask = np.ones(n, dtype=bool)
    if n == 0:
        return mask
    px, py = float(p[0]), float(p[1])
    seg_xmin = np.minimum(pts[:, 0], px)
    seg_xmax = np.maximum(pts[:, 0], px)
    seg_ymin = np.minimum(pts[:, 1], py)
    seg_ymax = np.maximum(pts[:, 1], py)
    for h in obstacles:
        xmin, ymin, xmax, ymax = h.bbox
        near = (
            (seg_xmax >= xmin - EPS)
            & (seg_xmin <= xmax + EPS)
            & (seg_ymax >= ymin - EPS)
            & (seg_ymin <= ymax + EPS)
            & mask
        )
        idx = np.nonzero(near)[0]
        if idx.size == 0:
            continue
        sub = pts[idx]  # (m, 2)
        c, d, s = h.edge_arrays()  # (E, 2) edge starts / ends / directions
        r = sub - np.array([px, py])  # (m, 2) segment directions
        cp = c - np.array([px, py])  # (E, 2)
        dp = d - np.array([px, py])
        # d1/d2: edge endpoints relative to the sight segment (m, E)
        d1 = r[:, None, 0] * cp[None, :, 1] - r[:, None, 1] * cp[None, :, 0]
        d2 = r[:, None, 0] * dp[None, :, 1] - r[:, None, 1] * dp[None, :, 0]
        # d3/d4: segment endpoints relative to each edge (m, E)
        pc = np.array([px, py]) - c  # (E, 2)
        d3 = s[:, 0] * pc[:, 1] - s[:, 1] * pc[:, 0]  # (E,)
        tc = sub[:, None, :] - c[None, :, :]  # (m, E, 2)
        d4 = s[None, :, 0] * tc[:, :, 1] - s[None, :, 1] * tc[:, :, 0]
        proper = (((d1 > EPS) & (d2 < -EPS)) | ((d1 < -EPS) & (d2 > EPS))) & (
            ((d3[None, :] > EPS) & (d4 < -EPS)) | ((d3[None, :] < -EPS) & (d4 > EPS))
        )
        blocked = proper.any(axis=1)
        # Grazing segments: blocked when the midpoint is inside (parity test).
        free = np.nonzero(~blocked)[0]
        if free.size:
            mids = (sub[free] + np.array([px, py])) / 2.0
            blocked[free] = _parity_inside(c, d, mids)
        mask[idx[blocked]] = False
    return mask


def _parity_inside(c: np.ndarray, d: np.ndarray, pts: np.ndarray) -> np.ndarray:
    """Vectorized even-odd point-in-polygon over edges ``(c[k], d[k])``
    (no boundary refinement)."""
    x, y = pts[:, 0], pts[:, 1]
    cond = (c[None, :, 1] > y[:, None]) != (d[None, :, 1] > y[:, None])
    with np.errstate(divide="ignore", invalid="ignore"):
        x_cross = (d[:, 0] - c[:, 0])[None, :] * (y[:, None] - c[None, :, 1]) / (
            d[:, 1] - c[:, 1]
        )[None, :] + c[None, :, 0]
    crossing = cond & (x[:, None] < x_cross)
    return crossing.sum(axis=1) % 2 == 1


def shadow_rays(
    device_pos: Sequence[float], obstacle: Polygon, rmax: float
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Hole boundary segments of *obstacle* w.r.t. a device at *device_pos*.

    Following Lemma 4.4's construction, the device is connected with every
    obstacle vertex and the connecting line is extended beyond the vertex up
    to distance *rmax* from the device (the farthest boundary of the power
    receiving area).  Each returned segment runs from the vertex to the
    extension endpoint; together with the obstacle edges these bound the
    holes.  Vertices farther than *rmax* from the device produce no ray.
    """
    ox, oy = float(device_pos[0]), float(device_pos[1])
    rays: list[tuple[np.ndarray, np.ndarray]] = []
    for v in obstacle.vertices:
        d = distance(device_pos, v)
        if d < EPS or d >= rmax - EPS:
            continue
        ux, uy = (v[0] - ox) / d, (v[1] - oy) / d
        end = np.array([ox + rmax * ux, oy + rmax * uy])
        rays.append((np.array([v[0], v[1]]), end))
    return rays


def obstacle_boundary_segments(obstacles: Iterable[Polygon]) -> list[tuple[np.ndarray, np.ndarray]]:
    """All boundary edges of a collection of obstacles, flattened."""
    segs: list[tuple[np.ndarray, np.ndarray]] = []
    for h in obstacles:
        segs.extend(h.edges())
    return segs
