"""Circle and arc intersection routines used by the PDCS extraction.

The candidate-strategy construction of Algorithms 2 and 4 needs:

* circle ∩ circle  (receiving-ring level boundaries of two devices),
* circle ∩ line / segment / ray (ring boundaries vs. device-pair lines,
  cone-boundary rays, obstacle edges and hole rays),
* the *inscribed-angle arcs* through a device pair: the locus of points from
  which a segment subtends a fixed angle (the charger aperture ``αs``).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from .primitives import EPS, distance

__all__ = [
    "circle_circle_intersections",
    "circle_line_intersections",
    "circle_segment_intersections",
    "circle_ray_intersections",
    "inscribed_angle_arc_centers",
    "inscribed_angle_arc_points",
    "point_subtends_angle",
]


def circle_circle_intersections(
    c1: Sequence[float], r1: float, c2: Sequence[float], r2: float
) -> list[np.ndarray]:
    """Intersection points of circles ``(c1, r1)`` and ``(c2, r2)``.

    Tangency returns a single point; disjoint/contained/coincident circles
    return an empty list.
    """
    d = distance(c1, c2)
    if d < EPS:  # concentric
        return []
    if d > r1 + r2 + EPS or d < abs(r1 - r2) - EPS:
        return []
    # Clamp for near-tangent configurations.
    a = (r1 * r1 - r2 * r2 + d * d) / (2.0 * d)
    h_sq = r1 * r1 - a * a
    h = math.sqrt(h_sq) if h_sq > 0.0 else 0.0
    ex = (c2[0] - c1[0]) / d
    ey = (c2[1] - c1[1]) / d
    mx = c1[0] + a * ex
    my = c1[1] + a * ey
    if h < EPS:
        return [np.array([mx, my])]
    return [
        np.array([mx - h * ey, my + h * ex]),
        np.array([mx + h * ey, my - h * ex]),
    ]


def circle_line_intersections(
    center: Sequence[float], r: float, a: Sequence[float], b: Sequence[float]
) -> list[np.ndarray]:
    """Intersections of circle ``(center, r)`` with the infinite line through ``ab``."""
    dx, dy = b[0] - a[0], b[1] - a[1]
    norm2 = dx * dx + dy * dy
    if norm2 < EPS * EPS:
        return []
    fx, fy = a[0] - center[0], a[1] - center[1]
    # |a + t*(b-a) - center|^2 = r^2
    bb = 2.0 * (fx * dx + fy * dy)
    cc = fx * fx + fy * fy - r * r
    disc = bb * bb - 4.0 * norm2 * cc
    if disc < -EPS * max(1.0, r * r):
        return []
    disc = max(disc, 0.0)
    sq = math.sqrt(disc)
    t1 = (-bb - sq) / (2.0 * norm2)
    t2 = (-bb + sq) / (2.0 * norm2)
    pts = [np.array([a[0] + t1 * dx, a[1] + t1 * dy])]
    if t2 - t1 > EPS:
        pts.append(np.array([a[0] + t2 * dx, a[1] + t2 * dy]))
    return pts


def circle_segment_intersections(
    center: Sequence[float], r: float, a: Sequence[float], b: Sequence[float]
) -> list[np.ndarray]:
    """Intersections of circle ``(center, r)`` with closed segment ``ab``."""
    dx, dy = b[0] - a[0], b[1] - a[1]
    norm2 = dx * dx + dy * dy
    if norm2 < EPS * EPS:
        return []
    fx, fy = a[0] - center[0], a[1] - center[1]
    bb = 2.0 * (fx * dx + fy * dy)
    cc = fx * fx + fy * fy - r * r
    disc = bb * bb - 4.0 * norm2 * cc
    if disc < 0.0:
        return []
    sq = math.sqrt(disc)
    out = []
    for t in ((-bb - sq) / (2.0 * norm2), (-bb + sq) / (2.0 * norm2)):
        if -EPS <= t <= 1.0 + EPS:
            out.append(np.array([a[0] + t * dx, a[1] + t * dy]))
    if len(out) == 2 and np.allclose(out[0], out[1]):
        out.pop()
    return out


def circle_ray_intersections(
    center: Sequence[float], r: float, origin: Sequence[float], direction: Sequence[float]
) -> list[np.ndarray]:
    """Intersections of circle ``(center, r)`` with ray ``origin + t*direction``, t >= 0."""
    dx, dy = direction[0], direction[1]
    norm2 = dx * dx + dy * dy
    if norm2 < EPS * EPS:
        return []
    fx, fy = origin[0] - center[0], origin[1] - center[1]
    bb = 2.0 * (fx * dx + fy * dy)
    cc = fx * fx + fy * fy - r * r
    disc = bb * bb - 4.0 * norm2 * cc
    if disc < 0.0:
        return []
    sq = math.sqrt(disc)
    out = []
    for t in ((-bb - sq) / (2.0 * norm2), (-bb + sq) / (2.0 * norm2)):
        if t >= -EPS:
            out.append(np.array([origin[0] + t * dx, origin[1] + t * dy]))
    if len(out) == 2 and np.allclose(out[0], out[1]):
        out.pop()
    return out


def inscribed_angle_arc_centers(
    p: Sequence[float], q: Sequence[float], angle: float
) -> tuple[list[np.ndarray], float]:
    """Centers and radius of the two inscribed-angle arcs through *p*, *q*.

    By the inscribed angle theorem, the locus of points *X* with
    ``∠pXq = angle`` consists of two circular arcs through *p* and *q*, lying
    on circles of radius ``|pq| / (2 sin angle)`` whose centers sit
    symmetrically on the perpendicular bisector of ``pq``.

    Returns ``(centers, radius)``; empty list if *angle* is degenerate or the
    points coincide.
    """
    d = distance(p, q)
    s = math.sin(angle)
    if d < EPS or abs(s) < EPS:
        return [], 0.0
    radius = d / (2.0 * abs(s))
    mx, my = (p[0] + q[0]) / 2.0, (p[1] + q[1]) / 2.0
    # Unit normal to pq.
    nx, ny = -(q[1] - p[1]) / d, (q[0] - p[0]) / d
    # Center offset along the bisector.
    off_sq = radius * radius - (d / 2.0) ** 2
    off = math.sqrt(off_sq) if off_sq > 0.0 else 0.0
    if angle > math.pi / 2.0:
        # Obtuse inscribed angle: the arc bulges on the *same* side as the
        # center's mirror; both signed offsets still enumerate both arcs.
        pass
    if off < EPS:
        return [np.array([mx, my])], radius
    return [
        np.array([mx + off * nx, my + off * ny]),
        np.array([mx - off * nx, my - off * ny]),
    ], radius


def point_subtends_angle(x: Sequence[float], p: Sequence[float], q: Sequence[float]) -> float:
    """The angle ``∠pXq`` subtended at *x* by segment ``pq`` (in ``[0, pi]``)."""
    ux, uy = p[0] - x[0], p[1] - x[1]
    vx, vy = q[0] - x[0], q[1] - x[1]
    nu = math.hypot(ux, uy)
    nv = math.hypot(vx, vy)
    if nu < EPS or nv < EPS:
        return 0.0
    c = (ux * vx + uy * vy) / (nu * nv)
    return math.acos(max(-1.0, min(1.0, c)))


def inscribed_angle_arc_points(
    p: Sequence[float], q: Sequence[float], angle: float, n: int = 8
) -> np.ndarray:
    """Sample *n* points on each inscribed-angle arc through *p*, *q*.

    Only points that genuinely subtend *angle* (i.e. on the correct arc of
    each circle) are returned.  Used by tests and by the candidate extraction
    as a fallback sampling of the arc loci.
    """
    centers, radius = inscribed_angle_arc_centers(p, q, angle)
    pts: list[np.ndarray] = []
    for c in centers:
        a0 = math.atan2(p[1] - c[1], p[0] - c[0])
        a1 = math.atan2(q[1] - c[1], q[0] - c[0])
        for t in np.linspace(0.0, 1.0, n + 2)[1:-1]:
            for direction in (1.0, -1.0):
                span = (a1 - a0) % (2.0 * math.pi)
                if direction < 0:
                    span = span - 2.0 * math.pi
                theta = a0 + t * span
                cand = np.array([c[0] + radius * math.cos(theta), c[1] + radius * math.sin(theta)])
                if abs(point_subtends_angle(cand, p, q) - angle) < 1e-6:
                    pts.append(cand)
    if not pts:
        return np.zeros((0, 2))
    return np.array(pts)
