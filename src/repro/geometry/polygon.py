"""Simple polygons: obstacles of the HIPO problem.

The paper allows obstacles of arbitrary shape; we model each obstacle as a
simple (possibly non-convex) polygon, per Lemma 4.4 which assumes at most
``c`` edges per obstacle.  ``Polygon`` is immutable and caches its edge list
and bounding box since obstacles are queried millions of times by the
line-of-sight tests.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Sequence

import numpy as np

from .primitives import EPS, cross2
from .segments import point_on_segment, point_segment_distance, segments_properly_intersect

__all__ = ["Polygon", "convex_hull", "regular_polygon", "rectangle"]


class Polygon:
    """An immutable simple polygon given by its vertex loop.

    Vertices are stored counter-clockwise regardless of input orientation.
    """

    __slots__ = ("_vertices", "_bbox", "_area", "_edge_cache")

    def __init__(self, vertices: Iterable[Sequence[float]]) -> None:
        verts = np.asarray(list(vertices), dtype=float)
        if verts.ndim != 2 or verts.shape[1] != 2 or len(verts) < 3:
            raise ValueError("a polygon needs at least 3 (x, y) vertices")
        signed = _signed_area(verts)
        if abs(signed) < EPS:
            raise ValueError("degenerate polygon with zero area")
        if signed < 0.0:
            verts = verts[::-1].copy()
        self._vertices = verts
        self._vertices.setflags(write=False)
        self._bbox = (
            float(verts[:, 0].min()),
            float(verts[:, 1].min()),
            float(verts[:, 0].max()),
            float(verts[:, 1].max()),
        )
        self._area = abs(signed)
        self._edge_cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    @property
    def vertices(self) -> np.ndarray:
        """``(n, 2)`` read-only vertex array, counter-clockwise."""
        return self._vertices

    @property
    def bbox(self) -> tuple[float, float, float, float]:
        """Axis-aligned bounding box ``(xmin, ymin, xmax, ymax)``."""
        return self._bbox

    @property
    def area(self) -> float:
        """Enclosed area (always positive)."""
        return self._area

    @property
    def num_edges(self) -> int:
        return len(self._vertices)

    def edges(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Iterate ``(a, b)`` vertex pairs of the boundary edges."""
        verts = self._vertices
        n = len(verts)
        for i in range(n):
            yield verts[i], verts[(i + 1) % n]

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cached ``(starts, ends, directions)`` arrays of the boundary edges,
        each of shape ``(E, 2)`` — the vectorized counterpart of :meth:`edges`."""
        if self._edge_cache is None:
            c = self._vertices
            d = np.roll(c, -1, axis=0)
            self._edge_cache = (c, d, d - c)
        return self._edge_cache

    def centroid(self) -> np.ndarray:
        """Area centroid of the polygon."""
        verts = self._vertices
        x, y = verts[:, 0], verts[:, 1]
        xn, yn = np.roll(x, -1), np.roll(y, -1)
        cross = x * yn - xn * y
        a = cross.sum() / 2.0
        cx = ((x + xn) * cross).sum() / (6.0 * a)
        cy = ((y + yn) * cross).sum() / (6.0 * a)
        return np.array([cx, cy])

    def contains(self, p: Sequence[float], *, include_boundary: bool = True) -> bool:
        """Point-in-polygon test (even-odd ray casting).

        Boundary points count as inside iff *include_boundary*.
        """
        x, y = float(p[0]), float(p[1])
        xmin, ymin, xmax, ymax = self._bbox
        if x < xmin - EPS or x > xmax + EPS or y < ymin - EPS or y > ymax + EPS:
            return False
        if self.on_boundary(p):
            return include_boundary
        inside = False
        verts = self._vertices
        n = len(verts)
        j = n - 1
        for i in range(n):
            xi, yi = verts[i]
            xj, yj = verts[j]
            if (yi > y) != (yj > y):
                x_cross = (xj - xi) * (y - yi) / (yj - yi) + xi
                if x < x_cross:
                    inside = not inside
            j = i
        return inside

    def contains_many(self, points: np.ndarray, *, include_boundary: bool = True) -> np.ndarray:
        """Vectorized :meth:`contains` over an ``(n, 2)`` array.

        Boundary handling falls back to the scalar path only for points whose
        crossing parity is ambiguous, so the common case is one numpy pass.
        """
        pts = np.asarray(points, dtype=float)
        if pts.size == 0:
            return np.zeros(0, dtype=bool)
        x, y = pts[:, 0], pts[:, 1]
        verts = self._vertices
        xi, yi = verts[:, 0], verts[:, 1]
        xj, yj = np.roll(xi, 1), np.roll(yi, 1)
        # (points, edges) crossing test
        cond = (yi[None, :] > y[:, None]) != (yj[None, :] > y[:, None])
        with np.errstate(divide="ignore", invalid="ignore"):
            x_cross = (xj - xi)[None, :] * (y[:, None] - yi[None, :]) / (yj - yi)[None, :] + xi[None, :]
        crossing = cond & (x[:, None] < x_cross)
        inside = crossing.sum(axis=1) % 2 == 1
        # boundary refinement
        near = (
            (x >= self._bbox[0] - EPS)
            & (x <= self._bbox[2] + EPS)
            & (y >= self._bbox[1] - EPS)
            & (y <= self._bbox[3] + EPS)
        )
        for k in np.nonzero(near)[0]:
            if self.on_boundary(pts[k]):
                inside[k] = include_boundary
        return inside

    def on_boundary(self, p: Sequence[float], *, tol: float = 1e-9) -> bool:
        """Whether *p* lies on the polygon boundary."""
        for a, b in self.edges():
            if point_on_segment(p, a, b, tol=tol):
                return True
        return False

    def blocks_segment(self, a: Sequence[float], b: Sequence[float]) -> bool:
        """Whether segment ``ab`` is blocked by this obstacle.

        The paper's condition ``s_i o_j ∩ h_k = ∅`` requires the open segment
        between charger and device not to meet the obstacle's interior.
        Strict proper crossings of any edge always block.  Degenerate
        segments — through a vertex, or collinear along an edge — have no
        proper crossing, so the segment is split at every boundary
        intersection and blocked iff some sub-interval midpoint is strictly
        inside (a single whole-segment midpoint misses diagonal
        corner-to-corner passes whose midpoint lands on or outside the
        boundary).
        """
        xmin, ymin, xmax, ymax = self._bbox
        if max(a[0], b[0]) < xmin - EPS or min(a[0], b[0]) > xmax + EPS:
            return False
        if max(a[1], b[1]) < ymin - EPS or min(a[1], b[1]) > ymax + EPS:
            return False
        for c, d in self.edges():
            if segments_properly_intersect(a, b, c, d):
                return True
        ts = _boundary_parameters(self, a, b)
        for t0, t1 in zip(ts, ts[1:]):
            if t1 - t0 <= EPS:
                continue
            tm = (t0 + t1) / 2.0
            mid = (a[0] + tm * (b[0] - a[0]), a[1] + tm * (b[1] - a[1]))
            if self.contains(mid, include_boundary=False):
                return True
        return False

    def distance_to_point(self, p: Sequence[float]) -> float:
        """Distance from *p* to the polygon (0 inside)."""
        if self.contains(p):
            return 0.0
        return min(point_segment_distance(p, a, b) for a, b in self.edges())

    def translated(self, dx: float, dy: float) -> "Polygon":
        """A copy shifted by ``(dx, dy)``."""
        return Polygon(self._vertices + np.array([dx, dy]))

    def scaled(self, factor: float, *, about: Sequence[float] | None = None) -> "Polygon":
        """A copy scaled by *factor* about *about* (default: centroid)."""
        origin = np.asarray(about if about is not None else self.centroid(), dtype=float)
        return Polygon(origin + factor * (self._vertices - origin))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Polygon({len(self._vertices)} vertices, area={self._area:.3g})"


def _boundary_parameters(poly: Polygon, a: Sequence[float], b: Sequence[float]) -> list[float]:
    """Sorted parameters ``t`` where ``a + t(b - a)`` meets *poly*'s boundary.

    Always includes 0 and 1, so consecutive pairs delimit the maximal
    sub-intervals of ``ab`` that stay on one side of the boundary.  Collinear
    edges contribute their endpoints' projections (the edge itself cuts the
    segment into an on-boundary stretch).
    """
    r = (b[0] - a[0], b[1] - a[1])
    rr = r[0] * r[0] + r[1] * r[1]
    ts = {0.0, 1.0}
    if rr < EPS * EPS:
        return sorted(ts)
    for c, d in poly.edges():
        s = (d[0] - c[0], d[1] - c[1])
        denom = cross2(r, s)
        ac = (c[0] - a[0], c[1] - a[1])
        if abs(denom) >= EPS:
            t = cross2(ac, s) / denom
            u = cross2(ac, r) / denom
            if -EPS <= t <= 1.0 + EPS and -EPS <= u <= 1.0 + EPS:
                ts.add(min(1.0, max(0.0, t)))
        elif abs(cross2(r, ac)) < EPS:
            for p in (c, d):
                t = ((p[0] - a[0]) * r[0] + (p[1] - a[1]) * r[1]) / rr
                if -EPS <= t <= 1.0 + EPS:
                    ts.add(min(1.0, max(0.0, t)))
    return sorted(ts)


def _signed_area(verts: np.ndarray) -> float:
    x, y = verts[:, 0], verts[:, 1]
    return float((x * np.roll(y, -1) - np.roll(x, -1) * y).sum() / 2.0)


def convex_hull(points: Iterable[Sequence[float]]) -> Polygon:
    """Convex hull (Andrew's monotone chain) of at least 3 non-collinear points."""
    pts = sorted({(float(p[0]), float(p[1])) for p in points})
    if len(pts) < 3:
        raise ValueError("need at least 3 distinct points")

    def half(seq: list[tuple[float, float]]) -> list[tuple[float, float]]:
        out: list[tuple[float, float]] = []
        for p in seq:
            # Pop on cross <= 0 exactly: an EPS-tolerant pop can discard a
            # genuinely convex vertex whose turn is tiny, losing extreme
            # points of nearly-degenerate inputs.
            while len(out) >= 2 and cross2(
                (out[-1][0] - out[-2][0], out[-1][1] - out[-2][1]),
                (p[0] - out[-2][0], p[1] - out[-2][1]),
            ) <= 0.0:
                out.pop()
            out.append(p)
        return out

    lower = half(pts)
    upper = half(pts[::-1])
    hull = lower[:-1] + upper[:-1]
    if len(hull) < 3:
        raise ValueError("points are collinear")
    return Polygon(hull)


def regular_polygon(center: Sequence[float], radius: float, n: int, *, phase: float = 0.0) -> Polygon:
    """Regular *n*-gon inscribed in the circle ``(center, radius)``."""
    if n < 3:
        raise ValueError("need n >= 3")
    thetas = phase + 2.0 * math.pi * np.arange(n) / n
    return Polygon(np.column_stack([center[0] + radius * np.cos(thetas), center[1] + radius * np.sin(thetas)]))


def rectangle(xmin: float, ymin: float, xmax: float, ymax: float) -> Polygon:
    """Axis-aligned rectangle."""
    if xmax <= xmin or ymax <= ymin:
        raise ValueError("empty rectangle")
    return Polygon([(xmin, ymin), (xmax, ymin), (xmax, ymax), (xmin, ymax)])
