"""Grid point generators for the grid-based baseline algorithms of §6.

The comparison algorithms GPAR/GPAD/GPPDCS place chargers on square or
triangular grid points with grid length ``sqrt(2)/2 * dmax`` for each charger
type's charging radius ``dmax``.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["square_grid", "triangular_grid", "grid_length_for_radius"]


def grid_length_for_radius(dmax: float) -> float:
    """The paper's grid pitch ``sqrt(2)/2 * dmax`` for charging radius *dmax*."""
    return math.sqrt(2.0) / 2.0 * dmax


def square_grid(xmin: float, ymin: float, xmax: float, ymax: float, pitch: float) -> np.ndarray:
    """Square lattice points covering ``[xmin, xmax] x [ymin, ymax]``.

    The lattice is centered so that leftover margin is split evenly.
    """
    if pitch <= 0.0:
        raise ValueError("pitch must be positive")
    w, h = xmax - xmin, ymax - ymin
    nx = max(1, int(math.floor(w / pitch)) + 1)
    ny = max(1, int(math.floor(h / pitch)) + 1)
    x0 = xmin + (w - (nx - 1) * pitch) / 2.0
    y0 = ymin + (h - (ny - 1) * pitch) / 2.0
    xs = x0 + pitch * np.arange(nx)
    ys = y0 + pitch * np.arange(ny)
    gx, gy = np.meshgrid(xs, ys)
    return np.column_stack([gx.ravel(), gy.ravel()])


def triangular_grid(xmin: float, ymin: float, xmax: float, ymax: float, pitch: float) -> np.ndarray:
    """Triangular (hexagonal-packing) lattice with edge length *pitch*.

    Rows are spaced ``pitch * sqrt(3)/2`` apart and every other row is offset
    by half a pitch — the classical equilateral-triangle deployment lattice.
    """
    if pitch <= 0.0:
        raise ValueError("pitch must be positive")
    row_h = pitch * math.sqrt(3.0) / 2.0
    w, h = xmax - xmin, ymax - ymin
    ny = max(1, int(math.floor(h / row_h)) + 1)
    y0 = ymin + (h - (ny - 1) * row_h) / 2.0
    pts = []
    for j in range(ny):
        offset = (pitch / 2.0) if (j % 2 == 1) else 0.0
        nx = max(1, int(math.floor((w - offset) / pitch)) + 1)
        x0 = xmin + offset + (w - offset - (nx - 1) * pitch) / 2.0
        xs = x0 + pitch * np.arange(nx)
        ys = np.full(nx, y0 + j * row_h)
        pts.append(np.column_stack([xs, ys]))
    return np.vstack(pts)
