"""Placement robustness analysis under deployment imprecision.

The paper's whole premise is *practicality*: the model accounts for
keep-out rings, elevation and obstacles because real installations deviate
from theory.  A natural follow-up question for any computed placement is
how much utility survives when the installers misplace chargers by a few
centimetres or degrees.  :func:`placement_robustness` answers it by
Monte-Carlo perturbation of positions/orientations (perturbed positions
that land inside obstacles or outside the region are re-drawn — an
installer would not mount a charger inside a wall).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from ..core.placement import HIPOSolution, solve_hipo
from ..core.reuse import CandidateSetCache
from ..model.entities import Strategy
from ..model.network import Scenario

__all__ = [
    "RobustnessCurve",
    "ThresholdSensitivity",
    "perturb_strategies",
    "placement_robustness",
    "threshold_sensitivity",
]


def perturb_strategies(
    scenario: Scenario,
    strategies: Sequence[Strategy],
    rng: np.random.Generator,
    *,
    position_sigma: float = 0.5,
    angle_sigma: float = 0.1,
    max_attempts: int = 100,
) -> list[Strategy]:
    """One perturbed copy of a placement (Gaussian position/orientation noise,
    re-drawn until feasible)."""
    out: list[Strategy] = []
    for s in strategies:
        for _ in range(max_attempts):
            p = (
                s.position[0] + rng.normal(0.0, position_sigma),
                s.position[1] + rng.normal(0.0, position_sigma),
            )
            if scenario.is_free(p):
                break
        else:
            p = s.position  # hopeless pocket: keep the nominal position
        theta = s.orientation + rng.normal(0.0, angle_sigma)
        out.append(Strategy(p, theta, s.ctype))
    return out


@dataclass
class RobustnessCurve:
    """Mean/min utility of a placement under growing perturbation levels."""

    sigmas: list[float]
    mean_utility: list[float]
    worst_utility: list[float]
    nominal_utility: float

    def retention(self) -> list[float]:
        """Mean utility as a fraction of the nominal (un-perturbed) utility."""
        if self.nominal_utility <= 0.0:
            return [0.0 for _ in self.mean_utility]
        return [u / self.nominal_utility for u in self.mean_utility]

    def format(self) -> str:
        lines = [f"{'sigma':>8} {'mean utility':>13} {'worst':>8} {'retention':>10}"]
        for s, m, w, r in zip(self.sigmas, self.mean_utility, self.worst_utility, self.retention()):
            lines.append(f"{s:>8.2f} {m:>13.4f} {w:>8.4f} {r:>10.3f}")
        return "\n".join(lines)


def placement_robustness(
    scenario: Scenario,
    strategies: Sequence[Strategy],
    rng: np.random.Generator,
    *,
    sigmas: Sequence[float] = (0.25, 0.5, 1.0, 2.0),
    angle_sigma_ratio: float = 0.1,
    trials: int = 20,
) -> RobustnessCurve:
    """Monte-Carlo robustness curve of a placement.

    For each position noise level σ, the orientation noise is
    ``σ · angle_sigma_ratio`` radians per unit σ; *trials* perturbed copies
    are evaluated per level.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    nominal = scenario.utility_of(list(strategies))
    means: list[float] = []
    worsts: list[float] = []
    for sigma in sigmas:
        vals = []
        for _ in range(trials):
            perturbed = perturb_strategies(
                scenario,
                strategies,
                rng,
                position_sigma=float(sigma),
                angle_sigma=float(sigma) * angle_sigma_ratio,
            )
            vals.append(scenario.utility_of(perturbed))
        means.append(float(np.mean(vals)))
        worsts.append(float(np.min(vals)))
    return RobustnessCurve(list(map(float, sigmas)), means, worsts, nominal)


@dataclass
class ThresholdSensitivity:
    """Re-solved utility under scaled power thresholds (one extraction)."""

    scales: list[float]
    utility: list[float]
    approx_utility: list[float]
    selected: list[int]
    extractions: int  # cold extractions actually paid across the sweep

    def format(self) -> str:
        lines = [f"{'scale':>8} {'utility':>10} {'approx':>10} {'selected':>9}"]
        for s, u, a, k in zip(self.scales, self.utility, self.approx_utility, self.selected):
            lines.append(f"{s:>8.2f} {u:>10.4f} {a:>10.4f} {k:>9d}")
        lines.append(f"extractions paid: {self.extractions} / {len(self.scales)} solves")
        return "\n".join(lines)


def threshold_sensitivity(
    scenario: Scenario,
    scales: Sequence[float] = (0.5, 0.75, 1.0, 1.25, 1.5),
    *,
    eps: float = 0.15,
    candidate_cache: CandidateSetCache | None = None,
    **solve_kwargs,
) -> ThresholdSensitivity:
    """How the solved placement responds to scaled device thresholds.

    Thresholds enter only the greedy's objective, never candidate
    extraction, so every scale point warm-starts from one shared
    :class:`~repro.core.reuse.CandidateSetCache` entry (the Fig. 13
    question — "what if devices demand more power?" — answered at
    selection-only cost per point).  Each solution is byte-identical to a
    cold solve of the same scaled instance.
    """
    cache = (
        candidate_cache
        if candidate_cache is not None
        else CandidateSetCache(max_entries=max(4, len(scales)))
    )
    utilities: list[float] = []
    approx: list[float] = []
    selected: list[int] = []
    solutions: list[HIPOSolution] = []
    for scale in scales:
        devices = tuple(
            replace(d, threshold=d.threshold * float(scale)) for d in scenario.devices
        )
        sol = solve_hipo(
            scenario.with_devices(devices), eps=eps, candidate_cache=cache, **solve_kwargs
        )
        solutions.append(sol)
        utilities.append(float(sol.utility))
        approx.append(float(sol.approx_utility))
        selected.append(len(sol.strategies))
    return ThresholdSensitivity(
        [float(s) for s in scales],
        utilities,
        approx,
        selected,
        extractions=int(cache.stats()["misses"]),
    )
