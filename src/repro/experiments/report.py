"""One-shot reproduction report generator.

``generate_report`` runs a configurable subset of the paper's experiments
and writes a self-contained results directory: a markdown summary, one CSV
per sweep, and SVG placement maps.  This is what the CLI's ``report``
command calls; CI pipelines can diff successive runs.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from .analysis import placement_metrics
from .figures import (
    field_comparison,
    fig10_instance,
    fig11a_num_chargers,
    fig12_distributed_time,
    fig15_utility_cdf,
)
from .svg_map import save_svg
from .sweeps import DEFAULT_ALGORITHMS

__all__ = ["generate_report"]


def generate_report(
    outdir: str,
    *,
    include: Iterable[str] = ("fig10", "fig11a", "fig12", "fig15", "field"),
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    multiples: Sequence[int] = (1, 2, 4),
    repeats: int = 2,
    device_multiple: int = 4,
    seed: int = 7,
    workers: int | None = None,
) -> Path:
    """Run the selected experiments and write a report under *outdir*.

    Returns the path of the generated ``report.md``.
    """
    include = set(include)
    unknown = include - {"fig10", "fig11a", "fig12", "fig15", "field"}
    if unknown:
        raise ValueError(f"unknown report sections: {sorted(unknown)}")
    out = Path(outdir)
    out.mkdir(parents=True, exist_ok=True)
    md: list[str] = ["# HIPO reproduction report", ""]

    if "fig10" in include:
        inst = fig10_instance(
            seed=seed, charger_multiple=4, device_multiple=device_multiple, algorithms=algorithms
        )
        md += ["## Fig. 10 — one-instance comparison", "", "```", inst.format(), "```", ""]
        best = max(inst.utilities, key=inst.utilities.get)
        metrics = placement_metrics(inst.scenario, inst.placements[best])
        md += [f"best algorithm: **{best}**", "", "```", metrics.format(), "```", ""]
        save_svg(str(out / "fig10_best_placement.svg"), inst.scenario, inst.placements[best])
        md += ["placement map: `fig10_best_placement.svg`", ""]

    if "fig11a" in include:
        table = fig11a_num_chargers(
            multiples=tuple(multiples), repeats=repeats, algorithms=algorithms, workers=workers
        )
        table.to_csv(str(out / "fig11a.csv"))
        md += ["## Fig. 11(a) — utility vs number of chargers", "", "```", table.format(), "```", ""]
        if "HIPO" in table.series:
            md += ["mean improvement of HIPO over:"]
            for name, v in table.improvement_over("HIPO").items():
                md.append(f"- {name}: {v:.2f}%")
            md.append("")

    if "fig12" in include:
        table = fig12_distributed_time(multiples=tuple(multiples), repeats=max(1, repeats - 1))
        table.to_csv(str(out / "fig12.csv"))
        md += ["## Fig. 12 — distributed extraction time", "", "```", table.format(), "```", ""]

    if "fig15" in include:
        cdf = fig15_utility_cdf(seed=seed, device_multiple=device_multiple, algorithms=algorithms)
        md += ["## Fig. 15 — per-device utility distribution", ""]
        md += ["| algorithm | uncharged | median utility | saturated |", "|---|---|---|---|"]
        for name, u in cdf.items():
            md.append(
                f"| {name} | {int((u <= 0).sum())} | {float(np.median(u)):.3f} | "
                f"{int((u >= 1.0 - 1e-9).sum())} |"
            )
        md.append("")

    if "field" in include:
        res = field_comparison(seed=seed)
        md += ["## §7 field experiment", "", "```", res.format(), "```", ""]
        for name, u in res.utilities.items():
            md.append(f"- {name}: {int((u <= 0).sum())} of {len(u)} devices uncharged")
        md.append("")
        from .field import field_scenario

        save_svg(str(out / "field_hipo_placement.svg"), field_scenario(), res.placements["HIPO"])
        md += ["placement map: `field_hipo_placement.svg`", ""]

    path = out / "report.md"
    path.write_text("\n".join(md))
    return path
