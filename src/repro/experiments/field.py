"""The §7 field experiment, reproduced in simulation.

**Substitution note** (see DESIGN.md §5): the paper's testbed uses six
physical chargers — three TB-Powersource transmitters (one at 1 W, two at
2 W) and three Powercast TX91501 transmitters (3 W) — and ten P2110-equipped
sensor nodes of two types in a 120 cm × 120 cm arena with three obstacles.
We reproduce the *layout* exactly as printed (the ten sensor strategies
below are the paper's) and evaluate placements under the calibrated model of
Eq. (1) — which is also how the paper models its own hardware — instead of
over-the-air measurements.  Coefficients are chosen so that received powers
fall in the 0–40 mW range of Fig. 26.

§7 compares HIPO against GPPDCS Triangle and GPAD Triangle; Fig. 25 reports
per-device charging utility and Fig. 26 the CDF of received power.
"""

from __future__ import annotations

import math

import numpy as np

from ..geometry import Polygon, rectangle
from ..model import ChargerType, CoefficientTable, Device, DeviceType, PairCoefficients, Scenario

__all__ = [
    "FIELD_BOUNDS",
    "FIELD_SENSOR_STRATEGIES",
    "field_charger_types",
    "field_device_types",
    "field_coefficients",
    "field_obstacles",
    "field_scenario",
]

#: The 120 cm × 120 cm arena (units: centimetres).
FIELD_BOUNDS: tuple[float, float, float, float] = (0.0, 0.0, 120.0, 120.0)

#: The ten sensor strategies of §7: ((x, y), orientation in degrees).
FIELD_SENSOR_STRATEGIES: tuple[tuple[tuple[float, float], float], ...] = (
    ((20.0, 15.0), 200.0),
    ((47.0, 20.0), 350.0),
    ((113.0, 65.0), 20.0),
    ((20.0, 85.0), 140.0),
    ((13.0, 95.0), 40.0),
    ((7.0, 115.0), 190.0),
    ((27.0, 110.0), 310.0),
    ((47.0, 100.0), 150.0),
    ((50.0, 118.0), 160.0),
    ((60.0, 93.0), 270.0),
)


def field_charger_types() -> list[ChargerType]:
    """Three charger classes: TB 1 W, TB 2 W, TX91501 3 W.

    The TX91501 transmits only beyond 17 cm (the paper's field measurement);
    the TB transmitters get a smaller keep-out.  Apertures reflect the
    beam widths of the respective antennas.
    """
    return [
        ChargerType("tb-1w", math.pi / 3.0, 10.0, 70.0),
        ChargerType("tb-2w", math.pi / 3.0, 12.0, 90.0),
        ChargerType("tx91501-3w", math.pi / 4.0, 17.0, 110.0),
    ]


def field_device_types() -> list[DeviceType]:
    """Two P2110 receiver node types with different patch antennas."""
    return [
        DeviceType("sensor-a", 2.0 * math.pi / 3.0),
        DeviceType("sensor-b", math.pi),
    ]


def field_coefficients() -> CoefficientTable:
    """Power-law fits (mW, cm) scaled with transmitter wattage."""
    entries: dict[tuple[str, str], PairCoefficients] = {}
    watts = {"tb-1w": 1.0, "tb-2w": 2.0, "tx91501-3w": 3.0}
    gain = {"sensor-a": 1.0, "sensor-b": 1.3}
    for cname, w in watts.items():
        for dname, g in gain.items():
            a = 20_000.0 * w * g
            entries[(cname, dname)] = PairCoefficients(a, 15.0)
    return CoefficientTable(entries)


def field_obstacles() -> list[Polygon]:
    """The three obstacles inside the arena."""
    return [
        rectangle(60.0, 40.0, 78.0, 52.0),
        rectangle(30.0, 60.0, 42.0, 72.0),
        Polygon([(80.0, 85.0), (95.0, 90.0), (85.0, 100.0)]),
    ]


def field_scenario(*, threshold_mw: float = 20.0) -> Scenario:
    """The full §7 instance: 10 sensors (5 of each type), budgets (1, 2, 3)."""
    dtypes = field_device_types()
    devices = []
    for k, (pos, deg) in enumerate(FIELD_SENSOR_STRATEGIES):
        dt = dtypes[0] if k < 5 else dtypes[1]
        devices.append(Device(pos, math.radians(deg), dt, threshold_mw))
    return Scenario(
        bounds=FIELD_BOUNDS,
        devices=tuple(devices),
        obstacles=tuple(field_obstacles()),
        charger_types=tuple(field_charger_types()),
        budgets={"tb-1w": 1, "tb-2w": 2, "tx91501-3w": 3},
        table=field_coefficients(),
    )
