"""Per-figure reproduction functions for every evaluation figure (§6–§7).

Each ``figXX_*`` function regenerates the series behind the corresponding
paper figure and returns a :class:`~repro.experiments.reporting.SeriesTable`
(or a small result object for non-sweep figures).  Paper-default parameter
ranges are module constants; the benches may pass reduced ranges/repeats —
the qualitative shape (who wins, monotone trends) is insensitive to that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..baselines.registry import ALGORITHMS
from ..core.distributed import measure_task_costs, assign_tasks
from ..model import ChargerType, Scenario, Strategy
from ..model.utility import utilities
from .reporting import SeriesTable, cdf_points
from .scenarios import (
    DEFAULT_THRESHOLD,
    default_budgets,
    random_scenario,
)
from .sweeps import DEFAULT_ALGORITHMS, run_sweep

__all__ = [
    "FIG11_MULTIPLES",
    "FIG11_ANGLE_FACTORS",
    "FIG11_THRESHOLDS",
    "FIG11F_DMIN_FACTORS",
    "FIG12_MACHINES",
    "FIG13_DELTAS",
    "InstanceResult",
    "fig10_instance",
    "fig11a_num_chargers",
    "fig11b_num_devices",
    "fig11c_charging_angle",
    "fig11d_receiving_angle",
    "fig11e_power_threshold",
    "fig11f_dmin",
    "fig12_distributed_time",
    "fig13_threshold_deltas",
    "fig14_dmin_dmax_surface",
    "fig15_utility_cdf",
    "field_comparison",
]

FIG11_MULTIPLES: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8)
FIG11_ANGLE_FACTORS: tuple[float, ...] = (0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0)
FIG11_THRESHOLDS: tuple[float, ...] = (0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08, 0.09)
FIG11F_DMIN_FACTORS: tuple[float, ...] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4)
FIG12_MACHINES: tuple[int, ...] = (5, 10, 15, 20, 25)
FIG13_DELTAS: tuple[float, ...] = (-0.01, -0.005, 0.0, 0.005, 0.01)


# ---------------------------------------------------------------- Fig. 10 --


@dataclass
class InstanceResult:
    """One-instance comparison (Fig. 10): placements and utilities."""

    scenario: Scenario
    placements: dict[str, list[Strategy]]
    utilities: dict[str, float]

    def format(self) -> str:
        lines = ["algorithm            charging utility"]
        for name, u in sorted(self.utilities.items(), key=lambda kv: -kv[1]):
            lines.append(f"{name:<20} {u:.4f}")
        return "\n".join(lines)


def fig10_instance(
    *,
    seed: int = 7,
    charger_multiple: int = 4,
    device_multiple: int = 4,
    algorithms=DEFAULT_ALGORITHMS,
) -> InstanceResult:
    """Fig. 10: all algorithms on one random topology with 4× chargers."""
    rng = np.random.default_rng(seed)
    scenario = random_scenario(rng, charger_multiple=charger_multiple, device_multiple=device_multiple)
    placements: dict[str, list[Strategy]] = {}
    utils: dict[str, float] = {}
    for ai, name in enumerate(algorithms):
        algo_rng = np.random.default_rng(np.random.SeedSequence((seed, ai)))
        placements[name] = ALGORITHMS[name](scenario, algo_rng)
        utils[name] = scenario.utility_of(placements[name])
    return InstanceResult(scenario, placements, utils)



# Module-level sweep factories (picklable for run_sweep(workers > 1)).


def _charger_multiple_factory(m, rng):
    return random_scenario(rng, charger_multiple=int(m))


def _device_multiple_factory(m, rng):
    return random_scenario(rng, device_multiple=int(m))


def _charging_angle_factory(f, rng):
    return random_scenario(rng).scale_charger_types(angle=float(f))


def _receiving_angle_factory(f, rng):
    return random_scenario(rng).scale_device_angles(float(f))


def _threshold_factory(t, rng):
    return random_scenario(rng, threshold=float(t))


def _dmin_factory(f, rng):
    sc = random_scenario(rng)
    if abs(float(f)) <= 1e-12:
        # dmin = 0 exactly: rebuild types with a zero keep-out.
        new_types = tuple(
            ChargerType(ct.name, ct.charging_angle, 0.0, ct.dmax) for ct in sc.charger_types
        )
        return sc.with_charger_types(new_types, sc.budgets)
    return sc.scale_charger_types(dmin=float(f))


# ---------------------------------------------------------------- Fig. 11 --


def fig11a_num_chargers(
    *,
    multiples=FIG11_MULTIPLES,
    repeats: int = 3,
    seed: int = 11,
    algorithms=DEFAULT_ALGORITHMS,
    workers: int | None = None,
) -> SeriesTable:
    """Fig. 11(a): utility vs number of chargers (multiples of the initial
    (1, 2, 3) setting)."""
    return run_sweep(
        list(multiples),
        _charger_multiple_factory,
        algorithms=algorithms,
        repeats=repeats,
        seed=seed,
        x_label="Ns (times)",
        workers=workers,
    )


def fig11b_num_devices(
    *,
    multiples=FIG11_MULTIPLES,
    repeats: int = 3,
    seed: int = 12,
    algorithms=DEFAULT_ALGORITHMS,
    workers: int | None = None,
) -> SeriesTable:
    """Fig. 11(b): utility vs number of devices (multiples of (4, 3, 2, 1))."""
    return run_sweep(
        list(multiples),
        _device_multiple_factory,
        algorithms=algorithms,
        repeats=repeats,
        seed=seed,
        x_label="No (times)",
        workers=workers,
    )


def fig11c_charging_angle(
    *,
    factors=FIG11_ANGLE_FACTORS,
    repeats: int = 3,
    seed: int = 13,
    algorithms=DEFAULT_ALGORITHMS,
    workers: int | None = None,
) -> SeriesTable:
    """Fig. 11(c): utility vs charging angle scale factor."""
    return run_sweep(
        list(factors),
        _charging_angle_factory,
        algorithms=algorithms,
        repeats=repeats,
        seed=seed,
        x_label="charging angle (times)",
        workers=workers,
    )


def fig11d_receiving_angle(
    *,
    factors=FIG11_ANGLE_FACTORS,
    repeats: int = 3,
    seed: int = 14,
    algorithms=DEFAULT_ALGORITHMS,
    workers: int | None = None,
) -> SeriesTable:
    """Fig. 11(d): utility vs receiving angle scale factor."""
    return run_sweep(
        list(factors),
        _receiving_angle_factory,
        algorithms=algorithms,
        repeats=repeats,
        seed=seed,
        x_label="receiving angle (times)",
        workers=workers,
    )


def fig11e_power_threshold(
    *,
    thresholds=FIG11_THRESHOLDS,
    repeats: int = 3,
    seed: int = 15,
    algorithms=DEFAULT_ALGORITHMS,
    workers: int | None = None,
) -> SeriesTable:
    """Fig. 11(e): utility vs power threshold Pth."""
    return run_sweep(
        list(thresholds),
        _threshold_factory,
        algorithms=algorithms,
        repeats=repeats,
        seed=seed,
        x_label="power threshold",
        workers=workers,
    )


def fig11f_dmin(
    *,
    factors=FIG11F_DMIN_FACTORS,
    repeats: int = 3,
    seed: int = 16,
    algorithms=DEFAULT_ALGORITHMS,
    workers: int | None = None,
) -> SeriesTable:
    """Fig. 11(f): utility vs nearest-distance scale factor (0 recovers the
    classical sector model)."""
    return run_sweep(
        list(factors),
        _dmin_factory,
        algorithms=algorithms,
        repeats=repeats,
        seed=seed,
        x_label="dmin (times)",
        workers=workers,
    )


# ---------------------------------------------------------------- Fig. 12 --


def fig12_distributed_time(
    *,
    multiples=(1, 2, 3, 4, 5, 6, 7, 8),
    machines=FIG12_MACHINES,
    repeats: int = 2,
    seed: int = 17,
) -> SeriesTable:
    """Fig. 12: PDCS-extraction time vs number of devices, non-distributed
    and LPT-distributed over m machines.

    Values are normalized by the non-distributed time at 1× devices (as in
    the paper, to remove platform dependence).  Machine time is the
    simulated LPT makespan of the measured per-task serial costs
    (the paper's cluster substitute — see DESIGN.md §5).
    """
    table = SeriesTable("No (times)", list(multiples))
    serial = np.zeros(len(table.x))
    dist = {m: np.zeros(len(table.x)) for m in machines}
    for xi, mult in enumerate(table.x):
        for r in range(repeats):
            rng = np.random.default_rng(np.random.SeedSequence((seed, xi, r)))
            sc = random_scenario(rng, device_multiple=int(mult))
            meas = measure_task_costs(sc)
            serial[xi] += meas.serial_total
            for m in machines:
                dist[m][xi] += assign_tasks(meas.durations, m).makespan
    serial /= repeats
    base = serial[0] if serial[0] > 0 else 1.0
    table.add("Non-Dis", (serial / base).tolist())
    for m in machines:
        table.add(f"Dis-{m}", (dist[m] / repeats / base).tolist())
    return table


# ---------------------------------------------------------------- Fig. 13 --


def fig13_threshold_deltas(
    *, deltas=FIG13_DELTAS, multiples=(1, 2, 3, 4, 5, 6, 7, 8), repeats: int = 3, seed: int = 18
) -> SeriesTable:
    """Fig. 13: HIPO utility vs No for per-type power-threshold offsets.

    Device type 2 keeps Pth = 0.05; adjacent types differ by *delta*
    (legend −0.01 ⇒ thresholds 0.06, 0.05, 0.04, 0.03 for types 1–4).
    Device counts are equalized at (2, 2, 2, 2) × multiple (§6.1.9).
    """
    table = SeriesTable("No (times)", list(multiples))
    for delta in deltas:
        thresholds = {
            f"device-{i}": DEFAULT_THRESHOLD + float(delta) * (i - 2) for i in range(1, 5)
        }
        vals = []
        for xi, mult in enumerate(table.x):
            acc = 0.0
            for r in range(repeats):
                rng = np.random.default_rng(np.random.SeedSequence((seed, xi, r)))
                sc = random_scenario(
                    rng, device_counts=tuple(2 * int(mult) for _ in range(4))
                ).with_thresholds(thresholds)
                strategies = ALGORITHMS["HIPO"](sc, rng)
                acc += sc.utility_of(strategies)
            vals.append(acc / repeats)
        sign = "+" if delta > 0 else ""
        table.add(f"{sign}{delta:g}", vals)
    return table


# ---------------------------------------------------------------- Fig. 14 --


def fig14_dmin_dmax_surface(
    *,
    dmax_factors=(0.6, 1.0, 1.5, 2.0),
    ratios=(0.0, 0.3, 0.6, 0.9),
    repeats: int = 2,
    seed: int = 19,
    device_multiple: int = 4,
) -> SeriesTable:
    """Fig. 14: HIPO utility surface over (dmax scale, dmin/dmax ratio).

    Chargers at 2× the initial setting (§6.2).  Rows are dmax factors;
    one series per dmin/dmax ratio.
    """
    table = SeriesTable("dmax (times)", list(dmax_factors))
    for ratio in ratios:
        vals = []
        for xi, f in enumerate(table.x):
            acc = 0.0
            for r in range(repeats):
                rng = np.random.default_rng(np.random.SeedSequence((seed, xi, r)))
                sc = random_scenario(rng, charger_multiple=2, device_multiple=device_multiple)
                new_types = tuple(
                    ChargerType(
                        ct.name,
                        ct.charging_angle,
                        float(ratio) * float(f) * ct.dmax,
                        float(f) * ct.dmax,
                    )
                    for ct in sc.charger_types
                )
                sc = sc.with_charger_types(new_types, sc.budgets)
                strategies = ALGORITHMS["HIPO"](sc, rng)
                acc += sc.utility_of(strategies)
            vals.append(acc / repeats)
        table.add(f"dmin/dmax={ratio:g}", vals)
    return table


# ---------------------------------------------------------------- Fig. 15 --


def fig15_utility_cdf(
    *, seed: int = 20, device_multiple: int = 4, algorithms=DEFAULT_ALGORITHMS
) -> dict[str, np.ndarray]:
    """Fig. 15: per-device utilities of one 40-device topology, per
    algorithm (sorted ascending — the CDF x-samples)."""
    rng = np.random.default_rng(seed)
    scenario = random_scenario(rng, device_multiple=device_multiple)
    ev = scenario.evaluator()
    out: dict[str, np.ndarray] = {}
    for ai, name in enumerate(algorithms):
        algo_rng = np.random.default_rng(np.random.SeedSequence((seed, ai)))
        strategies = ALGORITHMS[name](scenario, algo_rng)
        powers = ev.total_power(strategies)
        out[name] = np.sort(utilities(powers, ev.thresholds))
    return out


# ------------------------------------------------------------------- §7 ----


@dataclass
class FieldResult:
    """§7 comparison: per-device utility (Fig. 25) and power CDFs (Fig. 26)."""

    utilities: dict[str, np.ndarray]
    powers: dict[str, np.ndarray]
    placements: dict[str, list[Strategy]]

    def format(self) -> str:
        names = list(self.utilities)
        lines = ["device  " + "".join(f"{n:<20}" for n in names)]
        n_dev = len(next(iter(self.utilities.values())))
        for j in range(n_dev):
            row = f"#{j + 1:<6} " + "".join(f"{self.utilities[n][j]:<20.4f}" for n in names)
            lines.append(row.rstrip())
        return "\n".join(lines)


def field_comparison(*, seed: int = 21, algorithms=("HIPO", "GPPDCS Triangle", "GPAD Triangle")) -> FieldResult:
    """Reproduce the §7 testbed comparison under the simulated substrate."""
    from .field import field_scenario

    scenario = field_scenario()
    ev = scenario.evaluator()
    utils: dict[str, np.ndarray] = {}
    powers: dict[str, np.ndarray] = {}
    placements: dict[str, list[Strategy]] = {}
    for ai, name in enumerate(algorithms):
        algo_rng = np.random.default_rng(np.random.SeedSequence((seed, ai)))
        strategies = ALGORITHMS[name](scenario, algo_rng)
        p = ev.total_power(strategies)
        placements[name] = strategies
        powers[name] = p
        utils[name] = utilities(p, ev.thresholds)
    return FieldResult(utils, powers, placements)
