"""Generic parameter-sweep engine for the §6 evaluation.

Every point of a paper figure is "average charging utility of algorithm A
at parameter value x over R random topologies".  The engine fixes the random
topology per (x, repeat) cell so all algorithms are compared on identical
instances, and derives all randomness from one ``SeedSequence`` for exact
reproducibility.  The paper uses R = 100; benches default far lower (the
ordering of algorithms is stable already at a handful of repeats) and scale
via ``REPRO_BENCH_REPEATS``.
"""

from __future__ import annotations

import contextlib
import os
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from ..baselines.registry import ALGORITHMS
from ..core.placement import HIPOSolution, solve_hipo
from ..core.reuse import CandidateSetCache, use_candidate_cache
from ..model.network import Scenario
from .reporting import SeriesTable

__all__ = [
    "bench_repeats",
    "budget_sweep",
    "run_sweep",
    "run_family_sweep",
    "FamilyAxisFactory",
    "DEFAULT_ALGORITHMS",
]

#: Paper order of the nine compared algorithms.
DEFAULT_ALGORITHMS: tuple[str, ...] = (
    "HIPO",
    "GPPDCS Triangle",
    "GPPDCS Square",
    "GPAD Triangle",
    "GPAD Square",
    "GPAR Triangle",
    "GPAR Square",
    "RPAD",
    "RPAR",
)


def bench_repeats(default: int = 3) -> int:
    """Repeat count for bench harnesses, overridable by REPRO_BENCH_REPEATS."""
    try:
        return max(1, int(os.environ.get("REPRO_BENCH_REPEATS", default)))
    except ValueError:
        return default


#: Per-process ambient candidate cache for ``reuse_candidates`` sweeps.
#: Process-global (not per-call) so pooled sweep workers reuse extractions
#: across every cell they execute, exactly like the serial path does.
_CELL_CACHE: CandidateSetCache | None = None


def _cell_cache() -> CandidateSetCache:
    global _CELL_CACHE
    if _CELL_CACHE is None:
        _CELL_CACHE = CandidateSetCache(max_entries=16, max_bytes=256 * 1024 * 1024)
    return _CELL_CACHE


def _run_cell(args) -> tuple[int, dict[str, float]]:
    """One (x, repeat) cell: build the topology, run every algorithm.

    Top-level so ProcessPoolExecutor can pickle it; *factory* must then be a
    module-level callable (the figure factories are).
    """
    factory, x, seed, xi, r, algorithms, common_topologies, reuse_candidates = args
    topo_key = (seed, r) if common_topologies else (seed, xi, r)
    cell_seq = np.random.SeedSequence(topo_key)
    topo_rng = np.random.default_rng(cell_seq.spawn(1)[0])
    scenario = factory(x, topo_rng)
    out: dict[str, float] = {}
    scope = use_candidate_cache(_cell_cache()) if reuse_candidates else contextlib.nullcontext()
    with scope:
        for ai, name in enumerate(algorithms):
            algo_rng = np.random.default_rng(np.random.SeedSequence((seed, xi, r, ai)))
            strategies = ALGORITHMS[name](scenario, algo_rng)
            out[name] = scenario.utility_of(strategies)
    return xi, out


def run_sweep(
    xs: Sequence,
    scenario_factory: Callable[[object, np.random.Generator], Scenario],
    *,
    algorithms: Iterable[str] = DEFAULT_ALGORITHMS,
    repeats: int = 3,
    seed: int = 20180816,
    x_label: str = "x",
    workers: int | None = None,
    common_topologies: bool = False,
    reuse_candidates: bool = False,
) -> SeriesTable:
    """Average utility of each algorithm at each x over *repeats* topologies.

    *scenario_factory(x, rng)* builds the instance for one cell; the same
    instance is handed to every algorithm, each with an independent child
    generator (only the randomized baselines consume it).

    With ``workers > 1`` the (x, repeat) cells run in a process pool —
    results are bit-identical to the serial run (all randomness is derived
    from per-cell ``SeedSequence`` keys, not shared state), but the factory
    must be picklable (a module-level function; the built-in figure
    factories qualify, ad-hoc lambdas do not).

    ``common_topologies=True`` seeds the topology per *repeat* instead of
    per (x, repeat), so every x point of a repeat sees the **same** device
    layout — the natural design when x only changes budgets or thresholds,
    and the precondition for extraction reuse across x.
    ``reuse_candidates=True`` additionally runs every cell under an ambient
    :class:`~repro.core.reuse.CandidateSetCache` (per process), so HIPO
    solves whose extraction slice repeats skip straight to selection.
    Results are identical either way (warm starts are byte-identical);
    only wall-clock changes.  Defaults reproduce the historical behaviour.
    """
    algorithms = tuple(algorithms)
    unknown = [a for a in algorithms if a not in ALGORITHMS]
    if unknown:
        raise KeyError(f"unknown algorithms: {unknown}")
    table = SeriesTable(x_label, list(xs))
    sums = {name: np.zeros(len(table.x)) for name in algorithms}
    cells = [
        (scenario_factory, x, seed, xi, r, algorithms, common_topologies, reuse_candidates)
        for xi, x in enumerate(table.x)
        for r in range(repeats)
    ]
    if workers is not None and workers > 1 and len(cells) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(workers, len(cells))) as pool:
            results = list(pool.map(_run_cell, cells))
    else:
        results = [_run_cell(c) for c in cells]
    for xi, utilities in results:
        for name, u in utilities.items():
            sums[name][xi] += u
    for name in algorithms:
        table.add(name, (sums[name] / repeats).tolist())
    return table


class FamilyAxisFactory:
    """Adapt a :mod:`repro.variation` family into a sweep scenario factory.

    ``factory(x, rng)`` builds ``family.build({axis: x, **fixed}, seed)``
    with the seed drawn from the sweep's per-cell generator, so the
    engine's reproducibility contract (randomness keyed by the cell's
    ``SeedSequence``) carries over unchanged.  A module-level class with
    plain attributes — picklable, so ``workers > 1`` sweeps work.
    """

    def __init__(self, family: str, axis: str, fixed: Mapping | None = None) -> None:
        self.family = family
        self.axis = axis
        self.fixed = dict(fixed or {})

    def __call__(self, x, rng: np.random.Generator) -> Scenario:
        from ..variation import get_family  # local: experiments must not hard-import variation

        params = dict(self.fixed)
        params[self.axis] = x
        seed = int(rng.integers(0, np.iinfo(np.int64).max))
        return get_family(self.family).build(params, seed=seed).scenario


def run_family_sweep(
    family: str,
    axis: str,
    *,
    xs: Sequence | None = None,
    fixed: Mapping | None = None,
    algorithms: Iterable[str] = DEFAULT_ALGORITHMS,
    repeats: int = 3,
    seed: int = 20180816,
    workers: int | None = None,
    reuse_candidates: bool = False,
) -> SeriesTable:
    """:func:`run_sweep` with a variation family supplying the axis.

    Sweeps the named family parameter along x (defaulting to the axis's
    declared choices, sorted when homogeneous), holding *fixed* overrides
    on every other axis.  Each cell's topology is regenerated from the
    cell seed, so figures over generated workloads inherit the same
    bit-reproducibility as the built-in ones.
    """
    from ..variation import get_family  # local: experiments must not hard-import variation

    fam = get_family(family)
    spec = fam.spec(axis)
    if xs is None:
        try:
            xs = sorted(spec.choices)
        except TypeError:  # heterogeneous choice types: keep declared order
            xs = list(spec.choices)
    return run_sweep(
        list(xs),
        FamilyAxisFactory(family, axis, fixed),
        algorithms=algorithms,
        repeats=repeats,
        seed=seed,
        x_label=f"{family}.{axis}",
        workers=workers,
        reuse_candidates=reuse_candidates,
    )


def budget_sweep(
    scenario: Scenario,
    budget_points: Sequence[Mapping[str, int]],
    *,
    eps: float = 0.15,
    candidate_cache: CandidateSetCache | None = None,
    **solve_kwargs,
) -> list[HIPOSolution]:
    """Solve one topology under many budget allocations, paying extraction once.

    The workload the candidate-reuse tier exists for: every point shares the
    scenario's extraction slice (budget *magnitudes* never enter it), so
    after the first solve all later points are selection-only warm starts —
    except points that *activate or deactivate* a charger type (budget
    crossing zero changes which types are extracted, hence the key).

    *candidate_cache* defaults to a fresh in-memory cache scoped to this
    call; pass a persistent one (``directory=...``) to warm-start across
    processes.  Extra keyword arguments go to
    :func:`~repro.core.solve_hipo`.  Returns one solution per point, in
    order; each is byte-identical to a cold solve of the same instance.
    """
    cache = (
        candidate_cache
        if candidate_cache is not None
        else CandidateSetCache(max_entries=max(4, len(budget_points)))
    )
    return [
        solve_hipo(
            scenario.with_budgets(dict(budgets)),
            eps=eps,
            candidate_cache=cache,
            **solve_kwargs,
        )
        for budgets in budget_points
    ]
