"""Generic parameter-sweep engine for the §6 evaluation.

Every point of a paper figure is "average charging utility of algorithm A
at parameter value x over R random topologies".  The engine fixes the random
topology per (x, repeat) cell so all algorithms are compared on identical
instances, and derives all randomness from one ``SeedSequence`` for exact
reproducibility.  The paper uses R = 100; benches default far lower (the
ordering of algorithms is stable already at a handful of repeats) and scale
via ``REPRO_BENCH_REPEATS``.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, Sequence

import numpy as np

from ..baselines.registry import ALGORITHMS
from ..model.network import Scenario
from .reporting import SeriesTable

__all__ = ["bench_repeats", "run_sweep", "DEFAULT_ALGORITHMS"]

#: Paper order of the nine compared algorithms.
DEFAULT_ALGORITHMS: tuple[str, ...] = (
    "HIPO",
    "GPPDCS Triangle",
    "GPPDCS Square",
    "GPAD Triangle",
    "GPAD Square",
    "GPAR Triangle",
    "GPAR Square",
    "RPAD",
    "RPAR",
)


def bench_repeats(default: int = 3) -> int:
    """Repeat count for bench harnesses, overridable by REPRO_BENCH_REPEATS."""
    try:
        return max(1, int(os.environ.get("REPRO_BENCH_REPEATS", default)))
    except ValueError:
        return default


def _run_cell(args) -> tuple[int, dict[str, float]]:
    """One (x, repeat) cell: build the topology, run every algorithm.

    Top-level so ProcessPoolExecutor can pickle it; *factory* must then be a
    module-level callable (the figure factories are).
    """
    factory, x, seed, xi, r, algorithms = args
    cell_seq = np.random.SeedSequence((seed, xi, r))
    topo_rng = np.random.default_rng(cell_seq.spawn(1)[0])
    scenario = factory(x, topo_rng)
    out: dict[str, float] = {}
    for ai, name in enumerate(algorithms):
        algo_rng = np.random.default_rng(np.random.SeedSequence((seed, xi, r, ai)))
        strategies = ALGORITHMS[name](scenario, algo_rng)
        out[name] = scenario.utility_of(strategies)
    return xi, out


def run_sweep(
    xs: Sequence,
    scenario_factory: Callable[[object, np.random.Generator], Scenario],
    *,
    algorithms: Iterable[str] = DEFAULT_ALGORITHMS,
    repeats: int = 3,
    seed: int = 20180816,
    x_label: str = "x",
    workers: int | None = None,
) -> SeriesTable:
    """Average utility of each algorithm at each x over *repeats* topologies.

    *scenario_factory(x, rng)* builds the instance for one cell; the same
    instance is handed to every algorithm, each with an independent child
    generator (only the randomized baselines consume it).

    With ``workers > 1`` the (x, repeat) cells run in a process pool —
    results are bit-identical to the serial run (all randomness is derived
    from per-cell ``SeedSequence`` keys, not shared state), but the factory
    must be picklable (a module-level function; the built-in figure
    factories qualify, ad-hoc lambdas do not).
    """
    algorithms = tuple(algorithms)
    unknown = [a for a in algorithms if a not in ALGORITHMS]
    if unknown:
        raise KeyError(f"unknown algorithms: {unknown}")
    table = SeriesTable(x_label, list(xs))
    sums = {name: np.zeros(len(table.x)) for name in algorithms}
    cells = [
        (scenario_factory, x, seed, xi, r, algorithms)
        for xi, x in enumerate(table.x)
        for r in range(repeats)
    ]
    if workers is not None and workers > 1 and len(cells) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(workers, len(cells))) as pool:
            results = list(pool.map(_run_cell, cells))
    else:
        results = [_run_cell(c) for c in cells]
    for xi, utilities in results:
        for name, u in utilities.items():
            sums[name][xi] += u
    for name in algorithms:
        table.add(name, (sums[name] / repeats).tolist())
    return table
