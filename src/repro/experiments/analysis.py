"""Placement quality analysis beyond the scalar objective.

The paper's evaluation reads several secondary signals off its figures —
how many devices stay dark (Fig. 10/25), how balanced the utility
distribution is (Fig. 15, §6.2 "relatively balanced at a high rate"), how
much power the fleet actually delivers (Fig. 26).  This module computes
those signals for any placement so examples, benches and downstream users
can report them uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..model.entities import Strategy
from ..model.network import Scenario
from ..model.utility import utilities

__all__ = ["PlacementMetrics", "jain_index", "placement_metrics", "compare_placements"]


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index ``(Σx)² / (n Σx²)`` ∈ ``[1/n, 1]``.

    1 means perfectly even allocation; ``1/n`` means one receiver takes all.
    Zero vectors return 0 by convention.
    """
    v = np.asarray(values, dtype=float)
    if v.size == 0:
        return 0.0
    denom = float((v**2).sum())
    if denom <= 0.0:
        return 0.0
    return float(v.sum() ** 2 / (v.size * denom))


@dataclass
class PlacementMetrics:
    """Summary statistics of one placement."""

    utility: float  # Eq. (4) objective
    min_utility: float
    mean_power: float
    total_power: float
    uncharged: int  # devices receiving zero power
    saturated: int  # devices at utility 1
    jain: float  # fairness of the per-device utilities
    redundancy: float  # mean #chargers covering each charged device
    chargers_by_type: dict[str, int]

    def format(self) -> str:
        lines = [
            f"utility            {self.utility:.4f}",
            f"min device utility {self.min_utility:.4f}",
            f"mean power         {self.mean_power:.4f}",
            f"total power        {self.total_power:.4f}",
            f"uncharged devices  {self.uncharged}",
            f"saturated devices  {self.saturated}",
            f"Jain fairness      {self.jain:.4f}",
            f"coverage redundancy {self.redundancy:.2f}",
        ]
        for name, n in sorted(self.chargers_by_type.items()):
            lines.append(f"chargers[{name}]    {n}")
        return "\n".join(lines)


def placement_metrics(scenario: Scenario, strategies: Sequence[Strategy]) -> PlacementMetrics:
    """Compute :class:`PlacementMetrics` for a placement."""
    ev = scenario.evaluator()
    P = ev.power_matrix(list(strategies)) if strategies else np.zeros((0, ev.num_devices))
    total = P.sum(axis=0) if len(P) else np.zeros(ev.num_devices)
    u = utilities(total, ev.thresholds)
    covered = total > 0
    coverage_counts = (P > 0).sum(axis=0) if len(P) else np.zeros(ev.num_devices)
    by_type: dict[str, int] = {}
    for s in strategies:
        by_type[s.ctype.name] = by_type.get(s.ctype.name, 0) + 1
    return PlacementMetrics(
        utility=float(u.mean()) if u.size else 0.0,
        min_utility=float(u.min()) if u.size else 0.0,
        mean_power=float(total.mean()) if total.size else 0.0,
        total_power=float(total.sum()),
        uncharged=int((~covered).sum()),
        saturated=int((u >= 1.0 - 1e-12).sum()),
        jain=jain_index(u),
        redundancy=float(coverage_counts[covered].mean()) if covered.any() else 0.0,
        chargers_by_type=by_type,
    )


def compare_placements(
    scenario: Scenario, placements: Mapping[str, Sequence[Strategy]]
) -> dict[str, PlacementMetrics]:
    """Metrics for several placements of the same scenario, keyed by name."""
    return {name: placement_metrics(scenario, strategies) for name, strategies in placements.items()}
