"""Workload generators beyond the paper's uniform topology.

§6 samples device positions uniformly over the free area.  Real deployments
are rarely uniform — sensors cluster around assets and obstacles come in
many shapes — so the benchmark harness and examples also exercise:

* random convex and star-shaped polygonal obstacles,
* clustered device topologies (Gaussian blobs around hotspots),
* fully cluttered scenarios combining both.

All generators take an explicit ``numpy.random.Generator`` and compose with
the Tables 2–4 hardware defaults.
"""

from __future__ import annotations

import math

import numpy as np

from ..geometry import TWO_PI, Polygon, convex_hull
from ..model import Device, Scenario
from .scenarios import (
    DEFAULT_THRESHOLD,
    default_budgets,
    default_charger_types,
    default_coefficients,
    default_device_types,
    random_scenario,
    small_scenario,
)

__all__ = [
    "as_generator",
    "random_convex_obstacle",
    "random_star_obstacle",
    "clustered_devices",
    "cluttered_scenario",
    "register_scenario_generator",
    "scenario_generators",
]


def as_generator(rng: np.random.Generator | int) -> np.random.Generator:
    """Coerce an explicit seed into a ``numpy.random.Generator``.

    Every generator in this module takes its randomness explicitly — there
    is no module-level RNG to leak state between calls (rule DET101).  This
    helper lets callers pass either a ready ``Generator`` or a plain integer
    seed; anything else raises ``TypeError``.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)) and not isinstance(rng, bool):
        return np.random.default_rng(int(rng))
    raise TypeError(f"expected np.random.Generator or int seed, got {type(rng).__name__}")


#: Named scenario-producing callables ``(rng, **kwargs) -> Scenario``.  The
#: variation layer (:mod:`repro.variation`) enumerates this registry; each
#: entry must be a pure function of its explicit ``rng`` and kwargs.
_SCENARIO_GENERATORS: dict[str, object] = {}


def register_scenario_generator(name: str, fn) -> None:
    """Register a named scenario generator (replacing any same-named one)."""
    if not name:
        raise ValueError("generator name must be non-empty")
    _SCENARIO_GENERATORS[name] = fn


def scenario_generators() -> dict[str, object]:
    """Name → scenario generator callable for every registered generator."""
    return dict(_SCENARIO_GENERATORS)


def random_convex_obstacle(
    rng: np.random.Generator | int,
    center: tuple[float, float],
    radius: float,
    *,
    points: int = 8,
) -> Polygon:
    """Convex obstacle: hull of random points in a disk around *center*."""
    rng = as_generator(rng)
    if radius <= 0.0:
        raise ValueError("radius must be positive")
    for _ in range(32):
        thetas = rng.uniform(0.0, TWO_PI, size=max(points, 4))
        radii = rng.uniform(0.35 * radius, radius, size=len(thetas))
        pts = np.column_stack(
            [center[0] + radii * np.cos(thetas), center[1] + radii * np.sin(thetas)]
        )
        try:
            return convex_hull(pts)
        except ValueError:
            continue  # collinear draw; retry
    raise RuntimeError("could not build a convex obstacle")


def random_star_obstacle(
    rng: np.random.Generator | int,
    center: tuple[float, float],
    rmin: float,
    rmax: float,
    *,
    vertices: int = 8,
) -> Polygon:
    """Star-shaped (possibly non-convex) simple polygon around *center*.

    Angles are sorted so consecutive vertices never cross — the polygon is
    simple by construction, matching the paper's "arbitrary shapes".
    """
    rng = as_generator(rng)
    if not (0.0 < rmin <= rmax):
        raise ValueError("need 0 < rmin <= rmax")
    n = max(vertices, 3)
    # Stratified angles: one per sector, so the largest angular gap stays
    # below 2 * (2*pi/n) and the polygon is star-shaped about the center.
    thetas = (np.arange(n) + rng.uniform(0.0, 1.0, size=n)) * (TWO_PI / n)
    radii = rng.uniform(rmin, rmax, size=len(thetas))
    pts = np.column_stack(
        [center[0] + radii * np.cos(thetas), center[1] + radii * np.sin(thetas)]
    )
    return Polygon(pts)


def clustered_devices(
    rng: np.random.Generator | int,
    *,
    clusters: int = 3,
    per_cluster: int = 6,
    spread: float = 3.0,
    bounds: tuple[float, float, float, float] = (0.0, 0.0, 40.0, 40.0),
    obstacles: tuple[Polygon, ...] = (),
    threshold: float = DEFAULT_THRESHOLD,
) -> list[Device]:
    """Devices in Gaussian blobs around random hotspot centers.

    Draws falling outside the region or inside obstacles are re-sampled;
    device types cycle through the Table 3 catalogue.
    """
    rng = as_generator(rng)
    xmin, ymin, xmax, ymax = bounds
    dtypes = default_device_types()
    centers = [
        (rng.uniform(xmin + spread, xmax - spread), rng.uniform(ymin + spread, ymax - spread))
        for _ in range(clusters)
    ]
    devices: list[Device] = []
    k = 0
    for cx, cy in centers:
        for _ in range(per_cluster):
            for _attempt in range(1000):
                p = (rng.normal(cx, spread), rng.normal(cy, spread))
                if xmin <= p[0] <= xmax and ymin <= p[1] <= ymax and not any(
                    h.contains(p) for h in obstacles
                ):
                    break
            else:  # pragma: no cover - pathological geometry
                raise RuntimeError("could not place a clustered device")
            devices.append(Device(p, rng.uniform(0.0, TWO_PI), dtypes[k % len(dtypes)], threshold))
            k += 1
    return devices


def cluttered_scenario(
    rng: np.random.Generator | int,
    *,
    num_obstacles: int = 4,
    clusters: int = 3,
    per_cluster: int = 6,
    charger_multiple: int = 3,
    bounds: tuple[float, float, float, float] = (0.0, 0.0, 40.0, 40.0),
    threshold: float = DEFAULT_THRESHOLD,
) -> Scenario:
    """A clutter-heavy instance: random star/convex obstacles + clustered
    devices + the Tables 2–4 hardware defaults."""
    rng = as_generator(rng)
    xmin, ymin, xmax, ymax = bounds
    obstacles: list[Polygon] = []
    for i in range(num_obstacles):
        center = (rng.uniform(xmin + 6, xmax - 6), rng.uniform(ymin + 6, ymax - 6))
        if i % 2 == 0:
            obstacles.append(random_star_obstacle(rng, center, 1.5, 3.5, vertices=7))
        else:
            obstacles.append(random_convex_obstacle(rng, center, 3.0, points=7))
    devices = clustered_devices(
        rng,
        clusters=clusters,
        per_cluster=per_cluster,
        bounds=bounds,
        obstacles=tuple(obstacles),
        threshold=threshold,
    )
    return Scenario(
        bounds=bounds,
        devices=tuple(devices),
        obstacles=tuple(obstacles),
        charger_types=tuple(default_charger_types()),
        budgets=default_budgets(charger_multiple),
        table=default_coefficients(),
    )


# Built-in registry entries: the §6 uniform topology, the downsized test
# instance, and the cluttered family above.  The richer parameterized
# families live in repro.variation.families on top of these callables.
register_scenario_generator("cluttered", cluttered_scenario)
register_scenario_generator("uniform", random_scenario)
register_scenario_generator("small", small_scenario)
