"""Experiment harness: default scenarios, field testbed, sweeps, figures."""

from .analysis import PlacementMetrics, compare_placements, jain_index, placement_metrics
from .ascii_map import render_scene
from .field import field_scenario
from .generators import (
    clustered_devices,
    cluttered_scenario,
    random_convex_obstacle,
    random_star_obstacle,
)
from .sensitivity import RobustnessCurve, perturb_strategies, placement_robustness
from .svg_map import render_svg, save_svg
from .figures import (
    FieldResult,
    InstanceResult,
    field_comparison,
    fig10_instance,
    fig11a_num_chargers,
    fig11b_num_devices,
    fig11c_charging_angle,
    fig11d_receiving_angle,
    fig11e_power_threshold,
    fig11f_dmin,
    fig12_distributed_time,
    fig13_threshold_deltas,
    fig14_dmin_dmax_surface,
    fig15_utility_cdf,
)
from .report import generate_report
from .reporting import SeriesTable, cdf_points, format_percent, headline_improvements
from .scenarios import (
    DEFAULT_BOUNDS,
    DEFAULT_EPS,
    DEFAULT_THRESHOLD,
    default_budgets,
    default_charger_types,
    default_coefficients,
    default_device_types,
    default_obstacles,
    random_devices,
    random_scenario,
    small_scenario,
)
from .sweeps import DEFAULT_ALGORITHMS, bench_repeats, run_sweep

__all__ = [
    "DEFAULT_ALGORITHMS",
    "DEFAULT_BOUNDS",
    "DEFAULT_EPS",
    "DEFAULT_THRESHOLD",
    "FieldResult",
    "InstanceResult",
    "PlacementMetrics",
    "RobustnessCurve",
    "SeriesTable",
    "bench_repeats",
    "cdf_points",
    "clustered_devices",
    "cluttered_scenario",
    "compare_placements",
    "default_budgets",
    "default_charger_types",
    "default_coefficients",
    "default_device_types",
    "default_obstacles",
    "field_comparison",
    "field_scenario",
    "fig10_instance",
    "fig11a_num_chargers",
    "fig11b_num_devices",
    "fig11c_charging_angle",
    "fig11d_receiving_angle",
    "fig11e_power_threshold",
    "fig11f_dmin",
    "fig12_distributed_time",
    "fig13_threshold_deltas",
    "fig14_dmin_dmax_surface",
    "fig15_utility_cdf",
    "format_percent",
    "generate_report",
    "headline_improvements",
    "jain_index",
    "perturb_strategies",
    "placement_metrics",
    "placement_robustness",
    "random_convex_obstacle",
    "random_devices",
    "random_scenario",
    "random_star_obstacle",
    "render_scene",
    "render_svg",
    "run_sweep",
    "save_svg",
    "small_scenario",
]
